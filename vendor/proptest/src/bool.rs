//! Boolean strategies (`proptest::bool`).

use crate::{Strategy, TestRng};

/// Strategy yielding uniformly random booleans.
#[derive(Clone, Copy, Debug)]
pub struct Any;

/// The canonical boolean strategy (`proptest::bool::ANY`).
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
