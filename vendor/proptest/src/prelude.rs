//! The customary glob-import surface (`use proptest::prelude::*;`).

pub use crate::{
    prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    TestCaseError, TestCaseResult, TestRng,
};
