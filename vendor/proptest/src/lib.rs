//! Offline mini property-testing framework with the `proptest` API shape.
//!
//! The build environment cannot reach a crates registry, so this vendored
//! crate implements the subset of `proptest` the workspace test suites use:
//!
//! - the [`Strategy`] trait with `prop_map` / `prop_flat_map` combinators,
//! - range strategies for integers and floats (`0usize..128`, `-3.0f32..3.0`,
//!   `1..=max` inclusive ranges), tuple strategies, [`collection::vec`], and
//!   [`bool::ANY`],
//! - the [`proptest!`] macro with `#![proptest_config(...)]`, plus
//!   [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! - [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate: inputs are generated from a
//! deterministic per-test seed (FNV of the test name mixed with the case
//! index) so failures reproduce exactly across runs and machines, and there
//! is **no shrinking** — a failure reports the case number instead of a
//! minimised input. Swap `[workspace.dependencies]` back to the real
//! proptest when a registry is available; no test-source changes needed.

use std::ops::{Range, RangeInclusive};

pub mod bool;
pub mod collection;
pub mod prelude;

/// Deterministic RNG (SplitMix64) used to generate test inputs.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        Self(seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of test inputs. The stub analogue of `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Use each generated value to build a second strategy, then draw from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                (self.start as u128 + rng.below(span) as u128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as u128 - *self.start() as u128) as u64;
                if span == u64::MAX {
                    rng.next_u64() as $t
                } else {
                    (*self.start() as u128 + rng.below(span + 1) as u128) as $t
                }
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u64;
                if span == u64::MAX {
                    rng.next_u64() as $t
                } else {
                    (*self.start() as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        }
    )*};
}

signed_range_strategies!(i8, i16, i32, i64, isize);

macro_rules! float_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($n:ident),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($n,)+) = self;
                ($($n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, G)
}

/// A strategy that always yields a clone of one value (`proptest::strategy::Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Error produced by a failing `prop_assert!`; carries the failure message.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds an error from a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result type for one property-test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-suite configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// FNV-1a hash of a test name; combined with the case index to seed the RNG
/// so every property is deterministic yet decorrelated from its neighbours.
pub fn seed_for(name: &str, case: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ (case.wrapping_mul(0xA24B_AED4_963E_E407))
}

/// Asserts a condition inside a `proptest!` body, returning a
/// [`TestCaseError`] (rather than panicking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: `{:?}` == `{:?}`", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)+);
    }};
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: `{:?}` != `{:?}`", a, b);
    }};
}

/// Declares property tests. Supports the subset of the real macro's grammar
/// used in this workspace: an optional leading `#![proptest_config(expr)]`
/// followed by `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            for __case in 0..__config.cases {
                let mut __rng =
                    $crate::TestRng::new($crate::seed_for(stringify!($name), __case as u64));
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __result: $crate::TestCaseResult = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "property `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        __case,
                        __config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}
