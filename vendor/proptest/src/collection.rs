//! Collection strategies (`proptest::collection`).

use crate::{Strategy, TestRng};
use std::ops::{Range, RangeInclusive};

/// Inclusive bounds on a generated collection's length.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_incl: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self { min: exact, max_incl: exact }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self { min: r.start, max_incl: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self { min: *r.start(), max_incl: *r.end() }
    }
}

/// Strategy producing `Vec`s of values drawn from an element strategy.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

/// Builds a [`VecStrategy`] with lengths drawn from `size`
/// (`proptest::collection::vec`).
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { elem, size: size.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_incl - self.size.min) as u64;
        let len = self.size.min + rng.below(span + 1) as usize;
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}
