//! Offline facade for the `serde` crate.
//!
//! The build environment cannot reach a crates registry, so this vendored
//! crate supplies just enough surface for the workspace to compile:
//! `Serialize`/`Deserialize` marker traits with blanket impls, plus the
//! no-op derive macros from `vendor/serde_derive`. Config structs across the
//! workspace keep their `#[derive(Serialize, Deserialize)]` annotations so
//! the real serde can be dropped in (edit `[workspace.dependencies]`)
//! without touching any source file.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`. Blanket-implemented so generic
/// bounds written against the real trait keep compiling.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`. Blanket-implemented so generic
/// bounds written against the real trait keep compiling.
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}
