//! Offline micro-benchmark harness with the `criterion` API shape.
//!
//! The build environment cannot reach a crates registry, so this vendored
//! crate implements the subset of `criterion` the workspace benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`BatchSize`], and the [`criterion_group!`] / [`criterion_main!`] macros
//! (both the simple and the `name/config/targets` forms).
//!
//! Measurement is intentionally simple — wall-clock mean over
//! `sample_size` iterations after one warm-up, printed as a single
//! `name ... mean ns/iter` row. No statistical analysis, HTML reports, or
//! outlier rejection; swap `[workspace.dependencies]` back to the real
//! criterion for those.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost. Only a hint in this stub: every
/// variant runs one setup per measured iteration.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input for every iteration.
    PerIteration,
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many measured iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark and prints its mean time per iteration.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { iters: self.sample_size as u64, elapsed: Duration::ZERO };
        f(&mut b);
        let mean_ns = b.elapsed.as_nanos() as f64 / b.iters.max(1) as f64;
        println!("{id:<44} {:>14.1} ns/iter ({} samples)", mean_ns, b.iters);
        self
    }
}

/// Timer handed to each benchmark closure, mirroring `criterion::Bencher`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations
    /// (plus one untimed warm-up).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded
    /// from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Declares a benchmark group: either `criterion_group!(name, fn_a, fn_b)` or
/// the long form with `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates `fn main()` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
