//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! Exposes the `parking_lot` API shape the workspace uses — `Mutex::lock`
//! returning a guard directly (no `Result`) — so the real crate can be
//! swapped back in via `[workspace.dependencies]` without source changes.
//! Poisoned locks are recovered transparently, matching parking_lot's
//! poison-free semantics.

use std::fmt;
use std::sync::PoisonError;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion primitive with `parking_lot`'s panic-free `lock()`
/// signature, implemented over [`std::sync::Mutex`].
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex wrapping `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Unlike
    /// `std::sync::Mutex::lock` this never returns a poison error: a
    /// poisoned lock is recovered, mirroring parking_lot semantics.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably borrows the underlying data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}
