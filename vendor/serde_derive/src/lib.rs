//! No-op stand-ins for serde's derive macros.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal `serde` facade (see `vendor/serde`). The derives accept any item
//! and expand to nothing; the sibling facade crate provides blanket trait
//! impls so `T: Serialize` bounds still hold. Swap the `[workspace.dependencies]`
//! entries for the real crates when a registry is available — no source
//! changes are needed.

use proc_macro::TokenStream;

/// No-op replacement for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
