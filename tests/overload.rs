//! Brownout overload-control battery: graceful degradation end to end.
//!
//! Four contracts pin the controller down:
//! 1. **Disabled/nominal bit-identity** — `overload: None` reports an
//!    all-zero summary, and a controller that never leaves `Nominal`
//!    produces the same tokens as no controller at all.
//! 2. **Staged degradation under a storm** — a 4× overload storm climbs
//!    the ladder: Low/Normal sessions decode under reduced effort
//!    (metered per token), Low admissions are deferred or shed, and
//!    High-priority output stays bit-identical to a controller-off run.
//! 3. **Replay determinism** — the same storm under the same fault plan
//!    replays bit-identically, controller metering included (every
//!    brownout decision lives on the tick clock).
//! 4. **Recall floor** — the effort ladder's maximum degradation keeps
//!    recall@k against the exact selection at or above the configured
//!    floor, on the clustered fixture where IVF recall is meaningful
//!    (proptest sweeps the whole effort plane), and a degraded session's
//!    selection is an exact subset of the full-effort one.

use pqcache::core::{CacheConfig, IvfMode, SelectiveSession, SessionConfig};
use pqcache::llm::{LlmConfig, Model};
use pqcache::policies::{PqCachePolicy, PqCachePolicyConfig, SelectionEffort};
use pqcache::pq::{IvfConfig, IvfIndex, PqCodebook, PqCodes, PqConfig, PqRetriever};
use pqcache::serve::{
    Completion, FaultPlan, OverloadConfig, OverloadSummary, PressureLevel, Priority, ServeConfig,
    ServeEngine, ServeReport, ServeRequest, ShardAssignment,
};
use pqcache::tensor::{topk_recall, Matrix, Rng64};
use pqcache::workloads::{overload_storm_trace, TraceConfig, VocabLayout};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};
use std::sync::{mpsc, OnceLock};
use std::time::Duration;

const WALL_LIMIT: Duration = Duration::from_secs(240);

/// Large offset added to every trace arrival tick: all requests are popped
/// off the admission queue into the shard's maturity buffer long before
/// any of them is due, so admission order is a pure function of the tick
/// clock rather than of the producer/worker pop race. (The race window
/// still samples queue occupancy — the storm configs keep `queue_capacity`
/// large enough that its pressure stays below the lowest enter threshold.)
const ARRIVAL_OFFSET: u64 = 768;

fn session_cfg() -> SessionConfig {
    SessionConfig {
        n_init: 2,
        n_local: 8,
        token_ratio: 0.25,
        comm_fraction: 1.0 / 16.0,
        obs_window: 8,
        cache: CacheConfig { capacity_tokens: 64, block_size: 8, lfu: true, k_cache_blocks: 4 },
        ivf: IvfMode::Exact,
    }
}

fn run_with_watchdog(cfg: ServeConfig, requests: Vec<ServeRequest>) -> ServeReport {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let model = Model::new(LlmConfig::tiny());
        let report = ServeEngine::run(&model, &cfg, requests).expect("valid config");
        let _ = tx.send(report);
    });
    match rx.recv_timeout(WALL_LIMIT) {
        Ok(report) => report,
        Err(_) => panic!("serve engine did not finish within {WALL_LIMIT:?}: deadlock or livelock"),
    }
}

fn by_id(report: &ServeReport) -> HashMap<u64, &Completion> {
    report.completions.iter().map(|c| (c.id, c)).collect()
}

// ---------------------------------------------------------------------------
// 1. Disabled / nominal bit-identity
// ---------------------------------------------------------------------------

fn light_requests() -> Vec<ServeRequest> {
    let mut rng = Rng64::new(0x11);
    (0..3u64)
        .map(|id| {
            let toks: Vec<u32> = (0..72).map(|_| rng.below(200) as u32).collect();
            ServeRequest::new(id, toks, 8, Box::new(PqCachePolicy::default()))
        })
        .collect()
}

fn light_cfg(overload: Option<OverloadConfig>) -> ServeConfig {
    ServeConfig {
        shards: 1,
        // 3 sessions over 8 slots: slot pressure peaks at 0.375, well
        // below the default enter[0] = 0.55 — the ladder never arms.
        max_active_per_shard: 8,
        queue_capacity: 16,
        session: session_cfg(),
        overload,
        ..Default::default()
    }
}

#[test]
fn nominal_controller_is_bit_identical_and_disabled_meters_nothing() {
    let on = run_with_watchdog(light_cfg(Some(OverloadConfig::default())), light_requests());
    let off = run_with_watchdog(light_cfg(None), light_requests());

    // Disabled controller: the summary is the all-zero default — not even
    // Nominal ticks are attributed.
    assert_eq!(off.overload, OverloadSummary::default());
    assert_eq!(off.total_degraded_steps(), 0);

    // Enabled but never pressured: it watches (Nominal ticks accrue) and
    // touches nothing.
    assert_eq!(on.overload.pressured_ticks(), 0, "light load must stay Nominal");
    assert!(on.overload.level_ticks[0] > 0, "an enabled controller attributes its ticks");
    assert_eq!(on.overload.degraded_tokens, 0);
    assert_eq!(on.overload.deferrals + on.overload.sheds, 0);
    assert_eq!(on.total_degraded_steps(), 0);

    // Bit-identity: same tokens, same deterministic TTFT, no degradation
    // recorded on any completion.
    let off_map = by_id(&off);
    assert_eq!(on.completions.len(), off.completions.len());
    for c in &on.completions {
        let o = off_map[&c.id];
        assert!(c.failure.is_none() && o.failure.is_none());
        assert_eq!(c.generated, o.generated, "request {} diverged under a Nominal controller", c.id);
        assert_eq!(c.ttft_ticks, o.ttft_ticks);
        assert_eq!(c.max_degrade_level, PressureLevel::Nominal);
        assert_eq!(o.max_degrade_level, PressureLevel::Nominal);
    }
}

// ---------------------------------------------------------------------------
// 2 & 3. Storm batteries
// ---------------------------------------------------------------------------

const STORM_SESSIONS: usize = 16;

fn storm_trace() -> pqcache::workloads::TenantTrace {
    overload_storm_trace(
        &TraceConfig {
            sessions: STORM_SESSIONS,
            arrival_rate: 0.5,
            prompt_lens: [64, 80, 96],
            prompt_mix: [0.6, 0.3, 0.1],
            decode_steps: (6, 14),
            priority_mix: [1.0, 1.0, 0.6],
            layout: VocabLayout::for_vocab(256),
            seed: 0x5708B,
        },
        4.0,
    )
}

fn storm_requests() -> Vec<ServeRequest> {
    storm_trace()
        .requests
        .into_iter()
        .map(|r| {
            ServeRequest::new(r.id, r.workload.tokens, r.decode_steps, Box::new(PqCachePolicy::default()))
                .with_arrival_tick(r.arrival_tick + ARRIVAL_OFFSET)
                .with_priority(match r.priority {
                    0 => Priority::Low,
                    1 => Priority::Normal,
                    _ => Priority::High,
                })
        })
        .collect()
}

/// Thresholds scaled down so a 4-slot shard saturates the ladder: four
/// resident sessions score 1.0 ≥ enter[2], and the race-window queue
/// pressure (≤ 16/128 = 0.125) stays below enter[0].
fn aggressive_overload() -> OverloadConfig {
    OverloadConfig {
        enter: [0.2, 0.4, 0.6],
        exit: [0.1, 0.25, 0.45],
        dwell_up: 1,
        dwell_down: 2,
        ..Default::default()
    }
}

fn storm_cfg(overload: Option<OverloadConfig>, faults: Option<FaultPlan>) -> ServeConfig {
    ServeConfig {
        shards: 1,
        max_active_per_shard: 4,
        queue_capacity: 128,
        assignment: ShardAssignment::RoundRobin,
        session: session_cfg(),
        overload,
        faults,
        ..Default::default()
    }
}

#[test]
fn storm_degrades_and_defers_but_high_priority_stays_clean() {
    let requests = storm_requests();
    assert!(requests.iter().any(|r| r.priority == Priority::Low), "trace must carry Low traffic");
    assert!(requests.iter().any(|r| r.priority == Priority::High), "trace must carry High traffic");

    let on = run_with_watchdog(storm_cfg(Some(aggressive_overload()), None), requests);
    let off = run_with_watchdog(storm_cfg(None, None), storm_requests());
    assert_eq!(on.completions.len(), STORM_SESSIONS, "every request reports exactly once");
    assert_eq!(off.completions.len(), STORM_SESSIONS);

    // The storm actually pressured the shard and the controller actually
    // acted: effort-reduced tokens were produced, and Low admissions were
    // deferred (Saturated) and/or shed (Critical).
    assert!(on.overload.pressured_ticks() > 0, "storm never left Nominal");
    assert!(on.overload.degraded_tokens > 0, "no token decoded under reduced effort");
    assert!(
        on.overload.deferrals + on.overload.sheds > 0,
        "no Low admission was deferred or shed"
    );
    assert!(on.total_degraded_steps() > 0, "degraded decode ticks must be metered");
    assert!(
        on.completions
            .iter()
            .any(|c| c.priority != Priority::High && c.max_degrade_level > PressureLevel::Nominal),
        "no completion records its degradation high-water mark"
    );

    // Per-class latency breakdown: each class's TTFT-tick sample count
    // matches its completions that produced a first token.
    for p in [Priority::Low, Priority::Normal, Priority::High] {
        let produced =
            on.completions.iter().filter(|c| c.priority == p && c.ttft_ticks.is_some()).count();
        assert_eq!(
            on.latency_for(p).ttft_ticks.count,
            produced,
            "{p:?} class latency breakdown out of sync"
        );
    }

    // High priority is the protected class: full effort always, never
    // deferred or shed, output bit-identical to the controller-off run.
    let off_map = by_id(&off);
    for c in on.completions.iter().filter(|c| c.priority == Priority::High) {
        assert_eq!(c.max_degrade_level, PressureLevel::Nominal, "High request {} degraded", c.id);
        assert!(c.failure.is_none(), "High request {} failed: {:?}", c.id, c.failure);
        assert_eq!(
            c.generated, off_map[&c.id].generated,
            "High request {} diverged under brownout",
            c.id
        );
    }
}

#[test]
fn chaos_overload_storm_replays_identically() {
    // A storm with a mid-decode panic and an injected admission reject on
    // top of brownout control: every controller decision (ladder steps,
    // effort, deferral jitter, Critical sheds) lives on the tick clock, so
    // two runs must agree bit for bit — including the metering.
    let plan = FaultPlan::seeded(0xFA11).with_session_panic(5, 2).with_admission_rejects(9, 1);
    let run = || {
        run_with_watchdog(storm_cfg(Some(aggressive_overload()), Some(plan.clone())), storm_requests())
    };
    let a = run();
    let b = run();

    assert_eq!(a.overload, b.overload, "controller metering diverged across replays");
    assert_eq!(a.completions.len(), b.completions.len());
    let bm = by_id(&b);
    for ca in &a.completions {
        let cb = bm[&ca.id];
        assert_eq!(ca.generated, cb.generated, "request {} tokens diverged", ca.id);
        assert_eq!(ca.retries, cb.retries, "request {} retries diverged", ca.id);
        assert_eq!(ca.ttft_ticks, cb.ttft_ticks, "request {} TTFT ticks diverged", ca.id);
        assert_eq!(ca.preemptions, cb.preemptions, "request {} preemptions diverged", ca.id);
        assert_eq!(
            ca.max_degrade_level, cb.max_degrade_level,
            "request {} degradation mark diverged",
            ca.id
        );
        assert_eq!(
            ca.failure.as_ref().map(|f| f.error.to_string()),
            cb.failure.as_ref().map(|f| f.error.to_string()),
            "request {} failure diverged",
            ca.id
        );
    }
    // The shard-level brownout counters replay too.
    let levels = |r: &ServeReport| r.shards.iter().map(|s| s.level_ticks).collect::<Vec<_>>();
    assert_eq!(levels(&a), levels(&b));
    assert_eq!(a.total_degraded_steps(), b.total_degraded_steps());
}

// ---------------------------------------------------------------------------
// Satellite: degraded_steps counts exactly the pressured decode ticks
// ---------------------------------------------------------------------------

#[test]
fn degraded_steps_count_exactly_the_pressured_decode_ticks() {
    // One Normal session on a 4-slot shard scores slot pressure 0.25:
    // with enter[0] = 0.2 and dwell_up = 1 the ladder steps to Elevated on
    // the session's very first resident tick and can never reach
    // Saturated (enter[1] = 0.98) or step back down (exit[0] = 0.1 <
    // 0.25). Every one of the 12 decode ticks therefore runs under
    // Elevated — `degraded_steps` must count exactly those, and
    // `degraded_tokens` must match because the session is degradable.
    const STEPS: usize = 12;
    let mut rng = Rng64::new(0x2323);
    let toks: Vec<u32> = (0..72).map(|_| rng.below(200) as u32).collect();
    let requests =
        vec![ServeRequest::new(0, toks, STEPS, Box::new(PqCachePolicy::default()))];
    let cfg = ServeConfig {
        shards: 1,
        max_active_per_shard: 4,
        queue_capacity: 16,
        session: session_cfg(),
        overload: Some(OverloadConfig {
            enter: [0.2, 0.98, 0.99],
            exit: [0.1, 0.5, 0.6],
            dwell_up: 1,
            ..Default::default()
        }),
        ..Default::default()
    };
    let report = run_with_watchdog(cfg, requests);

    assert_eq!(report.completions.len(), 1);
    let c = &report.completions[0];
    assert!(c.failure.is_none());
    assert_eq!(c.generated.len(), STEPS);
    assert_eq!(c.max_degrade_level, PressureLevel::Elevated);

    let s = &report.shards[0];
    assert_eq!(s.degraded_steps, STEPS as u64, "degraded_steps must equal the Elevated decode ticks");
    assert_eq!(report.overload.degraded_tokens, STEPS as u64);
    assert_eq!(s.level_ticks[PressureLevel::Elevated.index()], STEPS as u64);
    assert_eq!(
        s.level_ticks.iter().sum::<u64>(),
        s.ticks,
        "every observed tick must be attributed to exactly one rung"
    );
    assert_eq!(s.stalled_steps, 0, "no stall was injected");
}

// ---------------------------------------------------------------------------
// Satellite: config cross-validation
// ---------------------------------------------------------------------------

#[test]
fn probe_floor_wider_than_the_session_probe_width_is_rejected() {
    // A min_n_probe floor the session's Probe width can never honour is a
    // construction-time error, not a silent clamp. The effort ladder is
    // kept self-consistent (caps ≥ floor) so validation reaches the
    // cross-check.
    let wide_floor = OverloadConfig {
        effort: [
            SelectionEffort { k_frac: 0.5, max_n_probe: Some(8) },
            SelectionEffort { k_frac: 0.25, max_n_probe: Some(8) },
            SelectionEffort { k_frac: 0.15, max_n_probe: Some(8) },
        ],
        min_n_probe: 8,
        ..Default::default()
    };
    let cfg = ServeConfig {
        session: SessionConfig { ivf: IvfMode::Probe(4), ..session_cfg() },
        overload: Some(wide_floor.clone()),
        ..Default::default()
    };
    assert_eq!(cfg.validate().unwrap_err().field, "overload.min_n_probe");

    // The same overload config over an Exact session (no probe width to
    // violate) passes.
    let ok = ServeConfig { session: session_cfg(), overload: Some(wide_floor), ..Default::default() };
    ok.validate().expect("floor without a probe width is fine");
}

// ---------------------------------------------------------------------------
// 4. Recall floor under degradation
// ---------------------------------------------------------------------------

struct RecallFixture {
    keys: Matrix,
    book: PqCodebook,
    codes: PqCodes,
    ivf: IvfIndex,
}

/// Nominal operating point the efforts degrade from.
const NOMINAL_K: usize = 64;
const NOMINAL_PROBE: usize = 8;
const N_LIST: usize = 16;

fn recall_fixture() -> &'static RecallFixture {
    static FIX: OnceLock<RecallFixture> = OnceLock::new();
    FIX.get_or_init(|| {
        // Clustered keys: the regime where IVF recall is meaningful (the
        // same generator as the ivf_equivalence floor), sized so the
        // proptest sweep stays fast.
        let s = 4096;
        let keys = Matrix::clustered(s, 32, 16, 0.35, &mut Rng64::new(0xB01));
        let (book, codes) =
            PqCodebook::train(&keys, PqConfig { m: 2, b: 6, max_iters: 8, seed: 0xB01 });
        let ivf = IvfIndex::build(
            &keys,
            &codes,
            IvfConfig { n_list: N_LIST, n_probe: NOMINAL_PROBE, max_iters: 8, seed: 0xB02 },
        );
        RecallFixture { keys, book, codes, ivf }
    })
}

/// Mean recall@k′ of the degraded routed selection against the exact flat
/// selection at the same k′, over token-aligned decode-style queries.
fn degraded_recall(effort: SelectionEffort) -> f64 {
    let fix = recall_fixture();
    let s = fix.codes.len();
    let k = effort.effective_k(NOMINAL_K);
    let n_probe = effort.effective_n_probe(NOMINAL_PROBE);
    let mut retriever = PqRetriever::new();
    let mut rng = Rng64::new(0xB03);
    let trials = 8;
    let mut sum = 0.0;
    for _ in 0..trials {
        let t = rng.below(s);
        let q: Vec<f32> =
            fix.keys.row(t).iter().map(|v| v + 0.25 * rng.normal_f32(0.0, 1.0)).collect();
        let mut exact = Vec::new();
        let _ = retriever.score_and_select_into(&fix.book, &fix.codes, &q, s, k, &mut exact);
        let mut routed = Vec::new();
        let _ = retriever
            .score_and_select_ivf_into(&fix.book, &fix.ivf, &q, s, k, n_probe, &mut routed);
        sum += topk_recall(&exact, &routed);
    }
    sum / trials as f64
}

#[test]
fn default_effort_ladder_meets_the_configured_recall_floor() {
    let cfg = OverloadConfig::default();
    for (i, effort) in cfg.effort.iter().enumerate() {
        let recall = degraded_recall(*effort);
        assert!(
            recall >= cfg.recall_floor,
            "rung {i} ({effort:?}) recall {recall:.3} below the configured floor {}",
            cfg.recall_floor
        );
    }
    // Maximum degradation explicitly: the bottom rung is the contract the
    // brownout sells ("degraded, but never below this").
    let floor_rung = cfg.effort[2];
    assert!(degraded_recall(floor_rung) >= cfg.recall_floor);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any effort inside the validated envelope (k_frac ≥ the default
    /// min_k_frac band actually used by the ladder, probe cap ≥
    /// min_n_probe) keeps recall at or above the configured floor — the
    /// floor holds across the whole effort plane, not just the three
    /// shipped rungs.
    #[test]
    fn any_valid_effort_meets_the_recall_floor(
        k_pct in 15u32..=100,
        cap in 4u32..=16,
    ) {
        let cfg = OverloadConfig::default();
        let effort =
            SelectionEffort { k_frac: f64::from(k_pct) / 100.0, max_n_probe: Some(cap as usize) };
        let recall = degraded_recall(effort);
        prop_assert!(
            recall >= cfg.recall_floor,
            "effort {:?} recall {:.3} below floor {}", effort, recall, cfg.recall_floor
        );
    }
}

#[test]
fn degraded_session_selection_is_an_exact_subset_of_full_effort() {
    // Under reduced k_frac the policy ranks the same ADC scores and takes
    // a shorter prefix, so on the first decode step (before outputs
    // diverge) the degraded selection must be a strict subset of the
    // full-effort one, per (layer, head).
    let model = Model::new(LlmConfig::tiny());
    let mut rng = Rng64::new(0x5E7);
    let toks: Vec<u32> = (0..88).map(|_| rng.below(200) as u32).collect();
    let run = |effort: Option<SelectionEffort>| {
        let policy = PqCachePolicy::new(PqCachePolicyConfig {
            m: 2,
            b: 6,
            kmeans_iters: 10,
            seed: 77,
            ..Default::default()
        });
        let start = SelectiveSession::start(&model, Box::new(policy), session_cfg(), &toks);
        let mut session = start.session;
        if let Some(e) = effort {
            session.set_effort(e);
        }
        let next = pqcache::tensor::argmax(&start.logits) as u32;
        session.decode(next);
        session.selected_snapshot()
    };
    let full = run(None);
    let degraded = run(Some(SelectionEffort { k_frac: 0.15, max_n_probe: None }));
    assert_eq!(full.len(), degraded.len());
    let mut strictly_smaller = false;
    for (l, (fl, dl)) in full.iter().zip(degraded.iter()).enumerate() {
        for (h, (fh, dh)) in fl.iter().zip(dl.iter()).enumerate() {
            let full_set: HashSet<usize> = fh.iter().copied().collect();
            assert!(
                dh.iter().all(|t| full_set.contains(t)),
                "layer {l} head {h}: degraded selection escapes the full-effort set"
            );
            if dh.len() < fh.len() {
                strictly_smaller = true;
            }
        }
    }
    assert!(strictly_smaller, "a 0.15 budget must actually shrink some selection");
}
