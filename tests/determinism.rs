//! Regression guard for bit-level determinism: two selective sessions built
//! from the same `SessionConfig` and prompt must produce identical first-token
//! logits and identical generated token streams. Every future perf refactor
//! (threading, batching, kernel rewrites) must keep this green.

use pqcache::core::{CacheConfig, SelectiveSession, SessionConfig};
use pqcache::llm::{LlmConfig, Model};
use pqcache::tensor::Rng64;
use pqcache::workloads::MethodSpec;

fn session_cfg() -> SessionConfig {
    SessionConfig {
        n_init: 2,
        n_local: 8,
        token_ratio: 0.25,
        comm_fraction: 1.0 / 16.0,
        obs_window: 8,
        cache: CacheConfig { capacity_tokens: 64, block_size: 8, lfu: true, k_cache_blocks: 4 },
        ivf: pqcache::core::IvfMode::Exact,
    }
}

fn prompt(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = Rng64::new(seed);
    (0..n).map(|_| rng.below(200) as u32).collect()
}

/// One full run from a fresh model: prefill, then `steps` greedy decode steps.
/// Returns the prefill logits and the generated stream.
fn run(spec: MethodSpec, toks: &[u32], steps: usize) -> (Vec<f32>, Vec<u32>) {
    let model = Model::new(LlmConfig::tiny());
    let cfg = session_cfg();
    let policy = spec.build(model.config().head_dim, cfg.comm_fraction);
    let start = SelectiveSession::start(&model, policy, cfg, toks);
    let mut session = start.session;
    let generated = session.generate(&start.logits, steps);
    (start.logits, generated)
}

#[test]
fn same_config_same_prompt_identical_streams() {
    let toks = prompt(96, 42);
    for spec in [MethodSpec::pqcache_default(), MethodSpec::Full, MethodSpec::SnapKv] {
        let (logits_a, stream_a) = run(spec, &toks, 16);
        let (logits_b, stream_b) = run(spec, &toks, 16);
        assert_eq!(logits_a, logits_b, "{}: prefill logits diverged", spec.name());
        assert_eq!(stream_a, stream_b, "{}: token streams diverged", spec.name());
    }
}

#[test]
fn parallel_codebook_training_is_deterministic() {
    // `PqCodebook::train` switches to scoped worker threads for long
    // prompts; the per-sub-space seeds must make that path reproducible too.
    let toks = prompt(1100, 7);
    let (logits_a, stream_a) = run(MethodSpec::pqcache_default(), &toks, 6);
    let (logits_b, stream_b) = run(MethodSpec::pqcache_default(), &toks, 6);
    assert_eq!(logits_a, logits_b, "prefill logits diverged on threaded PQ path");
    assert_eq!(stream_a, stream_b, "token streams diverged on threaded PQ path");
}
