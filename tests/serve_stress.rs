//! Serve-engine concurrency stress: churn, back-pressure, liveness.
//!
//! 64 short sessions stream through 4 worker threads with deliberately
//! tight knobs: a small admission queue (back-pressure engages), few
//! session slots per shard (sessions finish and new ones are admitted
//! mid-run — churn), a squeezed global cache budget (cross-session cache
//! pressure), and mixed decode lengths from the Poisson trace generator.
//!
//! Asserted: the run finishes within a wall-clock bound (no deadlock
//! between queue, budget, and workers), the queue never exceeds its bound,
//! and every admitted request completes with exactly the requested token
//! count.

use pqcache::core::{CacheConfig, SessionConfig};
use pqcache::llm::{LlmConfig, Model};
use pqcache::memhier::TransferStats;
use pqcache::policies::PqCachePolicy;
use pqcache::serve::{ServeConfig, ServeEngine, ServeReport, ServeRequest};
use pqcache::workloads::{multi_tenant_trace, TraceConfig, VocabLayout};
use std::sync::mpsc;
use std::time::Duration;

const SESSIONS: usize = 64;
const SHARDS: usize = 4;
/// Generous liveness bound — the run takes a few seconds; a deadlock hangs
/// forever. Loose enough for slow shared CI runners.
const WALL_LIMIT: Duration = Duration::from_secs(240);

fn session_cfg() -> SessionConfig {
    SessionConfig {
        n_init: 2,
        n_local: 8,
        token_ratio: 0.25,
        comm_fraction: 1.0 / 16.0,
        obs_window: 8,
        cache: CacheConfig { capacity_tokens: 64, block_size: 8, lfu: true, k_cache_blocks: 4 },
        ivf: pqcache::core::IvfMode::Exact,
    }
}

/// The one stress trace (deterministic): both the served requests and the
/// expected token counts derive from this, so they cannot drift apart.
fn stress_trace() -> pqcache::workloads::TenantTrace {
    multi_tenant_trace(&TraceConfig {
        sessions: SESSIONS,
        arrival_rate: 1.5,
        prompt_lens: [64, 80, 96],
        prompt_mix: [0.6, 0.3, 0.1],
        decode_steps: (2, 12),
        layout: VocabLayout::for_vocab(256),
        seed: 0x57E5,
        ..Default::default()
    })
}

fn stress_requests() -> Vec<ServeRequest> {
    stress_trace()
        .requests
        .into_iter()
        .map(|r| {
            ServeRequest::new(
                r.id,
                r.workload.tokens,
                r.decode_steps,
                Box::new(PqCachePolicy::default()),
            )
        })
        .collect()
}

fn expected_steps() -> Vec<usize> {
    stress_trace().requests.iter().map(|r| r.decode_steps).collect()
}

/// Run the engine on a watchdog thread; a deadlock fails the test at the
/// wall-clock bound instead of hanging CI forever.
fn run_with_watchdog(cfg: ServeConfig, requests: Vec<ServeRequest>) -> ServeReport {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let model = Model::new(LlmConfig::tiny());
        let report = ServeEngine::run(&model, &cfg, requests).expect("valid config");
        let _ = tx.send(report);
    });
    match rx.recv_timeout(WALL_LIMIT) {
        Ok(report) => report,
        Err(_) => panic!("serve engine did not finish within {WALL_LIMIT:?}: deadlock or livelock"),
    }
}

#[test]
fn churn_under_four_workers_completes_everything() {
    let cfg = ServeConfig {
        shards: SHARDS,
        // 2 slots/shard over 64 requests: ~8 admission waves per shard.
        max_active_per_shard: 2,
        // Tight queue: the producer is throttled most of the run.
        queue_capacity: 6,
        session: session_cfg(),
        // Squeeze the global cache to half the peak fleet's appetite so
        // shards contend for budget while sessions churn.
        cache_budget_sessions: Some(SHARDS),
        ..Default::default()
    };
    let report = run_with_watchdog(cfg, stress_requests());

    // Liveness: bounded wall-clock (watchdog) and all work retired.
    assert!(report.wall < WALL_LIMIT);
    assert_eq!(report.completions.len(), SESSIONS, "requests lost");

    // The queue honoured its bound.
    assert!(
        report.queue_high_water <= 6,
        "queue exceeded its bound: {}",
        report.queue_high_water
    );

    // Every admitted request produced exactly the requested token count.
    let expected = expected_steps();
    for c in &report.completions {
        assert_eq!(
            c.generated.len(),
            expected[c.id as usize],
            "request {} wrong token count",
            c.id
        );
        assert!(c.shard < SHARDS);
        assert!(c.transfer.d2h_bytes > 0, "request {} never offloaded", c.id);
    }

    // Churn actually happened: every shard admitted several waves.
    let total_admitted: u64 = report.shards.iter().map(|s| s.admitted).sum();
    assert_eq!(total_admitted, SESSIONS as u64);
    for (i, s) in report.shards.iter().enumerate() {
        assert!(s.admitted > 2, "shard {i} admitted only {} sessions — no churn", s.admitted);
        assert!(s.ticks > 0);
    }

    // Aggregate accounting holds under churn too.
    let sum: TransferStats = report.completions.iter().map(|c| c.transfer).sum();
    assert_eq!(report.aggregate_transfer, sum);
}

#[test]
fn stress_results_are_scheduling_independent() {
    // Two runs with different shard counts and queue pressure must produce
    // the same tokens for every request (the equivalence property, held
    // under full stress rather than fixture fixtures).
    let mk = |shards: usize, queue: usize| {
        let cfg = ServeConfig {
            shards,
            max_active_per_shard: 2,
            queue_capacity: queue,
            session: session_cfg(),
            cache_budget_sessions: Some(shards),
            ..Default::default()
        };
        run_with_watchdog(cfg, stress_requests())
    };
    let a = mk(SHARDS, 6);
    let b = mk(2, 3);
    assert_eq!(a.completions.len(), b.completions.len());
    for (ca, cb) in a.completions.iter().zip(b.completions.iter()) {
        assert_eq!(ca.id, cb.id);
        assert_eq!(ca.generated, cb.generated, "request {} diverged across schedules", ca.id);
        // The offload stream (prefill + one eviction per step) is a pure
        // function of the session, so it must agree across schedules. The
        // fetch side may not: these two runs contend for *differently
        // sized* cache budgets, so hit patterns — and therefore metered
        // H2D bytes, but never logits — legitimately differ.
        assert_eq!(ca.transfer.d2h_bytes, cb.transfer.d2h_bytes);
        assert_eq!(ca.transfer.d2h_ops, cb.transfer.d2h_ops);
    }
}
