//! Serve-vs-sequential equivalence battery.
//!
//! The serve engine's contract: **scheduling must never change results**.
//! A token decoded under continuous batching — sessions interleaved on a
//! shard, scratch shared across sessions, stores namespaced in one KvTier,
//! caches drawing on one budget — must be bit-identical to the same
//! session run alone through `SelectiveSession::decode`.
//!
//! Fixed-seed sessions run through `ServeEngine` at 1, 2, and 4 shards and
//! sequentially; every step's logits and selected-token sets are compared
//! exactly, and the tier aggregate must equal the sum of per-session
//! stats.

use pqcache::core::{CacheConfig, SelectiveSession, SessionConfig};
use pqcache::llm::{LlmConfig, Model};
use pqcache::memhier::TransferStats;
use pqcache::policies::{PqCachePolicy, SelectionPolicy, StreamingLlmPolicy};
use pqcache::serve::{Completion, ServeConfig, ServeEngine, ServeRequest};
use pqcache::tensor::{argmax, Rng64};

const N_SESSIONS: usize = 6;
const DECODE_STEPS: usize = 8;

fn session_cfg() -> SessionConfig {
    SessionConfig {
        n_init: 2,
        n_local: 8,
        token_ratio: 0.25,
        comm_fraction: 1.0 / 16.0,
        obs_window: 8,
        cache: CacheConfig { capacity_tokens: 64, block_size: 8, lfu: true, k_cache_blocks: 4 },
        ivf: pqcache::core::IvfMode::Exact,
    }
}

fn prompt(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = Rng64::new(seed);
    (0..n).map(|_| rng.below(200) as u32).collect()
}

fn fixture_prompts() -> Vec<Vec<u32>> {
    // Mixed lengths so sessions evict at different rates (more interleaving
    // stress than a uniform fleet).
    (0..N_SESSIONS).map(|i| prompt(48 + 16 * (i % 3), 0xF1 + i as u64)).collect()
}

fn make_policy(i: usize) -> Box<dyn SelectionPolicy + Send> {
    // Mix retrieval and dropping policies across the fleet.
    if i % 3 == 2 {
        Box::new(StreamingLlmPolicy)
    } else {
        Box::new(PqCachePolicy::default())
    }
}

/// Per-step reference trajectory of one session under the sequential engine.
struct SequentialRun {
    generated: Vec<u32>,
    logits: Vec<Vec<f32>>,
    selected: Vec<Vec<Vec<Vec<usize>>>>,
    transfer: TransferStats,
}

fn sequential_reference(model: &Model) -> Vec<SequentialRun> {
    fixture_prompts()
        .iter()
        .enumerate()
        .map(|(i, toks)| {
            let start = SelectiveSession::start(model, make_policy(i), session_cfg(), toks);
            let mut session = start.session;
            let mut next = argmax(&start.logits) as u32;
            let mut generated = Vec::new();
            let mut logits = Vec::new();
            let mut selected = Vec::new();
            for _ in 0..DECODE_STEPS {
                generated.push(next);
                let dec = session.decode(next);
                logits.push(dec.logits.clone());
                selected.push(session.selected_snapshot());
                next = dec.greedy();
            }
            SequentialRun { generated, logits, selected, transfer: session.transfer_stats() }
        })
        .collect()
}

fn serve_fleet(model: &Model, shards: usize) -> Vec<Completion> {
    let cfg = ServeConfig {
        shards,
        max_active_per_shard: N_SESSIONS.div_ceil(shards),
        queue_capacity: 4,
        session: session_cfg(),
        record_trace: true,
        ..Default::default()
    };
    let requests: Vec<ServeRequest> = fixture_prompts()
        .into_iter()
        .enumerate()
        .map(|(i, tokens)| ServeRequest::new(i as u64, tokens, DECODE_STEPS, make_policy(i)))
        .collect();
    let report = ServeEngine::run(model, &cfg, requests).expect("valid config");
    assert_eq!(report.completions.len(), N_SESSIONS);

    // Aggregate accounting: the tier-wide meter must equal the sum of
    // per-session (per-namespace) stats — nothing double- or un-counted.
    let sum: TransferStats = report.completions.iter().map(|c| c.transfer).sum();
    assert_eq!(report.aggregate_transfer, sum, "{shards}-shard aggregate mismatch");
    report.completions
}

fn assert_bit_identical(reference: &[SequentialRun], completions: &[Completion], shards: usize) {
    for (i, (seq, com)) in reference.iter().zip(completions.iter()).enumerate() {
        assert_eq!(com.id, i as u64);
        assert_eq!(seq.generated, com.generated, "session {i} tokens under {shards} shards");
        assert_eq!(com.trace.len(), DECODE_STEPS);
        for (step, tr) in com.trace.iter().enumerate() {
            assert_eq!(
                seq.logits[step], tr.logits,
                "session {i} step {step} logits diverged under {shards} shards"
            );
            assert_eq!(
                seq.selected[step], tr.selected,
                "session {i} step {step} selected sets diverged under {shards} shards"
            );
        }
        assert_eq!(seq.transfer, com.transfer, "session {i} transfer stats under {shards} shards");
    }
}

#[test]
fn serve_matches_sequential_one_shard() {
    let model = Model::new(LlmConfig::tiny());
    let reference = sequential_reference(&model);
    assert_bit_identical(&reference, &serve_fleet(&model, 1), 1);
}

#[test]
fn serve_matches_sequential_two_shards() {
    let model = Model::new(LlmConfig::tiny());
    let reference = sequential_reference(&model);
    assert_bit_identical(&reference, &serve_fleet(&model, 2), 2);
}

#[test]
fn serve_matches_sequential_four_shards() {
    let model = Model::new(LlmConfig::tiny());
    let reference = sequential_reference(&model);
    assert_bit_identical(&reference, &serve_fleet(&model, 4), 4);
}

#[test]
fn shard_count_does_not_change_stats() {
    // Transfer stats are per-session deterministic, so they must agree
    // *across* shard counts too, not just with the sequential engine.
    let model = Model::new(LlmConfig::tiny());
    let one = serve_fleet(&model, 1);
    let four = serve_fleet(&model, 4);
    for (a, b) in one.iter().zip(four.iter()) {
        assert_eq!(a.transfer, b.transfer);
        assert_eq!(a.cache.token_lookups, b.cache.token_lookups);
        assert_eq!(a.cache.token_hits, b.cache.token_hits);
    }
}
