//! Cross-policy smoke test: every `MethodSpec` variant — full attention, the
//! dropping/retrieval baselines, and PQCache — must survive one short decode
//! with well-formed, finite logits and in-vocabulary tokens.

use pqcache::core::{CacheConfig, SelectiveSession, SessionConfig};
use pqcache::llm::{LlmConfig, Model};
use pqcache::tensor::Rng64;
use pqcache::workloads::MethodSpec;

/// Every variant of [`MethodSpec`]. The match below is checked exhaustively
/// by the compiler, so adding a variant without extending this smoke test is
/// a compile error.
fn all_variants() -> Vec<MethodSpec> {
    let witness = |spec: &MethodSpec| match spec {
        MethodSpec::Full
        | MethodSpec::Oracle
        | MethodSpec::StreamingLlm
        | MethodSpec::H2o
        | MethodSpec::SnapKv
        | MethodSpec::PyramidKv
        | MethodSpec::Sparq
        | MethodSpec::InfLlm
        | MethodSpec::PqCache { .. }
        | MethodSpec::PqCacheIvf { .. } => (),
    };
    let variants = vec![
        MethodSpec::Full,
        MethodSpec::Oracle,
        MethodSpec::StreamingLlm,
        MethodSpec::H2o,
        MethodSpec::SnapKv,
        MethodSpec::PyramidKv,
        MethodSpec::Sparq,
        MethodSpec::InfLlm,
        MethodSpec::pqcache_default(),
        MethodSpec::PqCache { m: 4, b: 3, iters: 6 },
        MethodSpec::pqcache_ivf_default(),
        MethodSpec::PqCacheIvf { m: 2, b: 4, iters: 6, n_list: 4, n_probe: 1 },
    ];
    variants.iter().for_each(witness);
    variants
}

#[test]
fn every_variant_survives_a_short_decode() {
    let model = Model::new(LlmConfig::tiny());
    let vocab = model.config().vocab_size;
    let mut rng = Rng64::new(3);
    let toks: Vec<u32> = (0..80).map(|_| rng.below(200) as u32).collect();
    let steps = 5;

    for spec in all_variants() {
        let cfg = SessionConfig {
            n_init: 2,
            n_local: 8,
            token_ratio: 0.25,
            comm_fraction: 1.0 / 16.0,
            obs_window: 8,
            cache: CacheConfig { capacity_tokens: 64, block_size: 8, lfu: true, k_cache_blocks: 4 },
            ivf: pqcache::core::IvfMode::Exact,
        };
        let policy = spec.build(model.config().head_dim, cfg.comm_fraction);
        let start = SelectiveSession::start(&model, policy, cfg, &toks);

        assert_eq!(start.logits.len(), vocab, "{}: logits shape", spec.name());
        assert!(
            start.logits.iter().all(|l| l.is_finite()),
            "{}: non-finite prefill logits",
            spec.name()
        );

        let mut session = start.session;
        let out = session.generate(&start.logits, steps);
        assert_eq!(out.len(), steps, "{}: output length", spec.name());
        assert!(
            out.iter().all(|&t| (t as usize) < vocab),
            "{}: token out of vocabulary: {out:?}",
            spec.name()
        );
    }
}
