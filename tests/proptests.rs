//! Property-based tests over the core data structures and invariants listed
//! in DESIGN.md §6.

#![allow(clippy::needless_range_loop)] // index loops mirror the math

use proptest::prelude::*;
use pqcache::cache::{top_blocks, BlockCache, CacheBudget, EvictionPolicy};
use pqcache::llm::{attend_selected, causal_attention, PrefillPattern};
use pqcache::pq::{
    kmeans, AdcTable, IvfConfig, IvfIndex, KMeansConfig, PqCodebook, PqConfig, PqRetriever,
};
use pqcache::tensor::{
    argsort_desc, dot, softmax_inplace, squared_l2, top_k_indices, AssignScratch, Matrix, Rng64,
    StreamingSoftmax,
};

fn matrix_strategy(max_rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_rows).prop_flat_map(move |rows| {
        proptest::collection::vec(-3.0f32..3.0, rows * cols)
            .prop_map(move |data| Matrix::from_vec(rows, cols, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn softmax_is_distribution(xs in proptest::collection::vec(-30.0f32..30.0, 1..64)) {
        let mut v = xs.clone();
        softmax_inplace(&mut v);
        let sum: f32 = v.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(v.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
    }

    #[test]
    fn streaming_softmax_equals_naive(
        scores in proptest::collection::vec(-20.0f32..20.0, 1..32),
        dim in 1usize..6,
    ) {
        let mut rng = Rng64::new(1);
        let values: Vec<Vec<f32>> = (0..scores.len())
            .map(|_| (0..dim).map(|_| rng.normal_f32(0.0, 1.0)).collect())
            .collect();
        let mut naive_w = scores.clone();
        softmax_inplace(&mut naive_w);
        let mut naive = vec![0.0f32; dim];
        for (w, v) in naive_w.iter().zip(values.iter()) {
            for (o, x) in naive.iter_mut().zip(v.iter()) {
                *o += w * x;
            }
        }
        let mut st = StreamingSoftmax::new(dim);
        for (s, v) in scores.iter().zip(values.iter()) {
            st.push(*s, v);
        }
        let got = st.finish();
        for (a, b) in naive.iter().zip(got.iter()) {
            prop_assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn topk_is_argsort_prefix(
        scores in proptest::collection::vec(-100.0f32..100.0, 0..128),
        k in 0usize..64,
    ) {
        let fast = top_k_indices(&scores, k);
        let slow: Vec<usize> = argsort_desc(&scores).into_iter().take(k).collect();
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn topk_exact_under_duplicates_nans_and_degenerate_k(
        // Scores drawn from a tiny value set (massive tie plateaus) with
        // NaNs mixed in, at sizes spanning both selector paths (full
        // quickselect below SMALL_N, sample-threshold above), and k from 0
        // through >= n: the O(n) selector must reproduce the argsort
        // reference exactly — same index set, same order.
        picks in proptest::collection::vec(0usize..5, 1..2600),
        k_frac in 0u8..=8,
    ) {
        let vals = [-1.0f32, 0.0, 0.5, 2.0, f32::NAN];
        let scores: Vec<f32> = picks.iter().map(|&i| vals[i]).collect();
        let n = scores.len();
        // k sweeps 0, n/8, 2n/8, ..., 7n/8, and an oversized k > n.
        let k = if k_frac == 8 { n + 3 } else { (n * k_frac as usize) / 8 };
        let fast = top_k_indices(&scores, k);
        let slow: Vec<usize> = argsort_desc(&scores).into_iter().take(k).collect();
        prop_assert_eq!(fast, slow, "n={}, k={}", n, k);
    }

    #[test]
    fn streamed_selection_equals_batch(
        // The streaming candidate-buffer path (compaction thresholds,
        // block offers) must agree with the batch selector on arbitrary
        // block splits of the same score stream.
        picks in proptest::collection::vec(0usize..6, 1..800),
        k in 0usize..96,
        block in 1usize..130,
    ) {
        let vals = [-3.0f32, -0.5, 0.0, 1.0, 7.5, f32::NAN];
        let scores: Vec<f32> = picks.iter().map(|&i| vals[i]).collect();
        let mut topk = pqcache::tensor::TopK::new();
        topk.stream_begin(k.min(scores.len()));
        for chunk_start in (0..scores.len()).step_by(block) {
            let chunk_end = (chunk_start + block).min(scores.len());
            topk.stream_offer_block(&scores[chunk_start..chunk_end], chunk_start);
        }
        let mut streamed = Vec::new();
        topk.stream_finish_into(&mut streamed);
        prop_assert_eq!(streamed, top_k_indices(&scores, k));
    }

    #[test]
    fn ivf_full_probe_selection_equals_flat(
        // IvfMode::Probe(n_list) ≡ Exact as a *property*: arbitrary key
        // sets, arbitrary coarse-cell counts, arbitrary (n, k) shapes —
        // the routed fused scan must reproduce the flat fused scan's
        // selection exactly (cells partition the tokens; per-cell scans
        // preserve the accumulation order).
        keys in matrix_strategy(260, 8),
        n_list in 1usize..9,
        k in 0usize..48,
        seed in 0u64..64,
    ) {
        let (book, codes) =
            PqCodebook::train(&keys, PqConfig { m: 2, b: 3, max_iters: 3, seed });
        let ivf = IvfIndex::build(
            &keys,
            &codes,
            IvfConfig { n_list, n_probe: n_list, max_iters: 3, seed },
        );
        let mut rng = Rng64::new(seed ^ 0x1F5);
        let q: Vec<f32> = (0..8).map(|_| rng.normal_f32(0.0, 1.0)).collect();
        let mut retriever = PqRetriever::new();
        for n in [codes.len(), codes.len() / 2, 1] {
            let mut flat = Vec::new();
            let _ = retriever.score_and_select_into(&book, &codes, &q, n, k, &mut flat);
            let mut routed = Vec::new();
            let _ = retriever.score_and_select_ivf_into(
                &book, &ivf, &q, n, k, ivf.n_list(), &mut routed,
            );
            prop_assert_eq!(flat, routed, "n={}, k={}, n_list={}", n, k, n_list);
        }
    }

    #[test]
    fn kmeans_clusters_nonempty_and_inertia_finite(
        m in matrix_strategy(48, 4),
        k in 1usize..10,
        iters in 0usize..8,
    ) {
        let res = kmeans(&m, &KMeansConfig { k, max_iters: iters, tol: 0.0, seed: 3 });
        prop_assert!(res.inertia.is_finite() && res.inertia >= 0.0);
        prop_assert_eq!(res.assignments.len(), m.rows());
        let kk = res.centroids.rows();
        prop_assert!(kk <= k.max(1));
        for &a in &res.assignments {
            prop_assert!((a as usize) < kk);
        }
    }

    #[test]
    fn pq_adc_equals_dot_with_reconstruction(
        m in matrix_strategy(64, 8),
        q in proptest::collection::vec(-2.0f32..2.0, 8),
    ) {
        let (book, codes) = PqCodebook::train(&m, PqConfig { m: 2, b: 3, max_iters: 5, seed: 5 });
        let table = AdcTable::build(&book, &q);
        for i in 0..codes.len() {
            let approx = table.score_token(&codes.token(i));
            let rec = book.reconstruct(&codes.token(i));
            let exact = dot(&q, &rec);
            prop_assert!((approx - exact).abs() < 1e-3, "token {i}: {approx} vs {exact}");
        }
    }

    #[test]
    fn pq_codes_in_range(m in matrix_strategy(64, 8), b in 1u32..6) {
        let (_, codes) = PqCodebook::train(&m, PqConfig { m: 4, b, max_iters: 3, seed: 7 });
        for i in 0..codes.len() {
            for c in codes.token(i) {
                prop_assert!((c as usize) < (1usize << b));
            }
        }
    }

    #[test]
    fn soa_scan_equals_scalar_score_token(
        m in matrix_strategy(96, 8),
        q in proptest::collection::vec(-2.0f32..2.0, 8),
        subspaces in (0usize..3).prop_map(|i| [1usize, 2, 4][i]),
    ) {
        // Tentpole invariant: the fused SoA column scan must reproduce the
        // per-token scalar summation bit-for-bit (same f32 association).
        let (book, codes) =
            PqCodebook::train(&m, PqConfig { m: subspaces, b: 3, max_iters: 4, seed: 9 });
        let table = AdcTable::build(&book, &q);
        let fused = table.score_all(&codes);
        prop_assert_eq!(fused.len(), codes.len());
        for i in 0..codes.len() {
            let scalar = table.score_token(&codes.token(i));
            prop_assert_eq!(fused[i].to_bits(), scalar.to_bits(), "token {}", i);
        }
    }

    #[test]
    fn fused_adc_select_equals_unfused(
        keys in matrix_strategy(700, 8),
        q in proptest::collection::vec(-2.0f32..2.0, 8),
        k in 0usize..40,
    ) {
        // Tentpole invariant: the fused blocked score-and-select (threshold
        // pruning included — fixtures above CODE_BLOCK span several blocks)
        // must select exactly what the unfused scan + batch select selects.
        let (book, codes) =
            PqCodebook::train(&keys, PqConfig { m: 2, b: 3, max_iters: 3, seed: 5 });
        let mut retriever = PqRetriever::new();
        let mut unfused = Vec::new();
        let mut fused = Vec::new();
        retriever.top_k_prefix_into(&book, &codes, &q, codes.len(), k, &mut unfused);
        let _ = retriever.score_and_select_into(&book, &codes, &q, codes.len(), k, &mut fused);
        prop_assert_eq!(unfused, fused);
    }

    #[test]
    fn batched_assign_equals_naive_nearest_centroid(
        data in matrix_strategy(80, 8),
        k in 1usize..12,
    ) {
        let mut rng = Rng64::new(17);
        let centroids = Matrix::randn(k, 8, 1.0, &mut rng);
        let mut scratch = AssignScratch::new();
        let mut got = vec![0u32; data.rows()];
        let inertia = scratch.assign(&data, &centroids, &mut got);
        let mut naive_inertia = 0.0f64;
        for i in 0..data.rows() {
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for c in 0..k {
                let d = squared_l2(data.row(i), centroids.row(c));
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            naive_inertia += best_d as f64;
            // The batched argmin may only differ from the naive scan within
            // expansion rounding: the chosen centroid must be as close.
            let got_d = squared_l2(data.row(i), centroids.row(got[i] as usize));
            prop_assert!(
                got_d <= best_d + 1e-4,
                "row {}: batched {} (d={}) vs naive {} (d={})", i, got[i], got_d, best, best_d
            );
        }
        prop_assert!(
            (inertia - naive_inertia).abs() <= 1e-3 * naive_inertia.max(1.0),
            "inertia {} vs naive {}", inertia, naive_inertia
        );
    }

    #[test]
    fn cache_accounting_invariants(
        ops in proptest::collection::vec(
            (proptest::collection::vec(0usize..4096, 1..24), proptest::bool::ANY),
            1..40,
        ),
        cap_blocks in 0usize..12,
    ) {
        let mut cache = BlockCache::new(cap_blocks * 64, 64, EvictionPolicy::Lfu);
        for (tokens, do_update) in &ops {
            let r = cache.lookup(tokens);
            prop_assert_eq!(r.hits.len() + r.misses.len(), tokens.len());
            if *do_update {
                cache.update(&top_blocks(tokens, 64, 4));
            }
            prop_assert!(cache.len() <= cap_blocks);
        }
        let st = cache.stats();
        prop_assert_eq!(st.token_hits + st.token_misses, st.token_lookups);
    }

    #[test]
    fn shared_budget_invariants_under_interleaving(
        // Arbitrary interleaving of per-shard operations: (shard, tokens,
        // op) where op ∈ {lookup+update, update-only, churn (replace the
        // shard's cache — releases its slots like a finished session)}.
        ops in proptest::collection::vec(
            (0usize..4, proptest::collection::vec(0usize..4096, 1..16), 0u8..8),
            1..60,
        ),
        global_blocks in 1usize..10,
        local_blocks in 1usize..8,
    ) {
        let budget = CacheBudget::new(global_blocks);
        let mut shards: Vec<BlockCache> = (0..4)
            .map(|_| BlockCache::with_budget(local_blocks * 64, 64, EvictionPolicy::Lfu, budget.clone()))
            .collect();
        for (shard, tokens, op) in &ops {
            match op {
                0 => {
                    // Session churn on this shard: dropping the cache must
                    // release exactly its resident slots.
                    shards[*shard] =
                        BlockCache::with_budget(local_blocks * 64, 64, EvictionPolicy::Lfu, budget.clone());
                }
                1..=5 => {
                    let r = shards[*shard].lookup(tokens);
                    prop_assert_eq!(r.hits.len() + r.misses.len(), tokens.len());
                    shards[*shard].update(&top_blocks(tokens, 64, 4));
                }
                _ => shards[*shard].update(&top_blocks(tokens, 64, 2)),
            }
            // The two budget invariants, checked after *every* operation:
            // total residency never exceeds the global capacity, and the
            // per-shard accounting sums exactly to the global counter.
            let total: usize = shards.iter().map(BlockCache::len).sum();
            prop_assert!(total <= global_blocks, "residency {total} > budget {global_blocks}");
            prop_assert_eq!(budget.used_blocks(), total, "per-shard sum diverged from counter");
            for c in &shards {
                prop_assert!(c.len() <= local_blocks);
            }
        }
        drop(shards);
        prop_assert_eq!(budget.used_blocks(), 0, "slots leaked at shutdown");
    }

    #[test]
    fn attend_selected_is_convex_combination(
        keys in matrix_strategy(32, 8),
        q in proptest::collection::vec(-2.0f32..2.0, 8),
    ) {
        // The output of attention lies inside the convex hull of the values:
        // each coordinate is bounded by the min/max of the value column.
        let values = keys.clone();
        let out = attend_selected(&q, &keys, &values);
        for c in 0..8 {
            let lo = (0..values.rows()).map(|r| values.get(r, c)).fold(f32::INFINITY, f32::min);
            let hi = (0..values.rows()).map(|r| values.get(r, c)).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(out[c] >= lo - 1e-4 && out[c] <= hi + 1e-4);
        }
    }

    #[test]
    fn ashape_attention_equals_dense_when_window_covers(
        q in matrix_strategy(16, 4),
    ) {
        let s = q.rows();
        let k = q.clone();
        let v = q.clone();
        let dense = causal_attention(&q, &k, &v, PrefillPattern::Dense, None);
        let covered = causal_attention(
            &q, &k, &v,
            PrefillPattern::AShape { init: s, local: 1 },
            None,
        );
        prop_assert!(dense.max_abs_diff(&covered) < 1e-5);
    }
}

/// One scripted action against the forked-namespace fleet.
#[derive(Debug, Clone, Copy)]
enum PageOp {
    /// Clone the store at `target % live` (bounded by a fleet cap).
    Fork { target: usize },
    /// Append one token to the store at `target % live`.
    Append { target: usize, seed: u64 },
    /// Drop the store at `target % live` (never below one survivor).
    Drop { target: usize },
}

fn page_op_strategy() -> impl Strategy<Value = PageOp> {
    // kind 0 → fork, 1..=3 → append (weighted 3×), 4 → drop.
    (0usize..5, 0usize..8, 0u64..(1 << 62)).prop_map(|(kind, target, seed)| match kind {
        0 => PageOp::Fork { target },
        1..=3 => PageOp::Append { target, seed },
        _ => PageOp::Drop { target },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Refcounted pages + copy-on-write under random fork/append/drop
    /// interleavings: no namespace ever observes another's writes, every
    /// store always materialises exactly its mirror-model rows, and the
    /// pool drains to zero pages once the last namespace drops.
    #[test]
    fn paged_cow_never_corrupts_forked_namespaces(
        page_tokens in 1usize..5,
        init_rows in 1usize..7,
        ops in proptest::collection::vec(page_op_strategy(), 1..40),
        data_seed in 0u64..(1 << 62),
    ) {
        use pqcache::memhier::{HostKvStore, KvTier};
        const DIM: usize = 4;
        let tier = KvTier::with_pages(1, 1, DIM, page_tokens, None);
        let mut rng = Rng64::new(data_seed);
        let mut row = |tag: u64| -> Vec<f32> {
            let mut r = Rng64::new(rng.below(1 << 30) as u64 ^ tag);
            (0..DIM).map(|_| r.normal_f32(0.0, 1.0)).collect()
        };

        // Seed one namespace with `init_rows` offloaded rows, then let the
        // script fork/append/drop. Mirror every store with plain Vecs.
        type Mirror = (Vec<Vec<f32>>, Vec<Vec<f32>>);
        let mut stores: Vec<HostKvStore> = vec![tier.new_namespace()];
        let init_k: Vec<Vec<f32>> = (0..init_rows).map(|i| row(i as u64)).collect();
        let init_v: Vec<Vec<f32>> = (0..init_rows).map(|i| row(0x1000 + i as u64)).collect();
        let flat = |rows: &[Vec<f32>]| Matrix::from_vec(rows.len(), DIM, rows.concat());
        stores[0].offload(0, 0, flat(&init_k), flat(&init_v));
        let mut mirrors: Vec<Mirror> = vec![(init_k.clone(), init_v.clone())];

        for op in &ops {
            match *op {
                PageOp::Fork { target } if stores.len() < 6 => {
                    let t = target % stores.len();
                    stores.push(stores[t].clone());
                    let m = mirrors[t].clone();
                    mirrors.push(m);
                }
                PageOp::Fork { .. } => {}
                PageOp::Append { target, seed } => {
                    let t = target % stores.len();
                    let (k, v) = (row(seed), row(seed ^ 0xFFFF));
                    stores[t].append_token(0, 0, &k, &v);
                    mirrors[t].0.push(k);
                    mirrors[t].1.push(v);
                }
                PageOp::Drop { target } if stores.len() > 1 => {
                    let t = target % stores.len();
                    stores.remove(t);
                    mirrors.remove(t);
                }
                PageOp::Drop { .. } => {}
            }
            // Every surviving namespace still materialises exactly its own
            // history — CoW must have isolated all shared tails.
            for (s, m) in stores.iter().zip(mirrors.iter()) {
                prop_assert_eq!(s.len(0, 0), m.0.len());
                let keys = s.keys_matrix(0, 0);
                let values = s.values_matrix(0, 0);
                for (r, (mk, mv)) in m.0.iter().zip(m.1.iter()).enumerate() {
                    for c in 0..DIM {
                        prop_assert_eq!(keys.get(r, c), mk[c], "key corrupted at ({}, {})", r, c);
                        prop_assert_eq!(values.get(r, c), mv[c], "value corrupted at ({}, {})", r, c);
                    }
                }
            }
        }

        // Refcounts return to baseline: dropping every namespace frees the
        // whole pool (nothing was registered as a shared prefix here).
        prop_assert!(tier.allocator().pages_in_use() > 0);
        drop(stores);
        prop_assert_eq!(tier.allocator().pages_in_use(), 0, "pages leaked after drops");
    }

    /// Registered prefixes pin pages while namespaces come and go; releasing
    /// the registration returns the pool to empty.
    #[test]
    fn prefix_registration_pins_and_releases_pages(
        page_tokens in 1usize..5,
        adopters in 1usize..5,
        tokens in proptest::collection::vec(0u32..200, 1..24),
    ) {
        use pqcache::memhier::KvTier;
        const DIM: usize = 4;
        let tier = KvTier::with_pages(1, 1, DIM, page_tokens, None);
        let mut base = tier.new_namespace();
        let mut rng = Rng64::new(7);
        let n = tokens.len();
        let data: Vec<f32> = (0..n * DIM).map(|_| rng.normal_f32(0.0, 1.0)).collect();
        base.offload(0, 0, Matrix::from_vec(n, DIM, data.clone()), Matrix::from_vec(n, DIM, data));
        prop_assert!(tier.register_prefix(&tokens, &base, std::sync::Arc::new(())));

        let mut fleet = Vec::new();
        for _ in 0..adopters {
            let hit = tier.lookup_prefix(&tokens).expect("registered prefix must hit");
            prop_assert_eq!(hit.len(), n);
            fleet.push(tier.new_namespace_with_prefix(&hit));
        }
        // Adopters share the base pages: unique residency stays one copy.
        let one_copy = tier.allocator().pages_in_use();
        prop_assert_eq!(one_copy, n.div_ceil(page_tokens));
        drop(fleet);
        drop(base);
        // The registry alone still pins the prefix pages...
        prop_assert_eq!(tier.allocator().pages_in_use(), n.div_ceil(page_tokens));
        // ...until released.
        prop_assert!(tier.release_prefix(&tokens));
        prop_assert_eq!(tier.allocator().pages_in_use(), 0, "registry leaked pages");
    }
}

/// One scripted action against a capped allocator.
#[derive(Debug, Clone, Copy)]
enum AllocOp {
    /// Request one page (may correctly fail at the cap).
    Alloc,
    /// Bump the refcount of the live page at `target % live`.
    Retain { target: usize },
    /// Drop one reference from the live page at `target % live`.
    Release { target: usize },
}

fn alloc_op_strategy() -> impl Strategy<Value = AllocOp> {
    // kind 0..=1 → alloc (weighted 2×), 2 → retain, 3..=4 → release.
    (0usize..5, 0usize..8).prop_map(|(kind, target)| match kind {
        0 | 1 => AllocOp::Alloc,
        2 => AllocOp::Retain { target },
        _ => AllocOp::Release { target },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Interleaved alloc/retain/release against a capped pool, mirrored by
    /// a plain refcount map: a live page id is never re-issued (the
    /// double-free / aliasing hazard), `try_alloc` fails — with the right
    /// cap in the error — exactly when the pool is full, live counts always
    /// agree with the model, and a fully-released pool recycles every page.
    #[test]
    fn capped_allocator_never_double_frees(
        cap in 1usize..6,
        ops in proptest::collection::vec(alloc_op_strategy(), 1..60),
    ) {
        use pqcache::memhier::{MemError, PageAllocator};
        use std::collections::BTreeMap;
        let alloc = PageAllocator::with_limit(2, 4, None, Some(cap));
        // Mirror model: live page id → refcount.
        let mut refs: BTreeMap<u32, u32> = BTreeMap::new();

        for op in &ops {
            match *op {
                AllocOp::Alloc => match alloc.try_alloc() {
                    Ok(id) => {
                        prop_assert!(refs.len() < cap, "alloc succeeded at the cap");
                        prop_assert!(
                            !refs.contains_key(&id),
                            "live page {} re-issued: aliased double ownership", id
                        );
                        refs.insert(id, 1);
                    }
                    Err(MemError::PageExhausted { max_pages }) => {
                        prop_assert_eq!(max_pages, cap, "error must name the configured cap");
                        prop_assert_eq!(refs.len(), cap, "alloc failed below the cap");
                    }
                    Err(other) => prop_assert!(false, "unexpected error {:?}", other),
                },
                AllocOp::Retain { target } if !refs.is_empty() => {
                    let id = *refs.keys().nth(target % refs.len()).unwrap();
                    alloc.retain_page(id);
                    *refs.get_mut(&id).unwrap() += 1;
                }
                AllocOp::Release { target } if !refs.is_empty() => {
                    let id = *refs.keys().nth(target % refs.len()).unwrap();
                    alloc.release_page(id);
                    let n = refs.get_mut(&id).unwrap();
                    *n -= 1;
                    if *n == 0 {
                        refs.remove(&id);
                    }
                }
                AllocOp::Retain { .. } | AllocOp::Release { .. } => {}
            }
            prop_assert_eq!(alloc.pages_in_use(), refs.len(), "live count diverged from model");
            prop_assert!(alloc.pages_in_use() <= cap, "cap breached");
        }

        // Drain every remaining reference: the pool must return to empty —
        // no page lost to a premature free, none pinned by a leaked count.
        for (id, n) in std::mem::take(&mut refs) {
            for _ in 0..n {
                alloc.release_page(id);
            }
        }
        prop_assert_eq!(alloc.pages_in_use(), 0, "references drained but pages still live");

        // And the freed pages are actually reusable: a full cap's worth of
        // allocations succeeds again, then the cap re-engages.
        for _ in 0..cap {
            prop_assert!(alloc.try_alloc().is_ok(), "released page not recycled");
        }
        prop_assert!(alloc.try_alloc().is_err(), "cap must re-engage after recycling");
    }
}
