//! Chaos battery: deterministic fault injection against the serve engine.
//!
//! The fault-tolerance contract, asserted end to end: under injected
//! allocator exhaustion, session panics, shard stalls, admission-reject
//! bursts, and deadline expiry, `ServeEngine::run` (a) never aborts or
//! deadlocks — it always returns a report; (b) converts every injected
//! fault into a failed `Completion` carrying the exact planned
//! `FailureCause` (`injected = true`, the right class, the right step);
//! and (c) leaves every *surviving* session bit-identical — logits and
//! tokens — to the same session run alone through
//! `SelectiveSession::decode` with no fault plan at all.
//!
//! Every plan is seeded, every injection point is keyed on deterministic
//! state (request ids, step counts, tick counts), so each scenario also
//! replays identically run over run.

use pqcache::core::{CacheConfig, SelectiveSession, SessionConfig};
use pqcache::llm::{LlmConfig, Model};
use pqcache::policies::{PqCachePolicy, SelectionPolicy};
use pqcache::serve::{
    FaultPlan, Priority, ServeConfig, ServeEngine, ServeError, ServeReport, ServeRequest,
    ShardAssignment,
};
use pqcache::tensor::{argmax, Rng64};
use pqcache::workloads::{
    chaos_victims, corruption_victims, multi_tenant_trace, TenantTrace, TraceConfig, VocabLayout,
};
use std::collections::HashMap;
use std::sync::mpsc;
use std::time::Duration;

/// Liveness bound: chaos runs take seconds; a deadlock hangs forever.
const WALL_LIMIT: Duration = Duration::from_secs(240);

fn session_cfg() -> SessionConfig {
    SessionConfig {
        n_init: 2,
        n_local: 8,
        token_ratio: 0.25,
        comm_fraction: 1.0 / 16.0,
        obs_window: 8,
        cache: CacheConfig { capacity_tokens: 64, block_size: 8, lfu: true, k_cache_blocks: 4 },
        ivf: pqcache::core::IvfMode::Exact,
    }
}

fn prompt(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = Rng64::new(seed);
    (0..n).map(|_| rng.below(200) as u32).collect()
}

fn policy() -> Box<dyn SelectionPolicy + Send> {
    Box::new(PqCachePolicy::default())
}

/// Run the engine on a watchdog thread; a deadlock fails the test at the
/// wall-clock bound instead of hanging CI forever. "Never aborts" includes
/// "never hangs".
fn run_with_watchdog(cfg: ServeConfig, requests: Vec<ServeRequest>) -> ServeReport {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let model = Model::new(LlmConfig::tiny());
        let report = ServeEngine::run(&model, &cfg, requests).expect("valid config");
        let _ = tx.send(report);
    });
    match rx.recv_timeout(WALL_LIMIT) {
        Ok(report) => report,
        Err(_) => panic!("serve engine did not finish within {WALL_LIMIT:?} under chaos"),
    }
}

// ---------------------------------------------------------------------------
// Panic isolation + survivor bit-identity (the tentpole property).
// ---------------------------------------------------------------------------

const FLEET: usize = 6;
const STEPS: usize = 8;

/// Distinct prompts (no prefix sharing) with mixed lengths.
fn fleet_prompts() -> Vec<Vec<u32>> {
    (0..FLEET).map(|i| prompt(64 + 16 * (i % 3), 0xC4A05 + i as u64)).collect()
}

/// Fault-free sequential reference: each session alone via `decode()`.
fn sequential_reference(model: &Model) -> Vec<(Vec<u32>, Vec<Vec<f32>>)> {
    fleet_prompts()
        .iter()
        .map(|toks| {
            let start = SelectiveSession::start(model, policy(), session_cfg(), toks);
            let mut session = start.session;
            let mut next = argmax(&start.logits) as u32;
            let (mut generated, mut logits) = (Vec::new(), Vec::new());
            for _ in 0..STEPS {
                generated.push(next);
                let dec = session.decode(next);
                logits.push(dec.logits.clone());
                next = dec.greedy();
            }
            (generated, logits)
        })
        .collect()
}

#[test]
fn injected_panics_are_isolated_and_survivors_bit_identical() {
    let model = Model::new(LlmConfig::tiny());
    let reference = sequential_reference(&model);

    // Session 2 dies mid-decode (step 3) while sharing a shard — and its
    // scratch buffers — with live neighbours; session 4 dies before its
    // first step. Everyone else must not notice.
    let plan = FaultPlan::seeded(0xFA).with_session_panic(2, 3).with_session_panic(4, 0);
    let cfg = ServeConfig {
        shards: 1,
        max_active_per_shard: 2,
        queue_capacity: FLEET,
        session: session_cfg(),
        record_trace: true,
        faults: Some(plan),
        ..Default::default()
    };
    let requests: Vec<ServeRequest> = fleet_prompts()
        .into_iter()
        .enumerate()
        .map(|(i, toks)| ServeRequest::new(i as u64, toks, STEPS, policy()))
        .collect();
    let report = run_with_watchdog(cfg, requests);

    assert_eq!(report.completions.len(), FLEET, "every request must complete, pass or fail");
    assert_eq!(report.worker_panics, 0, "injected panics must be caught per-session");
    assert_eq!(report.failures().count(), 2);

    for i in 0..FLEET as u64 {
        let c = report.completion(i).expect("completion present");
        let (ref_tokens, ref_logits) = &reference[i as usize];
        match i {
            2 | 4 => {
                let planned_step = if i == 2 { 3u64 } else { 0 };
                let cause = c.failure.as_ref().expect("victim must carry a cause");
                assert!(cause.injected, "session {i}: cause must be marked injected");
                assert_eq!(cause.step, planned_step);
                match &cause.error {
                    ServeError::SessionPoisoned { message } => {
                        assert!(
                            message.contains(&format!("request {i} at step {planned_step}")),
                            "payload round-trip: {message}"
                        );
                    }
                    other => panic!("session {i}: unexpected cause {other:?}"),
                }
                // Pre-panic progress is still bit-identical to the reference.
                assert_eq!(c.generated.len(), planned_step as usize);
                assert_eq!(c.generated[..], ref_tokens[..planned_step as usize]);
                for (step, tr) in c.trace.iter().enumerate() {
                    assert_eq!(tr.logits, ref_logits[step], "victim {i} pre-panic step {step}");
                }
            }
            _ => {
                assert!(c.is_success(), "survivor {i} failed: {:?}", c.failure);
                assert_eq!(&c.generated, ref_tokens, "survivor {i} tokens diverged");
                assert_eq!(c.trace.len(), STEPS);
                for (step, tr) in c.trace.iter().enumerate() {
                    assert_eq!(
                        tr.logits, ref_logits[step],
                        "survivor {i} step {step} logits diverged after a shard-mate panic"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Allocator exhaustion: sessions fail, the engine does not.
// ---------------------------------------------------------------------------

#[test]
fn page_exhaustion_fails_sessions_not_the_engine() {
    // A page pool far too small for the fleet: allocations fail mid-prefill
    // or mid-decode. The engine must shed the starved sessions with a typed
    // cause and return normally — never unwrap, never abort.
    let plan = FaultPlan::seeded(0x9A6E).with_page_limit(4);
    let cfg = ServeConfig {
        shards: 1,
        max_active_per_shard: 4,
        queue_capacity: FLEET,
        session: session_cfg(),
        faults: Some(plan),
        ..Default::default()
    };
    let mk_requests = || -> Vec<ServeRequest> {
        fleet_prompts()
            .into_iter()
            .enumerate()
            .map(|(i, toks)| ServeRequest::new(i as u64, toks, STEPS, policy()))
            .collect()
    };
    let report = run_with_watchdog(cfg.clone(), mk_requests());

    assert_eq!(report.completions.len(), FLEET);
    assert_eq!(report.worker_panics, 0);
    let failures: Vec<_> = report.failures().collect();
    assert!(!failures.is_empty(), "a 4-page pool cannot serve this fleet");
    for c in &failures {
        let cause = c.failure.as_ref().unwrap();
        assert!(cause.injected, "cap came from the plan, so the fault is injected");
        assert!(
            matches!(cause.error, ServeError::PageExhausted { max_pages: 4 }),
            "request {}: unexpected cause {:?}",
            c.id,
            cause.error
        );
    }

    // Deterministic replay: the same plan starves the same sessions.
    let again = run_with_watchdog(cfg, mk_requests());
    let ids = |r: &ServeReport| -> Vec<u64> {
        let mut v: Vec<u64> = r.failures().map(|c| c.id).collect();
        v.sort_unstable();
        v
    };
    assert_eq!(ids(&report), ids(&again), "failure set must replay identically");
}

// ---------------------------------------------------------------------------
// Admission-reject bursts: bounded retry, then typed shedding.
// ---------------------------------------------------------------------------

#[test]
fn admission_burst_sheds_typed_and_retries_recover() {
    // Request 1 is rejected more times than its retry budget allows — shed
    // with `Admission` after 1 + max_retries attempts. Request 2 is
    // rejected twice — exactly its budget — and must recover.
    let plan = FaultPlan::seeded(0xBEEF)
        .with_admission_rejects(1, 10)
        .with_admission_rejects(2, 2);
    let cfg = ServeConfig {
        shards: 1,
        max_active_per_shard: 2,
        queue_capacity: FLEET,
        session: session_cfg(),
        faults: Some(plan),
        ..Default::default()
    };
    let requests: Vec<ServeRequest> = fleet_prompts()
        .into_iter()
        .enumerate()
        .map(|(i, toks)| ServeRequest::new(i as u64, toks, STEPS, policy()))
        .collect();
    let report = run_with_watchdog(cfg, requests);

    assert_eq!(report.completions.len(), FLEET);
    let shed = report.completion(1).unwrap();
    let cause = shed.failure.as_ref().expect("request 1 must be shed");
    assert!(cause.injected);
    assert!(
        matches!(cause.error, ServeError::Admission { attempts: 3 }),
        "default policy = initial attempt + 2 retries, got {:?}",
        cause.error
    );
    assert!(shed.generated.is_empty(), "shed requests never decode");
    assert_eq!(cause.step, 0);

    let recovered = report.completion(2).unwrap();
    assert!(recovered.is_success(), "2 rejections fit the retry budget: {:?}", recovered.failure);
    assert_eq!(recovered.retries, 2);
    assert_eq!(recovered.generated.len(), STEPS);

    // Load-shedding is metered: the shed request's never-produced decode
    // tokens, and both victims' retry attempts, show up in the report.
    assert_eq!(report.total_shed_tokens(), STEPS as u64);
    assert!(report.shards[0].retries >= 4, "2 retries each for ids 1 and 2");
    for i in [0u64, 3, 4, 5] {
        assert!(report.completion(i).unwrap().is_success(), "bystander {i} harmed");
    }
}

// ---------------------------------------------------------------------------
// Deadlines: slow sessions are reaped, fast ones finish.
// ---------------------------------------------------------------------------

#[test]
fn deadline_expiry_reaps_slow_sessions_only() {
    let cfg = ServeConfig {
        shards: 1,
        max_active_per_shard: 2,
        queue_capacity: 4,
        session: session_cfg(),
        ..Default::default()
    };
    let requests = vec![
        // Wants 40 steps but is only allowed 3 ticks after admission.
        ServeRequest::new(0, prompt(64, 0xD0), 40, policy()).with_deadline(3),
        ServeRequest::new(1, prompt(80, 0xD1), 6, policy()),
    ];
    let report = run_with_watchdog(cfg, requests);

    let reaped = report.completion(0).unwrap();
    let cause = reaped.failure.as_ref().expect("deadline must reap request 0");
    assert!(!cause.injected, "deadlines are policy, not injected faults");
    match cause.error {
        ServeError::DeadlineExceeded { deadline_ticks, elapsed_ticks } => {
            assert_eq!(deadline_ticks, 3);
            assert!(elapsed_ticks >= 3);
        }
        ref other => panic!("unexpected cause {other:?}"),
    }
    assert!(reaped.generated.len() < 40, "reaped session must not finish");
    assert_eq!(cause.step, reaped.generated.len() as u64);

    let fast = report.completion(1).unwrap();
    assert!(fast.is_success());
    assert_eq!(fast.generated.len(), 6, "undeadlined neighbour must finish");
}

// ---------------------------------------------------------------------------
// The storm: everything at once, across shards, replayed twice.
// ---------------------------------------------------------------------------

const STORM_SESSIONS: usize = 32;

fn storm_trace() -> TenantTrace {
    multi_tenant_trace(&TraceConfig {
        sessions: STORM_SESSIONS,
        arrival_rate: 2.0,
        prompt_lens: [64, 80, 96],
        prompt_mix: [0.5, 0.3, 0.2],
        decode_steps: (2, 10),
        layout: VocabLayout::for_vocab(256),
        seed: 0xC405,
        ..Default::default()
    })
}

#[test]
fn chaos_storm_never_aborts_and_replays_identically() {
    let trace = storm_trace();
    let victims = chaos_victims(&trace, 0xFEED, 0.25);
    assert_eq!(victims.len(), STORM_SESSIONS / 4);
    let victim_ids: HashMap<u64, u64> = victims.iter().copied().collect();

    // Two non-victims take recoverable admission-reject bursts.
    let bystanders: Vec<u64> = (0..STORM_SESSIONS as u64)
        .filter(|id| !victim_ids.contains_key(id))
        .take(2)
        .collect();
    let mut plan = FaultPlan::seeded(0xFEED)
        .with_stall(0, 2, 2)
        .with_stall(1, 4, 1)
        .with_admission_rejects(bystanders[0], 1)
        .with_admission_rejects(bystanders[1], 2);
    for &(id, step) in &victims {
        plan = plan.with_session_panic(id, step);
    }

    let cfg = ServeConfig {
        shards: 2,
        max_active_per_shard: 4,
        queue_capacity: 8,
        assignment: ShardAssignment::RoundRobin,
        session: session_cfg(),
        faults: Some(plan),
        ..Default::default()
    };
    let mk_requests = || -> Vec<ServeRequest> {
        storm_trace()
            .requests
            .into_iter()
            .map(|r| ServeRequest::new(r.id, r.workload.tokens, r.decode_steps, policy()))
            .collect()
    };
    let report = run_with_watchdog(cfg.clone(), mk_requests());

    // (a) Never aborts: the run returned, no worker died, accounting clean.
    assert_eq!(report.completions.len(), STORM_SESSIONS, "requests lost in the storm");
    assert_eq!(report.worker_panics, 0);
    assert!(!report.budget_underflow);
    assert!(report.total_stalled_steps() > 0, "stalls must be metered");

    // (b) Every victim fails with exactly its planned, injected cause;
    //     every non-victim finishes its full decode.
    let expected_steps: HashMap<u64, usize> =
        trace.requests.iter().map(|r| (r.id, r.decode_steps)).collect();
    for c in &report.completions {
        match victim_ids.get(&c.id) {
            Some(&step) => {
                let cause = c.failure.as_ref().unwrap_or_else(|| panic!("victim {} survived", c.id));
                assert!(cause.injected);
                assert_eq!(cause.step, step, "victim {} died at the wrong step", c.id);
                assert_eq!(cause.error.class(), "session_poisoned");
                assert_eq!(c.generated.len(), step as usize);
            }
            None => {
                assert!(c.is_success(), "bystander {} harmed: {:?}", c.id, c.failure);
                assert_eq!(c.generated.len(), expected_steps[&c.id], "bystander {} cut short", c.id);
            }
        }
    }
    let recovered = report.completion(bystanders[1]).unwrap();
    assert_eq!(recovered.retries, 2, "rejected-then-admitted bystander must meter its retries");

    // (c) Deterministic replay: same plan, same storm, same outcome.
    let again = run_with_watchdog(cfg, mk_requests());
    let outcome = |r: &ServeReport| -> HashMap<u64, (Vec<u32>, Option<&'static str>)> {
        r.completions
            .iter()
            .map(|c| (c.id, (c.generated.clone(), c.failure.as_ref().map(|f| f.error.class()))))
            .collect()
    };
    assert_eq!(outcome(&report), outcome(&again), "chaos must replay bit-identically");
}

// ---------------------------------------------------------------------------
// The preemption storm: priorities, chunked prefill, stalls, and a page cap
// racing suspend/resume — outcomes still replay identically.
// ---------------------------------------------------------------------------

const PREEMPT_SESSIONS: usize = 24;

/// Priority-mixed traffic with decode runs long enough that a delayed
/// high-priority request always matures against a still-busy slot.
fn preemption_storm_trace() -> TenantTrace {
    multi_tenant_trace(&TraceConfig {
        sessions: PREEMPT_SESSIONS,
        arrival_rate: 2.0,
        prompt_lens: [64, 80, 96],
        prompt_mix: [0.5, 0.3, 0.2],
        decode_steps: (6, 12),
        priority_mix: [1.0, 1.0, 0.6],
        layout: VocabLayout::for_vocab(256),
        seed: 0x9EE7,
    })
}

#[test]
fn preemption_storm_replays_identically() {
    let trace = preemption_storm_trace();
    // Every high-priority request takes one recoverable admission reject:
    // it lands in the maturity queue while a lower-class session claims the
    // single slot, so when it matures (backoff 2 ticks, actives run ≥ 6
    // steps) the only way in is preemption through the paged tier.
    let highs: Vec<u64> =
        trace.requests.iter().filter(|r| r.priority == 2).map(|r| r.id).collect();
    assert!(!highs.is_empty(), "storm trace must contain high-priority traffic");
    assert!(highs.len() < PREEMPT_SESSIONS / 2, "lower classes must exist to preempt");
    // Stall ticks sit mid-backlog: a 25-request serial backlog keeps the
    // slot occupied there (the first ticks can be idle-burn while rejected
    // high-priority requests wait out their backoff, skipping the stall).
    let mut plan = FaultPlan::seeded(0x51A7)
        .with_stall(0, 10, 2)
        .with_stall(0, 30, 1)
        // A cap the regular fleet fits under at any schedule, but the whale
        // below exceeds on its own — page failures stay deterministic while
        // the cap still races suspends (a failed suspend defers the
        // preemption and keeps the victim intact).
        .with_page_limit(120);
    for &id in &highs {
        plan = plan.with_admission_rejects(id, 1);
    }
    let whale_id = PREEMPT_SESSIONS as u64;
    let cfg = ServeConfig {
        shards: 1,
        max_active_per_shard: 1,
        queue_capacity: 8,
        prefill_chunk_tokens: Some(16),
        // The registry would pin every completed session's pages for the
        // whole run (prompts are distinct — nothing would ever hit), turning
        // the cap into a cumulative fleet bound instead of a residency one.
        prefix_cache: false,
        session: session_cfg(),
        faults: Some(plan),
        ..Default::default()
    };
    let mk_requests = || -> Vec<ServeRequest> {
        let tier = |p: u8| match p {
            0 => Priority::Low,
            1 => Priority::Normal,
            _ => Priority::High,
        };
        let mut reqs: Vec<ServeRequest> = preemption_storm_trace()
            .requests
            .into_iter()
            .map(|r| {
                ServeRequest::new(r.id, r.workload.tokens, r.decode_steps, policy())
                    .with_priority(tier(r.priority))
            })
            .collect();
        // The whale: a prompt whose prefill alone exceeds the page cap, so
        // it fails `page_exhausted` under every schedule.
        reqs.push(
            ServeRequest::new(whale_id, prompt(4096, 0x3A1E), 4, policy())
                .with_priority(Priority::Low),
        );
        reqs
    };
    let report = run_with_watchdog(cfg.clone(), mk_requests());

    // Never aborts, and the storm really preempts.
    assert_eq!(report.completions.len(), PREEMPT_SESSIONS + 1);
    assert_eq!(report.worker_panics, 0);
    assert!(!report.budget_underflow);
    assert!(report.total_stalled_steps() > 0, "stalls must be metered");
    assert!(report.total_preemptions() >= 1, "the storm never exercised preemption");

    // Deterministic failure set: exactly the whale, with the planned cause.
    let whale = report.completion(whale_id).unwrap();
    let cause = whale.failure.as_ref().expect("whale must starve on the page cap");
    assert!(cause.injected, "the cap came from the fault plan");
    assert!(
        matches!(cause.error, ServeError::PageExhausted { max_pages: 120 }),
        "whale: unexpected cause {:?}",
        cause.error
    );
    let expected_steps: HashMap<u64, usize> =
        trace.requests.iter().map(|r| (r.id, r.decode_steps)).collect();
    for c in &report.completions {
        if c.id == whale_id {
            continue;
        }
        assert!(c.is_success(), "bystander {} harmed: {:?}", c.id, c.failure);
        assert_eq!(c.generated.len(), expected_steps[&c.id], "bystander {} cut short", c.id);
    }

    // Replay: same plan, same priorities, same chunking — same outcomes,
    // including every preempted-and-resumed session's exact tokens.
    let again = run_with_watchdog(cfg, mk_requests());
    assert!(again.total_preemptions() >= 1);
    let outcome = |r: &ServeReport| -> HashMap<u64, (Vec<u32>, Option<&'static str>)> {
        r.completions
            .iter()
            .map(|c| (c.id, (c.generated.clone(), c.failure.as_ref().map(|f| f.error.class()))))
            .collect()
    };
    assert_eq!(outcome(&report), outcome(&again), "preemption storm must replay identically");
}

// ---------------------------------------------------------------------------
// Crash recovery: worker kills, checkpoint failover, corruption rollback.
// ---------------------------------------------------------------------------

/// Requests sized so a mid-run kill or flip always lands mid-decode, and
/// so the victim's middle store outgrows the GPU cache (prompt 96 > 64
/// cached tokens) — host fetches, and therefore checksum verification,
/// happen on every step.
fn recovery_requests() -> Vec<ServeRequest> {
    (0..FLEET)
        .map(|i| {
            ServeRequest::new(i as u64, prompt(96 + 8 * (i % 3), 0x7EC0 + i as u64), 24, policy())
        })
        .collect()
}

/// Outcome fingerprint: per-request generated tokens plus failure class.
fn outcome_map(r: &ServeReport) -> HashMap<u64, (Vec<u32>, Option<&'static str>)> {
    r.completions
        .iter()
        .map(|c| (c.id, (c.generated.clone(), c.failure.as_ref().map(|f| f.error.class()))))
        .collect()
}

#[test]
fn recovery_worker_kill_fails_over_checkpointed_sessions_bit_identically() {
    let cfg = ServeConfig {
        shards: 2,
        max_active_per_shard: 4,
        queue_capacity: FLEET,
        assignment: ShardAssignment::RoundRobin,
        checkpoint_every_ticks: Some(2),
        session: session_cfg(),
        ..Default::default()
    };
    let clean = run_with_watchdog(cfg.clone(), recovery_requests());
    assert!(clean.completions.iter().all(|c| c.is_success()), "clean run must succeed");

    // Shard 0 dies at tick 10: every resident session is mid-decode (24
    // steps) and was checkpointed by tick 8 at the latest.
    let faulted = ServeConfig {
        faults: Some(FaultPlan::seeded(0x0DD).with_worker_kill(0, 10)),
        ..cfg
    };
    let report = run_with_watchdog(faulted.clone(), recovery_requests());

    // Exactly-once: every request completes exactly once, pass or fail.
    assert_eq!(report.completions.len(), FLEET);
    assert_eq!(report.worker_panics, 1, "the kill must surface as one worker panic");
    assert!(report.total_checkpoints() > 0, "checkpoint cadence must fire before the kill");
    assert!(report.total_checkpoint_bytes() > 0);
    assert!(
        report.total_recovered_sessions() > 0,
        "a tick-10 kill of a loaded shard must exercise failover"
    );
    assert!(report.total_recovered_tokens() > 0, "replay must meter post-checkpoint tokens");

    // Every session — killed-shard or not — finishes with the clean run's
    // exact tokens: replay from checkpoint is bit-identical migration.
    assert_eq!(outcome_map(&report), outcome_map(&clean), "failover diverged from clean run");
    let recovered: Vec<u64> =
        report.completions.iter().filter(|c| c.recovered).map(|c| c.id).collect();
    assert_eq!(
        recovered.len() as u64,
        report.total_recovered_sessions(),
        "recovered flags must match the meter"
    );
    assert!(!recovered.is_empty());

    // Deterministic replay of the recovery itself.
    let again = run_with_watchdog(faulted, recovery_requests());
    assert_eq!(outcome_map(&report), outcome_map(&again), "failover must replay identically");
    assert_eq!(again.total_recovered_sessions(), report.total_recovered_sessions());
}

#[test]
fn recovery_kill_without_checkpoints_sheds_shard_lost_typed() {
    let cfg = ServeConfig {
        shards: 2,
        max_active_per_shard: 4,
        queue_capacity: FLEET,
        assignment: ShardAssignment::RoundRobin,
        session: session_cfg(),
        faults: Some(FaultPlan::seeded(0x0DD).with_worker_kill(0, 4)),
        ..Default::default()
    };
    let report = run_with_watchdog(cfg, recovery_requests());

    assert_eq!(report.completions.len(), FLEET);
    assert_eq!(report.worker_panics, 1);
    assert_eq!(report.total_recovered_sessions(), 0, "nothing to recover without checkpoints");

    // Round-robin over 2 shards: even request indices ride shard 0 and die
    // with it; odd indices never notice.
    let mut lost: Vec<u64> = report.failures().map(|c| c.id).collect();
    lost.sort_unstable();
    assert_eq!(lost, vec![0, 2, 4], "exactly the killed shard's residents are lost");
    for c in report.failures() {
        let cause = c.failure.as_ref().unwrap();
        assert!(cause.injected, "the kill came from the fault plan");
        assert_eq!(cause.error.class(), "shard_lost");
        assert!(matches!(cause.error, ServeError::ShardLost { shard: 0 }));
    }
    assert!(report.total_shed_tokens() > 0, "lost decode tokens must be metered as shed");
    for id in [1u64, 3, 5] {
        let c = report.completion(id).unwrap();
        assert!(c.is_success(), "survivor shard harmed: {:?}", c.failure);
        assert_eq!(c.generated.len(), 24);
    }
}

#[test]
fn recovery_corruption_rolls_back_and_replays_bit_identically() {
    let cfg = ServeConfig {
        shards: 1,
        max_active_per_shard: 4,
        queue_capacity: FLEET,
        checkpoint_every_ticks: Some(2),
        record_trace: true,
        session: session_cfg(),
        ..Default::default()
    };
    let clean = run_with_watchdog(cfg.clone(), recovery_requests());
    assert!(clean.completions.iter().all(|c| c.is_success()));

    // Request 1's layer-0 store takes a bit flip right before step 5: a
    // checkpoint from tick 4 (or earlier) predates it, so detection rolls
    // the session back instead of failing it.
    let faulted = ServeConfig {
        faults: Some(FaultPlan::seeded(0xF11).with_bit_flip(1, 5, 3)),
        ..cfg
    };
    let report = run_with_watchdog(faulted, recovery_requests());

    assert_eq!(report.completions.len(), FLEET);
    assert_eq!(report.worker_panics, 0, "corruption is a session event, not a worker loss");
    assert!(report.total_rollbacks() >= 1, "the flip must be detected and rolled back");
    let victim = report.completion(1).unwrap();
    assert!(victim.is_success(), "rollback must rescue the victim: {:?}", victim.failure);
    assert!(victim.recovered, "a rolled-back session must be flagged recovered");

    // Tokens *and* logits match the fault-free run — the corrupt bytes
    // never reached a single attention score.
    assert_eq!(outcome_map(&report), outcome_map(&clean));
    let clean_victim = clean.completion(1).unwrap();
    assert_eq!(victim.trace.len(), clean_victim.trace.len());
    for (step, (tr, clean_tr)) in victim.trace.iter().zip(&clean_victim.trace).enumerate() {
        assert_eq!(tr.logits, clean_tr.logits, "victim step {step} logits diverged after rollback");
    }
}

#[test]
fn recovery_corruption_without_checkpoint_fails_typed_never_serving_corrupt_bytes() {
    let cfg = ServeConfig {
        shards: 1,
        max_active_per_shard: 4,
        queue_capacity: FLEET,
        session: session_cfg(),
        ..Default::default()
    };
    let clean = run_with_watchdog(cfg.clone(), recovery_requests());
    let faulted = ServeConfig {
        faults: Some(FaultPlan::seeded(0xF11).with_bit_flip(1, 5, 3)),
        ..cfg
    };
    let report = run_with_watchdog(faulted, recovery_requests());

    assert_eq!(report.total_rollbacks(), 0, "no checkpoint, no rollback");
    let victim = report.completion(1).unwrap();
    let cause = victim.failure.as_ref().expect("unrecoverable corruption must fail the session");
    assert!(cause.injected, "the flip came from the fault plan");
    assert_eq!(cause.error.class(), "kv_corruption");
    assert!(matches!(cause.error, ServeError::KvCorruption { .. }));
    assert_eq!(cause.step, victim.generated.len() as u64);

    // Fail-closed: everything served before detection is still exactly the
    // clean prefix — a corrupt page is detected on fetch, never gathered.
    let clean_tokens = &clean.completion(1).unwrap().generated;
    assert!(victim.generated.len() >= 5, "detection cannot precede the flip");
    assert!(victim.generated.len() < 24, "detection must cut the decode short");
    assert_eq!(
        victim.generated[..],
        clean_tokens[..victim.generated.len()],
        "served tokens must be a clean prefix"
    );
    for id in [0u64, 2, 3, 4, 5] {
        assert!(report.completion(id).unwrap().is_success(), "bystander {id} harmed");
    }
}

#[test]
fn recovery_corruption_storm_with_checkpoints_survives_bit_identically() {
    // A quarter of a 16-session storm takes mid-decode bit flips while
    // checkpointing runs every tick. Every victim must be rescued by
    // rollback; every bystander must never notice.
    let trace = multi_tenant_trace(&TraceConfig {
        sessions: 16,
        arrival_rate: 2.0,
        prompt_lens: [96, 104, 112],
        prompt_mix: [0.5, 0.3, 0.2],
        decode_steps: (6, 12),
        layout: VocabLayout::for_vocab(256),
        seed: 0x5EED,
        ..Default::default()
    });
    let victims = corruption_victims(&trace, 0xBAD, 0.25);
    assert_eq!(victims.len(), 4);
    let mut plan = FaultPlan::seeded(0xBAD);
    for &(id, step, bit) in &victims {
        plan = plan.with_bit_flip(id, step, bit);
    }
    let mk_requests = |trace: &TenantTrace| -> Vec<ServeRequest> {
        trace
            .requests
            .iter()
            .map(|r| ServeRequest::new(r.id, r.workload.tokens.clone(), r.decode_steps, policy()))
            .collect()
    };
    let cfg = ServeConfig {
        shards: 2,
        max_active_per_shard: 4,
        queue_capacity: 8,
        assignment: ShardAssignment::RoundRobin,
        checkpoint_every_ticks: Some(1),
        session: session_cfg(),
        ..Default::default()
    };
    let clean = run_with_watchdog(cfg.clone(), mk_requests(&trace));
    let faulted = ServeConfig { faults: Some(plan), ..cfg };
    let report = run_with_watchdog(faulted, mk_requests(&trace));

    assert_eq!(report.completions.len(), 16);
    assert_eq!(report.worker_panics, 0);
    assert!(report.total_rollbacks() >= 1, "a 4-victim storm must trigger at least one rollback");
    for c in &report.completions {
        assert!(c.is_success(), "session {} not rescued: {:?}", c.id, c.failure);
    }
    assert_eq!(outcome_map(&report), outcome_map(&clean), "storm recovery diverged");
}

// ---------------------------------------------------------------------------
// Property: checkpoint → corrupt → rollback → replay is bit-identical for
// every shard count and checkpoint cadence.
// ---------------------------------------------------------------------------

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For any shard count in {1, 2, 4}, any checkpoint interval in 1..=3,
    /// and any flip landing at step >= 4 (so a checkpoint always predates
    /// it), a corrupted session rolls back and finishes with exactly the
    /// fault-free run's tokens and logits.
    #[test]
    fn recovery_rollback_is_bit_identical_across_shards_and_intervals(
        shards_idx in 0usize..3,
        interval in 1u64..=3,
        flip_step in 4u64..8,
        bit in 0u64..16,
    ) {
        let shards = [1usize, 2, 4][shards_idx];
        let mk_requests = || -> Vec<ServeRequest> {
            (0..4u64)
                .map(|i| ServeRequest::new(i, prompt(96, 0x9B0B + i), 12, policy()))
                .collect()
        };
        let cfg = ServeConfig {
            shards,
            max_active_per_shard: 4,
            queue_capacity: 4,
            assignment: ShardAssignment::RoundRobin,
            checkpoint_every_ticks: Some(interval),
            record_trace: true,
            session: session_cfg(),
            ..Default::default()
        };
        let clean = run_with_watchdog(cfg.clone(), mk_requests());
        let faulted = ServeConfig {
            faults: Some(FaultPlan::seeded(0xF00D).with_bit_flip(1, flip_step, bit)),
            ..cfg
        };
        let report = run_with_watchdog(faulted, mk_requests());

        prop_assert_eq!(report.completions.len(), 4);
        prop_assert_eq!(report.worker_panics, 0);
        for c in &report.completions {
            prop_assert!(c.is_success(), "session {} lost: {:?}", c.id, c.failure);
        }
        prop_assert_eq!(outcome_map(&report), outcome_map(&clean));
        let victim = report.completion(1).unwrap();
        let clean_victim = clean.completion(1).unwrap();
        prop_assert_eq!(victim.trace.len(), clean_victim.trace.len());
        for (step, (tr, clean_tr)) in victim.trace.iter().zip(&clean_victim.trace).enumerate() {
            prop_assert_eq!(&tr.logits, &clean_tr.logits, "victim logits diverged at {}", step);
        }
    }
}
