//! Regression guards for the hot-path kernel overhaul: the SoA layout and
//! fused scans must be observationally identical to the scalar kernels on
//! fixed-seed fixtures, and the decode-step retrieval path must hold its
//! scratch buffers steady (zero heap allocations after warm-up).

use pqcache::policies::{PolicyContext, PqCachePolicy, PqCachePolicyConfig, SelectionPolicy};
use pqcache::pq::{pq_top_k, AdcTable, PqCodebook, PqConfig, PqRetriever};
use pqcache::tensor::{top_k_indices, Matrix, Rng64};

fn fixture(s: usize, dh: usize, m: usize, b: u32, seed: u64) -> (PqCodebook, pqcache::pq::PqCodes, Vec<f32>) {
    let mut rng = Rng64::new(seed);
    let keys = Matrix::randn(s, dh, 1.0, &mut rng);
    let (book, codes) = PqCodebook::train(&keys, PqConfig { m, b, max_iters: 10, seed });
    let q: Vec<f32> = (0..dh).map(|_| rng.normal_f32(0.0, 1.0)).collect();
    (book, codes, q)
}

#[test]
fn pq_top_k_bit_identical_to_scalar_path() {
    // Satellite guard: on the paper's operating points (m=2/b=6 LongBench,
    // m=4/b=8 InfiniteBench) the SoA fused scan must give *exactly* the
    // ranking the token-major scalar path gives — same scores to the bit,
    // same top-k indices in the same order.
    for &(m, b, seed) in &[(2usize, 6u32, 101u64), (4, 8, 202)] {
        let (book, codes, q) = fixture(600, 32, m, b, seed);
        let table = AdcTable::build(&book, &q);
        // Scalar reference: per-token gather + summation.
        let scalar_scores: Vec<f32> =
            (0..codes.len()).map(|i| table.score_token(&codes.token(i))).collect();
        let fused_scores = table.score_all(&codes);
        assert_eq!(scalar_scores.len(), fused_scores.len());
        for (i, (a, bscore)) in scalar_scores.iter().zip(fused_scores.iter()).enumerate() {
            assert_eq!(a.to_bits(), bscore.to_bits(), "score {i} diverged (m={m}, b={b})");
        }
        for k in [1usize, 7, 50, 600] {
            assert_eq!(
                pq_top_k(&book, &codes, &q, k),
                top_k_indices(&scalar_scores, k),
                "top-{k} diverged (m={m}, b={b})"
            );
        }
    }
}

#[test]
fn fused_score_and_select_bit_identical_on_paper_fixtures() {
    // PR 4 acceptance guard: the fused score-and-select pipeline (blocked
    // scan streaming into the selector, threshold-pruned) must select the
    // exact same index sets, in the same order, as the unfused scan+select
    // on the m=2/b=6 and m=4/b=8 fixtures — sized past CODE_BLOCK so the
    // stream spans several prunable blocks.
    for &(m, b, seed) in &[(2usize, 6u32, 303u64), (4, 8, 404)] {
        let (book, codes, q) = fixture(pqcache::pq::CODE_BLOCK * 2 + 300, 32, m, b, seed);
        let mut retriever = PqRetriever::new();
        for n in [codes.len(), pqcache::pq::CODE_BLOCK + 17, 5] {
            for k in [1usize, 16, 128, n] {
                let mut unfused = Vec::new();
                retriever.top_k_prefix_into(&book, &codes, &q, n, k, &mut unfused);
                let mut fused = Vec::new();
                let _ = retriever.score_and_select_into(&book, &codes, &q, n, k, &mut fused);
                assert_eq!(unfused, fused, "m={m}, b={b}, n={n}, k={k}");
            }
        }
    }
}

#[test]
fn online_attention_logits_match_two_pass_reference() {
    // The decode attention kernel is now a blocked single-pass online
    // softmax; its outputs must match the naive two-pass softmax reference
    // to float tolerance, and repeated calls through one scratch must be
    // bit-identical (the serve layer's scratch-sharing guarantee).
    use pqcache::llm::attend_selected_into;
    use pqcache::tensor::softmax_inplace;
    let mut rng = Rng64::new(71);
    for &(n, dh) in &[(1usize, 16usize), (7, 32), (200, 64)] {
        let keys = Matrix::randn(n, dh, 1.0, &mut rng);
        let values = Matrix::randn(n, dh, 1.0, &mut rng);
        let q: Vec<f32> = (0..dh).map(|_| rng.normal_f32(0.0, 1.0)).collect();

        // Two-pass reference.
        let scale = 1.0 / (dh as f32).sqrt();
        let mut probs: Vec<f32> =
            (0..n).map(|j| pqcache::tensor::dot(&q, keys.row(j)) * scale).collect();
        softmax_inplace(&mut probs);
        let mut reference = vec![0.0f32; dh];
        for (j, &p) in probs.iter().enumerate() {
            pqcache::tensor::axpy(&mut reference, values.row(j), p);
        }

        let (mut scores, mut out_a, mut out_b) = (Vec::new(), Vec::new(), Vec::new());
        attend_selected_into(&q, &keys, &values, &mut scores, &mut out_a);
        for (c, (a, r)) in out_a.iter().zip(reference.iter()).enumerate() {
            assert!((a - r).abs() < 1e-5, "n={n}, dh={dh}, col {c}: {a} vs {r}");
        }
        // Re-run through the same (now warm) scratch: bit-identical.
        attend_selected_into(&q, &keys, &values, &mut scores, &mut out_b);
        for (c, (a, b)) in out_a.iter().zip(out_b.iter()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "n={n}, dh={dh}, col {c} unstable");
        }
    }
}

#[test]
fn subset_scores_match_full_scan() {
    let (book, codes, q) = fixture(300, 16, 2, 5, 7);
    let table = AdcTable::build(&book, &q);
    let full = table.score_all(&codes);
    let ids: Vec<usize> = (0..300).step_by(7).collect();
    let mut sub = Vec::new();
    table.score_subset_into(&codes, &ids, &mut sub);
    for (slot, &i) in sub.iter().zip(ids.iter()) {
        assert_eq!(slot.to_bits(), full[i].to_bits(), "subset score {i}");
    }
}

#[test]
fn retriever_steady_state_allocates_nothing() {
    // Acceptance guard: decode-step retrieval (ADC table rebuild + fused
    // scan + top-k) through the reusable API must not grow any scratch
    // buffer across 100 steps once warm.
    let (book, codes, _) = fixture(512, 32, 2, 6, 31);
    let mut retriever = PqRetriever::new();
    let mut out = Vec::new();
    let mut rng = Rng64::new(77);
    // Warm-up step.
    let q: Vec<f32> = (0..32).map(|_| rng.normal_f32(0.0, 1.0)).collect();
    retriever.top_k_into(&book, &codes, &q, 64, &mut out);
    let caps = retriever.scratch_capacities();
    let out_cap = out.capacity();
    for step in 0..100 {
        let q: Vec<f32> = (0..32).map(|_| rng.normal_f32(0.0, 1.0)).collect();
        retriever.top_k_into(&book, &codes, &q, 64, &mut out);
        assert_eq!(out.len(), 64, "step {step}");
        assert_eq!(retriever.scratch_capacities(), caps, "scratch grew at step {step}");
        assert_eq!(out.capacity(), out_cap, "output buffer grew at step {step}");
    }
}

#[test]
fn fused_retriever_steady_state_allocates_nothing() {
    // Zero-alloc audit for the fused path: 100 decode-step retrievals
    // through `score_and_select_into` (table rebuild + blocked pruned scan
    // + streaming selection) must hold every scratch capacity steady after
    // warm-up, and keep agreeing with the unfused pipeline.
    let (book, codes, _) = fixture(pqcache::pq::CODE_BLOCK + 200, 32, 2, 6, 41);
    let mut fused_retriever = PqRetriever::new();
    let mut unfused_retriever = PqRetriever::new();
    let mut out = Vec::new();
    let mut check = Vec::new();
    let mut rng = Rng64::new(78);
    // Warm-up step.
    let q: Vec<f32> = (0..32).map(|_| rng.normal_f32(0.0, 1.0)).collect();
    let _ = fused_retriever.score_and_select_into(&book, &codes, &q, codes.len(), 64, &mut out);
    let caps = fused_retriever.scratch_capacities();
    let out_cap = out.capacity();
    for step in 0..100 {
        let q: Vec<f32> = (0..32).map(|_| rng.normal_f32(0.0, 1.0)).collect();
        let _ =
            fused_retriever.score_and_select_into(&book, &codes, &q, codes.len(), 64, &mut out);
        assert_eq!(out.len(), 64, "step {step}");
        assert_eq!(
            fused_retriever.scratch_capacities(),
            caps,
            "fused scratch grew at step {step}"
        );
        assert_eq!(out.capacity(), out_cap, "output buffer grew at step {step}");
        unfused_retriever.top_k_prefix_into(&book, &codes, &q, codes.len(), 64, &mut check);
        assert_eq!(out, check, "fused selection diverged at step {step}");
    }
}

#[test]
fn pqcache_policy_select_steady_state_capacities() {
    // Policy-level variant of the zero-allocation guard: `select_into`
    // through `PqCachePolicy` (group query, retriever scratch, output
    // buffer) must hold capacities steady across 100 decode steps, with
    // evictions interleaved (eviction encoding reuses its buffer too).
    let mut rng = Rng64::new(5);
    let keys = Matrix::randn(256, 16, 1.0, &mut rng);
    let init = pqcache::policies::PolicyInit {
        n_layers: 1,
        n_kv_heads: 1,
        head_dim: 16,
        middle_keys: vec![vec![keys]],
        accum_scores: None,
        window_scores: None,
    };
    let mut policy =
        PqCachePolicy::new(PqCachePolicyConfig { m: 2, b: 5, kmeans_iters: 8, seed: 3, ..Default::default() });
    policy.init(&init);
    let mut out = Vec::new();
    // Warm-up with the largest middle_len the loop will see so the scan
    // buffer reaches steady state up front.
    let warm_q = Matrix::randn(1, 16, 1.0, &mut rng);
    for _ in 0..3 {
        let key: Vec<f32> = (0..16).map(|_| rng.normal_f32(0.0, 1.0)).collect();
        policy.on_evict(0, 0, &key, 256);
    }
    let ctx = PolicyContext { layer: 0, kv_head: 0, queries: &warm_q, budget: 32, middle_len: 259 };
    policy.select_into(&ctx, &mut out);
    let caps = policy.scratch_capacities();
    let out_cap = out.capacity();
    for step in 0..100 {
        let q = Matrix::randn(2, 16, 1.0, &mut rng);
        let ctx =
            PolicyContext { layer: 0, kv_head: 0, queries: &q, budget: 32, middle_len: 259 };
        policy.select_into(&ctx, &mut out);
        assert_eq!(out.len(), 32, "step {step}");
        assert!(out.iter().all(|&i| i < 259));
        assert_eq!(policy.scratch_capacities(), caps, "scratch grew at step {step}");
        assert_eq!(out.capacity(), out_cap, "selection buffer grew at step {step}");
    }
}

#[test]
fn select_wrapper_matches_select_into() {
    let mut rng = Rng64::new(13);
    let keys = Matrix::randn(128, 16, 1.0, &mut rng);
    let init = pqcache::policies::PolicyInit {
        n_layers: 1,
        n_kv_heads: 1,
        head_dim: 16,
        middle_keys: vec![vec![keys]],
        accum_scores: None,
        window_scores: None,
    };
    let mut policy =
        PqCachePolicy::new(PqCachePolicyConfig { m: 2, b: 4, kmeans_iters: 6, seed: 11, ..Default::default() });
    policy.init(&init);
    let q = Matrix::randn(1, 16, 1.0, &mut rng);
    let ctx = PolicyContext { layer: 0, kv_head: 0, queries: &q, budget: 10, middle_len: 128 };
    let via_wrapper = policy.select(&ctx);
    let mut via_into = Vec::new();
    let ctx2 = PolicyContext { layer: 0, kv_head: 0, queries: &q, budget: 10, middle_len: 128 };
    policy.select_into(&ctx2, &mut via_into);
    assert_eq!(via_wrapper, via_into);
}
