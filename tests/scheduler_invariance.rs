//! Schedule-invariance battery: **no scheduling knob may change results**.
//!
//! `tests/serve_equivalence.rs` proves the serve engine matches sequential
//! decoding under the default schedule. This battery proves the *SLO*
//! schedule space preserves that contract: proptest sweeps random prefill
//! chunk budgets, priority mixes, slot pressure, and injected admission
//! rejections (which delay requests into the maturity queue and force
//! preemption orderings) across 1, 2, and 4 shards — and every swept
//! schedule must reproduce each session's logits bit-for-bit against the
//! sequential engine. A deterministic storm case additionally pins that
//! the sweep really exercises the preemption path (suspend through the
//! paged tier, resume later) rather than vacuously passing.

use proptest::prelude::*;
use pqcache::core::{CacheConfig, SelectiveSession, SessionConfig};
use pqcache::llm::{LlmConfig, Model};
use pqcache::policies::{PqCachePolicy, SelectionPolicy, StreamingLlmPolicy};
use pqcache::serve::{FaultPlan, Priority, ServeConfig, ServeEngine, ServeReport, ServeRequest};
use pqcache::tensor::{argmax, Rng64};
use std::sync::OnceLock;

const N_SESSIONS: usize = 6;
const DECODE_STEPS: usize = 8;

fn session_cfg() -> SessionConfig {
    SessionConfig {
        n_init: 2,
        n_local: 8,
        token_ratio: 0.25,
        comm_fraction: 1.0 / 16.0,
        obs_window: 8,
        cache: CacheConfig { capacity_tokens: 64, block_size: 8, lfu: true, k_cache_blocks: 4 },
        ivf: pqcache::core::IvfMode::Exact,
    }
}

fn prompt(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = Rng64::new(seed);
    (0..n).map(|_| rng.below(200) as u32).collect()
}

fn fixture_prompts() -> Vec<Vec<u32>> {
    (0..N_SESSIONS).map(|i| prompt(48 + 16 * (i % 3), 0xF1 + i as u64)).collect()
}

fn make_policy(i: usize) -> Box<dyn SelectionPolicy + Send> {
    if i % 3 == 2 {
        Box::new(StreamingLlmPolicy)
    } else {
        Box::new(PqCachePolicy::default())
    }
}

/// Sequential ground truth for one session: the tokens and per-step logits
/// any schedule must reproduce exactly.
struct Reference {
    generated: Vec<u32>,
    logits: Vec<Vec<f32>>,
}

/// Model + sequential references, computed once: every proptest case reuses
/// the same ground truth, so the sweep spends its time on schedules.
fn fixture() -> &'static (Model, Vec<Reference>) {
    static FIXTURE: OnceLock<(Model, Vec<Reference>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let model = Model::new(LlmConfig::tiny());
        let references: Vec<Reference> = fixture_prompts()
            .iter()
            .enumerate()
            .map(|(i, toks)| {
                let start = SelectiveSession::start(&model, make_policy(i), session_cfg(), toks);
                let mut session = start.session;
                let mut next = argmax(&start.logits) as u32;
                let mut generated = Vec::new();
                let mut logits = Vec::new();
                for _ in 0..DECODE_STEPS {
                    generated.push(next);
                    let dec = session.decode(next);
                    logits.push(dec.logits.clone());
                    next = dec.greedy();
                }
                Reference { generated, logits }
            })
            .collect();
        (model, references)
    })
}

fn tier(p: u8) -> Priority {
    match p {
        0 => Priority::Low,
        1 => Priority::Normal,
        _ => Priority::High,
    }
}

/// One swept schedule: `rejects[i]` injected admission rejections delay
/// request `i` into the maturity queue (≤ the default retry budget, so it
/// always lands eventually), shifting arrival order and forcing preemptions
/// when a delayed high-priority request matures against a full shard.
fn serve_fleet(
    model: &Model,
    shards: usize,
    slots: usize,
    chunk: Option<usize>,
    priorities: &[u8],
    rejects: &[u8],
) -> ServeReport {
    let mut plan = FaultPlan::seeded(0xC0DE);
    for (i, &r) in rejects.iter().enumerate() {
        if r > 0 {
            plan = plan.with_admission_rejects(i as u64, r as u32);
        }
    }
    let cfg = ServeConfig {
        shards,
        max_active_per_shard: slots,
        queue_capacity: N_SESSIONS,
        prefill_chunk_tokens: chunk,
        session: session_cfg(),
        record_trace: true,
        faults: Some(plan),
        ..Default::default()
    };
    let requests: Vec<ServeRequest> = fixture_prompts()
        .into_iter()
        .enumerate()
        .map(|(i, tokens)| {
            ServeRequest::new(i as u64, tokens, DECODE_STEPS, make_policy(i))
                .with_priority(tier(priorities[i]))
        })
        .collect();
    ServeEngine::run(model, &cfg, requests).expect("valid config")
}

fn assert_matches_sequential(report: &ServeReport, label: &str) {
    let (_, references) = fixture();
    assert_eq!(report.completions.len(), N_SESSIONS, "{label}: fleet lost requests");
    for (i, (seq, com)) in references.iter().zip(report.completions.iter()).enumerate() {
        assert_eq!(com.id, i as u64);
        assert!(com.failure.is_none(), "{label}: session {i} failed: {:?}", com.failure);
        assert_eq!(seq.generated, com.generated, "{label}: session {i} tokens diverged");
        assert_eq!(com.trace.len(), DECODE_STEPS, "{label}: session {i} trace truncated");
        for (step, tr) in com.trace.iter().enumerate() {
            assert_eq!(
                seq.logits[step], tr.logits,
                "{label}: session {i} step {step} logits diverged"
            );
        }
    }
}

proptest! {
    // Each case runs three full serve fleets; keep the count modest and
    // let the deterministic cases below pin the known-hard corners.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The core property: any (chunk budget, priority mix, slot pressure,
    /// rejection schedule) × any shard count decodes bit-identically to the
    /// sequential engine.
    #[test]
    fn random_schedules_decode_bit_identically(
        // 0 means monolithic admission (chunking off) — every other value
        // is a per-tick chunk budget.
        chunk_raw in 0usize..=96,
        priorities in proptest::collection::vec(0u8..3, N_SESSIONS),
        rejects in proptest::collection::vec(0u8..=2, N_SESSIONS),
        slots in 1usize..=3,
    ) {
        let chunk = (chunk_raw > 0).then_some(chunk_raw);
        let (model, _) = fixture();
        for shards in [1usize, 2, 4] {
            let report = serve_fleet(model, shards, slots, chunk, &priorities, &rejects);
            assert_matches_sequential(
                &report,
                &format!("chunk {chunk:?} priorities {priorities:?} rejects {rejects:?} \
                          slots {slots} shards {shards}"),
            );
        }
    }
}

/// Maximum contention, deterministically: one shard, one slot, every
/// priority tier present, and both high-priority requests delayed by
/// injected rejections so a lower-class session is always mid-decode when
/// they mature. The schedule *must* preempt (proving the sweep exercises
/// suspend/resume through the paged tier) and still match sequential.
#[test]
fn forced_preemption_storm_is_bit_identical() {
    let (model, _) = fixture();
    let priorities = [0u8, 1, 2, 0, 1, 2];
    let rejects = [0u8, 0, 1, 0, 0, 2];
    for chunk in [None, Some(5), Some(32)] {
        let report = serve_fleet(model, 1, 1, chunk, &priorities, &rejects);
        assert!(
            report.total_preemptions() >= 1,
            "storm (chunk {chunk:?}) never preempted — the battery is vacuous"
        );
        assert_matches_sequential(&report, &format!("storm chunk {chunk:?}"));
    }
}

/// The same storm knobs across shard counts: results must agree with the
/// sequential engine at 1, 2, and 4 shards (and hence with each other).
#[test]
fn storm_knobs_are_shard_count_invariant() {
    let (model, _) = fixture();
    let priorities = [2u8, 0, 1, 2, 0, 1];
    let rejects = [1u8, 0, 0, 2, 0, 0];
    for shards in [1usize, 2, 4] {
        let report = serve_fleet(model, shards, 2, Some(7), &priorities, &rejects);
        assert_matches_sequential(&report, &format!("shards {shards}"));
    }
}

/// Chunk budgets spanning degenerate (1 token per tick), misaligned with
/// the page size, and larger-than-any-prompt, under slot starvation.
#[test]
fn chunk_budget_sweep_under_slot_starvation() {
    let (model, _) = fixture();
    let priorities = [1u8; N_SESSIONS];
    let rejects = [0u8; N_SESSIONS];
    for chunk in [1usize, 3, 16, 1000] {
        let report = serve_fleet(model, 2, 1, Some(chunk), &priorities, &rejects);
        assert_matches_sequential(&report, &format!("chunk {chunk}"));
    }
}
