//! IVF-routed retrieval equivalence battery.
//!
//! The contract behind `IvfMode`: routing the decode-step scan through an
//! inverted file is *transparent* at full probe width — `Probe(n_list)`
//! must reproduce `Exact` bit for bit (per-token scores, selected sets, and
//! decode-step logits), because the cells partition the tokens and each
//! cell's SoA code columns preserve the flat scan's per-token accumulation
//! order. Narrower probes trade recall for sublinear scan cost; a fixed
//! floor pins that trade-off down on a clustered fixture.

use pqcache::core::{CacheConfig, IvfMode, SelectiveSession, SessionConfig};
use pqcache::llm::{LlmConfig, Model};
use pqcache::policies::{PqCachePolicy, PqCachePolicyConfig};
use pqcache::pq::{
    AdcTable, IvfConfig, IvfIndex, PqCodebook, PqCodes, PqConfig, PqRetriever,
};
use pqcache::tensor::{topk_recall, Matrix, Rng64};

fn fixture(s: usize, dh: usize, m: usize, b: u32, seed: u64) -> (Matrix, PqCodebook, PqCodes) {
    let mut rng = Rng64::new(seed);
    let keys = Matrix::randn(s, dh, 1.0, &mut rng);
    let (book, codes) = PqCodebook::train(&keys, PqConfig { m, b, max_iters: 10, seed });
    (keys, book, codes)
}

/// Clustered keys (`Matrix::clustered`, the same generator the ivf bench
/// rows use): the regime where IVF recall is meaningful — on isotropic
/// noise coarse cells carry no signal.
fn clustered_keys(s: usize, dh: usize, centers: usize, spread: f32, seed: u64) -> Matrix {
    Matrix::clustered(s, dh, centers, spread, &mut Rng64::new(seed))
}

#[test]
fn probe_all_scores_bit_identical_to_flat_scan() {
    // Scatter the per-cell scans back into token order: every score must
    // equal the flat fused scan's bit for bit, on both paper operating
    // points — the invariant that makes full-probe selection exact.
    for &(m, b, seed) in &[(2usize, 6u32, 501u64), (4, 8, 502)] {
        let (keys, book, codes) = fixture(700, 32, m, b, seed);
        let ivf = IvfIndex::build(
            &keys,
            &codes,
            IvfConfig { n_list: 12, n_probe: 12, max_iters: 8, seed },
        );
        let mut rng = Rng64::new(seed ^ 0xF00D);
        let q: Vec<f32> = (0..32).map(|_| rng.normal_f32(0.0, 1.0)).collect();
        let table = AdcTable::build(&book, &q);
        let mut flat = Vec::new();
        table.scores_into(&codes, &mut flat);
        let mut scattered = vec![0.0f32; codes.len()];
        let mut cell_scores = Vec::new();
        for c in 0..ivf.n_list() {
            let (ids, cell_codes) = ivf.cell(c);
            cell_scores.clear();
            table.scores_into(cell_codes, &mut cell_scores);
            for (&id, &s) in ids.iter().zip(cell_scores.iter()) {
                scattered[id as usize] = s;
            }
        }
        for (i, (a, bscore)) in flat.iter().zip(scattered.iter()).enumerate() {
            assert_eq!(a.to_bits(), bscore.to_bits(), "token {i} diverged (m={m}, b={b})");
        }
    }
}

#[test]
fn probe_all_selection_bit_identical_on_paper_fixtures() {
    // Probe(n_list) through the fused routed scan == the flat fused scan,
    // for every (n, k) shape including partial prefixes and k >= n — with
    // appends interleaved mid-stream.
    for &(m, b, seed) in &[(2usize, 6u32, 601u64), (4, 8, 602)] {
        let (keys, book, mut codes) = fixture(pqcache::pq::CODE_BLOCK + 331, 32, m, b, seed);
        let n_list = 10;
        let mut ivf = IvfIndex::build(
            &keys,
            &codes,
            IvfConfig { n_list, n_probe: n_list, max_iters: 8, seed },
        );
        let mut retriever = PqRetriever::new();
        let mut rng = Rng64::new(seed ^ 0xCAFE);
        for trial in 0..6 {
            // Interleave appends (eviction-path growth).
            if trial % 2 == 1 {
                let key: Vec<f32> = (0..32).map(|_| rng.normal_f32(0.0, 1.0)).collect();
                let tc = book.assign(&key);
                let id = codes.len();
                codes.push(&tc);
                ivf.append_token(id, &key, &tc);
            }
            let q: Vec<f32> = (0..32).map(|_| rng.normal_f32(0.0, 1.0)).collect();
            for &(n, k) in &[
                (codes.len(), 24usize),
                (codes.len(), 0),
                (codes.len(), codes.len()),
                (pqcache::pq::CODE_BLOCK + 7, 16),
                (5, 9),
                (0, 3),
            ] {
                let mut flat = Vec::new();
                let _ = retriever.score_and_select_into(&book, &codes, &q, n, k, &mut flat);
                let mut routed = Vec::new();
                let stats = retriever.score_and_select_ivf_into(
                    &book, &ivf, &q, n, k, n_list, &mut routed,
                );
                assert_eq!(flat, routed, "m={m} b={b} trial={trial} n={n} k={k}");
                assert!(stats.scanned_tokens <= n.min(codes.len()), "over-scan");
            }
        }
    }
}

#[test]
fn probe_all_stays_exact_across_rebalance() {
    // rebalance() moves tokens between cells; the partition invariant must
    // keep full-probe selection bit-identical afterwards.
    let (keys, book, codes) = fixture(900, 16, 2, 6, 701);
    let n_list = 8;
    let mut ivf = IvfIndex::build(
        &keys,
        &codes,
        IvfConfig { n_list, n_probe: n_list, max_iters: 6, seed: 701 },
    );
    let mut retriever = PqRetriever::new();
    let mut rng = Rng64::new(703);
    for round in 0..3 {
        let moved = ivf.rebalance(&keys, 1 + round);
        let q: Vec<f32> = (0..16).map(|_| rng.normal_f32(0.0, 1.0)).collect();
        let mut flat = Vec::new();
        let _ = retriever.score_and_select_into(&book, &codes, &q, codes.len(), 40, &mut flat);
        let mut routed = Vec::new();
        let _ = retriever
            .score_and_select_ivf_into(&book, &ivf, &q, codes.len(), 40, n_list, &mut routed);
        assert_eq!(flat, routed, "round {round} (moved {moved})");
    }
}

#[test]
fn full_decode_probe_equals_exact_logits_selections() {
    // The whole-stack assertion: a session decoding under
    // SessionConfig::ivf = Probe(n_list) produces the same logits and the
    // same selected-token sets as the exact session, step for step, on
    // both paper PQ operating points.
    let model = Model::new(LlmConfig::tiny());
    let mut rng = Rng64::new(11);
    let toks: Vec<u32> = (0..88).map(|_| rng.below(200) as u32).collect();
    for &(m, b) in &[(2usize, 6u32), (4, 8)] {
        let n_list = 8;
        let run = |ivf_mode| {
            let cfg = SessionConfig {
                n_init: 2,
                n_local: 8,
                token_ratio: 0.3,
                comm_fraction: 1.0 / 16.0,
                obs_window: 8,
                cache: CacheConfig { capacity_tokens: 64, block_size: 8, lfu: true, k_cache_blocks: 4 },
                ivf: ivf_mode,
            };
            let policy = PqCachePolicy::new(PqCachePolicyConfig {
                m,
                b,
                kmeans_iters: 10,
                seed: 77,
                ivf_n_list: n_list,
                ..Default::default()
            });
            let start = SelectiveSession::start(&model, Box::new(policy), cfg, &toks);
            let mut session = start.session;
            let mut next = pqcache::tensor::argmax(&start.logits) as u32;
            let mut logits = Vec::new();
            let mut selections = Vec::new();
            for _ in 0..10 {
                let dec = session.decode(next);
                next = dec.greedy();
                logits.push(dec.logits);
                selections.push(session.selected_snapshot());
            }
            (logits, selections)
        };
        let exact = run(IvfMode::Exact);
        let probe = run(IvfMode::Probe(n_list));
        for step in 0..exact.0.len() {
            for (i, (a, bl)) in exact.0[step].iter().zip(probe.0[step].iter()).enumerate() {
                assert_eq!(a.to_bits(), bl.to_bits(), "m={m} b={b} step {step} logit {i}");
            }
            assert_eq!(exact.1[step], probe.1[step], "m={m} b={b} step {step} selections");
        }
    }
}

#[test]
fn recall_at_k_regression_floor() {
    // The probe trade-off pinned down: on a clustered fixture (64 centers,
    // mild spread) with token-aligned queries, probing 8 of 64 cells must
    // keep recall@64 >= 0.95 against the flat fused selection — the same
    // floor the ivf_select bench row gates at s = 262144.
    let (s, dh, k) = (8192, 32, 64);
    let keys = clustered_keys(s, dh, 64, 0.35, 801);
    let (book, codes) = PqCodebook::train(&keys, PqConfig { m: 2, b: 6, max_iters: 8, seed: 801 });
    let ivf = IvfIndex::build(
        &keys,
        &codes,
        IvfConfig { n_list: 64, n_probe: 8, max_iters: 8, seed: 802 },
    );
    let mut retriever = PqRetriever::new();
    let mut rng = Rng64::new(803);
    let mut recall_sum = 0.0;
    let mut scanned_sum = 0usize;
    let trials = 24;
    for _ in 0..trials {
        // Decode-style query: aligned with a random token's key plus noise.
        let t = rng.below(s);
        let q: Vec<f32> = keys
            .row(t)
            .iter()
            .map(|v| v + 0.25 * rng.normal_f32(0.0, 1.0))
            .collect();
        let mut exact = Vec::new();
        let _ = retriever.score_and_select_into(&book, &codes, &q, s, k, &mut exact);
        let mut routed = Vec::new();
        let stats = retriever.score_and_select_ivf_into(&book, &ivf, &q, s, k, 8, &mut routed);
        recall_sum += topk_recall(&exact, &routed);
        scanned_sum += stats.scanned_tokens;
    }
    let recall = recall_sum / trials as f64;
    let scan_frac = scanned_sum as f64 / (trials * s) as f64;
    assert!(recall >= 0.95, "recall@{k} regressed: {recall:.3}");
    assert!(scan_frac < 0.35, "probe scanned too much: {scan_frac:.3}");
}

#[test]
fn ivf_retriever_steady_state_allocates_nothing() {
    // Zero-alloc audit for the routed path: 100 decode-step retrievals
    // through `score_and_select_ivf_into` (table rebuild + coarse routing +
    // pruned cell scans + streaming selection) hold every scratch capacity
    // steady after warm-up.
    let (keys, book, codes) = fixture(pqcache::pq::CODE_BLOCK + 400, 32, 2, 6, 901);
    let ivf = IvfIndex::build(
        &keys,
        &codes,
        IvfConfig { n_list: 16, n_probe: 4, max_iters: 6, seed: 901 },
    );
    let mut retriever = PqRetriever::new();
    let mut out = Vec::new();
    let mut rng = Rng64::new(902);
    let q: Vec<f32> = (0..32).map(|_| rng.normal_f32(0.0, 1.0)).collect();
    let _ = retriever.score_and_select_ivf_into(&book, &ivf, &q, codes.len(), 64, 4, &mut out);
    let caps = retriever.scratch_capacities();
    let out_cap = out.capacity();
    for step in 0..100 {
        let q: Vec<f32> = (0..32).map(|_| rng.normal_f32(0.0, 1.0)).collect();
        let stats =
            retriever.score_and_select_ivf_into(&book, &ivf, &q, codes.len(), 64, 4, &mut out);
        assert_eq!(out.len(), 64, "step {step}");
        assert_eq!(stats.probed_cells, 4, "step {step}");
        assert!(stats.scanned_tokens < codes.len(), "step {step}: probe must be partial");
        assert_eq!(retriever.scratch_capacities(), caps, "scratch grew at step {step}");
        assert_eq!(out.capacity(), out_cap, "output buffer grew at step {step}");
    }
}
