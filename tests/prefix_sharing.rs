//! Prefix-cache battery: shared-prefix fleets must be **bit-identical** to
//! cold-started ones while sharing host pages and trained PQ/IVF state.
//!
//! The serving contract extends serve-vs-sequential equivalence: turning
//! the prefix cache on (the default) changes *cost* — host residency,
//! offload traffic, clustering work — but never *results*. A fleet of N
//! sessions over G distinct prompts keeps ~O(G × tokens) host bytes
//! resident instead of O(N × tokens), registers G prefixes, full-hits the
//! other N−G admissions, and still decodes every session exactly as
//! `SelectiveSession::decode` would alone.

use pqcache::core::{CacheConfig, SelectiveSession, SessionConfig};
use pqcache::llm::{LlmConfig, Model};
use pqcache::policies::{PqCachePolicy, SelectionPolicy, StreamingLlmPolicy};
use pqcache::serve::{ServeConfig, ServeEngine, ServeRequest};
use pqcache::tensor::{argmax, Rng64};
use pqcache::workloads::{shared_prefix_trace, TraceConfig, VocabLayout};

const DECODE_STEPS: usize = 6;

fn session_cfg() -> SessionConfig {
    SessionConfig {
        n_init: 2,
        n_local: 8,
        token_ratio: 0.25,
        comm_fraction: 1.0 / 16.0,
        obs_window: 8,
        cache: CacheConfig { capacity_tokens: 64, block_size: 8, lfu: true, k_cache_blocks: 4 },
        ivf: pqcache::core::IvfMode::Exact,
    }
}

fn prompt(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = Rng64::new(seed);
    (0..n).map(|_| rng.below(200) as u32).collect()
}

/// A fleet of `n` sessions spread over `groups` identical prompts,
/// round-robin so hits interleave with misses.
fn fleet(n: usize, groups: usize, policy: fn(usize) -> Box<dyn SelectionPolicy + Send>) -> Vec<ServeRequest> {
    let prompts: Vec<Vec<u32>> = (0..groups).map(|g| prompt(96, 0xA11CE + g as u64)).collect();
    (0..n)
        .map(|i| ServeRequest::new(i as u64, prompts[i % groups].clone(), DECODE_STEPS, policy(i)))
        .collect()
}

fn pq_only(_i: usize) -> Box<dyn SelectionPolicy + Send> {
    Box::new(PqCachePolicy::default())
}

fn mixed(i: usize) -> Box<dyn SelectionPolicy + Send> {
    // StreamingLlm exports no shared policy state — hit sessions fall back
    // to re-initialising from the shared prefill, which must be equivalent.
    if i % 3 == 2 {
        Box::new(StreamingLlmPolicy)
    } else {
        Box::new(PqCachePolicy::default())
    }
}

fn serve_cfg(shards: usize, fleet_size: usize) -> ServeConfig {
    ServeConfig {
        shards,
        max_active_per_shard: fleet_size.div_ceil(shards),
        queue_capacity: fleet_size.max(2),
        session: session_cfg(),
        record_trace: true,
        ..Default::default()
    }
}

/// Shared-prefix fleets decode bit-identically to standalone sessions —
/// logits, selected sets, and tokens — at 1 and 2 shards, with mixed
/// policies (with and without exportable shared state).
#[test]
fn shared_prefix_fleet_matches_sequential() {
    let model = Model::new(LlmConfig::tiny());
    let n = 9;
    // Sequential reference: every session cold, alone, via decode().
    let reference: Vec<(Vec<u32>, Vec<Vec<f32>>)> = fleet(n, 3, mixed)
        .into_iter()
        .map(|req| {
            let start = SelectiveSession::start(&model, req.policy, session_cfg(), &req.tokens);
            let mut session = start.session;
            let mut next = argmax(&start.logits) as u32;
            let mut generated = Vec::new();
            let mut logits = Vec::new();
            for _ in 0..DECODE_STEPS {
                generated.push(next);
                let dec = session.decode(next);
                logits.push(dec.logits.clone());
                next = dec.greedy();
            }
            (generated, logits)
        })
        .collect();

    for shards in [1, 2] {
        let report =
            ServeEngine::run(&model, &serve_cfg(shards, n), fleet(n, 3, mixed)).expect("valid config");
        assert_eq!(report.completions.len(), n);
        for (i, c) in report.completions.iter().enumerate() {
            assert_eq!(c.generated, reference[i].0, "session {i} tokens under {shards} shards");
            for (step, tr) in c.trace.iter().enumerate() {
                assert_eq!(
                    tr.logits, reference[i].1[step],
                    "session {i} step {step} logits under {shards} shards"
                );
            }
        }
        // At one shard admission is sequential, so exactly the first
        // member of each group is cold and everyone else full-hits.
        if shards == 1 {
            assert_eq!(report.prefix.full_hits, (n - 3) as u64);
        }
    }
}

/// Sequential admission (1 shard): exact hit accounting, O(unique-tokens)
/// host residency, and the d2h saving the hits imply.
#[test]
fn prefix_hit_rate_and_host_residency() {
    let model = Model::new(LlmConfig::tiny());
    let (n, groups) = (16, 2);
    let cfg = serve_cfg(1, n); // whole fleet concurrently resident
    let shared = ServeEngine::run(&model, &cfg, fleet(n, groups, pq_only)).expect("valid config");
    assert_eq!(shared.prefix.lookups, n as u64);
    assert_eq!(shared.prefix.entries, groups);
    assert_eq!(shared.prefix.full_hits, (n - groups) as u64);
    let rate = shared.prefix.full_hit_rate();
    assert!(rate > 0.85, "hit rate {rate}");
    assert_eq!(shared.aggregate_sharing.prefix_hit_tokens, ((n - groups) * 96) as u64);
    // Per-completion sharing sums to the aggregate.
    let sum_hit: u64 = shared.completions.iter().map(|c| c.sharing.prefix_hit_tokens).sum();
    let sum_cow: u64 = shared.completions.iter().map(|c| c.sharing.cow_copies).sum();
    assert_eq!(sum_hit, shared.aggregate_sharing.prefix_hit_tokens);
    assert!(sum_cow <= shared.aggregate_sharing.cow_copies, "registry CoWs excluded");

    let cold = ServeEngine::run(
        &model,
        &ServeConfig { prefix_cache: false, ..cfg },
        fleet(n, groups, pq_only),
    )
    .expect("valid config");
    // Results identical; host peak at least halved (the acceptance gate);
    // offload traffic reduced by exactly the shared prompts.
    for (a, b) in shared.completions.iter().zip(cold.completions.iter()) {
        assert_eq!(a.generated, b.generated);
        assert_eq!(a.transfer.h2d_bytes, b.transfer.h2d_bytes, "fetch traffic must not change");
    }
    let dedup = cold.peak_host_bytes as f64 / shared.peak_host_bytes as f64;
    assert!(dedup >= 2.0, "dedup factor {dedup:.2} (cold {} shared {})", cold.peak_host_bytes, shared.peak_host_bytes);
    assert!(
        shared.aggregate_transfer.d2h_bytes < cold.aggregate_transfer.d2h_bytes,
        "sharing must reduce offload traffic"
    );
    assert_eq!(cold.prefix.lookups, 0, "disabled cache must not be consulted");
}

/// The workloads generator end-to-end: a `shared_prefix_trace` fleet hits
/// per its group structure and same-group sessions agree on their common
/// decoded prefix.
#[test]
fn shared_prefix_trace_drives_the_cache() {
    let model = Model::new(LlmConfig::tiny());
    let (n, groups) = (12, 3);
    let trace = shared_prefix_trace(
        &TraceConfig {
            sessions: n,
            prompt_lens: [96, 128, 160],
            decode_steps: (3, 9),
            layout: VocabLayout::for_vocab(256),
            ..Default::default()
        },
        groups,
    );
    let requests: Vec<ServeRequest> = trace
        .requests
        .iter()
        .map(|r| {
            ServeRequest::new(
                r.id,
                r.workload.tokens.clone(),
                r.decode_steps,
                Box::new(PqCachePolicy::default()),
            )
        })
        .collect();
    let report = ServeEngine::run(&model, &serve_cfg(1, n), requests).expect("valid config");
    assert_eq!(report.prefix.entries, groups);
    assert_eq!(report.prefix.full_hits, (n - groups) as u64);
    // Greedy decode is deterministic: same prompt ⇒ same continuation, so
    // every session in a group shares the common generated prefix.
    for g in 0..groups {
        let members: Vec<_> =
            report.completions.iter().filter(|c| (c.id as usize) % groups == g).collect();
        let first = &members[0];
        for m in &members[1..] {
            let k = first.generated.len().min(m.generated.len());
            assert_eq!(
                first.generated[..k],
                m.generated[..k],
                "group {g} sessions diverged on their common prefix"
            );
        }
    }
}
