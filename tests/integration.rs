//! Cross-crate integration tests: the full PQCache pipeline from prompt to
//! generated tokens, exercised through the public umbrella API.

use pqcache::core::{CacheConfig, SelectiveSession, SessionConfig};
use pqcache::llm::{FullKvSource, LlmConfig, Model};
use pqcache::tensor::Rng64;
use pqcache::workloads::{
    evaluate_method, needle, qa, reference, EvalConfig, MethodSpec, QuestionPosition, VocabLayout,
};

fn session_cfg() -> SessionConfig {
    SessionConfig {
        n_init: 2,
        n_local: 8,
        token_ratio: 0.25,
        comm_fraction: 1.0 / 16.0,
        obs_window: 8,
        cache: CacheConfig { capacity_tokens: 64, block_size: 8, lfu: true, k_cache_blocks: 4 },
        ivf: pqcache::core::IvfMode::Exact,
    }
}

fn prompt(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = Rng64::new(seed);
    (0..n).map(|_| rng.below(200) as u32).collect()
}

#[test]
fn full_budget_selective_session_is_exact() {
    // End-to-end invariant: a selective session with an everything-budget
    // reproduces the reference generation bit-for-bit, across model configs.
    {
        let cfg = LlmConfig::tiny();
        let model = Model::new(cfg);
        let toks = prompt(64, 1);
        let reference_tokens = model.generate_full(&toks, 12);
        let mut scfg = session_cfg();
        scfg.token_ratio = 1.0;
        let policy = MethodSpec::Full.build(model.config().head_dim, scfg.comm_fraction);
        let start = SelectiveSession::start(&model, policy, scfg, &toks);
        let mut session = start.session;
        assert_eq!(session.generate(&start.logits, 12), reference_tokens);
    }
}

#[test]
fn every_method_runs_end_to_end() {
    let model = Model::new(LlmConfig::tiny());
    let toks = prompt(72, 2);
    for spec in MethodSpec::paper_lineup() {
        let policy = spec.build(model.config().head_dim, 1.0 / 16.0);
        let start = SelectiveSession::start(&model, policy, session_cfg(), &toks);
        let mut session = start.session;
        let out = session.generate(&start.logits, 6);
        assert_eq!(out.len(), 6, "{}", spec.name());
        assert!(out.iter().all(|&t| (t as usize) < model.config().vocab_size));
    }
}

#[test]
fn method_fidelity_ordering_on_needle() {
    // The paper's headline ordering on a retrieval workload:
    // Oracle >= PQCache > StreamingLLM, with PQCache close to Oracle.
    let model = Model::new(LlmConfig::tiny());
    let layout = VocabLayout::for_vocab(model.config().vocab_size);
    let w = needle(160, 0.5, &layout, 3);
    let cfg = EvalConfig { steps: 12, session: session_cfg(), driver_seed: 5 };
    let rf = reference(&model, &w, &cfg);
    let oracle = evaluate_method(&model, &w, &rf, MethodSpec::Oracle, &cfg);
    let pqc = evaluate_method(&model, &w, &rf, MethodSpec::pqcache_default(), &cfg);
    let streaming = evaluate_method(&model, &w, &rf, MethodSpec::StreamingLlm, &cfg);
    assert!(
        oracle.hidden_cosine >= pqc.hidden_cosine - 0.02,
        "oracle {} pqc {}",
        oracle.hidden_cosine,
        pqc.hidden_cosine
    );
    assert!(
        pqc.hidden_cosine > streaming.hidden_cosine,
        "pqc {} streaming {}",
        pqc.hidden_cosine,
        streaming.hidden_cosine
    );
}

#[test]
fn pqcache_transfers_less_than_oracle_scan_would() {
    // PQCache's decode traffic is bounded by the selected tokens, far below
    // moving all keys every step.
    let model = Model::new(LlmConfig::tiny());
    let toks = prompt(96, 4);
    let policy = MethodSpec::pqcache_default().build(model.config().head_dim, 1.0 / 16.0);
    let start = SelectiveSession::start(&model, policy, session_cfg(), &toks);
    let mut session = start.session;
    let steps = 8;
    let _ = session.generate(&start.logits, steps);
    let ts = session.transfer_stats();
    let mcfg = model.config();
    // Full-key scan traffic per step: all middle keys, all layers/heads.
    let full_scan = (steps * 86 * mcfg.head_dim * 2 * mcfg.n_layers * mcfg.n_kv_heads) as u64;
    assert!(
        ts.h2d_bytes < full_scan,
        "fetch {} should be far below full scan {}",
        ts.h2d_bytes,
        full_scan
    );
}

#[test]
fn cache_reduces_fetch_traffic() {
    let model = Model::new(LlmConfig::tiny());
    let toks = prompt(96, 5);
    let run = |cache: CacheConfig| {
        let mut scfg = session_cfg();
        scfg.cache = cache;
        let policy = MethodSpec::pqcache_default().build(model.config().head_dim, 1.0 / 16.0);
        let start = SelectiveSession::start(&model, policy, scfg, &toks);
        let mut session = start.session;
        let _ = session.generate(&start.logits, 10);
        session.transfer_stats().h2d_bytes
    };
    let without = run(CacheConfig::disabled());
    let with = run(CacheConfig { capacity_tokens: 64, block_size: 8, lfu: true, k_cache_blocks: 8 });
    assert!(with < without, "cache should cut fetches: {with} vs {without}");
}

#[test]
fn question_position_robustness() {
    // PQCache's recall must not depend on question placement.
    let model = Model::new(LlmConfig::tiny());
    let layout = VocabLayout::for_vocab(model.config().vocab_size);
    let cfg = EvalConfig { steps: 12, session: session_cfg(), driver_seed: 6 };
    let mut last = Vec::new();
    for pos in [QuestionPosition::End, QuestionPosition::Start] {
        let w = qa(192, 3, pos, &layout, 7);
        let rf = reference(&model, &w, &cfg);
        let r = evaluate_method(&model, &w, &rf, MethodSpec::pqcache_default(), &cfg);
        last.push(r.planted_recall);
    }
    assert!(
        (last[0] - last[1]).abs() < 0.5,
        "recall should be position-robust: {last:?}"
    );
}

#[test]
fn decode_then_reference_match_for_teacher_forcing() {
    // The harness reference and a manual FullKvSource walk agree.
    let model = Model::new(LlmConfig::tiny());
    let layout = VocabLayout::for_vocab(model.config().vocab_size);
    let w = needle(96, 0.4, &layout, 8);
    let cfg = EvalConfig { steps: 6, session: session_cfg(), driver_seed: 9 };
    let rf = reference(&model, &w, &cfg);
    let mut src = FullKvSource::from_prefill(&rf.prefill);
    for (i, &t) in rf.driver.iter().enumerate() {
        let dec = model.decode_step(t, w.tokens.len() + i, &mut src);
        assert_eq!(
            pqcache::tensor::top_k_indices(&dec.logits, 5),
            rf.top_tokens[i],
            "step {i}"
        );
    }
}

#[test]
fn session_steps_and_middle_growth_consistent() {
    let model = Model::new(LlmConfig::tiny());
    let toks = prompt(80, 10);
    let policy = MethodSpec::pqcache_default().build(model.config().head_dim, 1.0 / 16.0);
    let start = SelectiveSession::start(&model, policy, session_cfg(), &toks);
    let mut session = start.session;
    let m0 = session.middle_len();
    let _ = session.generate(&start.logits, 15);
    assert_eq!(session.steps(), 15);
    assert_eq!(session.middle_len(), m0 + 15);
}
