//! # pqc-policies
//!
//! Selective-attention policies: the paper's baselines and PQCache itself,
//! behind one [`SelectionPolicy`] trait.
//!
//! The KVCache is segmented into **initial**, **middle**, and **local**
//! tokens (paper §3.4). Initial and local tokens always participate in
//! attention; a policy's job is to pick which *middle* tokens join them,
//! given the current decode query and a token budget. Policies fall into two
//! families:
//!
//! - **Dropping** (H2O, SnapKV, PyramidKV, StreamingLLM): commit to a fixed
//!   kept set at prefill time using attention statistics; anything dropped is
//!   gone for every later step — the failure mode the paper targets.
//! - **Offloading / retrieval** (Oracle, SPARQ, InfLLM, PQCache): keep
//!   everything on the host and re-select per step, paying communication.
//!
//! Every policy reports its per-step communication so comm-budget-matched
//! comparisons (§4.1.3) are honest.

#![warn(missing_docs)]

pub mod dropping;
pub mod pqcache;
pub mod retrieval;

use pqc_pq::PqRetriever;
use pqc_tensor::{Matrix, TopK};
use std::any::Any;
use std::sync::Arc;

pub use dropping::{H2oPolicy, PyramidKvPolicy, SnapKvPolicy, StreamingLlmPolicy};
pub use pqc_pq::IvfMode;
pub use pqcache::{PqCachePolicy, PqCachePolicyConfig};
pub use retrieval::{FullAttentionPolicy, InfLlmPolicy, OraclePolicy, SparqPolicy};

/// A runtime effort override for retrieval-based selection — the serving
/// layer's brownout knob.
///
/// The paper's quality/compute tradeoff (IVF `n_probe` and selection
/// budget `k` trade recall for scan work) is normally fixed at
/// construction time. `SelectionEffort` makes it a *per-step* control
/// surface: an overload controller dials effort down on low-priority
/// sessions while pressure lasts and restores it when pressure clears,
/// without touching trained state.
///
/// Semantics:
/// - `k_frac` scales the selection budget `k` (the number of middle
///   tokens fetched per step). `1.0` = full budget. Degraded budgets are
///   floored at 1 so selection never collapses to nothing.
/// - `max_n_probe` caps IVF coarse-cell probes (`None` = the policy's
///   configured probe width). Exact-mode policies ignore it.
///
/// [`SelectionEffort::full`] is the identity: policies must behave
/// **bit-identically** to a build without effort plumbing when effort is
/// full — the degraded code paths are skipped entirely, not evaluated at
/// a neutral setting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectionEffort {
    /// Budget multiplier in `(0, 1]`; `1.0` = full effort.
    pub k_frac: f64,
    /// Cap on IVF probe width; `None` = the configured `n_probe`.
    pub max_n_probe: Option<usize>,
}

impl SelectionEffort {
    /// Full effort: the identity override.
    pub const fn full() -> Self {
        Self { k_frac: 1.0, max_n_probe: None }
    }

    /// Whether this override changes nothing.
    pub fn is_full(&self) -> bool {
        self.k_frac >= 1.0 && self.max_n_probe.is_none()
    }

    /// Effective selection budget for a nominal `k`. Full effort returns
    /// `k` untouched (no float math on the identity path); degraded
    /// effort floors at 1 whenever `k > 0`.
    pub fn effective_k(&self, k: usize) -> usize {
        if self.k_frac >= 1.0 || k == 0 {
            return k;
        }
        (((k as f64) * self.k_frac).floor() as usize).clamp(1, k)
    }

    /// Effective probe width for a nominal `n_probe`. Full effort returns
    /// it untouched; a cap floors at 1.
    pub fn effective_n_probe(&self, n_probe: usize) -> usize {
        match self.max_n_probe {
            Some(cap) => n_probe.min(cap).max(1),
            None => n_probe,
        }
    }
}

impl Default for SelectionEffort {
    fn default() -> Self {
        Self::full()
    }
}

/// An opaque, cheaply-cloneable snapshot of a policy's trained prefix
/// state, shareable across sessions with the same prompt prefix.
///
/// Exported by [`SelectionPolicy::export_shared`] right after `init` and
/// stored (by the serving layer) in the KV tier's prefix registry; a later
/// session with the same prompt hands it to
/// [`SelectionPolicy::import_shared`], which adopts the trained state —
/// PQCache's codebooks, per-token codes, and IVF tiers — instead of
/// re-running k-means over the shared middle keys. Because training is
/// deterministically seeded, an imported snapshot is bit-identical to
/// retraining, so sharing never changes results — only skips work.
///
/// The inner value is policy-specific; `import_shared` downcasts and
/// returns `false` on any mismatch (different policy, different config), in
/// which case the caller falls back to a normal `init`.
#[derive(Clone)]
pub struct SharedPolicyState {
    policy: &'static str,
    state: Arc<dyn Any + Send + Sync>,
}

impl SharedPolicyState {
    /// Wrap a policy's snapshot. `policy` is the exporting policy's
    /// [`SelectionPolicy::name`].
    pub fn new(policy: &'static str, state: Arc<dyn Any + Send + Sync>) -> Self {
        Self { policy, state }
    }

    /// Name of the policy that exported this state.
    pub fn policy(&self) -> &'static str {
        self.policy
    }

    /// The opaque snapshot, for the owning policy to downcast.
    pub fn state(&self) -> &Arc<dyn Any + Send + Sync> {
        &self.state
    }
}

impl std::fmt::Debug for SharedPolicyState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedPolicyState").field("policy", &self.policy).finish()
    }
}

/// Reusable per-step selection scratch, owned by the *caller* rather than
/// the policy.
///
/// A single-session engine keeps one of these per session; the serving
/// layer keeps one per worker thread and hands it to every session it
/// steps, so N concurrent sessions cost one set of retrieval buffers
/// instead of N. Contents are rebuilt from scratch on every call — sharing
/// is bit-transparent.
#[derive(Debug, Default)]
pub struct PolicyScratch {
    /// ADC table + blocked fused-scan score buffer + top-k selector + IVF
    /// routing buffers (PQCache routes its per-step retrieval through
    /// `PqRetriever::score_and_select_into`, or
    /// `score_and_select_ivf_into` under `IvfMode::Probe`, on this — so N
    /// sessions on a serving shard share one IVF scratch).
    pub retriever: PqRetriever,
    /// Combined GQA group query.
    pub q_buf: Vec<f32>,
    /// Proxy-score buffer shared by the raw-key policies (Oracle, SPARQ).
    pub scores: Vec<f32>,
    /// Top-k selector shared by the raw-key policies.
    pub topk: TopK,
}

impl PolicyScratch {
    /// Empty scratch; buffers grow on first use and then stay warm.
    pub fn new() -> Self {
        Self::default()
    }

    /// Capacities `(table, scores, heap, q_buf)` of the scratch buffers —
    /// exposed so tests can assert zero-allocation steady state. The
    /// `scores`/`heap` components cover both the retriever's buffers and
    /// the shared raw-key ones.
    pub fn capacities(&self) -> (usize, usize, usize, usize) {
        let (t, s, h) = self.retriever.scratch_capacities();
        (
            t,
            s + self.scores.capacity(),
            h + self.topk.scratch_capacity(),
            self.q_buf.capacity(),
        )
    }
}

/// Everything a policy may consume at initialisation time, derived from the
/// prefill pass. Indices are in *middle coordinates*: 0 is the first middle
/// token (absolute position `n_init`).
#[derive(Debug, Clone)]
pub struct PolicyInit {
    /// Layer count.
    pub n_layers: usize,
    /// KV head count.
    pub n_kv_heads: usize,
    /// Head dimension.
    pub head_dim: usize,
    /// Middle-region keys, `[layer][kv_head]` of `(s_mid, d_h)` (post-RoPE,
    /// exactly as stored in the host KVCache).
    pub middle_keys: Vec<Vec<Matrix>>,
    /// H2O-style accumulated attention mass per middle token,
    /// `[layer][kv_head][middle_idx]` (None if prefill ran without capture).
    pub accum_scores: Option<Vec<Vec<Vec<f32>>>>,
    /// SnapKV-style observation-window mass per middle token.
    pub window_scores: Option<Vec<Vec<Vec<f32>>>>,
}

impl PolicyInit {
    /// Middle-region length (tokens), taken from layer 0 head 0.
    pub fn middle_len(&self) -> usize {
        self.middle_keys
            .first()
            .and_then(|l| l.first())
            .map_or(0, |m| m.rows())
    }
}

/// Per-step selection context for one (layer, kv-head).
#[derive(Debug)]
pub struct PolicyContext<'a> {
    /// Layer index.
    pub layer: usize,
    /// KV head index.
    pub kv_head: usize,
    /// RoPE'd queries of the GQA group, `(group, d_h)`.
    pub queries: &'a Matrix,
    /// Number of middle tokens to select.
    pub budget: usize,
    /// Current middle-region length (grows as local tokens are evicted).
    pub middle_len: usize,
}

/// A selective-attention policy. One instance serves all layers/heads;
/// per-slot state is keyed by `(layer, kv_head)`.
pub trait SelectionPolicy {
    /// Stable display name ("H2O", "PQCache", ...).
    fn name(&self) -> &'static str;

    /// Consume prefill-derived state. Called exactly once before decoding.
    fn init(&mut self, init: &PolicyInit);

    /// Adopt the engine's retrieval-routing mode (`SessionConfig::ivf`),
    /// called by the session *before* [`Self::init`]. Policies without an
    /// IVF tier ignore it; `PqCachePolicy` builds (or skips) its inverted
    /// lists accordingly. Must not be called after `init`.
    fn configure_ivf(&mut self, mode: IvfMode) {
        let _ = mode;
    }

    /// Indices (middle coordinates, strictly less than `ctx.middle_len`) of
    /// the middle tokens to include in attention, at most `ctx.budget` of
    /// them, descending by the policy's notion of relevance, written into
    /// `out` (cleared first).
    ///
    /// This is the per-step hot path: implementations keep their scoring
    /// scratch internal so steady-state selection performs no heap
    /// allocations.
    fn select_into(&mut self, ctx: &PolicyContext<'_>, out: &mut Vec<usize>);

    /// Allocating convenience wrapper around [`Self::select_into`].
    fn select(&mut self, ctx: &PolicyContext<'_>) -> Vec<usize> {
        let mut out = Vec::new();
        self.select_into(ctx, &mut out);
        out
    }

    /// [`Self::select_into`] with caller-owned scratch — the multi-session
    /// hot path. Policies whose per-step scratch can live outside the
    /// policy (PQCache's retriever) override this so one scratch serves
    /// every session on a worker; the default ignores `scratch` and uses
    /// internal buffers. Must select the exact same indices as
    /// [`Self::select_into`] for the same context.
    fn select_with_scratch(
        &mut self,
        ctx: &PolicyContext<'_>,
        scratch: &mut PolicyScratch,
        out: &mut Vec<usize>,
    ) {
        let _ = scratch;
        self.select_into(ctx, out);
    }

    /// Adopt a runtime effort override for subsequent selections — the
    /// serving layer's brownout path. Unlike `configure_ivf` this may be
    /// called at any time, any number of times, mid-decode; it must only
    /// change *how hard* the next selection works, never trained state.
    /// With [`SelectionEffort::full`] the policy must select bit-identically
    /// to one that never saw an effort call. Policies without a tunable
    /// scan (dropping baselines, exact oracles) ignore it.
    fn set_effort(&mut self, effort: SelectionEffort) {
        let _ = effort;
    }

    /// A token evicted from the local window becomes middle token
    /// `middle_idx`; policies holding per-token state must integrate it.
    fn on_evict(&mut self, layer: usize, kv_head: usize, key: &[f32], middle_idx: usize) {
        let _ = (layer, kv_head, key, middle_idx);
    }

    /// Non-overlappable communication bytes this policy incurs per decode
    /// step for one (layer, kv-head), *excluding* the final top-k KV fetch
    /// (which is identical across retrieval policies). `middle_len` is the
    /// current middle-region size.
    fn comm_bytes_per_step(&self, middle_len: usize) -> u64;

    /// Overlappable (prefetchable) communication per step per (layer,
    /// kv-head) — PQ codes, block representatives, etc.
    fn prefetch_bytes_per_step(&self, middle_len: usize) -> u64 {
        let _ = middle_len;
        0
    }

    /// Dropping policies keep a static set and never fetch from host.
    fn is_dropping(&self) -> bool {
        false
    }

    /// Rebuild internal structures from the *current* middle region (paper
    /// §5, "Longer Output Sequences": periodically reconstruct PQ so
    /// structures built from the input also cover generated tokens).
    /// Default: no-op; PQCache retrains its codebooks.
    fn refresh(&mut self, init: &PolicyInit) {
        let _ = init;
    }

    /// Snapshot the trained prefix state for cross-session sharing (called
    /// after `init`). Policies without shareable state return `None`.
    fn export_shared(&self) -> Option<SharedPolicyState> {
        None
    }

    /// Adopt a snapshot exported by a same-configured policy instance, *in
    /// place of* `init`. Returns `false` (leaving `self` untouched) when
    /// the snapshot does not belong to this policy/configuration; the
    /// caller must then fall back to a normal `init`. Implementations must
    /// guarantee an accepted import is bit-identical to `init` over the
    /// same middle keys.
    fn import_shared(&mut self, state: &SharedPolicyState) -> bool {
        let _ = state;
        false
    }

    /// Deep-copy this policy's *entire* trained and per-token state into an
    /// independent instance — the checkpoint path. Unlike
    /// [`Self::export_shared`] (prefix-time snapshot only), a fork must
    /// capture mid-decode state (per-token codes appended by `on_evict`,
    /// refreshed codebooks) such that the fork selects bit-identically to
    /// the original from this point on. Policies that cannot guarantee that
    /// return `None` (the default), and the serving layer simply skips
    /// checkpointing sessions running them.
    fn fork(&self) -> Option<Box<dyn SelectionPolicy + Send>> {
        None
    }
}

/// Combine a GQA group's queries into the single scoring query shared by
/// their kv head (sum of rows — for linear scores this equals summing
/// per-query scores).
pub fn group_query(queries: &Matrix) -> Vec<f32> {
    let mut q = Vec::new();
    group_query_into(queries, &mut q);
    q
}

/// [`group_query`] into a caller-owned buffer (cleared first) so per-step
/// policies reuse one query scratch.
pub fn group_query_into(queries: &Matrix, out: &mut Vec<f32>) {
    out.clear();
    out.resize(queries.cols(), 0.0);
    for r in 0..queries.rows() {
        for (acc, v) in out.iter_mut().zip(queries.row(r).iter()) {
            *acc += v;
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use pqc_tensor::Rng64;

    /// A synthetic PolicyInit: random keys plus score stats that favour a
    /// known set of "important" tokens.
    pub fn synthetic_init(
        n_layers: usize,
        n_kv_heads: usize,
        s_mid: usize,
        dh: usize,
        hot: &[usize],
        seed: u64,
    ) -> PolicyInit {
        let mut rng = Rng64::new(seed);
        let mut middle_keys = Vec::new();
        let mut accum = Vec::new();
        let mut window = Vec::new();
        for _ in 0..n_layers {
            let mut lk = Vec::new();
            let mut la = Vec::new();
            let mut lw = Vec::new();
            for _ in 0..n_kv_heads {
                lk.push(Matrix::randn(s_mid, dh, 1.0, &mut rng));
                let mut a = vec![0.01f32; s_mid];
                let mut w = vec![0.01f32; s_mid];
                for &h in hot {
                    a[h] = 1.0 + rng.uniform_f32(0.0, 0.1);
                    w[h] = 1.0 + rng.uniform_f32(0.0, 0.1);
                }
                la.push(a);
                lw.push(w);
            }
            middle_keys.push(lk);
            accum.push(la);
            window.push(lw);
        }
        PolicyInit {
            n_layers,
            n_kv_heads,
            head_dim: dh,
            middle_keys,
            accum_scores: Some(accum),
            window_scores: Some(window),
        }
    }

    /// A query matrix aligned with a specific middle token's key, so that
    /// token wins any inner-product scoring.
    pub fn query_for(init: &PolicyInit, layer: usize, head: usize, token: usize) -> Matrix {
        let k = init.middle_keys[layer][head].row(token);
        let mut m = Matrix::zeros(1, k.len());
        m.copy_row_from(0, &k.iter().map(|v| v * 3.0).collect::<Vec<_>>());
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_query_sums_rows() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 10.0, 20.0, 30.0]);
        assert_eq!(group_query(&m), vec![11.0, 22.0, 33.0]);
    }

    #[test]
    fn synthetic_init_shapes() {
        let init = testutil::synthetic_init(2, 3, 40, 8, &[5, 7], 1);
        assert_eq!(init.middle_len(), 40);
        assert_eq!(init.middle_keys.len(), 2);
        assert_eq!(init.middle_keys[0].len(), 3);
        assert_eq!(init.accum_scores.as_ref().unwrap()[1][2].len(), 40);
    }

    #[test]
    fn full_effort_is_the_identity() {
        let full = SelectionEffort::full();
        assert!(full.is_full());
        assert_eq!(full, SelectionEffort::default());
        for k in [0, 1, 7, 64, 4096] {
            assert_eq!(full.effective_k(k), k);
            assert_eq!(full.effective_n_probe(k), k);
        }
    }

    #[test]
    fn degraded_effort_scales_and_floors() {
        let half = SelectionEffort { k_frac: 0.5, max_n_probe: Some(4) };
        assert!(!half.is_full());
        assert_eq!(half.effective_k(64), 32);
        assert_eq!(half.effective_k(7), 3);
        // k > 0 always yields at least one selected token …
        assert_eq!(SelectionEffort { k_frac: 0.01, max_n_probe: None }.effective_k(8), 1);
        // … while k == 0 stays 0 (nothing to select from).
        assert_eq!(half.effective_k(0), 0);
        // The probe cap only narrows, never widens, and floors at 1.
        assert_eq!(half.effective_n_probe(16), 4);
        assert_eq!(half.effective_n_probe(2), 2);
        assert_eq!(SelectionEffort { k_frac: 1.0, max_n_probe: Some(0) }.effective_n_probe(16), 1);
    }

    #[test]
    fn overshooting_effort_never_exceeds_nominal() {
        // k_frac is documented as (0, 1]; values above 1 must still be the
        // identity, not an amplifier.
        let over = SelectionEffort { k_frac: 1.5, max_n_probe: None };
        assert_eq!(over.effective_k(64), 64);
        assert!(over.is_full());
    }
}
