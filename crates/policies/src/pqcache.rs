//! The PQCache selection policy (paper §3).
//!
//! At `init` (end of prefill), a PQ codebook is trained per (layer, kv-head)
//! over the middle keys — the paper's Step ❷, with the iteration budget
//! supplied externally (adaptive controller). At each decode step, `select`
//! builds the ADC table from the group query and scores every middle token
//! through its codes (Steps ❸-❹). Tokens evicted from the local window are
//! assigned codes by nearest centroid (Algorithm 2, line 4).

use crate::{
    group_query_into, PolicyContext, PolicyInit, PolicyScratch, SelectionEffort, SelectionPolicy,
    SharedPolicyState,
};
use pqc_pq::{IvfConfig, IvfIndex, IvfMode, PqCodebook, PqCodes, PqConfig};
use std::sync::Arc;

/// PQCache policy hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PqCachePolicyConfig {
    /// Sub-space count `m`.
    pub m: usize,
    /// Bits per code `b`.
    pub b: u32,
    /// K-Means iteration budget (from the adaptive controller).
    pub kmeans_iters: usize,
    /// Clustering seed.
    pub seed: u64,
    /// Retrieval routing: `Exact` flat fused scan, or `Probe(n_probe)`
    /// through an IVF tier of [`Self::ivf_n_list`] coarse cells (paper §5's
    /// "other retrieval techniques" direction). `Probe(n_list)` is
    /// bit-identical to `Exact`.
    pub ivf: IvfMode,
    /// Coarse cells per (layer, kv-head) IVF tier when [`Self::ivf`]
    /// probes.
    pub ivf_n_list: usize,
}

impl Default for PqCachePolicyConfig {
    fn default() -> Self {
        // Paper default for LongBench: m=2, b=6 (§4.2.7). Routing stays
        // exact by default; `IvfMode::Probe` opts into the IVF tier.
        Self { m: 2, b: 6, kmeans_iters: 25, seed: 0xBEEF, ivf: IvfMode::Exact, ivf_n_list: 16 }
    }
}

/// The trained state a [`PqCachePolicy`] shares across same-prefix
/// sessions: everything `init` derives deterministically from the middle
/// keys, keyed by the exact configuration that derived it.
#[derive(Debug)]
struct PqSharedState {
    cfg: PqCachePolicyConfig,
    books: Vec<Vec<PqCodebook>>,
    codes: Vec<Vec<PqCodes>>,
    ivf: Vec<Vec<IvfIndex>>,
}

/// Product-quantization-based selective attention.
#[derive(Debug)]
pub struct PqCachePolicy {
    cfg: PqCachePolicyConfig,
    /// `[layer][kv_head]` trained codebooks.
    books: Vec<Vec<PqCodebook>>,
    /// `[layer][kv_head]` per-token codes (grow with evictions).
    codes: Vec<Vec<PqCodes>>,
    /// `[layer][kv_head]` IVF tiers (empty under [`IvfMode::Exact`]; built
    /// alongside the codebooks and grown by `on_evict` otherwise).
    ivf: Vec<Vec<IvfIndex>>,
    /// Fallback decode-step retrieval scratch (ADC table, fused-scan score
    /// buffer, top-k heap, group query) used by `select_into`; callers on
    /// the multi-session hot path hand in a shared [`PolicyScratch`] via
    /// `select_with_scratch` instead, so N sessions cost one scratch.
    scratch: PolicyScratch,
    /// Reusable eviction-encoding buffer.
    code_buf: Vec<u16>,
    /// Runtime effort override (brownout knob). Full by default; the
    /// serving layer's overload controller dials it per step. Never part
    /// of trained state — `export_shared`/`import_shared` ignore it.
    effort: SelectionEffort,
}

impl PqCachePolicy {
    /// A policy with the given PQ configuration.
    pub fn new(cfg: PqCachePolicyConfig) -> Self {
        Self {
            cfg,
            books: Vec::new(),
            codes: Vec::new(),
            ivf: Vec::new(),
            scratch: PolicyScratch::new(),
            code_buf: Vec::new(),
            effort: SelectionEffort::full(),
        }
    }

    /// The IVF configuration the policy builds its tiers with (seed derived
    /// per (layer, head) the same way the codebook seeds are).
    fn ivf_config(&self, layer: usize, head: usize) -> IvfConfig {
        IvfConfig {
            n_list: self.cfg.ivf_n_list,
            n_probe: self.cfg.ivf.n_probe().unwrap_or(self.cfg.ivf_n_list),
            max_iters: 8,
            seed: self
                .cfg
                .seed
                .wrapping_add(0x19F0)
                .wrapping_add((layer as u64) << 32 | head as u64),
        }
    }

    /// Cell-length imbalance of the `(layer, kv_head)` IVF tier (0.0 under
    /// [`IvfMode::Exact`]) — the drift meter for appended tokens routed
    /// against build-time coarse centroids; `refresh` (periodic
    /// reconstruction, §5) rebuilds the tiers from scratch.
    pub fn ivf_imbalance(&self, layer: usize, kv_head: usize) -> f64 {
        self.ivf
            .get(layer)
            .and_then(|l| l.get(kv_head))
            .map_or(0.0, IvfIndex::cell_imbalance)
    }

    /// Capacities of the per-step scratch buffers (retriever table/scores/
    /// heap, group query, eviction codes) — exposed so tests can assert
    /// zero-allocation steady state across decode steps.
    pub fn scratch_capacities(&self) -> (usize, usize, usize, usize, usize) {
        let (t, s, h, q) = self.scratch.capacities();
        (t, s, h, q, self.code_buf.capacity())
    }

    /// Total construction inertia across all codebooks (diagnostics for the
    /// Fig. 12c iteration sweep).
    pub fn total_inertia(&self) -> f64 {
        self.books.iter().flatten().map(|b| b.inertia()).sum()
    }

    /// K-Means iterations actually run, averaged over codebooks/sub-spaces.
    pub fn mean_iters_run(&self) -> f64 {
        let mut total = 0usize;
        let mut n = 0usize;
        for b in self.books.iter().flatten() {
            for &it in b.iters_run() {
                total += it;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            total as f64 / n as f64
        }
    }

    /// The PQ configuration in use.
    pub fn pq_config(&self) -> PqConfig {
        PqConfig { m: self.cfg.m, b: self.cfg.b, max_iters: self.cfg.kmeans_iters, seed: self.cfg.seed }
    }
}

impl Default for PqCachePolicy {
    fn default() -> Self {
        Self::new(PqCachePolicyConfig::default())
    }
}

impl SelectionPolicy for PqCachePolicy {
    fn name(&self) -> &'static str {
        "PQCache"
    }

    fn init(&mut self, init: &PolicyInit) {
        let pq_cfg = self.pq_config();
        self.books = Vec::with_capacity(init.n_layers);
        self.codes = Vec::with_capacity(init.n_layers);
        self.ivf = Vec::new();
        for layer_keys in &init.middle_keys {
            let mut lb = Vec::with_capacity(init.n_kv_heads);
            let mut lc = Vec::with_capacity(init.n_kv_heads);
            for (h, keys) in layer_keys.iter().enumerate() {
                let mut cfg_h = pq_cfg;
                cfg_h.seed = pq_cfg.seed.wrapping_add((lb.len() as u64) << 32 | h as u64);
                let (book, codes) = PqCodebook::train(keys, cfg_h);
                lb.push(book);
                lc.push(codes);
            }
            self.books.push(lb);
            self.codes.push(lc);
        }
        if self.cfg.ivf.is_probe() {
            // Build the IVF tiers over the same middle keys the codebooks
            // trained on, one inverted file per (layer, kv-head).
            self.ivf = init
                .middle_keys
                .iter()
                .enumerate()
                .map(|(l, layer_keys)| {
                    layer_keys
                        .iter()
                        .enumerate()
                        .map(|(h, keys)| {
                            IvfIndex::build(keys, &self.codes[l][h], self.ivf_config(l, h))
                        })
                        .collect()
                })
                .collect();
        }
    }

    fn configure_ivf(&mut self, mode: IvfMode) {
        assert!(
            self.books.is_empty(),
            "configure_ivf must run before init (the IVF tiers are built there)"
        );
        self.cfg.ivf = mode;
    }

    fn set_effort(&mut self, effort: SelectionEffort) {
        self.effort = effort;
    }

    fn select_into(&mut self, ctx: &PolicyContext<'_>, out: &mut Vec<usize>) {
        // Route through the scratch path with the internal fallback scratch
        // (taken/restored so the borrow checker sees disjoint state).
        let mut scratch = std::mem::take(&mut self.scratch);
        self.select_with_scratch(ctx, &mut scratch, out);
        self.scratch = scratch;
    }

    fn select_with_scratch(
        &mut self,
        ctx: &PolicyContext<'_>,
        scratch: &mut PolicyScratch,
        out: &mut Vec<usize>,
    ) {
        out.clear();
        let book = &self.books[ctx.layer][ctx.kv_head];
        let codes = &self.codes[ctx.layer][ctx.kv_head];
        let n = codes.len().min(ctx.middle_len);
        // Brownout: degraded effort shrinks the fetched top-k (floored at
        // 1) before the scan runs; full effort passes the budget through
        // untouched — no float math on the identity path.
        let budget = self.effort.effective_k(ctx.budget);
        if n == 0 || budget == 0 {
            return;
        }
        group_query_into(ctx.queries, &mut scratch.q_buf);
        // Steps ❸-❹-❺ fused: ADC table build, blocked SoA column scan
        // streaming straight into the selector (blocks that cannot beat the
        // running k-th-best threshold are skipped without materialising
        // scores) — all through the caller's reusable retriever scratch.
        // Bit-identical to the unfused scan + select pipeline. Under
        // `IvfMode::Probe` the scan is additionally routed through the
        // (layer, head) IVF tier: only the `n_probe` best coarse cells'
        // code columns are walked, making per-step selection cost sublinear
        // in the context length.
        match self.cfg.ivf {
            IvfMode::Probe(n_probe) => {
                let ivf = &self.ivf[ctx.layer][ctx.kv_head];
                let n_probe = self.effort.effective_n_probe(n_probe);
                scratch.retriever.score_and_select_ivf_into(
                    book,
                    ivf,
                    &scratch.q_buf,
                    n,
                    budget,
                    n_probe,
                    out,
                );
            }
            IvfMode::Exact => {
                scratch
                    .retriever
                    .score_and_select_into(book, codes, &scratch.q_buf, n, budget, out);
            }
        }
    }

    fn on_evict(&mut self, layer: usize, kv_head: usize, key: &[f32], _middle_idx: usize) {
        self.books[layer][kv_head].assign_into(key, &mut self.code_buf);
        let codes = &mut self.codes[layer][kv_head];
        codes.push(&self.code_buf);
        if self.cfg.ivf.is_probe() {
            // The token's id is its row in the code table (what the scan
            // bound `n` indexes), which the session keeps equal to the
            // middle offset.
            let id = codes.len() - 1;
            self.ivf[layer][kv_head].append_token(id, key, &self.code_buf);
        }
    }

    /// PQ codes are query-independent: fully prefetchable. Non-overlappable
    /// per-step traffic is zero (the paper's headline efficiency property).
    fn comm_bytes_per_step(&self, _middle_len: usize) -> u64 {
        0
    }

    /// Periodic reconstruction (paper §5): retrain codebooks over the
    /// current middle keys, folding generated tokens into the centroids.
    fn refresh(&mut self, init: &PolicyInit) {
        self.init(init);
    }

    fn prefetch_bytes_per_step(&self, middle_len: usize) -> u64 {
        // m·b bits per token, plus the (tiny, s-independent) centroids are
        // GPU-resident after the first step, so codes dominate.
        ((middle_len * self.cfg.m * self.cfg.b as usize) as u64).div_ceil(8)
    }

    /// Snapshot the trained codebooks/codes/IVF tiers. Training is
    /// deterministically seeded per (layer, head), so the snapshot equals
    /// what any same-configured policy would train over the same middle
    /// keys — importing it skips the k-means without changing a bit.
    fn export_shared(&self) -> Option<SharedPolicyState> {
        if self.books.is_empty() {
            return None;
        }
        Some(SharedPolicyState::new(
            self.name(),
            Arc::new(PqSharedState {
                cfg: self.cfg,
                books: self.books.clone(),
                codes: self.codes.clone(),
                ivf: self.ivf.clone(),
            }),
        ))
    }

    /// Adopt a snapshot exported by a same-configured [`PqCachePolicy`].
    /// Any configuration difference (sub-spaces, bits, iteration budget,
    /// seed, IVF routing) rejects the import — the trained state would not
    /// match what this policy's `init` produces.
    fn import_shared(&mut self, state: &SharedPolicyState) -> bool {
        let Some(shared) = state.state().downcast_ref::<PqSharedState>() else {
            return false;
        };
        if shared.cfg != self.cfg {
            return false;
        }
        self.books = shared.books.clone();
        self.codes = shared.codes.clone();
        self.ivf = shared.ivf.clone();
        true
    }

    /// Deep-copy codebooks, per-token codes, and IVF tiers. Selection is a
    /// pure function of (trained state, query, budget), and `on_evict`
    /// mutates only the copied codes/tiers, so the fork selects
    /// bit-identically to the original forever after — the checkpoint
    /// contract. Scratch buffers start fresh (they are bit-transparent).
    fn fork(&self) -> Option<Box<dyn SelectionPolicy + Send>> {
        // Effort resets to full: it is runtime control state the serving
        // layer re-applies every step, not part of the checkpoint contract
        // (a session replayed on a healthy shard starts at full effort).
        Some(Box::new(Self {
            cfg: self.cfg,
            books: self.books.clone(),
            codes: self.codes.clone(),
            ivf: self.ivf.clone(),
            scratch: PolicyScratch::new(),
            code_buf: Vec::new(),
            effort: SelectionEffort::full(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retrieval::OraclePolicy;
    use crate::testutil::{query_for, synthetic_init};
    use pqc_tensor::{topk_recall, Matrix, Rng64};

    fn cfg(m: usize, b: u32, iters: usize) -> PqCachePolicyConfig {
        PqCachePolicyConfig { m, b, kmeans_iters: iters, seed: 7, ..Default::default() }
    }

    #[test]
    fn finds_aligned_token() {
        let init = synthetic_init(2, 2, 128, 16, &[], 1);
        let mut p = PqCachePolicy::new(cfg(4, 6, 20));
        p.init(&init);
        let q = query_for(&init, 1, 0, 77);
        let ctx = PolicyContext { layer: 1, kv_head: 0, queries: &q, budget: 5, middle_len: 128 };
        let sel = p.select(&ctx);
        assert!(sel.contains(&77), "{sel:?}");
    }

    #[test]
    fn recall_against_oracle_reasonable() {
        let init = synthetic_init(1, 1, 400, 32, &[], 2);
        let mut oracle = OraclePolicy::default();
        let mut pq = PqCachePolicy::new(cfg(4, 8, 25));
        oracle.init(&init);
        pq.init(&init);
        let mut rng = Rng64::new(9);
        let mut recall = 0.0;
        let trials = 15;
        for _ in 0..trials {
            let q = Matrix::randn(2, 32, 1.0, &mut rng);
            let mk = |queries| PolicyContext { layer: 0, kv_head: 0, queries, budget: 40, middle_len: 400 };
            let exact = oracle.select(&mk(&q));
            recall += topk_recall(&exact, &pq.select(&mk(&q)));
        }
        recall /= trials as f64;
        assert!(recall > 0.6, "recall {recall}");
    }

    #[test]
    fn more_iterations_not_worse() {
        // Fig. 12c: more clustering iterations generally help (inertia
        // strictly non-increasing; recall statistically better).
        let init = synthetic_init(1, 1, 300, 16, &[], 3);
        let mut p0 = PqCachePolicy::new(cfg(2, 6, 0));
        let mut p25 = PqCachePolicy::new(cfg(2, 6, 25));
        p0.init(&init);
        p25.init(&init);
        assert!(p25.total_inertia() <= p0.total_inertia() + 1e-6);
        assert!(p25.mean_iters_run() > p0.mean_iters_run());
    }

    #[test]
    fn evicted_token_becomes_retrievable() {
        let init = synthetic_init(1, 1, 64, 16, &[], 4);
        let mut p = PqCachePolicy::new(cfg(2, 5, 15));
        p.init(&init);
        let key = vec![2.0f32; 16];
        p.on_evict(0, 0, &key, 64);
        let mut q = Matrix::zeros(1, 16);
        q.copy_row_from(0, &key);
        let ctx = PolicyContext { layer: 0, kv_head: 0, queries: &q, budget: 3, middle_len: 65 };
        let sel = p.select(&ctx);
        assert!(sel.contains(&64), "{sel:?}");
    }

    #[test]
    fn comm_is_prefetchable_only() {
        let init = synthetic_init(1, 1, 64, 16, &[], 5);
        let mut p = PqCachePolicy::new(cfg(2, 6, 5));
        p.init(&init);
        assert_eq!(p.comm_bytes_per_step(100_000), 0);
        // m=2, b=6: 12 bits -> 1.5 bytes/token.
        assert_eq!(p.prefetch_bytes_per_step(1000), 1500);
    }

    #[test]
    fn comm_budget_below_paper_bound() {
        // §4.1.3: codes/keys ratio m·b/(16·dh) must be ≤ 1/128 for the
        // LongBench config at dh=128.
        let p = PqCachePolicy::new(cfg(2, 6, 5));
        let ratio = p.pq_config().comm_ratio(128);
        assert!(ratio <= 1.0 / 128.0 + 1e-12, "ratio {ratio}");
    }

    #[test]
    fn shared_scratch_selects_identically() {
        // One PolicyScratch shared by two policies (as the serve engine
        // shares one per worker) must reproduce each policy's internal-
        // scratch selection exactly.
        let init_a = synthetic_init(1, 1, 200, 16, &[], 21);
        let init_b = synthetic_init(1, 1, 170, 16, &[], 22);
        let mut pa = PqCachePolicy::new(cfg(2, 6, 10));
        let mut pb = PqCachePolicy::new(cfg(2, 6, 10));
        pa.init(&init_a);
        pb.init(&init_b);
        let mut shared = crate::PolicyScratch::new();
        let mut rng = Rng64::new(23);
        for _ in 0..6 {
            let q = Matrix::randn(2, 16, 1.0, &mut rng);
            for (p, mid) in [(&mut pa, 200usize), (&mut pb, 170)] {
                let ctx =
                    PolicyContext { layer: 0, kv_head: 0, queries: &q, budget: 17, middle_len: mid };
                let internal = p.select(&ctx);
                let mut ext = Vec::new();
                p.select_with_scratch(&ctx, &mut shared, &mut ext);
                assert_eq!(internal, ext);
            }
        }
    }

    #[test]
    fn probe_all_cells_matches_exact_mode() {
        // IvfMode::Probe(n_list) scans every cell exactly once: selections
        // must be bit-identical to IvfMode::Exact, evictions included.
        let init = synthetic_init(2, 2, 260, 16, &[], 31);
        let mk = |ivf| {
            let mut p = PqCachePolicy::new(PqCachePolicyConfig {
                ivf,
                ivf_n_list: 8,
                ..cfg(2, 6, 12)
            });
            p.init(&init);
            p
        };
        let mut exact = mk(IvfMode::Exact);
        let mut probe = mk(IvfMode::Probe(8));
        let mut rng = Rng64::new(33);
        for step in 0..8 {
            if step == 4 {
                // Interleave evictions: the IVF tier must track appends.
                let key: Vec<f32> = (0..16).map(|_| rng.normal_f32(0.0, 1.0)).collect();
                for p in [&mut exact, &mut probe] {
                    p.on_evict(1, 0, &key, 260);
                }
            }
            let q = Matrix::randn(2, 16, 1.0, &mut rng);
            for (layer, head, mid) in [(0usize, 1usize, 260usize), (1, 0, 261)] {
                let ctx = PolicyContext {
                    layer,
                    kv_head: head,
                    queries: &q,
                    budget: 24,
                    middle_len: mid,
                };
                assert_eq!(exact.select(&ctx), probe.select(&ctx), "step {step} l{layer}h{head}");
            }
        }
    }

    #[test]
    fn probe_mode_tracks_imbalance() {
        // The drift meter must actually *move*: evicting a stream of
        // identical keys routes them all into one cell, so the reported
        // max/mean imbalance strictly grows with the appends.
        let init = synthetic_init(1, 1, 120, 16, &[], 35);
        let mut p = PqCachePolicy::new(PqCachePolicyConfig {
            ivf: IvfMode::Probe(2),
            ivf_n_list: 4,
            ..cfg(2, 5, 8)
        });
        assert_eq!(p.ivf_imbalance(0, 0), 0.0, "no tier before init");
        p.init(&init);
        let built = p.ivf_imbalance(0, 0);
        assert!(built >= 1.0, "built tier reports imbalance");
        let skew_key = vec![3.0f32; 16];
        for i in 0..120 {
            p.on_evict(0, 0, &skew_key, 120 + i);
        }
        let skewed = p.ivf_imbalance(0, 0);
        assert!(
            skewed > built + 0.3,
            "skewed appends must raise the meter: {built:.2} -> {skewed:.2}"
        );
    }

    #[test]
    fn imported_shared_state_is_bit_identical_to_training() {
        // The prefix-sharing contract: adopting an exported snapshot must
        // select exactly what a freshly-trained policy selects, including
        // after evictions, in both routing modes.
        for ivf in [IvfMode::Exact, IvfMode::Probe(3)] {
            let init = synthetic_init(2, 2, 150, 16, &[], 41);
            let mk = || {
                PqCachePolicy::new(PqCachePolicyConfig { ivf, ivf_n_list: 4, ..cfg(2, 6, 12) })
            };
            let mut trained = mk();
            trained.init(&init);
            let snapshot = trained.export_shared().expect("trained policy exports");
            let mut adopted = mk();
            assert!(adopted.import_shared(&snapshot), "same config must import");

            let mut rng = Rng64::new(43);
            for step in 0..6 {
                if step == 3 {
                    let key: Vec<f32> = (0..16).map(|_| rng.normal_f32(0.0, 1.0)).collect();
                    trained.on_evict(0, 1, &key, 150);
                    adopted.on_evict(0, 1, &key, 150);
                }
                let q = Matrix::randn(2, 16, 1.0, &mut rng);
                for (l, h, mid) in [(0usize, 1usize, 150usize), (1, 0, 150)] {
                    let ctx = PolicyContext {
                        layer: l,
                        kv_head: h,
                        queries: &q,
                        budget: 20,
                        middle_len: mid + usize::from(step >= 3 && l == 0 && h == 1),
                    };
                    assert_eq!(
                        trained.select(&ctx),
                        adopted.select(&ctx),
                        "import diverged at step {step} ({ivf:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn import_rejects_mismatched_config_and_untrained_export() {
        let init = synthetic_init(1, 1, 80, 16, &[], 45);
        let untrained = PqCachePolicy::new(cfg(2, 6, 10));
        assert!(untrained.export_shared().is_none(), "nothing to share before init");
        let mut trained = PqCachePolicy::new(cfg(2, 6, 10));
        trained.init(&init);
        let snap = trained.export_shared().expect("export");
        // Different m: reject and leave the importer untouched.
        let mut other = PqCachePolicy::new(cfg(4, 6, 10));
        assert!(!other.import_shared(&snap));
        assert!(other.export_shared().is_none(), "rejected import must not mutate");
        // Different routing mode: reject too.
        let mut probed = PqCachePolicy::new(PqCachePolicyConfig {
            ivf: IvfMode::Probe(2),
            ivf_n_list: 4,
            ..cfg(2, 6, 10)
        });
        assert!(!probed.import_shared(&snap));
        // A foreign payload under the right name: reject.
        let fake = SharedPolicyState::new("PQCache", std::sync::Arc::new(17u32));
        let mut p = PqCachePolicy::new(cfg(2, 6, 10));
        assert!(!p.import_shared(&fake));
    }

    #[test]
    fn fork_selects_bit_identically_and_diverges_independently() {
        let init = synthetic_init(2, 2, 140, 16, &[], 51);
        let mut orig = PqCachePolicy::new(cfg(2, 6, 12));
        orig.init(&init);
        // Accrue some mid-decode state before forking.
        let mut rng = Rng64::new(53);
        let key: Vec<f32> = (0..16).map(|_| rng.normal_f32(0.0, 1.0)).collect();
        orig.on_evict(0, 0, &key, 140);

        let mut forked = orig.fork().expect("PQCache is forkable");
        for step in 0..5 {
            let q = Matrix::randn(2, 16, 1.0, &mut rng);
            let ctx =
                PolicyContext { layer: 0, kv_head: 0, queries: &q, budget: 18, middle_len: 141 };
            assert_eq!(orig.select(&ctx), forked.select(&ctx), "fork diverged at step {step}");
        }
        // Post-fork evictions are independent: mutating the original must
        // not leak into the fork's code table.
        let late: Vec<f32> = (0..16).map(|_| rng.normal_f32(0.0, 1.0)).collect();
        orig.on_evict(0, 0, &late, 141);
        let mut q = Matrix::zeros(1, 16);
        q.copy_row_from(0, &late.iter().map(|v| v * 3.0).collect::<Vec<_>>());
        let ctx = PolicyContext { layer: 0, kv_head: 0, queries: &q, budget: 3, middle_len: 142 };
        assert!(orig.select(&ctx).contains(&141));
        let sel = forked.select(&PolicyContext { middle_len: 141, queries: &q, ..ctx });
        assert!(sel.iter().all(|&i| i < 141), "fork must not see post-fork evictions");
    }

    #[test]
    fn respects_budget_and_middle_len() {
        let init = synthetic_init(1, 1, 50, 16, &[], 6);
        let mut p = PqCachePolicy::new(cfg(2, 4, 5));
        p.init(&init);
        let q = Matrix::zeros(1, 16);
        let ctx = PolicyContext { layer: 0, kv_head: 0, queries: &q, budget: 7, middle_len: 30 };
        let sel = p.select(&ctx);
        assert!(sel.len() <= 7);
        assert!(sel.iter().all(|&i| i < 30));
    }
}
