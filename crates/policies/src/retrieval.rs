//! Offloading/retrieval baselines: Oracle, SPARQ, InfLLM.
//!
//! These policies keep the full middle KVCache on the host and re-select
//! relevant tokens every decode step. They differ in the *proxy score* used
//! to avoid moving all keys across PCIe:
//!
//! - **Oracle**: exact inner products (an upper bound, not deployable — it
//!   would need all keys on device).
//! - **SPARQ**: inner products over the `r` largest-magnitude query
//!   dimensions; fetches those dimensions of *all* keys each step, which is
//!   the unoverlappable traffic that dooms its latency (Fig. 11b).
//! - **InfLLM**: block-level: each block of `B` tokens is represented by
//!   `r_rep` tokens; whole blocks are selected by representative score — the
//!   space-continuity assumption the paper shows hurts quality.

use crate::{group_query_into, PolicyContext, PolicyInit, PolicyScratch, SelectionPolicy};
use pqc_tensor::{dot, top_k_indices, Matrix, TopK};

/// No compression at all: every middle token is always selected (the
/// paper's "Full" column). The engine treats the budget as unlimited.
#[derive(Debug, Default)]
pub struct FullAttentionPolicy {
    middle_len: usize,
}

impl SelectionPolicy for FullAttentionPolicy {
    fn name(&self) -> &'static str {
        "Full"
    }

    fn init(&mut self, init: &PolicyInit) {
        self.middle_len = init.middle_len();
    }

    fn select_into(&mut self, ctx: &PolicyContext<'_>, out: &mut Vec<usize>) {
        out.clear();
        out.extend(0..ctx.middle_len);
    }

    fn on_evict(&mut self, _layer: usize, _kv_head: usize, _key: &[f32], middle_idx: usize) {
        self.middle_len = self.middle_len.max(middle_idx + 1);
    }

    /// Full attention keeps the whole KVCache on device; in the offloading
    /// setting it would move every key and value each step.
    fn comm_bytes_per_step(&self, middle_len: usize) -> u64 {
        (middle_len * 2) as u64 // placeholder per-dim accounting handled by engine
    }
}

/// Exact inner-product scoring + selection over the first `n` middle keys,
/// through whichever query/score/selector buffers the caller owns — the
/// single body behind both `OraclePolicy` selection paths (internal buffers
/// and shared [`PolicyScratch`]), so they cannot drift apart.
fn oracle_select_via(
    keys: &Matrix,
    ctx: &PolicyContext<'_>,
    q_buf: &mut Vec<f32>,
    scores: &mut Vec<f32>,
    topk: &mut TopK,
    out: &mut Vec<usize>,
) {
    group_query_into(ctx.queries, q_buf);
    let n = keys.rows().min(ctx.middle_len);
    scores.clear();
    for i in 0..n {
        scores.push(dot(q_buf, keys.row(i)));
    }
    topk.select_into(scores, ctx.budget, out);
}

/// Exact top-k selection over middle keys (the paper's "Ora" column).
#[derive(Debug, Default)]
pub struct OraclePolicy {
    /// `[layer][kv_head]` middle keys, grown by `on_evict`.
    keys: Vec<Vec<Matrix>>,
    q_buf: Vec<f32>,
    scores: Vec<f32>,
    topk: TopK,
}

impl SelectionPolicy for OraclePolicy {
    fn name(&self) -> &'static str {
        "Oracle"
    }

    fn init(&mut self, init: &PolicyInit) {
        self.keys = init.middle_keys.clone();
    }

    fn select_into(&mut self, ctx: &PolicyContext<'_>, out: &mut Vec<usize>) {
        let keys = &self.keys[ctx.layer][ctx.kv_head];
        oracle_select_via(keys, ctx, &mut self.q_buf, &mut self.scores, &mut self.topk, out);
    }

    /// Exact scoring through the caller's shared buffers — on the serving
    /// hot path N sessions' Oracle baselines cost one set of score/selector
    /// scratch instead of N. Identical selections to `select_into` (same
    /// body, different buffers).
    fn select_with_scratch(
        &mut self,
        ctx: &PolicyContext<'_>,
        scratch: &mut PolicyScratch,
        out: &mut Vec<usize>,
    ) {
        let keys = &self.keys[ctx.layer][ctx.kv_head];
        oracle_select_via(
            keys,
            ctx,
            &mut scratch.q_buf,
            &mut scratch.scores,
            &mut scratch.topk,
            out,
        );
    }

    fn on_evict(&mut self, layer: usize, kv_head: usize, key: &[f32], _middle_idx: usize) {
        let k1 = Matrix::from_vec(1, key.len(), key.to_vec());
        let m = &mut self.keys[layer][kv_head];
        *m = m.vstack(&k1);
    }

    /// The oracle is not implementable without moving all keys; we account
    /// the full key traffic to make that explicit in latency experiments.
    fn comm_bytes_per_step(&self, middle_len: usize) -> u64 {
        // full keys, FP16
        (middle_len * self.keys.first().map_or(0, |l| l[0].cols()) * 2) as u64
    }
}

/// SPARQ proxy scoring + selection: pick the top-`r` absolute query
/// dimensions, score the first `n` middle keys over those dimensions only,
/// select — the single body behind both `SparqPolicy` selection paths
/// (internal buffers and shared [`PolicyScratch`]), so they cannot drift
/// apart. `mags`/`dims` stay policy-internal (tiny, d_h-sized); the one
/// selector is used sequentially for the dimension pick and the final
/// selection.
#[allow(clippy::too_many_arguments)]
fn sparq_select_via(
    keys: &Matrix,
    r: usize,
    mags: &mut Vec<f32>,
    dims: &mut Vec<usize>,
    ctx: &PolicyContext<'_>,
    q_buf: &mut Vec<f32>,
    scores: &mut Vec<f32>,
    topk: &mut TopK,
    out: &mut Vec<usize>,
) {
    group_query_into(ctx.queries, q_buf);
    // Top-r dimensions by |q|.
    mags.clear();
    mags.extend(q_buf.iter().map(|v| v.abs()));
    topk.select_into(mags, r.min(q_buf.len()), dims);
    let n = keys.rows().min(ctx.middle_len);
    scores.clear();
    for i in 0..n {
        let row = keys.row(i);
        let mut s = 0.0f32;
        for &d in dims.iter() {
            s += q_buf[d] * row[d];
        }
        scores.push(s);
    }
    topk.select_into(scores, ctx.budget, out);
}

/// SPARQ attention: score via the top-`r` absolute query dimensions.
#[derive(Debug)]
pub struct SparqPolicy {
    /// Number of query dimensions fetched (paper: r=1 for 1/128, r=2 for 1/64
    /// at d_h = 128).
    pub r: usize,
    keys: Vec<Vec<Matrix>>,
    q_buf: Vec<f32>,
    mags: Vec<f32>,
    dims: Vec<usize>,
    scores: Vec<f32>,
    topk: TopK,
}

impl SparqPolicy {
    /// SPARQ with `r` fetched dimensions.
    pub fn new(r: usize) -> Self {
        assert!(r >= 1, "SPARQ needs at least one dimension");
        Self {
            r,
            keys: Vec::new(),
            q_buf: Vec::new(),
            mags: Vec::new(),
            dims: Vec::new(),
            scores: Vec::new(),
            topk: TopK::new(),
        }
    }

    /// The `r` for a communication fraction `f = r / d_h` (at least 1).
    pub fn for_comm_fraction(f: f64, dh: usize) -> Self {
        let r = ((f * dh as f64).round() as usize).max(1);
        Self::new(r)
    }
}

impl SelectionPolicy for SparqPolicy {
    fn name(&self) -> &'static str {
        "SPARQ"
    }

    fn init(&mut self, init: &PolicyInit) {
        self.keys = init.middle_keys.clone();
    }

    fn select_into(&mut self, ctx: &PolicyContext<'_>, out: &mut Vec<usize>) {
        let keys = &self.keys[ctx.layer][ctx.kv_head];
        sparq_select_via(
            keys,
            self.r,
            &mut self.mags,
            &mut self.dims,
            ctx,
            &mut self.q_buf,
            &mut self.scores,
            &mut self.topk,
            out,
        );
    }

    /// Sparse-dimension scoring through the caller's shared query/score/
    /// selector buffers (the per-query dimension pick keeps its small
    /// internal scratch). Identical selections to `select_into` (same body,
    /// different buffers).
    fn select_with_scratch(
        &mut self,
        ctx: &PolicyContext<'_>,
        scratch: &mut PolicyScratch,
        out: &mut Vec<usize>,
    ) {
        let keys = &self.keys[ctx.layer][ctx.kv_head];
        sparq_select_via(
            keys,
            self.r,
            &mut self.mags,
            &mut self.dims,
            ctx,
            &mut scratch.q_buf,
            &mut scratch.scores,
            &mut scratch.topk,
            out,
        );
    }

    fn on_evict(&mut self, layer: usize, kv_head: usize, key: &[f32], _middle_idx: usize) {
        let k1 = Matrix::from_vec(1, key.len(), key.to_vec());
        let m = &mut self.keys[layer][kv_head];
        *m = m.vstack(&k1);
    }

    /// `r` FP16 values per middle key, every step, and it *cannot* be
    /// prefetched: the dimensions depend on the current query.
    fn comm_bytes_per_step(&self, middle_len: usize) -> u64 {
        (middle_len * self.r * 2) as u64
    }
}

/// InfLLM: contiguous blocks with representative tokens.
#[derive(Debug)]
pub struct InfLlmPolicy {
    /// Tokens per block.
    pub block_size: usize,
    /// Representatives per block.
    pub reps_per_block: usize,
    keys: Vec<Vec<Matrix>>,
    /// Representative indices per `[layer][kv_head][block]`.
    reps: Vec<Vec<Vec<Vec<usize>>>>,
    q_buf: Vec<f32>,
    block_scores: Vec<f32>,
    order: Vec<usize>,
    topk: TopK,
}

impl InfLlmPolicy {
    /// InfLLM with the given block geometry (paper: 128-token blocks, 1-2
    /// representatives for 1/128 and 1/64 comm budgets).
    pub fn new(block_size: usize, reps_per_block: usize) -> Self {
        assert!(block_size >= 1 && reps_per_block >= 1);
        Self {
            block_size,
            reps_per_block,
            keys: Vec::new(),
            reps: Vec::new(),
            q_buf: Vec::new(),
            block_scores: Vec::new(),
            order: Vec::new(),
            topk: TopK::new(),
        }
    }

    /// Representatives of one block: the `r` tokens with the largest key L2
    /// norm (InfLLM selects locally-significant tokens as block surrogates).
    fn block_reps(keys: &Matrix, lo: usize, hi: usize, r: usize) -> Vec<usize> {
        let norms: Vec<f32> = (lo..hi)
            .map(|i| keys.row(i).iter().map(|v| v * v).sum::<f32>())
            .collect();
        top_k_indices(&norms, r.min(norms.len()))
            .into_iter()
            .map(|off| lo + off)
            .collect()
    }

    fn rebuild_reps(&mut self, layer: usize, head: usize) {
        let keys = &self.keys[layer][head];
        let s = keys.rows();
        let nb = s.div_ceil(self.block_size);
        let mut out = Vec::with_capacity(nb);
        for b in 0..nb {
            let lo = b * self.block_size;
            let hi = ((b + 1) * self.block_size).min(s);
            out.push(Self::block_reps(keys, lo, hi, self.reps_per_block));
        }
        self.reps[layer][head] = out;
    }
}

impl Default for InfLlmPolicy {
    fn default() -> Self {
        Self::new(128, 1)
    }
}

impl SelectionPolicy for InfLlmPolicy {
    fn name(&self) -> &'static str {
        "InfLLM"
    }

    fn init(&mut self, init: &PolicyInit) {
        self.keys = init.middle_keys.clone();
        self.reps = vec![vec![Vec::new(); init.n_kv_heads]; init.n_layers];
        for l in 0..init.n_layers {
            for h in 0..init.n_kv_heads {
                self.rebuild_reps(l, h);
            }
        }
    }

    fn select_into(&mut self, ctx: &PolicyContext<'_>, out: &mut Vec<usize>) {
        out.clear();
        group_query_into(ctx.queries, &mut self.q_buf);
        let q = &self.q_buf;
        let keys = &self.keys[ctx.layer][ctx.kv_head];
        let reps = &self.reps[ctx.layer][ctx.kv_head];
        let n = keys.rows().min(ctx.middle_len);
        if n == 0 || ctx.budget == 0 {
            return;
        }
        // Score blocks by mean representative inner product.
        let nb = n.div_ceil(self.block_size);
        self.block_scores.clear();
        for rep_ids in reps.iter().take(nb) {
            let mut s = 0.0f32;
            let mut valid = 0usize;
            for &i in rep_ids.iter().filter(|&&i| i < n) {
                s += dot(q, keys.row(i));
                valid += 1;
            }
            self.block_scores.push(if valid == 0 { f32::NEG_INFINITY } else { s / valid as f32 });
        }
        // Select whole blocks until the token budget is exhausted.
        self.topk.select_into(&self.block_scores, nb, &mut self.order);
        for &b in &self.order {
            let lo = b * self.block_size;
            let hi = ((b + 1) * self.block_size).min(n);
            for i in lo..hi {
                if out.len() >= ctx.budget {
                    return;
                }
                out.push(i);
            }
        }
    }

    fn on_evict(&mut self, layer: usize, kv_head: usize, key: &[f32], _middle_idx: usize) {
        let k1 = Matrix::from_vec(1, key.len(), key.to_vec());
        let grown = self.keys[layer][kv_head].vstack(&k1);
        self.keys[layer][kv_head] = grown;
        // Only the last block's representatives can change.
        let s = self.keys[layer][kv_head].rows();
        let last = (s - 1) / self.block_size;
        let lo = last * self.block_size;
        let hi = s;
        let reps = Self::block_reps(&self.keys[layer][kv_head], lo, hi, self.reps_per_block);
        let rv = &mut self.reps[layer][kv_head];
        if rv.len() <= last {
            rv.push(reps);
        } else {
            rv[last] = reps;
        }
    }

    /// Representative keys cross the link once per step; block-level
    /// management keeps it small: `r_rep/B` of the keys.
    fn comm_bytes_per_step(&self, middle_len: usize) -> u64 {
        let dh = self.keys.first().map_or(0, |l| l[0].cols());
        let nb = middle_len.div_ceil(self.block_size);
        (nb * self.reps_per_block * dh * 2) as u64
    }

    fn prefetch_bytes_per_step(&self, middle_len: usize) -> u64 {
        // Representatives are query-independent, so they can be prefetched —
        // InfLLM's efficiency advantage over SPARQ.
        self.comm_bytes_per_step(middle_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{query_for, synthetic_init};
    use pqc_tensor::{topk_recall, Rng64};

    #[test]
    fn oracle_finds_aligned_token() {
        let init = synthetic_init(2, 2, 60, 16, &[], 1);
        let mut p = OraclePolicy::default();
        p.init(&init);
        for &(l, h, t) in &[(0usize, 0usize, 7usize), (1, 1, 42)] {
            let q = query_for(&init, l, h, t);
            let ctx = PolicyContext { layer: l, kv_head: h, queries: &q, budget: 1, middle_len: 60 };
            assert_eq!(p.select(&ctx), vec![t]);
        }
    }

    #[test]
    fn oracle_on_evict_extends_search_space() {
        let init = synthetic_init(1, 1, 10, 8, &[], 2);
        let mut p = OraclePolicy::default();
        p.init(&init);
        let new_key = vec![5.0f32; 8];
        p.on_evict(0, 0, &new_key, 10);
        let mut q = Matrix::zeros(1, 8);
        q.copy_row_from(0, &new_key);
        let ctx = PolicyContext { layer: 0, kv_head: 0, queries: &q, budget: 1, middle_len: 11 };
        assert_eq!(p.select(&ctx), vec![10]);
    }

    #[test]
    fn sparq_approximates_oracle() {
        let mut rng = Rng64::new(3);
        let init = synthetic_init(1, 1, 300, 32, &[], 3);
        let mut oracle = OraclePolicy::default();
        let mut sparq_hi = SparqPolicy::new(16);
        let mut sparq_lo = SparqPolicy::new(1);
        oracle.init(&init);
        sparq_hi.init(&init);
        sparq_lo.init(&init);

        let mut rec_hi = 0.0;
        let mut rec_lo = 0.0;
        let trials = 20;
        for _ in 0..trials {
            let q = Matrix::randn(1, 32, 1.0, &mut rng);
            let mk = |queries| PolicyContext { layer: 0, kv_head: 0, queries, budget: 30, middle_len: 300 };
            let exact = oracle.select(&mk(&q));
            rec_hi += topk_recall(&exact, &sparq_hi.select(&mk(&q)));
            rec_lo += topk_recall(&exact, &sparq_lo.select(&mk(&q)));
        }
        rec_hi /= trials as f64;
        rec_lo /= trials as f64;
        assert!(rec_hi > rec_lo + 0.15, "hi {rec_hi} lo {rec_lo}");
        assert!(rec_hi > 0.6, "hi {rec_hi}");
    }

    #[test]
    fn sparq_comm_scales_with_r_and_len() {
        let mut p = SparqPolicy::new(2);
        let init = synthetic_init(1, 1, 10, 16, &[], 4);
        p.init(&init);
        assert_eq!(p.comm_bytes_per_step(1000), 2 * 1000 * 2);
        assert_eq!(p.prefetch_bytes_per_step(1000), 0); // query-dependent!
    }

    #[test]
    fn sparq_for_comm_fraction_matches_paper() {
        // Paper: dh=128, 1/128 budget -> r=1; 1/64 -> r=2.
        assert_eq!(SparqPolicy::for_comm_fraction(1.0 / 128.0, 128).r, 1);
        assert_eq!(SparqPolicy::for_comm_fraction(1.0 / 64.0, 128).r, 2);
    }

    #[test]
    fn infllm_selects_whole_blocks() {
        let init = synthetic_init(1, 1, 64, 8, &[], 5);
        let mut p = InfLlmPolicy::new(8, 1);
        p.init(&init);
        let q = query_for(&init, 0, 0, 20); // token 20 lives in block 2
        let ctx = PolicyContext { layer: 0, kv_head: 0, queries: &q, budget: 8, middle_len: 64 };
        let sel = p.select(&ctx);
        assert_eq!(sel.len(), 8);
        // All from one contiguous block.
        let b0 = sel[0] / 8;
        assert!(sel.iter().all(|&i| i / 8 == b0), "{sel:?}");
    }

    #[test]
    fn infllm_misses_discretely_placed_token() {
        // The needle pathology: a single important token whose block
        // representative is some other (larger-norm) token. Make the needle
        // key small in norm but perfectly aligned with the query.
        let mut init = synthetic_init(1, 1, 64, 8, &[], 6);
        {
            let keys = &mut init.middle_keys[0][0];
            // Dimension 0 belongs exclusively to the needle.
            for i in 0..64 {
                keys.row_mut(i)[0] = 0.0;
            }
            let mut needle = vec![0.0f32; 8];
            needle[0] = 0.3; // small norm
            keys.copy_row_from(37, &needle);
            // Make its block-mates huge in norm but orthogonal to the query.
            for i in 32..40 {
                if i != 37 {
                    let mut big = vec![0.0f32; 8];
                    big[3] = 10.0;
                    keys.copy_row_from(i, &big);
                }
            }
        }
        let mut infllm = InfLlmPolicy::new(8, 1);
        let mut oracle = OraclePolicy::default();
        infllm.init(&init);
        oracle.init(&init);
        let mut q = Matrix::zeros(1, 8);
        q.set(0, 0, 5.0); // aligned with the needle only
        let mk = |queries| PolicyContext { layer: 0, kv_head: 0, queries, budget: 8, middle_len: 64 };
        assert!(oracle.select(&mk(&q)).contains(&37));
        assert!(!infllm.select(&mk(&q)).contains(&37), "block reps should hide the needle");
    }

    #[test]
    fn infllm_on_evict_updates_last_block() {
        let init = synthetic_init(1, 1, 16, 8, &[], 7);
        let mut p = InfLlmPolicy::new(8, 1);
        p.init(&init);
        // Append 3 tokens; a new (third) block appears.
        for i in 0..3 {
            let key = vec![i as f32 + 1.0; 8];
            p.on_evict(0, 0, &key, 16 + i);
        }
        assert_eq!(p.reps[0][0].len(), 3);
        // Aligned query must find the strongest appended token.
        let mut q = Matrix::zeros(1, 8);
        q.copy_row_from(0, &[1.0; 8]);
        let ctx = PolicyContext { layer: 0, kv_head: 0, queries: &q, budget: 3, middle_len: 19 };
        let sel = p.select(&ctx);
        assert!(sel.contains(&18), "{sel:?}");
    }

    #[test]
    fn oracle_and_sparq_shared_scratch_select_identically() {
        // The serve engine hands every session one worker-owned scratch;
        // the raw-key retrieval baselines must select exactly what their
        // internal-buffer path selects.
        let init = synthetic_init(1, 1, 220, 16, &[], 9);
        let mut oracle = OraclePolicy::default();
        let mut sparq = SparqPolicy::new(4);
        oracle.init(&init);
        sparq.init(&init);
        let mut shared = PolicyScratch::new();
        let mut rng = Rng64::new(10);
        for _ in 0..5 {
            let q = Matrix::randn(2, 16, 1.0, &mut rng);
            let mk = |queries| PolicyContext {
                layer: 0,
                kv_head: 0,
                queries,
                budget: 13,
                middle_len: 220,
            };
            for p in [&mut oracle as &mut dyn SelectionPolicy, &mut sparq] {
                let internal = p.select(&mk(&q));
                let mut ext = Vec::new();
                p.select_with_scratch(&mk(&q), &mut shared, &mut ext);
                assert_eq!(internal, ext, "{}", p.name());
            }
        }
    }

    #[test]
    fn budget_zero_selects_nothing() {
        let init = synthetic_init(1, 1, 32, 8, &[], 8);
        let mut o = OraclePolicy::default();
        let mut i = InfLlmPolicy::new(8, 1);
        o.init(&init);
        i.init(&init);
        let q = Matrix::zeros(1, 8);
        let ctx = PolicyContext { layer: 0, kv_head: 0, queries: &q, budget: 0, middle_len: 32 };
        assert!(o.select(&ctx).is_empty());
        let ctx2 = PolicyContext { layer: 0, kv_head: 0, queries: &q, budget: 0, middle_len: 32 };
        assert!(i.select(&ctx2).is_empty());
    }
}
