//! KVCache-dropping baselines: StreamingLLM, H2O, SnapKV, PyramidKV.
//!
//! These methods decide *at prefill time* which middle tokens survive, based
//! on attention statistics, and never consult the host again. The paper's
//! "(C)" variants receive extra budget so their memory matches the retrieval
//! methods' tokens + transferred data; that compensation is applied by the
//! engine's budget computation, not here.

use crate::{PolicyContext, PolicyInit, SelectionPolicy};
use pqc_tensor::top_k_indices;

/// Shared machinery: a static per-(layer, head) ranking of middle tokens,
/// computed once from prefill statistics; `select` takes the best `budget`.
#[derive(Debug, Default)]
struct StaticRanking {
    /// `[layer][kv_head]` -> middle indices sorted by descending importance.
    ranking: Vec<Vec<Vec<usize>>>,
}

impl StaticRanking {
    fn build(scores: &[Vec<Vec<f32>>], pool: usize) -> Self {
        let ranking = scores
            .iter()
            .map(|layer| {
                layer
                    .iter()
                    .map(|head| {
                        let pooled = if pool > 1 { pool_scores(head, pool) } else { head.clone() };
                        top_k_indices(&pooled, pooled.len())
                    })
                    .collect()
            })
            .collect();
        Self { ranking }
    }

    fn select_into(&self, layer: usize, head: usize, budget: usize, middle_len: usize, out: &mut Vec<usize>) {
        out.clear();
        out.extend(
            self.ranking[layer][head].iter().copied().filter(|&i| i < middle_len).take(budget),
        );
    }
}

/// 1-D mean pooling over the token axis (SnapKV §"pooling to preserve
/// surrounding information"): each token's score becomes the mean of a
/// centred window, so isolated spikes recruit their neighbourhood.
pub fn pool_scores(scores: &[f32], kernel: usize) -> Vec<f32> {
    assert!(kernel >= 1);
    let n = scores.len();
    let half = kernel / 2;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        let sum: f32 = scores[lo..hi].iter().sum();
        out.push(sum / (hi - lo) as f32);
    }
    out
}

/// StreamingLLM / LM-Infinite: initial + local tokens only; drops the entire
/// middle region.
#[derive(Debug, Default)]
pub struct StreamingLlmPolicy;

impl SelectionPolicy for StreamingLlmPolicy {
    fn name(&self) -> &'static str {
        "StreamingLLM"
    }

    fn init(&mut self, _init: &PolicyInit) {}

    fn select_into(&mut self, _ctx: &PolicyContext<'_>, out: &mut Vec<usize>) {
        out.clear();
    }

    fn comm_bytes_per_step(&self, _middle_len: usize) -> u64 {
        0
    }

    fn is_dropping(&self) -> bool {
        true
    }
}

/// H2O: keeps the "heavy hitters" — tokens with the largest attention mass
/// accumulated over *all* prefill query rows.
#[derive(Debug, Default)]
pub struct H2oPolicy {
    ranking: StaticRanking,
}

impl SelectionPolicy for H2oPolicy {
    fn name(&self) -> &'static str {
        "H2O"
    }

    fn init(&mut self, init: &PolicyInit) {
        let scores = init
            .accum_scores
            .as_ref()
            .expect("H2O requires prefill attention capture (capture_window)");
        self.ranking = StaticRanking::build(scores, 1);
    }

    fn select_into(&mut self, ctx: &PolicyContext<'_>, out: &mut Vec<usize>) {
        self.ranking.select_into(ctx.layer, ctx.kv_head, ctx.budget, ctx.middle_len, out);
    }

    fn comm_bytes_per_step(&self, _middle_len: usize) -> u64 {
        0
    }

    fn is_dropping(&self) -> bool {
        true
    }
}

/// SnapKV: ranks tokens by attention mass from the *last observation window*
/// of the prompt, smoothed with 1-D pooling.
#[derive(Debug)]
pub struct SnapKvPolicy {
    pool_kernel: usize,
    ranking: StaticRanking,
}

impl SnapKvPolicy {
    /// SnapKV with the given pooling kernel (paper-adjacent default: 7).
    pub fn new(pool_kernel: usize) -> Self {
        Self { pool_kernel, ranking: StaticRanking::default() }
    }
}

impl Default for SnapKvPolicy {
    fn default() -> Self {
        Self::new(7)
    }
}

impl SelectionPolicy for SnapKvPolicy {
    fn name(&self) -> &'static str {
        "SnapKV"
    }

    fn init(&mut self, init: &PolicyInit) {
        let scores = init
            .window_scores
            .as_ref()
            .expect("SnapKV requires prefill observation-window capture");
        self.ranking = StaticRanking::build(scores, self.pool_kernel);
    }

    fn select_into(&mut self, ctx: &PolicyContext<'_>, out: &mut Vec<usize>) {
        self.ranking.select_into(ctx.layer, ctx.kv_head, ctx.budget, ctx.middle_len, out);
    }

    fn comm_bytes_per_step(&self, _middle_len: usize) -> u64 {
        0
    }

    fn is_dropping(&self) -> bool {
        true
    }
}

/// PyramidKV: SnapKV's ranking with a *layer-wise budget pyramid* — lower
/// layers keep more tokens, higher layers fewer, with the same total budget.
#[derive(Debug)]
pub struct PyramidKvPolicy {
    pool_kernel: usize,
    n_layers: usize,
    ranking: StaticRanking,
}

impl PyramidKvPolicy {
    /// PyramidKV with the given pooling kernel.
    pub fn new(pool_kernel: usize) -> Self {
        Self { pool_kernel, n_layers: 0, ranking: StaticRanking::default() }
    }

    /// Per-layer budget multiplier: linear from 1.5 (layer 0) to 0.5 (last
    /// layer); averages exactly 1 so the total budget matches the uniform
    /// allocation.
    pub fn layer_multiplier(&self, layer: usize) -> f64 {
        if self.n_layers <= 1 {
            return 1.0;
        }
        let t = layer as f64 / (self.n_layers - 1) as f64;
        1.5 - t
    }
}

impl Default for PyramidKvPolicy {
    fn default() -> Self {
        Self::new(7)
    }
}

impl SelectionPolicy for PyramidKvPolicy {
    fn name(&self) -> &'static str {
        "PyramidKV"
    }

    fn init(&mut self, init: &PolicyInit) {
        let scores = init
            .window_scores
            .as_ref()
            .expect("PyramidKV requires prefill observation-window capture");
        self.n_layers = init.n_layers;
        self.ranking = StaticRanking::build(scores, self.pool_kernel);
    }

    fn select_into(&mut self, ctx: &PolicyContext<'_>, out: &mut Vec<usize>) {
        let scaled = (ctx.budget as f64 * self.layer_multiplier(ctx.layer)).round() as usize;
        self.ranking.select_into(ctx.layer, ctx.kv_head, scaled, ctx.middle_len, out);
    }

    fn comm_bytes_per_step(&self, _middle_len: usize) -> u64 {
        0
    }

    fn is_dropping(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::synthetic_init;
    use pqc_tensor::Matrix;

    fn ctx(queries: &Matrix, layer: usize, budget: usize, middle_len: usize) -> PolicyContext<'_> {
        PolicyContext { layer, kv_head: 0, queries, budget, middle_len }
    }

    #[test]
    fn streaming_selects_nothing() {
        let init = synthetic_init(1, 1, 30, 8, &[2], 1);
        let mut p = StreamingLlmPolicy;
        p.init(&init);
        let q = Matrix::zeros(1, 8);
        assert!(p.select(&ctx(&q, 0, 10, 30)).is_empty());
        assert!(p.is_dropping());
    }

    #[test]
    fn h2o_keeps_heavy_hitters() {
        let hot = [3usize, 17, 25];
        let init = synthetic_init(2, 2, 40, 8, &hot, 2);
        let mut p = H2oPolicy::default();
        p.init(&init);
        let q = Matrix::zeros(1, 8);
        let sel = p.select(&ctx(&q, 0, 3, 40));
        let mut s = sel.clone();
        s.sort_unstable();
        assert_eq!(s, vec![3, 17, 25]);
    }

    #[test]
    fn h2o_static_across_queries() {
        let init = synthetic_init(1, 1, 40, 8, &[9, 30], 3);
        let mut p = H2oPolicy::default();
        p.init(&init);
        let q1 = crate::testutil::query_for(&init, 0, 0, 5);
        let q2 = crate::testutil::query_for(&init, 0, 0, 35);
        // Dropping: same set regardless of query — the paper's criticism.
        assert_eq!(p.select(&ctx(&q1, 0, 2, 40)), p.select(&ctx(&q2, 0, 2, 40)));
    }

    #[test]
    fn snapkv_uses_window_scores_with_pooling() {
        let hot = [20usize];
        let init = synthetic_init(1, 1, 50, 8, &hot, 4);
        let mut p = SnapKvPolicy::new(5);
        p.init(&init);
        let q = Matrix::zeros(1, 8);
        let sel = p.select(&ctx(&q, 0, 5, 50));
        // Pooling recruits the hot token's neighbourhood.
        assert!(sel.contains(&20));
        assert!(sel.iter().all(|&i| (18..=22).contains(&i)), "{sel:?}");
    }

    #[test]
    fn pooling_mean_window() {
        let s = [0.0f32, 0.0, 9.0, 0.0, 0.0];
        let p = pool_scores(&s, 3);
        assert_eq!(p, vec![0.0, 3.0, 3.0, 3.0, 0.0]);
        // kernel 1 = identity
        assert_eq!(pool_scores(&s, 1), s.to_vec());
    }

    #[test]
    fn pyramid_budget_decreasing_in_depth() {
        let init = synthetic_init(4, 1, 60, 8, &[1, 2, 3, 4, 5, 6, 7, 8], 5);
        let mut p = PyramidKvPolicy::default();
        p.init(&init);
        let q = Matrix::zeros(1, 8);
        let low = p.select(&ctx(&q, 0, 8, 60)).len();
        let high = p.select(&ctx(&q, 3, 8, 60)).len();
        assert!(low > high, "low {low} high {high}");
        // Multipliers average 1.
        let avg: f64 = (0..4).map(|l| p.layer_multiplier(l)).sum::<f64>() / 4.0;
        assert!((avg - 1.0).abs() < 1e-12);
    }

    #[test]
    fn selection_respects_middle_len_bound() {
        let init = synthetic_init(1, 1, 40, 8, &[39], 6);
        let mut p = H2oPolicy::default();
        p.init(&init);
        let q = Matrix::zeros(1, 8);
        // Pretend middle only has 20 tokens: index 39 must not appear.
        let sel = p.select(&ctx(&q, 0, 10, 20));
        assert!(sel.iter().all(|&i| i < 20));
    }

    #[test]
    fn dropping_policies_report_zero_comm() {
        let policies: Vec<Box<dyn SelectionPolicy>> = vec![
            Box::new(StreamingLlmPolicy),
            Box::new(H2oPolicy::default()),
            Box::new(SnapKvPolicy::default()),
            Box::new(PyramidKvPolicy::default()),
        ];
        for p in &policies {
            assert_eq!(p.comm_bytes_per_step(10_000), 0, "{}", p.name());
            assert_eq!(p.prefetch_bytes_per_step(10_000), 0);
            assert!(p.is_dropping());
        }
    }
}
