//! The selective-attention decode session — PQCache's engine.
//!
//! Wires together the transformer substrate, a [`SelectionPolicy`], the
//! host-tier KV store, and the GPU block cache, implementing the paper's
//! decode loop (Algorithm 2):
//!
//! 1. the new token's K/V is published; the oldest local token is evicted,
//!    assigned PQ codes (policy `on_evict`), and offloaded to the host;
//! 2. the policy selects relevant middle tokens for the current query;
//! 3. selected tokens are served from the GPU block cache where resident,
//!    fetched (and metered) from the host otherwise;
//! 4. attention runs over initial ∪ selected-middle ∪ local tokens.

use crate::config::SessionConfig;
use pqc_cache::{top_blocks, BlockCache};
use pqc_llm::{DecodeOutput, DecodeScratch, KvSource, Model, PrefillOptions, PrefillOutput};
use pqc_memhier::{HostKvStore, MemError, SharingStats, TransferStats};
use pqc_policies::{PolicyContext, PolicyInit, PolicyScratch, SelectionPolicy, SharedPolicyState};
use pqc_tensor::Matrix;
use std::collections::VecDeque;

/// Why a fallible decode step failed. Either way the session is dead:
/// a store fault or a panic leaves per-layer state partially mutated, so
/// the caller must retire the session (the serving layer turns this into
/// a failed completion), never step it again.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepError {
    /// The host KV tier refused an append/fetch (e.g. page exhaustion).
    Store(MemError),
    /// The step panicked; the payload's message is preserved.
    Poisoned {
        /// The panic payload, stringified.
        message: String,
    },
}

impl std::fmt::Display for StepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StepError::Store(e) => write!(f, "session store fault: {e}"),
            StepError::Poisoned { message } => write!(f, "session step panicked: {message}"),
        }
    }
}

impl std::error::Error for StepError {}

/// Stringify a caught panic payload (`&str` / `String` are the common
/// cases; anything else is labeled opaquely).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The GPU-resident sliding window of one (layer, kv-head): recent tokens'
/// (key, value) rows.
type LocalWindow = VecDeque<(Vec<f32>, Vec<f32>)>;

/// Minimum middle length before a lazily-initialised policy is trained.
const LAZY_INIT_THRESHOLD: usize = 16;

/// A running decode session with selective attention.
pub struct SelectiveSession<'m> {
    model: &'m Model,
    cfg: SessionConfig,
    policy: Box<dyn SelectionPolicy + Send>,
    policy_ready: bool,
    /// Middle budget per step (already includes "(C)" compensation for
    /// dropping policies).
    budget_middle: usize,
    /// GPU-resident initial segment, `[layer][kv_head]`.
    init_k: Vec<Vec<Matrix>>,
    init_v: Vec<Vec<Matrix>>,
    /// GPU-resident local window, `[layer][kv_head]` of (key, value) pairs.
    local: Vec<Vec<LocalWindow>>,
    /// Host-tier middle store (metered).
    store: HostKvStore,
    cache: BlockCache,
    /// Next absolute position to decode.
    pos: usize,
    steps: u64,
    /// Non-overlappable policy communication accumulated (bytes).
    policy_comm_bytes: u64,
    /// Selected middle indices (absolute token ids) of the last step,
    /// `[layer][kv_head]` — used by retrieval-accuracy instrumentation.
    last_selected: Vec<Vec<Vec<usize>>>,
    /// Reusable selection buffer handed to the policy each step
    /// (taken/restored around the call to satisfy the borrow checker
    /// without reallocating).
    sel_scratch: Vec<usize>,
    /// Reusable policy scratch (retriever, group-query buffer). Swapped out
    /// for a worker-owned scratch by [`SelectiveSession::step_with_scratch`]
    /// so concurrent sessions on one shard share a single set of buffers.
    policy_scratch: PolicyScratch,
    /// A store fault recorded mid-step (`publish` cannot return errors
    /// through the `KvSource` trait); drained by the fallible step wrapper.
    pending_fault: Option<MemError>,
}

/// Per-worker scratch reused across every session a shard steps: the policy
/// retrieval buffers, the selection index buffer, and the model's attention
/// buffers. Splitting these out of the session is what lets the serving
/// layer run N sessions with one set of hot-path buffers; every field is
/// fully overwritten per step, so sharing never changes results.
#[derive(Debug, Default)]
pub struct SessionScratch {
    /// Policy-side retrieval scratch (ADC table, scores, heap, group query).
    pub policy: PolicyScratch,
    /// Selected-index buffer.
    pub selection: Vec<usize>,
    /// Model attention buffers.
    pub decode: DecodeScratch,
}

impl SessionScratch {
    /// Empty scratch; buffers warm up on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Outcome of session construction: the session plus the prefill output
/// (whose logits give the first generated token).
pub struct SessionStart<'m> {
    /// The ready-to-decode session.
    pub session: SelectiveSession<'m>,
    /// First-token logits from prefill.
    pub logits: Vec<f32>,
}

/// Externally supplied backing storage for a session: its host-tier KV
/// namespace and its GPU block cache.
///
/// Single-session callers never see this (construction builds private
/// defaults); the serving layer vends one per admitted session — a fresh
/// [`pqc_memhier::KvTier`] namespace plus a [`BlockCache`] drawing on the
/// engine-wide [`pqc_cache::CacheBudget`].
#[derive(Debug)]
pub struct SessionResources {
    /// Host-tier middle store (one namespace; must be empty).
    pub store: HostKvStore,
    /// GPU block cache (must be empty).
    pub cache: BlockCache,
}

impl SessionResources {
    /// The defaults a standalone session would build for itself.
    pub fn standalone(model: &Model, cfg: &SessionConfig) -> Self {
        let mcfg = model.config();
        Self {
            store: HostKvStore::new(mcfg.n_layers, mcfg.n_kv_heads, mcfg.head_dim),
            cache: BlockCache::new(cfg.cache.capacity_tokens, cfg.cache.block_size, cfg.cache.policy()),
        }
    }
}

impl<'m> SelectiveSession<'m> {
    /// Run prefill and construct a session.
    ///
    /// Panics if the prompt is shorter than `n_init + n_local` — selective
    /// attention needs a non-trivial context (use full attention for short
    /// prompts).
    pub fn start(
        model: &'m Model,
        mut policy: Box<dyn SelectionPolicy + Send>,
        cfg: SessionConfig,
        tokens: &[u32],
    ) -> SessionStart<'m> {
        cfg.validate_strict();
        let s = tokens.len();
        assert!(
            s > cfg.n_init + cfg.n_local,
            "prompt ({s} tokens) must exceed n_init + n_local ({})",
            cfg.n_init + cfg.n_local
        );
        let prefill = model.prefill(tokens, &Self::prefill_options(&cfg, s));
        let resources = SessionResources::standalone(model, &cfg);
        Self::from_prefill(model, &mut policy, cfg, &prefill, resources, None)
            .unwrap_or_else(|e| panic!("{e}"))
            .into_start(policy, prefill.logits)
    }

    /// The prefill options a session constructed via [`SelectiveSession::start`]
    /// uses for a prompt of `prompt_len` tokens — exposed so external
    /// drivers (the serve engine) prefill identically.
    pub fn prefill_options(cfg: &SessionConfig, prompt_len: usize) -> PrefillOptions {
        PrefillOptions {
            capture_window: Some(cfg.obs_window.min(prompt_len)),
            ..Default::default()
        }
    }

    /// Construct from an existing prefill output (lets callers reuse one
    /// prefill across several sessions — the benchmark suite does this).
    pub fn start_from_prefill(
        model: &'m Model,
        policy: Box<dyn SelectionPolicy + Send>,
        cfg: SessionConfig,
        prefill: &PrefillOutput,
    ) -> SessionStart<'m> {
        let resources = SessionResources::standalone(model, &cfg);
        Self::start_from_prefill_in(model, policy, cfg, prefill, resources)
    }

    /// [`SelectiveSession::start_from_prefill`] with externally owned
    /// backing storage — the serving-layer entry point: the store is a
    /// [`pqc_memhier::KvTier`] namespace and the cache draws on a shared
    /// [`pqc_cache::CacheBudget`].
    pub fn start_from_prefill_in(
        model: &'m Model,
        policy: Box<dyn SelectionPolicy + Send>,
        cfg: SessionConfig,
        prefill: &PrefillOutput,
        resources: SessionResources,
    ) -> SessionStart<'m> {
        Self::try_start_from_prefill_in(model, policy, cfg, prefill, resources)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`SelectiveSession::start_from_prefill_in`]: on a capped
    /// host tier the prefill offload can exhaust the page pool; the error
    /// comes back typed (and the partially-written chains are rolled back)
    /// so the serving layer can shed the session instead of aborting.
    /// Config validation still panics — the serving layer validates configs
    /// up front via [`SessionConfig::validate`].
    pub fn try_start_from_prefill_in(
        model: &'m Model,
        mut policy: Box<dyn SelectionPolicy + Send>,
        cfg: SessionConfig,
        prefill: &PrefillOutput,
        resources: SessionResources,
    ) -> Result<SessionStart<'m>, MemError> {
        cfg.validate_strict();
        Ok(Self::from_prefill(model, &mut policy, cfg, prefill, resources, None)?
            .into_start(policy, prefill.logits.clone()))
    }

    /// Construct a session over a **shared prompt prefix**: the store may
    /// arrive pre-populated with the prompt's middle region (a
    /// [`pqc_memhier::KvTier::new_namespace_with_prefix`] namespace — no
    /// offload runs or is metered, the pages never left the host), and the
    /// policy may adopt trained state exported by the prefix's first
    /// session instead of re-training. Falls back to a normal `init`
    /// (middle keys come from `prefill` either way) when `shared` is
    /// `None` or the policy rejects the import. Training is
    /// deterministically seeded, so either path decodes bit-identically.
    pub fn start_from_shared_prefix(
        model: &'m Model,
        policy: Box<dyn SelectionPolicy + Send>,
        cfg: SessionConfig,
        prefill: &PrefillOutput,
        resources: SessionResources,
        shared: Option<&SharedPolicyState>,
    ) -> SessionStart<'m> {
        Self::try_start_from_shared_prefix(model, policy, cfg, prefill, resources, shared)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`SelectiveSession::start_from_shared_prefix`] — same
    /// contract as [`SelectiveSession::try_start_from_prefill_in`].
    pub fn try_start_from_shared_prefix(
        model: &'m Model,
        mut policy: Box<dyn SelectionPolicy + Send>,
        cfg: SessionConfig,
        prefill: &PrefillOutput,
        resources: SessionResources,
        shared: Option<&SharedPolicyState>,
    ) -> Result<SessionStart<'m>, MemError> {
        cfg.validate_strict();
        Ok(Self::from_prefill(model, &mut policy, cfg, prefill, resources, shared)?
            .into_start(policy, prefill.logits.clone()))
    }

    fn from_prefill(
        model: &'m Model,
        policy: &mut Box<dyn SelectionPolicy + Send>,
        cfg: SessionConfig,
        prefill: &PrefillOutput,
        resources: SessionResources,
        shared: Option<&SharedPolicyState>,
    ) -> Result<SessionParts<'m>, MemError> {
        let mcfg = *model.config();
        let s = prefill.kv[0].len();
        assert!(s > cfg.n_init + cfg.n_local, "prompt too short for segmentation");
        let mid_lo = cfg.n_init;
        let mid_hi = s - cfg.n_local;
        let middle_len = mid_hi - mid_lo;

        let SessionResources { mut store, cache } = resources;
        // A pre-populated store is the shared-prefix path: the namespace
        // was minted from the tier's prefix registry and already holds
        // exactly the prompt's middle region — skip the offload (the pages
        // never left the host; only `prefix_hit_tokens` was metered).
        let prefix_resident = !store.is_empty();
        if prefix_resident {
            for l in 0..mcfg.n_layers {
                for h in 0..mcfg.n_kv_heads {
                    assert_eq!(
                        store.len(l, h),
                        middle_len,
                        "shared-prefix store must hold exactly the prompt's middle region"
                    );
                }
            }
        }
        assert!(cache.is_empty(), "session cache must start empty");
        // The engine's routing knob: `Probe` is pushed down to IVF-capable
        // policies (they build their inverted tiers at init); the `Exact`
        // default leaves each policy's own routing configuration in effect.
        if cfg.ivf.is_probe() {
            policy.configure_ivf(cfg.ivf);
        }
        // Shared-prefix fast path for the policy too: adopt the trained
        // PQ/IVF state exported over the same middle keys (bit-identical to
        // training — seeds are deterministic) and skip building PolicyInit.
        let imported =
            middle_len > 0 && shared.is_some_and(|state| policy.import_shared(state));
        let need_middle_keys = !imported;
        let mut init_k = Vec::with_capacity(mcfg.n_layers);
        let mut init_v = Vec::with_capacity(mcfg.n_layers);
        let mut local = Vec::with_capacity(mcfg.n_layers);
        let mut middle_keys = Vec::with_capacity(mcfg.n_layers);

        for (l, lk) in prefill.kv.iter().enumerate() {
            let mut ik = Vec::with_capacity(mcfg.n_kv_heads);
            let mut iv = Vec::with_capacity(mcfg.n_kv_heads);
            let mut ll = Vec::with_capacity(mcfg.n_kv_heads);
            let mut mk = Vec::with_capacity(mcfg.n_kv_heads);
            for h in 0..mcfg.n_kv_heads {
                let keys = &lk.keys[h];
                let values = &lk.values[h];
                ik.push(keys.slice_rows(0, mid_lo));
                iv.push(values.slice_rows(0, mid_lo));
                let mid_k = keys.slice_rows(mid_lo, mid_hi);
                let mid_v = values.slice_rows(mid_lo, mid_hi);
                if prefix_resident {
                    if need_middle_keys {
                        mk.push(mid_k);
                    }
                } else {
                    if need_middle_keys {
                        mk.push(mid_k.clone());
                    }
                    store.try_offload(l, h, mid_k, mid_v)?; // Step ❶: metered offload
                }
                let mut dq = VecDeque::with_capacity(cfg.n_local + 1);
                for i in mid_hi..s {
                    dq.push_back((keys.row(i).to_vec(), values.row(i).to_vec()));
                }
                ll.push(dq);
            }
            init_k.push(ik);
            init_v.push(iv);
            local.push(ll);
            middle_keys.push(mk);
        }

        // Policy initialisation from the middle slice of the captures.
        let slice_scores = |which: &dyn Fn(&pqc_llm::ScoreCapture) -> &Vec<f32>| {
            prefill.captures.as_ref().map(|caps| {
                caps.iter()
                    .map(|layer| {
                        layer
                            .iter()
                            .map(|c| which(c)[mid_lo..mid_hi].to_vec())
                            .collect::<Vec<_>>()
                    })
                    .collect::<Vec<_>>()
            })
        };
        let policy_ready = middle_len > 0;
        if policy_ready && !imported {
            let pinit = PolicyInit {
                n_layers: mcfg.n_layers,
                n_kv_heads: mcfg.n_kv_heads,
                head_dim: mcfg.head_dim,
                middle_keys,
                accum_scores: slice_scores(&|c| &c.accum),
                window_scores: slice_scores(&|c| &c.window_accum),
            };
            policy.init(&pinit);
        }

        let mut budget = cfg.middle_budget(s);
        if policy.is_dropping() {
            budget += cfg.compensation_tokens(s);
        }

        Ok(SessionParts {
            model,
            cfg,
            policy_ready,
            budget_middle: budget,
            init_k,
            init_v,
            local,
            store,
            cache,
            pos: s,
            n_layers: mcfg.n_layers,
            n_kv_heads: mcfg.n_kv_heads,
        })
    }

    /// One decode step: runs the model with this session as the KV source.
    pub fn decode(&mut self, token: u32) -> DecodeOutput {
        let pos = self.pos;
        self.pos += 1;
        self.steps += 1;
        let model = self.model;
        model.decode_step(token, pos, self)
    }

    /// One decode step through worker-owned scratch — the serving hot path.
    ///
    /// The shard's [`SessionScratch`] is swapped into the session for the
    /// duration of the step (policy retrieval buffers, selection buffer)
    /// and the model runs with the shared attention buffers, so N
    /// concurrent sessions reuse one set of hot-path allocations.
    /// Bit-identical to [`SelectiveSession::decode`].
    pub fn step_with_scratch(&mut self, token: u32, scratch: &mut SessionScratch) -> DecodeOutput {
        std::mem::swap(&mut self.sel_scratch, &mut scratch.selection);
        std::mem::swap(&mut self.policy_scratch, &mut scratch.policy);
        let pos = self.pos;
        self.pos += 1;
        self.steps += 1;
        let model = self.model;
        let out = model.decode_step_with_scratch(token, pos, self, &mut scratch.decode);
        std::mem::swap(&mut self.sel_scratch, &mut scratch.selection);
        std::mem::swap(&mut self.policy_scratch, &mut scratch.policy);
        out
    }

    /// Fallible [`SelectiveSession::step_with_scratch`] — the fault-tolerant
    /// serving hot path. Two failure modes are contained here instead of
    /// unwinding through the shard worker:
    ///
    /// - a host-tier fault latched by `publish` (the `KvSource` trait can't
    ///   return errors) surfaces as [`StepError::Store`];
    /// - a panic anywhere in the step is caught and surfaces as
    ///   [`StepError::Poisoned`] with the payload's message.
    ///
    /// The scratch swaps happen *outside* the catch, so the worker's shared
    /// buffers are always restored — a poisoned session never corrupts the
    /// scratch other sessions on the shard keep using. On `Err` the session
    /// must be retired: per-layer state is partially mutated and stepping
    /// again would produce garbage.
    pub fn try_step_with_scratch(
        &mut self,
        token: u32,
        scratch: &mut SessionScratch,
    ) -> Result<DecodeOutput, StepError> {
        std::mem::swap(&mut self.sel_scratch, &mut scratch.selection);
        std::mem::swap(&mut self.policy_scratch, &mut scratch.policy);
        let pos = self.pos;
        self.pos += 1;
        self.steps += 1;
        let model = self.model;
        let decode = &mut scratch.decode;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            model.decode_step_with_scratch(token, pos, self, decode)
        }));
        std::mem::swap(&mut self.sel_scratch, &mut scratch.selection);
        std::mem::swap(&mut self.policy_scratch, &mut scratch.policy);
        // A latched store fault outranks the panic it may have caused
        // downstream: the injected/root cause is the useful report.
        if let Some(e) = self.pending_fault.take() {
            return Err(StepError::Store(e));
        }
        match result {
            Ok(out) => Ok(out),
            Err(payload) => Err(StepError::Poisoned { message: panic_message(payload.as_ref()) }),
        }
    }

    /// Greedy generation: feeds the argmax of `first_logits`, then each
    /// step's own argmax, for `steps` tokens.
    pub fn generate(&mut self, first_logits: &[f32], steps: usize) -> Vec<u32> {
        let mut out = Vec::with_capacity(steps);
        let mut next = pqc_tensor::argmax(first_logits) as u32;
        for _ in 0..steps {
            out.push(next);
            let dec = self.decode(next);
            next = dec.greedy();
        }
        out
    }

    /// The policy's display name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Host transfer statistics (offload + fetch).
    pub fn transfer_stats(&self) -> TransferStats {
        self.store.stats()
    }

    /// Sharing statistics of this session's namespace (tokens adopted from
    /// a shared prefix; copy-on-write page copies its appends triggered).
    pub fn sharing_stats(&self) -> SharingStats {
        self.store.sharing_stats()
    }

    /// The session's host store — e.g. for registering its prompt as a
    /// shared prefix with the owning [`pqc_memhier::KvTier`].
    pub fn store(&self) -> &HostKvStore {
        &self.store
    }

    /// Snapshot the policy's trained prefix state for cross-session sharing
    /// (`None` when the policy has nothing shareable).
    pub fn export_policy_state(&self) -> Option<SharedPolicyState> {
        self.policy.export_shared()
    }

    /// GPU cache statistics.
    pub fn cache_stats(&self) -> pqc_cache::CacheStats {
        self.cache.stats()
    }

    /// Non-overlappable policy communication so far, in bytes.
    pub fn policy_comm_bytes(&self) -> u64 {
        self.policy_comm_bytes
    }

    /// Decode steps taken.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Middle tokens currently on the host (layer 0 as representative).
    pub fn middle_len(&self) -> usize {
        self.store.len(0, 0)
    }

    /// Absolute token ids selected at the last step for `(layer, kv_head)`.
    pub fn last_selected(&self, layer: usize, kv_head: usize) -> &[usize] {
        &self.last_selected[layer][kv_head]
    }

    /// A clone of every `(layer, kv_head)`'s last-step selection — used by
    /// the serve engine's equivalence tracing.
    pub fn selected_snapshot(&self) -> Vec<Vec<Vec<usize>>> {
        self.last_selected.clone()
    }

    /// Current middle-region budget per step.
    pub fn middle_budget(&self) -> usize {
        self.budget_middle
    }

    /// Adopt a runtime selection-effort override — the serving layer's
    /// brownout knob. Forwards to the policy (see
    /// [`pqc_policies::SelectionEffort`]): degraded effort shrinks the
    /// per-step selection budget and IVF probe width within their floors;
    /// [`pqc_policies::SelectionEffort::full`] restores construction-time
    /// behaviour bit-identically. Safe to call between any two steps; not
    /// part of checkpoint or suspend state (a resumed or replayed session
    /// starts at full effort and the caller re-applies per step).
    pub fn set_effort(&mut self, effort: pqc_policies::SelectionEffort) {
        self.policy.set_effort(effort);
    }

    /// Rebuild the policy's structures from the current middle region —
    /// the paper's §5 recommendation for long outputs and multi-turn
    /// conversations ("periodically reconstruct PQ to update the
    /// information"). Dropping policies ignore it.
    pub fn refresh_policy(&mut self) {
        let mcfg = self.model.config();
        let mid = self.store.len(0, 0);
        if mid == 0 {
            return;
        }
        let middle_keys: Vec<Vec<Matrix>> = (0..mcfg.n_layers)
            .map(|l| (0..mcfg.n_kv_heads).map(|h| self.store.keys_matrix(l, h)).collect())
            .collect();
        let zeros = vec![vec![vec![0.0f32; mid]; mcfg.n_kv_heads]; mcfg.n_layers];
        let pinit = PolicyInit {
            n_layers: mcfg.n_layers,
            n_kv_heads: mcfg.n_kv_heads,
            head_dim: mcfg.head_dim,
            middle_keys,
            accum_scores: Some(zeros.clone()),
            window_scores: Some(zeros),
        };
        self.policy.refresh(&pinit);
        self.policy_ready = true;
    }

    /// Preempt this session: offload its GPU-resident state (initial segment
    /// plus local window) into a fresh namespace of `tier` — the metered D2H
    /// path — pin every host page it owns against recycling, and release its
    /// GPU block cache (freeing the budget slots for whoever preempted it).
    ///
    /// The returned [`SuspendedSession`] holds no model borrow and can be
    /// parked indefinitely; [`SuspendedSession::resume`] restores a session
    /// that decodes **bit-identically** to one that was never suspended
    /// (the block cache only meters transfers — it never changes gathered
    /// data — so resuming with a cold cache alters metering, not logits).
    ///
    /// Must be called between decode steps (panics if a store fault is
    /// pending). On pool exhaustion the session comes back **intact** inside
    /// the error — preemption failure is recoverable, the victim just keeps
    /// running — along with the D2H already metered into the abandoned swap
    /// namespace so the caller's transfer accounting stays exact.
    // The Err variant is deliberately large: preemption failure must hand the
    // intact victim session (plus the already-metered D2H) back to the caller
    // so it can keep decoding — boxing would buy nothing but an allocation on
    // a path that exists precisely because allocation just failed.
    #[allow(clippy::result_large_err)]
    pub fn suspend(self, tier: &pqc_memhier::KvTier) -> Result<SuspendedSession, SuspendError<'m>> {
        assert!(
            self.pending_fault.is_none(),
            "cannot suspend a session with a pending store fault"
        );
        let mcfg = self.model.config();
        let dh = mcfg.head_dim;
        let mut swap = tier.new_namespace();
        for l in 0..mcfg.n_layers {
            for h in 0..mcfg.n_kv_heads {
                let window = &self.local[l][h];
                assert_eq!(
                    window.len(),
                    self.cfg.n_local,
                    "suspend must run between steps (local window full)"
                );
                let rows = self.cfg.n_init + window.len();
                let mut k = Matrix::zeros(rows, dh);
                let mut v = Matrix::zeros(rows, dh);
                for i in 0..self.cfg.n_init {
                    k.copy_row_from(i, self.init_k[l][h].row(i));
                    v.copy_row_from(i, self.init_v[l][h].row(i));
                }
                for (i, (wk, wv)) in window.iter().enumerate() {
                    k.copy_row_from(self.cfg.n_init + i, wk);
                    v.copy_row_from(self.cfg.n_init + i, wv);
                }
                if let Err(error) = swap.try_offload(l, h, k, v) {
                    let swap_transfer = swap.stats();
                    drop(swap); // releases the partial chains
                    return Err(SuspendError { session: self, error, swap_transfer });
                }
            }
        }
        let SelectiveSession {
            cfg,
            policy,
            policy_ready,
            budget_middle,
            store,
            pos,
            steps,
            policy_comm_bytes,
            last_selected,
            ..
        } = self; // init/local/cache drop here; the cache frees its budget slots
        Ok(SuspendedSession {
            cfg,
            policy,
            policy_ready,
            budget_middle,
            store: PinnedStore::new(store),
            swap: PinnedStore::new(swap),
            pos,
            steps,
            policy_comm_bytes,
            last_selected,
        })
    }

    /// Snapshot this session **without evicting it**: the crash-recovery
    /// checkpoint path. Produces a [`SuspendedSession`] that resumes into a
    /// session decoding bit-identically to this one from this exact point,
    /// while `self` keeps running untouched:
    ///
    /// - the GPU-resident state (initial segment + local window) is
    ///   offloaded into a fresh pinned swap namespace, exactly as
    ///   [`SelectiveSession::suspend`] would;
    /// - the middle store is forked copy-on-write
    ///   ([`pqc_memhier::KvTier::fork_namespace`]) — no bytes move, the
    ///   snapshot just retains the live pages; the live session's later
    ///   appends CoW away from the frozen tail;
    /// - the policy is deep-copied via [`SelectionPolicy::fork`].
    ///
    /// Returns `Ok(None)` — checkpoint skipped, session unaffected — when
    /// the policy is not forkable, the local windows are not full (mid-
    /// prefill), or a store fault is already pending. Returns `Err` when
    /// the swap offload exhausts a capped pool (the partial swap is rolled
    /// back; the live session is still unaffected).
    pub fn checkpoint(
        &self,
        tier: &pqc_memhier::KvTier,
    ) -> Result<Option<SuspendedSession>, MemError> {
        if self.pending_fault.is_some() {
            return Ok(None);
        }
        let Some(policy) = self.policy.fork() else {
            return Ok(None);
        };
        let mcfg = self.model.config();
        let dh = mcfg.head_dim;
        if self.local.iter().flatten().any(|w| w.len() != self.cfg.n_local) {
            return Ok(None);
        }
        let mut swap = tier.new_namespace();
        for l in 0..mcfg.n_layers {
            for h in 0..mcfg.n_kv_heads {
                let window = &self.local[l][h];
                let rows = self.cfg.n_init + window.len();
                let mut k = Matrix::zeros(rows, dh);
                let mut v = Matrix::zeros(rows, dh);
                for i in 0..self.cfg.n_init {
                    k.copy_row_from(i, self.init_k[l][h].row(i));
                    v.copy_row_from(i, self.init_v[l][h].row(i));
                }
                for (i, (wk, wv)) in window.iter().enumerate() {
                    k.copy_row_from(self.cfg.n_init + i, wk);
                    v.copy_row_from(self.cfg.n_init + i, wv);
                }
                swap.try_offload(l, h, k, v)?; // drop of `swap` rolls back
            }
        }
        Ok(Some(SuspendedSession {
            cfg: self.cfg,
            policy,
            policy_ready: self.policy_ready,
            budget_middle: self.budget_middle,
            store: PinnedStore::new(tier.fork_namespace(&self.store)),
            swap: PinnedStore::new(swap),
            pos: self.pos,
            steps: self.steps,
            policy_comm_bytes: self.policy_comm_bytes,
            last_selected: self.last_selected.clone(),
        }))
    }

    /// Deterministic fault injection: flip one bit in the middle store's
    /// (layer, head) chain tail (see [`pqc_memhier::HostKvStore::corrupt_slot`];
    /// a tail shared with a checkpoint is CoW-copied first, so snapshots
    /// keep the intact bytes). The next verified fetch of that slot latches
    /// the corruption as a [`StepError::Store`] fault.
    pub fn corrupt_middle_slot(&mut self, layer: usize, head: usize, bit: u64) -> bool {
        self.store.corrupt_slot(layer, head, bit)
    }

    fn maybe_lazy_init(&mut self) {
        if self.policy_ready {
            return;
        }
        let mid = self.store.len(0, 0);
        if mid < LAZY_INIT_THRESHOLD {
            return;
        }
        let mcfg = self.model.config();
        let middle_keys: Vec<Vec<Matrix>> = (0..mcfg.n_layers)
            .map(|l| (0..mcfg.n_kv_heads).map(|h| self.store.keys_matrix(l, h)).collect())
            .collect();
        let zeros = vec![vec![vec![0.0f32; mid]; mcfg.n_kv_heads]; mcfg.n_layers];
        let pinit = PolicyInit {
            n_layers: mcfg.n_layers,
            n_kv_heads: mcfg.n_kv_heads,
            head_dim: mcfg.head_dim,
            middle_keys,
            accum_scores: Some(zeros.clone()),
            window_scores: Some(zeros),
        };
        self.policy.init(&pinit);
        self.policy_ready = true;
    }
}

/// Intermediate construction product (avoids a partially-initialised
/// `SelectiveSession` while the policy is still borrowed).
struct SessionParts<'m> {
    model: &'m Model,
    cfg: SessionConfig,
    policy_ready: bool,
    budget_middle: usize,
    init_k: Vec<Vec<Matrix>>,
    init_v: Vec<Vec<Matrix>>,
    local: Vec<Vec<LocalWindow>>,
    store: HostKvStore,
    cache: BlockCache,
    pos: usize,
    n_layers: usize,
    n_kv_heads: usize,
}

impl<'m> SessionParts<'m> {
    fn into_start(self, policy: Box<dyn SelectionPolicy + Send>, logits: Vec<f32>) -> SessionStart<'m> {
        let last_selected = vec![vec![Vec::new(); self.n_kv_heads]; self.n_layers];
        SessionStart {
            session: SelectiveSession {
                model: self.model,
                cfg: self.cfg,
                policy,
                policy_ready: self.policy_ready,
                budget_middle: self.budget_middle,
                init_k: self.init_k,
                init_v: self.init_v,
                local: self.local,
                store: self.store,
                cache: self.cache,
                pos: self.pos,
                steps: 0,
                policy_comm_bytes: 0,
                last_selected,
                sel_scratch: Vec::new(),
                policy_scratch: PolicyScratch::new(),
                pending_fault: None,
            },
            logits,
        }
    }
}

/// A failed [`SelectiveSession::suspend`]: the swap offload exhausted the
/// page pool. The session is returned **unharmed** — the caller can keep
/// decoding it — and `swap_transfer` reports the D2H metered into the
/// abandoned swap namespace before the failure (its pages are already
/// released), so engine-level aggregate accounting still closes.
pub struct SuspendError<'m> {
    /// The victim, exactly as it was before the suspend attempt.
    pub session: SelectiveSession<'m>,
    /// The store fault that aborted the offload.
    pub error: MemError,
    /// Transfer already metered into the abandoned swap namespace.
    pub swap_transfer: TransferStats,
}

impl std::fmt::Debug for SuspendError<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SuspendError")
            .field("error", &self.error)
            .field("swap_transfer", &self.swap_transfer)
            .finish_non_exhaustive()
    }
}

/// A host store whose pages are pinned against recycling for as long as
/// this wrapper lives. Unpins on [`PinnedStore::into_inner`] or drop, so a
/// parked session that is discarded (e.g. deadline-reaped) never trips the
/// allocator's pinned-release panic.
struct PinnedStore(Option<HostKvStore>);

impl PinnedStore {
    fn new(store: HostKvStore) -> Self {
        store.pin_pages();
        Self(Some(store))
    }

    fn get(&self) -> &HostKvStore {
        self.0.as_ref().expect("store present until into_inner")
    }

    fn into_inner(mut self) -> HostKvStore {
        let store = self.0.take().expect("store present until into_inner");
        store.unpin_pages();
        store
    }
}

impl Drop for PinnedStore {
    fn drop(&mut self) {
        if let Some(store) = self.0.take() {
            store.unpin_pages();
        }
    }
}

/// A preempted session parked off-GPU: its middle region stays in its host
/// namespace, its initial segment + local window live in a swap namespace,
/// and every page is pinned. Holds no model borrow and no GPU cache.
/// Produced by [`SelectiveSession::suspend`]; revived by
/// [`SuspendedSession::resume`]. Dropping it without resuming unpins and
/// releases everything cleanly.
pub struct SuspendedSession {
    cfg: SessionConfig,
    policy: Box<dyn SelectionPolicy + Send>,
    policy_ready: bool,
    budget_middle: usize,
    /// The untouched middle-region namespace (pinned).
    store: PinnedStore,
    /// Swap namespace holding, per (layer, head), `n_init` initial rows
    /// followed by `n_local` local-window rows (pinned).
    swap: PinnedStore,
    pos: usize,
    steps: u64,
    policy_comm_bytes: u64,
    last_selected: Vec<Vec<Vec<usize>>>,
}

impl std::fmt::Debug for SuspendedSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SuspendedSession")
            .field("pos", &self.pos)
            .field("steps", &self.steps)
            .field("middle_len", &self.middle_len())
            .finish_non_exhaustive()
    }
}

impl SuspendedSession {
    /// Next absolute position the resumed session will decode.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Decode steps taken before suspension.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Middle tokens parked on the host (layer 0 as representative).
    pub fn middle_len(&self) -> usize {
        self.store.get().len(0, 0)
    }

    /// Host transfer of the middle-region namespace — the same stats
    /// [`SelectiveSession::transfer_stats`] would report, available while
    /// parked so a reaped session's completion still carries its traffic.
    pub fn transfer_stats(&self) -> TransferStats {
        self.store.get().stats()
    }

    /// Sharing stats of the middle-region namespace (see
    /// [`SelectiveSession::sharing_stats`]).
    pub fn sharing_stats(&self) -> SharingStats {
        self.store.get().sharing_stats()
    }

    /// Swap-namespace transfer so far (the suspend-time D2H offload).
    /// After [`SuspendedSession::resume`] the returned stats also cover the
    /// resume-time H2D fetch; callers fold them into the session's
    /// completion so engine-aggregate accounting stays exact.
    pub fn swap_stats(&self) -> TransferStats {
        self.swap.get().stats()
    }

    /// Verify every page this parked session references — middle store and
    /// swap namespace — against its stored checksum: the pre-resume
    /// integrity gate. A checkpoint that fails here must be discarded, not
    /// resumed.
    pub fn verify(&self) -> Result<(), MemError> {
        self.store.get().verify()?;
        self.swap.get().verify()
    }

    /// Revive the session: fetch the initial segment + local window back
    /// from the swap namespace (metered H2D), unpin everything, release the
    /// swap pages, and rebuild the session around a fresh (empty) block
    /// cache. Returns the session plus the swap namespace's total transfer
    /// (suspend D2H + resume H2D) for the caller's accounting.
    ///
    /// `model` must be the model the session was started with; the cache
    /// must be empty (it starts cold — metering changes, logits do not).
    pub fn resume(self, model: &Model, cache: BlockCache) -> (SelectiveSession<'_>, TransferStats) {
        let mcfg = model.config();
        assert!(cache.is_empty(), "resume cache must start empty");
        let n_init = self.cfg.n_init;
        let n_local = self.cfg.n_local;
        let ids: Vec<usize> = (0..n_init + n_local).collect();
        let mut init_k = Vec::with_capacity(mcfg.n_layers);
        let mut init_v = Vec::with_capacity(mcfg.n_layers);
        let mut local = Vec::with_capacity(mcfg.n_layers);
        for l in 0..mcfg.n_layers {
            let mut ik = Vec::with_capacity(mcfg.n_kv_heads);
            let mut iv = Vec::with_capacity(mcfg.n_kv_heads);
            let mut ll = Vec::with_capacity(mcfg.n_kv_heads);
            for h in 0..mcfg.n_kv_heads {
                let (k, v) = self.swap.get().fetch(l, h, &ids);
                ik.push(k.slice_rows(0, n_init));
                iv.push(v.slice_rows(0, n_init));
                let mut dq = VecDeque::with_capacity(n_local + 1);
                for i in n_init..n_init + n_local {
                    dq.push_back((k.row(i).to_vec(), v.row(i).to_vec()));
                }
                ll.push(dq);
            }
            init_k.push(ik);
            init_v.push(iv);
            local.push(ll);
        }
        let swap = self.swap.into_inner(); // unpin BEFORE the chains release
        let swap_transfer = swap.stats();
        drop(swap);
        let session = SelectiveSession {
            model,
            cfg: self.cfg,
            policy: self.policy,
            policy_ready: self.policy_ready,
            budget_middle: self.budget_middle,
            init_k,
            init_v,
            local,
            store: self.store.into_inner(),
            cache,
            pos: self.pos,
            steps: self.steps,
            policy_comm_bytes: self.policy_comm_bytes,
            last_selected: self.last_selected,
            sel_scratch: Vec::new(),
            policy_scratch: PolicyScratch::new(),
            pending_fault: None,
        };
        (session, swap_transfer)
    }
}

impl KvSource for SelectiveSession<'_> {
    fn publish(&mut self, layer: usize, kv_head: usize, key: &[f32], value: &[f32]) {
        let window = &mut self.local[layer][kv_head];
        window.push_back((key.to_vec(), value.to_vec()));
        if window.len() > self.cfg.n_local {
            let (ek, ev) = window.pop_front().expect("non-empty window");
            // The append's returned offset is namespace-local — correct even
            // when several sessions interleave appends into one KvTier.
            // `KvSource::publish` cannot return errors, so a store fault is
            // latched for the fallible step wrapper to surface; the evicted
            // row is dropped — the session is unrecoverable either way.
            let middle_idx = match self.store.try_append_token(layer, kv_head, &ek, &ev) {
                Ok(off) => off,
                Err(e) => {
                    self.pending_fault.get_or_insert(e);
                    return;
                }
            };
            if self.policy_ready {
                self.policy.on_evict(layer, kv_head, &ek, middle_idx);
            } else if layer == self.init_k.len() - 1 && kv_head == self.init_k[0].len() - 1 {
                self.maybe_lazy_init();
            }
        }
    }

    fn gather(&mut self, layer: usize, kv_head: usize, queries: &Matrix) -> (Matrix, Matrix) {
        let middle_len = self.store.len(layer, kv_head);
        let budget = self.budget_middle.min(middle_len);

        let mut sel_rel = std::mem::take(&mut self.sel_scratch);
        sel_rel.clear();
        if self.policy_ready && budget > 0 {
            let ctx = PolicyContext { layer, kv_head, queries, budget, middle_len };
            self.policy.select_with_scratch(&ctx, &mut self.policy_scratch, &mut sel_rel);
            sel_rel.retain(|&i| i < middle_len);
        }

        // Account the policy's non-overlappable proxy communication.
        self.policy_comm_bytes += self.policy.comm_bytes_per_step(middle_len);

        // Record absolute ids for instrumentation.
        let abs: Vec<usize> = sel_rel.iter().map(|&i| i + self.cfg.n_init).collect();
        self.last_selected[layer][kv_head] = abs;

        // Assemble middle keys/values: dropping policies conceptually keep
        // their set on GPU (no fetch); retrieval policies go through the
        // cache and host store.
        let (mid_k, mid_v) = if sel_rel.is_empty() {
            (
                Matrix::zeros(0, self.model.config().head_dim),
                Matrix::zeros(0, self.model.config().head_dim),
            )
        } else if self.policy.is_dropping() {
            self.store.gather_host(layer, kv_head, &sel_rel)
        } else {
            let lookup = self.cache.lookup(&sel_rel);
            self.cache.update(&top_blocks(
                &sel_rel,
                self.cfg.cache.block_size,
                self.cfg.cache.k_cache_blocks,
            ));
            // Hits are GPU-resident (unmetered); misses cross PCIe.
            let mut ordered = lookup.hits.clone();
            ordered.extend_from_slice(&lookup.misses);
            ordered.sort_unstable();
            if !lookup.misses.is_empty() {
                // The fetch is metered and checksum-verified; a corrupt page
                // latches a fault the fallible step wrapper surfaces, so the
                // poisoned logits are never served.
                if let Err(e) = self.store.try_fetch(layer, kv_head, &lookup.misses) {
                    self.pending_fault.get_or_insert(e);
                }
            }
            self.store.gather_host(layer, kv_head, &ordered)
        };

        // init ∪ middle ∪ local, in absolute token order.
        let window = &self.local[layer][kv_head];
        let dh = self.model.config().head_dim;
        let mut keys = Matrix::zeros(0, dh);
        let mut values = Matrix::zeros(0, dh);
        keys = keys.vstack(&self.init_k[layer][kv_head]).vstack(&mid_k);
        values = values.vstack(&self.init_v[layer][kv_head]).vstack(&mid_v);
        let mut local_k = Matrix::zeros(window.len(), dh);
        let mut local_v = Matrix::zeros(window.len(), dh);
        for (i, (k, v)) in window.iter().enumerate() {
            local_k.copy_row_from(i, k);
            local_v.copy_row_from(i, v);
        }
        self.sel_scratch = sel_rel;
        (keys.vstack(&local_k), values.vstack(&local_v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqc_llm::LlmConfig;
    use pqc_policies::{FullAttentionPolicy, PqCachePolicy, StreamingLlmPolicy};

    fn prompt(n: usize, seed: u64) -> Vec<u32> {
        let mut rng = pqc_tensor::Rng64::new(seed);
        (0..n).map(|_| rng.below(200) as u32).collect()
    }

    fn cfg() -> SessionConfig {
        SessionConfig {
            n_init: 2,
            n_local: 8,
            token_ratio: 0.25,
            comm_fraction: 1.0 / 16.0,
            obs_window: 8,
            cache: crate::config::CacheConfig { capacity_tokens: 64, block_size: 8, lfu: true, k_cache_blocks: 4 },
            ivf: crate::config::IvfMode::Exact,
        }
    }

    #[test]
    fn full_policy_session_matches_reference_generation() {
        // The DESIGN.md invariant: budget = everything reproduces full
        // attention exactly (same assembly order as FullKvSource).
        let model = Model::new(LlmConfig::tiny());
        let toks = prompt(48, 1);
        let reference = model.generate_full(&toks, 10);

        let mut c = cfg();
        c.token_ratio = 1.0;
        let start = SelectiveSession::start(&model, Box::new(FullAttentionPolicy::default()), c, &toks);
        let mut session = start.session;
        let got = session.generate(&start.logits, 10);
        assert_eq!(reference, got);
    }

    #[test]
    fn streaming_session_diverges_from_reference() {
        // Dropping the middle region must change the computed logits on a
        // long prompt (if it didn't, selective attention would be vacuous).
        // Greedy token streams can coincide (random-weight models collapse
        // to fixed points), so compare teacher-forced logits directly.
        let model = Model::new(LlmConfig::tiny());
        let toks = prompt(96, 2);
        let pre = model.prefill(&toks, &pqc_llm::PrefillOptions::default());
        let mut full_src = pqc_llm::FullKvSource::from_prefill(&pre);
        let full_dec = model.decode_step(7, 96, &mut full_src);

        let start = SelectiveSession::start(&model, Box::new(StreamingLlmPolicy), cfg(), &toks);
        let mut session = start.session;
        let stream_dec = session.decode(7);

        let max_diff = full_dec
            .logits
            .iter()
            .zip(stream_dec.logits.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_diff > 1e-3, "dropping all middle tokens changed nothing: {max_diff}");
    }

    #[test]
    fn pqcache_session_generates_and_meters() {
        let model = Model::new(LlmConfig::tiny());
        let toks = prompt(80, 3);
        let start =
            SelectiveSession::start(&model, Box::new(PqCachePolicy::default()), cfg(), &toks);
        let mut session = start.session;
        let out = session.generate(&start.logits, 8);
        assert_eq!(out.len(), 8);
        let ts = session.transfer_stats();
        assert!(ts.d2h_bytes > 0, "prefill offload must be metered");
        assert!(ts.h2d_bytes > 0, "top-k fetches must be metered");
        // PQCache reports zero non-overlappable proxy comm.
        assert_eq!(session.policy_comm_bytes(), 0);
        assert!(session.cache_stats().token_lookups > 0);
    }

    #[test]
    fn eviction_grows_middle_region() {
        let model = Model::new(LlmConfig::tiny());
        let toks = prompt(60, 4);
        let start =
            SelectiveSession::start(&model, Box::new(PqCachePolicy::default()), cfg(), &toks);
        let mut session = start.session;
        let before = session.middle_len();
        let _ = session.generate(&start.logits, 5);
        // Each decode step evicts one local token into the middle.
        assert_eq!(session.middle_len(), before + 5);
    }

    #[test]
    fn selected_ids_are_middle_absolute() {
        let model = Model::new(LlmConfig::tiny());
        let toks = prompt(64, 5);
        let c = cfg();
        let start =
            SelectiveSession::start(&model, Box::new(PqCachePolicy::default()), c, &toks);
        let mut session = start.session;
        let _ = session.generate(&start.logits, 2);
        let sel = session.last_selected(0, 0);
        assert!(!sel.is_empty());
        // Absolute ids start at n_init and stay below the local window.
        assert!(sel.iter().all(|&i| i >= c.n_init));
    }

    #[test]
    #[should_panic(expected = "must exceed")]
    fn short_prompt_panics() {
        let model = Model::new(LlmConfig::tiny());
        let toks = prompt(8, 6);
        let _ = SelectiveSession::start(&model, Box::new(StreamingLlmPolicy), cfg(), &toks);
    }

    #[test]
    fn refresh_policy_keeps_session_consistent() {
        // Long-output scenario (§5): generate, refresh (codebooks retrain
        // over prefill + generated middle tokens), keep generating; the
        // refreshed policy must retrieve a token that was *generated*, which
        // the stale codebook only covers via nearest-centroid assignment.
        let model = Model::new(LlmConfig::tiny());
        let toks = prompt(72, 11);
        let start =
            SelectiveSession::start(&model, Box::new(PqCachePolicy::default()), cfg(), &toks);
        let mut session = start.session;
        let _ = session.generate(&start.logits, 12);
        let mid_before = session.middle_len();
        session.refresh_policy();
        let out = session.generate(&[0.0; 256], 6);
        assert_eq!(out.len(), 6);
        assert_eq!(session.middle_len(), mid_before + 6);
        // Selections remain within bounds after the refresh.
        let sel = session.last_selected(0, 0);
        assert!(sel.iter().all(|&i| i >= 2));
    }

    #[test]
    fn step_with_scratch_interleaved_is_bit_identical() {
        // Two sessions stepped through ONE worker scratch, interleaved, must
        // match the plain decode path bit-for-bit — the core property the
        // serve engine's equivalence battery rests on.
        let model = Model::new(LlmConfig::tiny());
        let mk = |seed| {
            let toks = prompt(80, seed);
            SelectiveSession::start(&model, Box::new(PqCachePolicy::default()), cfg(), &toks)
        };
        let (ra, rb) = (mk(31), mk(32));
        let (sa, sb) = (mk(31), mk(32));
        let mut plain = [ra.session, rb.session];
        let mut shared = [sa.session, sb.session];
        let mut scratch = SessionScratch::new();
        let mut next = [pqc_tensor::argmax(&ra.logits) as u32, pqc_tensor::argmax(&rb.logits) as u32];
        for step in 0..6 {
            for i in 0..2 {
                let p = plain[i].decode(next[i]);
                let s = shared[i].step_with_scratch(next[i], &mut scratch);
                assert_eq!(p.logits, s.logits, "session {i} step {step}");
                assert_eq!(
                    plain[i].selected_snapshot(),
                    shared[i].selected_snapshot(),
                    "session {i} step {step} selections"
                );
                next[i] = p.greedy();
            }
        }
        for i in 0..2 {
            assert_eq!(plain[i].transfer_stats(), shared[i].transfer_stats());
        }
    }

    #[test]
    fn session_in_external_resources_matches_standalone() {
        // A session backed by a KvTier namespace + budgeted cache decodes
        // identically to a standalone one.
        let model = Model::new(LlmConfig::tiny());
        let toks = prompt(72, 33);
        let c = cfg();
        let plain = SelectiveSession::start(&model, Box::new(PqCachePolicy::default()), c, &toks);
        let mut plain_s = plain.session;
        let plain_out = plain_s.generate(&plain.logits, 6);

        let mcfg = model.config();
        let tier = pqc_memhier::KvTier::new(mcfg.n_layers, mcfg.n_kv_heads, mcfg.head_dim);
        let budget = pqc_cache::CacheBudget::for_tokens(c.cache.capacity_tokens, c.cache.block_size);
        let resources = SessionResources {
            store: tier.new_namespace(),
            cache: pqc_cache::BlockCache::with_budget(
                c.cache.capacity_tokens,
                c.cache.block_size,
                c.cache.policy(),
                budget,
            ),
        };
        let prefill = model.prefill(&toks, &SelectiveSession::prefill_options(&c, toks.len()));
        let start = SelectiveSession::start_from_prefill_in(
            &model,
            Box::new(PqCachePolicy::default()),
            c,
            &prefill,
            resources,
        );
        let mut tiered = start.session;
        let tiered_out = tiered.generate(&start.logits, 6);
        assert_eq!(plain_out, tiered_out);
        assert_eq!(plain_s.transfer_stats(), tiered.transfer_stats());
        assert_eq!(tier.aggregate_stats(), tiered.transfer_stats());
    }

    #[test]
    fn shared_prefix_session_matches_cold_start() {
        // Adopting tier pages + exported policy state must decode exactly
        // like a cold start: same tokens, same h2d traffic — minus the
        // offload d2h (the shared pages never left the host).
        let model = Model::new(LlmConfig::tiny());
        let toks = prompt(72, 51);
        let c = cfg();
        let mcfg = model.config();
        let tier = pqc_memhier::KvTier::new(mcfg.n_layers, mcfg.n_kv_heads, mcfg.head_dim);
        let prefill = model.prefill(&toks, &SelectiveSession::prefill_options(&c, toks.len()));
        let res = |store| SessionResources {
            store,
            cache: SessionResources::standalone(&model, &c).cache,
        };

        let start_a = SelectiveSession::start_from_prefill_in(
            &model,
            Box::new(PqCachePolicy::default()),
            c,
            &prefill,
            res(tier.new_namespace()),
        );
        let mut a = start_a.session;
        let shared = a.export_policy_state();
        assert!(shared.is_some(), "trained PQCache must export");
        assert!(tier.register_prefix(&toks, a.store(), std::sync::Arc::new(())));

        let hit = tier.lookup_prefix(&toks).expect("registered prompt must hit");
        let start_b = SelectiveSession::start_from_shared_prefix(
            &model,
            Box::new(PqCachePolicy::default()),
            c,
            &prefill,
            res(tier.new_namespace_with_prefix(&hit)),
            shared.as_ref(),
        );
        let mut b = start_b.session;
        assert_eq!(b.transfer_stats().d2h_ops, 0, "adoption must not re-offload");
        assert_eq!(b.sharing_stats().prefix_hit_tokens, toks.len() as u64);
        assert_eq!(start_a.logits, start_b.logits);

        let out_a = a.generate(&start_a.logits, 8);
        let out_b = b.generate(&start_b.logits, 8);
        assert_eq!(out_a, out_b, "shared-prefix decode diverged");
        let (ta, tb) = (a.transfer_stats(), b.transfer_stats());
        assert_eq!(ta.h2d_bytes, tb.h2d_bytes, "fetch traffic must match");
        assert_eq!(ta.h2d_ops, tb.h2d_ops);
        assert!(ta.d2h_bytes > tb.d2h_bytes, "adopter must skip the offload bytes");
        assert!(b.sharing_stats().cow_copies > 0, "first appends CoW the shared tails");
    }

    #[test]
    fn ivf_probe_all_cells_decodes_bit_identically() {
        // SessionConfig::ivf = Probe(n_list) routes every step through the
        // IVF tier but scans all cells — logits, selections, and transfer
        // stats must match the exact-mode session bit for bit.
        let model = Model::new(LlmConfig::tiny());
        let toks = prompt(80, 41);
        let n_list = pqc_policies::PqCachePolicyConfig::default().ivf_n_list;
        let run = |ivf| {
            let c = SessionConfig { ivf, ..cfg() };
            let start =
                SelectiveSession::start(&model, Box::new(PqCachePolicy::default()), c, &toks);
            let mut session = start.session;
            let mut logits = Vec::new();
            let mut next = pqc_tensor::argmax(&start.logits) as u32;
            for _ in 0..8 {
                let dec = session.decode(next);
                next = dec.greedy();
                logits.push(dec.logits);
            }
            (logits, session.selected_snapshot(), session.transfer_stats())
        };
        let exact = run(crate::config::IvfMode::Exact);
        let probe = run(crate::config::IvfMode::Probe(n_list));
        assert_eq!(exact.0, probe.0, "logits diverged");
        assert_eq!(exact.1, probe.1, "selections diverged");
        assert_eq!(exact.2, probe.2, "transfer stats diverged");
    }

    #[test]
    fn ivf_narrow_probe_session_decodes() {
        // A genuinely sublinear probe (fewer cells than n_list) must still
        // produce a well-formed decode stream and meter transfers.
        let model = Model::new(LlmConfig::tiny());
        let toks = prompt(80, 42);
        let c = SessionConfig { ivf: crate::config::IvfMode::Probe(2), ..cfg() };
        let start = SelectiveSession::start(&model, Box::new(PqCachePolicy::default()), c, &toks);
        let mut session = start.session;
        let out = session.generate(&start.logits, 6);
        assert_eq!(out.len(), 6);
        assert!(session.transfer_stats().h2d_bytes > 0);
        let sel = session.last_selected(0, 0);
        assert!(!sel.is_empty());
    }

    #[test]
    fn try_step_matches_infallible_step_bit_for_bit() {
        let model = Model::new(LlmConfig::tiny());
        let toks = prompt(80, 61);
        let mk = || SelectiveSession::start(&model, Box::new(PqCachePolicy::default()), cfg(), &toks);
        let (ra, rb) = (mk(), mk());
        let mut plain = ra.session;
        let mut fallible = rb.session;
        let mut scratch_a = SessionScratch::new();
        let mut scratch_b = SessionScratch::new();
        let mut next = pqc_tensor::argmax(&ra.logits) as u32;
        for step in 0..6 {
            let p = plain.step_with_scratch(next, &mut scratch_a);
            let f = fallible
                .try_step_with_scratch(next, &mut scratch_b)
                .expect("fault-free step must succeed");
            assert_eq!(p.logits, f.logits, "step {step}");
            next = p.greedy();
        }
        assert_eq!(plain.transfer_stats(), fallible.transfer_stats());
    }

    #[test]
    fn try_step_surfaces_store_fault_on_capped_tier() {
        // A tier capped to exactly the prefill's page footprint fails the
        // first decode-step eviction append with a typed store fault.
        let model = Model::new(LlmConfig::tiny());
        let toks = prompt(72, 62);
        let c = cfg();
        let mcfg = model.config();
        let prefill = model.prefill(&toks, &SelectiveSession::prefill_options(&c, toks.len()));
        // Find the exact page footprint with an uncapped dry run.
        let dry = pqc_memhier::KvTier::with_pages(mcfg.n_layers, mcfg.n_kv_heads, mcfg.head_dim, 4, None);
        let start = SelectiveSession::try_start_from_prefill_in(
            &model,
            Box::new(PqCachePolicy::default()),
            c,
            &prefill,
            SessionResources {
                store: dry.new_namespace(),
                cache: SessionResources::standalone(&model, &c).cache,
            },
        )
        .expect("uncapped start");
        let footprint = dry.allocator().pages_in_use();
        drop(start);

        let tier = pqc_memhier::KvTier::with_page_limit(
            mcfg.n_layers,
            mcfg.n_kv_heads,
            mcfg.head_dim,
            4,
            None,
            Some(footprint),
        );
        let start = SelectiveSession::try_start_from_prefill_in(
            &model,
            Box::new(PqCachePolicy::default()),
            c,
            &prefill,
            SessionResources {
                store: tier.new_namespace(),
                cache: SessionResources::standalone(&model, &c).cache,
            },
        )
        .expect("prefill exactly fits the cap");
        let mut session = start.session;
        let mut scratch = SessionScratch::new();
        // Middle region is 4-token-page aligned per (layer, head)? Not
        // necessarily — step until the first page boundary forces an alloc.
        let mut fault = None;
        let mut next = pqc_tensor::argmax(&start.logits) as u32;
        for _ in 0..8 {
            match session.try_step_with_scratch(next, &mut scratch) {
                Ok(out) => next = out.greedy(),
                Err(e) => {
                    fault = Some(e);
                    break;
                }
            }
        }
        match fault.expect("capped tier must fault within a page of appends") {
            StepError::Store(MemError::PageExhausted { max_pages }) => {
                assert_eq!(max_pages, footprint);
            }
            other => panic!("expected PageExhausted, got {other:?}"),
        }
    }

    #[test]
    fn try_start_fails_typed_when_prefill_exceeds_cap() {
        let model = Model::new(LlmConfig::tiny());
        let toks = prompt(72, 63);
        let c = cfg();
        let mcfg = model.config();
        let tier = pqc_memhier::KvTier::with_page_limit(
            mcfg.n_layers,
            mcfg.n_kv_heads,
            mcfg.head_dim,
            4,
            None,
            Some(1),
        );
        let prefill = model.prefill(&toks, &SelectiveSession::prefill_options(&c, toks.len()));
        let err = SelectiveSession::try_start_from_prefill_in(
            &model,
            Box::new(PqCachePolicy::default()),
            c,
            &prefill,
            SessionResources {
                store: tier.new_namespace(),
                cache: SessionResources::standalone(&model, &c).cache,
            },
        )
        .map(|_| ())
        .expect_err("one page cannot hold the prefill middle");
        assert_eq!(err, MemError::PageExhausted { max_pages: 1 });
        assert_eq!(tier.allocator().pages_in_use(), 0, "failed start leaks no pages");
    }

    /// Twin-session harness for the suspend/resume battery: both sessions
    /// start from one prefill inside `tier`, decode `warm` steps in
    /// lockstep, then the closure takes over.
    fn tiered_twins<'m>(
        model: &'m Model,
        tier: &pqc_memhier::KvTier,
        toks: &[u32],
        warm: usize,
    ) -> (SelectiveSession<'m>, SelectiveSession<'m>, u32) {
        let c = cfg();
        let prefill = model.prefill(toks, &SelectiveSession::prefill_options(&c, toks.len()));
        let mk = || {
            SelectiveSession::start_from_prefill_in(
                model,
                Box::new(PqCachePolicy::default()),
                c,
                &prefill,
                SessionResources {
                    store: tier.new_namespace(),
                    cache: SessionResources::standalone(model, &c).cache,
                },
            )
        };
        let (sa, sb) = (mk(), mk());
        let mut a = sa.session;
        let mut b = sb.session;
        let mut next = pqc_tensor::argmax(&sa.logits) as u32;
        for _ in 0..warm {
            let da = a.decode(next);
            let db = b.decode(next);
            assert_eq!(da.logits, db.logits, "twins diverged during warmup");
            next = da.greedy();
        }
        (a, b, next)
    }

    #[test]
    fn suspend_resume_decodes_bit_identically_to_uninterrupted_twin() {
        let model = Model::new(LlmConfig::tiny());
        let toks = prompt(80, 71);
        let mcfg = model.config();
        let tier = pqc_memhier::KvTier::new(mcfg.n_layers, mcfg.n_kv_heads, mcfg.head_dim);
        let (mut a, b, mut next) = tiered_twins(&model, &tier, &toks, 4);

        let mid_before = b.middle_len();
        let pos_before = b.store().len(0, 0);
        let suspended = b.suspend(&tier).expect("uncapped tier");
        assert_eq!(suspended.middle_len(), mid_before);
        assert_eq!(suspended.steps(), 4);
        let sw = suspended.swap_stats();
        assert!(sw.d2h_bytes > 0, "suspend must meter the swap offload");
        assert_eq!(sw.h2d_bytes, 0, "nothing fetched yet");

        let c = cfg();
        let cache = SessionResources::standalone(&model, &c).cache;
        let (mut b, swap_transfer) = suspended.resume(&model, cache);
        assert!(swap_transfer.h2d_bytes > 0, "resume must meter the swap fetch");
        assert_eq!(swap_transfer.d2h_bytes, sw.d2h_bytes);
        assert_eq!(b.middle_len(), mid_before, "middle region untouched by the round trip");
        assert_eq!(b.store().len(0, 0), pos_before, "namespace offsets preserved");

        // Post-resume decode must match the never-suspended twin bit for bit
        // (the cold cache changes metering only, never gathered data).
        for step in 0..6 {
            let da = a.decode(next);
            let db = b.decode(next);
            assert_eq!(da.logits, db.logits, "step {step} after resume");
            assert_eq!(
                a.selected_snapshot(),
                b.selected_snapshot(),
                "step {step} selections (trained policy state must survive)"
            );
            next = da.greedy();
        }
        assert_eq!(a.middle_len(), b.middle_len());
    }

    #[test]
    fn suspend_pins_pages_and_discard_releases_them() {
        let model = Model::new(LlmConfig::tiny());
        let toks = prompt(72, 72);
        let mcfg = model.config();
        let tier = pqc_memhier::KvTier::new(mcfg.n_layers, mcfg.n_kv_heads, mcfg.head_dim);
        let (a, b, _) = tiered_twins(&model, &tier, &toks, 3);
        drop(a);
        let resident = tier.allocator().pages_in_use();
        assert_eq!(tier.allocator().pinned_pages(), 0);

        let suspended = b.suspend(&tier).expect("uncapped tier");
        // Middle pages + swap pages are all pinned; the swap grew the pool.
        assert!(tier.allocator().pages_in_use() > resident, "swap namespace allocates");
        assert_eq!(
            tier.allocator().pinned_pages(),
            tier.allocator().pages_in_use(),
            "every page the parked session owns is pinned"
        );

        // Discarding a parked session (deadline reaping) unpins then
        // releases everything — no pinned-release panic, no leaks.
        drop(suspended);
        assert_eq!(tier.allocator().pages_in_use(), 0);
        assert_eq!(tier.allocator().pinned_pages(), 0);
    }

    #[test]
    fn resume_after_resume_round_trips_again() {
        // Two suspend/resume cycles back to back: state survives repeated
        // parking (the engine may preempt the same victim more than once).
        let model = Model::new(LlmConfig::tiny());
        let toks = prompt(80, 73);
        let mcfg = model.config();
        let tier = pqc_memhier::KvTier::new(mcfg.n_layers, mcfg.n_kv_heads, mcfg.head_dim);
        let (mut a, mut b, mut next) = tiered_twins(&model, &tier, &toks, 2);
        let c = cfg();
        let mut swap_total = TransferStats::default();
        for cycle in 0..2 {
            let suspended = b.suspend(&tier).expect("uncapped tier");
            let cache = SessionResources::standalone(&model, &c).cache;
            let (revived, sw) = suspended.resume(&model, cache);
            b = revived;
            swap_total += sw;
            for step in 0..3 {
                let da = a.decode(next);
                let db = b.decode(next);
                assert_eq!(da.logits, db.logits, "cycle {cycle} step {step}");
                next = da.greedy();
            }
        }
        // Swap traffic is symmetric: every offloaded byte is fetched back.
        assert_eq!(swap_total.d2h_bytes, swap_total.h2d_bytes);
        assert_eq!(tier.allocator().pinned_pages(), 0);
        // Aggregate accounting closes: tier-wide = both sessions' middle
        // traffic + the swap round trips.
        assert_eq!(
            tier.aggregate_stats(),
            a.transfer_stats() + b.transfer_stats() + swap_total
        );
    }

    #[test]
    fn failed_suspend_returns_the_session_intact() {
        // Cap the tier at the session's exact footprint: the swap offload
        // cannot allocate, suspend fails recoverably, and the returned
        // victim keeps decoding bit-identically to an untouched twin.
        // page_tokens = 8 with a 62-row middle leaves tail-page slack, so
        // the post-failure decode step appends without allocating.
        let model = Model::new(LlmConfig::tiny());
        let toks = prompt(72, 74);
        let c = cfg();
        let mcfg = model.config();
        let prefill = model.prefill(&toks, &SelectiveSession::prefill_options(&c, toks.len()));
        let mk = |tier: &pqc_memhier::KvTier| {
            SelectiveSession::try_start_from_prefill_in(
                &model,
                Box::new(PqCachePolicy::default()),
                c,
                &prefill,
                SessionResources {
                    store: tier.new_namespace(),
                    cache: SessionResources::standalone(&model, &c).cache,
                },
            )
        };
        let dry_tier =
            pqc_memhier::KvTier::with_pages(mcfg.n_layers, mcfg.n_kv_heads, mcfg.head_dim, 8, None);
        let dry = mk(&dry_tier).expect("uncapped start");
        let mut twin = dry.session;
        let mut next = pqc_tensor::argmax(&dry.logits) as u32;
        next = twin.decode(next).greedy();
        let footprint = dry_tier.allocator().pages_in_use();

        let capped = pqc_memhier::KvTier::with_page_limit(
            mcfg.n_layers,
            mcfg.n_kv_heads,
            mcfg.head_dim,
            8,
            None,
            Some(footprint),
        );
        let start = mk(&capped).expect("prefill fits the cap");
        let mut victim = start.session;
        let mut vnext = pqc_tensor::argmax(&start.logits) as u32;
        vnext = victim.decode(vnext).greedy();
        assert_eq!(next, vnext);

        let err = victim.suspend(&capped).expect_err("swap offload must exhaust the cap");
        assert!(matches!(err.error, MemError::PageExhausted { .. }));
        assert_eq!(capped.allocator().pinned_pages(), 0, "failed suspend pins nothing");
        assert_eq!(capped.allocator().pages_in_use(), footprint, "partial swap fully released");
        let mut victim = err.session;
        let a = twin.decode(next);
        let b = victim.decode(vnext);
        assert_eq!(a.logits, b.logits, "victim must decode unharmed after the failed suspend");
    }

    #[test]
    fn checkpoint_resumes_bit_identically_while_original_keeps_running() {
        // The crash-recovery contract: checkpoint() must not perturb the
        // live session, and the checkpoint must resume into a session that
        // replays the live session's future bit for bit.
        let model = Model::new(LlmConfig::tiny());
        let toks = prompt(80, 81);
        let mcfg = model.config();
        let tier = pqc_memhier::KvTier::new(mcfg.n_layers, mcfg.n_kv_heads, mcfg.head_dim);
        let (mut a, mut b, mut next) = tiered_twins(&model, &tier, &toks, 4);

        let ckpt = b.checkpoint(&tier).expect("uncapped tier").expect("PQCache is forkable");
        assert_eq!(ckpt.steps(), 4);
        assert!(ckpt.swap_stats().d2h_bytes > 0, "checkpoint offload is metered");
        ckpt.verify().expect("fresh checkpoint verifies");

        // The live session keeps decoding, unaffected by the snapshot.
        let replay_next = next;
        let mut live_logits = Vec::new();
        for _ in 0..5 {
            let da = a.decode(next);
            let db = b.decode(next);
            assert_eq!(da.logits, db.logits, "checkpoint perturbed the live session");
            live_logits.push(db.logits);
            next = da.greedy();
        }

        // Resume the checkpoint: it must replay those same 5 steps exactly.
        let c = cfg();
        let cache = SessionResources::standalone(&model, &c).cache;
        let (mut revived, _) = ckpt.resume(&model, cache);
        assert_eq!(revived.steps(), 4);
        let mut rnext = replay_next;
        for (step, expect) in live_logits.iter().enumerate() {
            let d = revived.decode(rnext);
            assert_eq!(&d.logits, expect, "replayed step {step} diverged");
            rnext = d.greedy();
        }
        drop(b);
        assert_eq!(tier.allocator().pinned_pages(), 0);
    }

    #[test]
    fn corrupted_live_session_faults_but_checkpoint_survives() {
        let model = Model::new(LlmConfig::tiny());
        let toks = prompt(80, 82);
        let mcfg = model.config();
        let tier = pqc_memhier::KvTier::new(mcfg.n_layers, mcfg.n_kv_heads, mcfg.head_dim);
        let (_, mut b, mut next) = tiered_twins(&model, &tier, &toks, 4);
        let ckpt = b.checkpoint(&tier).expect("uncapped").expect("forkable");

        assert!(b.corrupt_middle_slot(0, 0, 9));
        ckpt.verify().expect("snapshot holds the pre-corruption bytes");

        // The live session must fault with the typed corruption error as
        // soon as a fetch touches the bad chain — never serving the bytes.
        let mut scratch = SessionScratch::new();
        let mut fault = None;
        for _ in 0..8 {
            match b.try_step_with_scratch(next, &mut scratch) {
                Ok(out) => next = out.greedy(),
                Err(e) => {
                    fault = Some(e);
                    break;
                }
            }
        }
        match fault.expect("corrupt chain must be fetched within a few steps") {
            StepError::Store(MemError::PageCorrupt { .. }) => {}
            other => panic!("expected PageCorrupt, got {other:?}"),
        }
        drop(b);
        drop(ckpt);
        assert_eq!(tier.allocator().pinned_pages(), 0);
        assert_eq!(tier.allocator().pages_in_use(), 0);
    }

    #[test]
    fn checkpoint_skips_unforkable_policies() {
        let model = Model::new(LlmConfig::tiny());
        let toks = prompt(48, 83);
        let mcfg = model.config();
        let tier = pqc_memhier::KvTier::new(mcfg.n_layers, mcfg.n_kv_heads, mcfg.head_dim);
        let c = cfg();
        let prefill = model.prefill(&toks, &SelectiveSession::prefill_options(&c, toks.len()));
        let start = SelectiveSession::start_from_prefill_in(
            &model,
            Box::new(StreamingLlmPolicy),
            c,
            &prefill,
            SessionResources {
                store: tier.new_namespace(),
                cache: SessionResources::standalone(&model, &c).cache,
            },
        );
        let session = start.session;
        assert!(
            session.checkpoint(&tier).expect("no store fault").is_none(),
            "non-forkable policy must skip checkpointing"
        );
        assert_eq!(tier.allocator().pinned_pages(), 0);
    }

    #[test]
    fn dropping_budget_gets_compensation() {
        let model = Model::new(LlmConfig::tiny());
        let toks = prompt(64, 7);
        let c = cfg();
        let drop_start =
            SelectiveSession::start(&model, Box::new(StreamingLlmPolicy), c, &toks);
        let retr_start =
            SelectiveSession::start(&model, Box::new(PqCachePolicy::default()), c, &toks);
        assert_eq!(
            drop_start.session.middle_budget(),
            retr_start.session.middle_budget() + c.compensation_tokens(64)
        );
    }
}
