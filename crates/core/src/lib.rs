//! # pqc-core
//!
//! The PQCache engine (paper §3): session configuration, the selective
//! decode session wiring transformer + policy + host store + GPU cache, and
//! the latency model that reproduces the paper's scheduling/overlap results.

#![warn(missing_docs)]

pub mod config;
pub mod latency;
pub mod session;

pub use config::{CacheConfig, ConfigError, IvfMode, SessionConfig};
pub use pqc_policies::SelectionEffort;
pub use latency::{KmeansIters, LatencyMethod, LatencyModel, PhaseReport};
pub use session::{
    panic_message, SelectiveSession, SessionResources, SessionScratch, SessionStart, StepError,
    SuspendError, SuspendedSession,
};
