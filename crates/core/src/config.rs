//! Engine configuration: KVCache segmentation, budgets, cache geometry.

use pqc_cache::EvictionPolicy;
pub use pqc_policies::IvfMode;
use serde::{Deserialize, Serialize};

/// A rejected configuration: which field was nonsensical and why.
///
/// Validation returns this instead of panicking so serving layers can
/// refuse a bad request (or refuse to start) with a typed error; the
/// `validate_strict` shims keep the old panic behaviour for tests and
/// fail-fast callers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// Name of the offending field.
    pub field: &'static str,
    /// Human-readable constraint that was violated.
    pub message: String,
}

impl ConfigError {
    /// A rejection of `field`, explained by `message`.
    pub fn new(field: &'static str, message: impl Into<String>) -> Self {
        Self { field, message: message.into() }
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid config `{}`: {}", self.field, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// How the GPU block cache is configured.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Capacity in tokens (0 disables the cache).
    pub capacity_tokens: usize,
    /// Tokens per block (paper default 128; simulation scale 32).
    pub block_size: usize,
    /// Eviction policy.
    pub lfu: bool,
    /// Number of blocks written back per step (`k_cache`).
    pub k_cache_blocks: usize,
}

impl CacheConfig {
    /// Disabled cache.
    pub fn disabled() -> Self {
        Self { capacity_tokens: 0, block_size: 32, lfu: false, k_cache_blocks: 8 }
    }

    /// Simulation-scale default: 512 tokens, 32-token blocks, LFU,
    /// `k_cache` = 8 (mirrors the paper's 4K tokens / 128-token blocks / 32).
    pub fn sim_default() -> Self {
        Self { capacity_tokens: 512, block_size: 32, lfu: true, k_cache_blocks: 8 }
    }

    /// The eviction policy as the cache crate's enum.
    pub fn policy(&self) -> EvictionPolicy {
        if self.lfu {
            EvictionPolicy::Lfu
        } else {
            EvictionPolicy::Lru
        }
    }
}

/// Full engine/session configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Initial ("attention sink") tokens always kept on GPU.
    pub n_init: usize,
    /// Local sliding-window size always kept on GPU.
    pub n_local: usize,
    /// Fraction of the prompt participating in selective attention
    /// (paper: 1/5 or 1/10).
    pub token_ratio: f64,
    /// Extra-communication budget as a fraction of the keys' memory
    /// (paper: 1/128 for LongBench, 1/64 for InfiniteBench). Used to size
    /// dropping methods' "(C)" compensation and SPARQ's `r`.
    pub comm_fraction: f64,
    /// SnapKV/H2O observation window captured during prefill.
    pub obs_window: usize,
    /// GPU block cache.
    pub cache: CacheConfig,
    /// Retrieval routing for IVF-capable policies: `Probe(n_probe)` routes
    /// each query through an IVF tier and scans only the probed cells,
    /// pushed down to the policy (`SelectionPolicy::configure_ivf`) before
    /// initialisation so one serve-level knob governs every admitted
    /// session. The `Exact` default leaves each policy's own routing
    /// configuration in effect (a policy built with `IvfMode::Probe`
    /// directly keeps probing).
    pub ivf: IvfMode,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            n_init: 4,
            n_local: 32,
            token_ratio: 0.2,
            comm_fraction: 1.0 / 32.0,
            obs_window: 32,
            cache: CacheConfig::sim_default(),
            ivf: IvfMode::Exact,
        }
    }
}

impl SessionConfig {
    /// Total attended-token budget for a prompt of length `s`.
    pub fn token_budget(&self, s: usize) -> usize {
        ((self.token_ratio * s as f64).round() as usize).max(self.n_init + self.n_local)
    }

    /// Middle-region budget (total minus always-on segments).
    pub fn middle_budget(&self, s: usize) -> usize {
        self.token_budget(s).saturating_sub(self.n_init + self.n_local)
    }

    /// Extra middle tokens granted to dropping methods so that their memory
    /// matches retrieval methods' tokens *plus* transferred data (§4.1.3's
    /// "(C)" compensation). Transferred data is counted in key bytes; one
    /// kept token costs a key and a value, hence the factor ½.
    pub fn compensation_tokens(&self, s: usize) -> usize {
        (self.comm_fraction * s as f64 / 2.0).round() as usize
    }

    /// Validate, returning a typed error on nonsensical settings.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.n_init == 0 {
            return Err(ConfigError::new("n_init", "need at least one initial token"));
        }
        if self.n_local == 0 {
            return Err(ConfigError::new("n_local", "need at least one local token"));
        }
        if !(self.token_ratio > 0.0 && self.token_ratio <= 1.0) {
            return Err(ConfigError::new("token_ratio", "token_ratio must be in (0, 1]"));
        }
        if !(self.comm_fraction >= 0.0 && self.comm_fraction <= 1.0) {
            return Err(ConfigError::new("comm_fraction", "comm_fraction must be in [0, 1]"));
        }
        if let IvfMode::Probe(n_probe) = self.ivf {
            if n_probe < 1 {
                return Err(ConfigError::new("ivf", "ivf probe width must be at least one cell"));
            }
            // This knob is pushed down to IVF-capable policies via
            // `SelectionPolicy::configure_ivf`, whose tiers carry the
            // default coarse-cell geometry; probing past `n_list` is a
            // configuration error surfaced here, typed, rather than a
            // silent saturation deep in the ADC kernel. (Policies built
            // directly with a custom `ivf_n_list` bypass this knob and
            // validate against their own geometry.)
            let n_list = pqc_policies::PqCachePolicyConfig::default().ivf_n_list;
            if n_probe > n_list {
                return Err(ConfigError::new(
                    "ivf",
                    format!(
                        "ivf probe width {n_probe} exceeds the routing tier's \
                         {n_list} coarse cells (n_probe must be <= n_list; \
                         Probe(n_list) is already bit-identical to Exact)"
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Panicking [`SessionConfig::validate`] for fail-fast callers; the
    /// panic message contains the violated constraint.
    pub fn validate_strict(&self) {
        if let Err(e) = self.validate() {
            panic!("{}", e.message);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_scale_with_ratio() {
        let cfg = SessionConfig { token_ratio: 0.2, ..Default::default() };
        assert_eq!(cfg.token_budget(1000), 200);
        assert_eq!(cfg.middle_budget(1000), 200 - 36);
    }

    #[test]
    fn budget_never_below_fixed_segments() {
        let cfg = SessionConfig { token_ratio: 0.01, ..Default::default() };
        assert_eq!(cfg.token_budget(100), 36);
        assert_eq!(cfg.middle_budget(100), 0);
    }

    #[test]
    fn compensation_matches_formula() {
        let cfg = SessionConfig { comm_fraction: 1.0 / 64.0, ..Default::default() };
        assert_eq!(cfg.compensation_tokens(6400), 50);
    }

    #[test]
    fn default_is_valid() {
        SessionConfig::default().validate().expect("default config valid");
        SessionConfig::default().validate_strict();
    }

    #[test]
    #[should_panic(expected = "token_ratio")]
    fn zero_ratio_panics() {
        SessionConfig { token_ratio: 0.0, ..Default::default() }.validate_strict();
    }

    #[test]
    #[should_panic(expected = "probe width")]
    fn zero_probe_width_panics() {
        SessionConfig { ivf: IvfMode::Probe(0), ..Default::default() }.validate_strict();
    }

    #[test]
    fn invalid_configs_yield_typed_field_errors() {
        let e = SessionConfig { token_ratio: 1.5, ..Default::default() }
            .validate()
            .expect_err("over-1 ratio");
        assert_eq!(e.field, "token_ratio");
        assert!(e.to_string().contains("token_ratio must be in (0, 1]"));
        let e = SessionConfig { n_init: 0, ..Default::default() }
            .validate()
            .expect_err("no sink tokens");
        assert_eq!(e.field, "n_init");
        let e = SessionConfig { comm_fraction: -0.1, ..Default::default() }
            .validate()
            .expect_err("negative comm fraction");
        assert_eq!(e.field, "comm_fraction");
        let e = SessionConfig { ivf: IvfMode::Probe(0), ..Default::default() }
            .validate()
            .expect_err("zero probe");
        assert_eq!(e.field, "ivf");
    }

    #[test]
    fn probe_config_is_valid() {
        SessionConfig { ivf: IvfMode::Probe(4), ..Default::default() }
            .validate()
            .expect("probe config valid");
    }

    #[test]
    fn probe_width_bounded_by_coarse_cells() {
        let n_list = pqc_policies::PqCachePolicyConfig::default().ivf_n_list;
        // The boundary itself is valid (Probe(n_list) ≡ Exact)...
        SessionConfig { ivf: IvfMode::Probe(n_list), ..Default::default() }
            .validate()
            .expect("probing every cell is valid");
        // ...one past it is a typed rejection, not a silent kernel clamp.
        let e = SessionConfig { ivf: IvfMode::Probe(n_list + 1), ..Default::default() }
            .validate()
            .expect_err("overwide probe");
        assert_eq!(e.field, "ivf");
        assert!(e.message.contains("n_probe must be <= n_list"), "{}", e.message);
    }

    #[test]
    fn cache_policy_mapping() {
        assert_eq!(CacheConfig::sim_default().policy(), EvictionPolicy::Lfu);
        assert_eq!(CacheConfig::disabled().policy(), EvictionPolicy::Lru);
    }
}
