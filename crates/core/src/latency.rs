//! Latency model: schedules each method's prefill and decode on the
//! discrete-event simulator (paper Figs. 7, 8, 11, 12).
//!
//! Durations come from the analytical cost model (`pqc-memhier`), applied at
//! the *paper's* model scale (Llama-3-8B shapes, RTX 4090 / PCIe 1.0 x16
//! testbed) — the quality experiments run the small simulated transformer,
//! but latency shapes are about FLOP/byte ratios and overlap structure, so
//! we evaluate them at full scale where the paper's crossovers live.

use pqc_memhier::{labels, CostModel, Decomposition, Event, ModelShape, Resource, SimEngine};
use pqc_pq::AdaptiveIterBudget;

/// How many K-Means iterations PQ construction runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KmeansIters {
    /// Eq. 3 adaptive clipping (never blocks the GPU, band `[min, max]`).
    Adaptive {
        /// Lower clip.
        min: usize,
        /// Upper clip.
        max: usize,
    },
    /// A fixed count (Fig. 12c sweep) — may block the GPU.
    Fixed(usize),
}

/// A method, as the latency model sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyMethod {
    /// Full attention over the entire KVCache (requires it on GPU).
    Full,
    /// H2O: accumulates attention scores during prefill, which is
    /// incompatible with FlashAttention — prefill materialises O(s²) scores.
    H2o,
    /// SnapKV: negligible prefill overhead, dropping decode.
    SnapKv,
    /// PyramidKV: same latency structure as SnapKV.
    PyramidKv,
    /// SPARQ with `r` fetched dimensions.
    Sparq {
        /// Fetched dimensions per key.
        r: usize,
    },
    /// InfLLM with block size and representatives per block.
    InfLlm {
        /// Tokens per block.
        block: usize,
        /// Representatives per block.
        reps: usize,
    },
    /// PQCache with PQ geometry, clustering budget, and an expected GPU
    /// cache hit rate (measured by the quality harness).
    PqCache {
        /// Sub-spaces.
        m: usize,
        /// Bits per code.
        b: u32,
        /// Clustering iteration policy.
        iters: KmeansIters,
        /// Expected cache hit rate in `[0, 1]`.
        cache_hit: f64,
    },
}

impl LatencyMethod {
    /// Display name aligned with the quality harness.
    pub fn name(&self) -> &'static str {
        match self {
            LatencyMethod::Full => "Full",
            LatencyMethod::H2o => "H2O",
            LatencyMethod::SnapKv => "SnapKV",
            LatencyMethod::PyramidKv => "PyramidKV",
            LatencyMethod::Sparq { .. } => "SPARQ",
            LatencyMethod::InfLlm { .. } => "InfLLM",
            LatencyMethod::PqCache { .. } => "PQCache",
        }
    }
}

/// A scheduled phase: its engine (op log) and decomposition.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// Decomposed component times + makespan.
    pub decomp: Decomposition,
    /// Per-layer K-Means completion events (PQCache prefill only), used to
    /// model the "wait at the same layer of the next decoding phase" rule.
    pub kmeans_done: Vec<Event>,
}

/// The latency model: hardware cost model + model shape.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// Hardware parameters.
    pub cost: CostModel,
    /// Transformer shape (paper scale).
    pub shape: ModelShape,
    /// Per-cache-management-op CPU cost in seconds (token-level ablation).
    pub cache_op_cost: f64,
}

impl LatencyModel {
    /// Paper testbed at Llama-3-8B scale.
    pub fn paper_default() -> Self {
        Self {
            cost: CostModel::paper_testbed(),
            shape: ModelShape::llama3_8b(),
            cache_op_cost: 150e-9,
        }
    }

    /// Resolve the iteration count PQ construction gets at length `s`.
    pub fn kmeans_iters(&self, iters: KmeansIters, s: usize, m: usize, b: u32) -> usize {
        match iters {
            KmeansIters::Fixed(t) => t,
            KmeansIters::Adaptive { min, max } => {
                let budget = AdaptiveIterBudget::from_coefficients(
                    self.cost.kmeans_coefficients(&self.shape, m, b),
                    self.cost.prefill_coefficients(&self.shape),
                    (min, max),
                );
                budget.t_max(s as f64)
            }
        }
    }

    /// Schedule the prefilling phase of a method over an `s`-token prompt.
    pub fn prefill(&self, method: &LatencyMethod, s: usize) -> PhaseReport {
        let mut e = SimEngine::new();
        let kmeans_done = self.schedule_prefill(&mut e, method, s);
        PhaseReport { decomp: Decomposition::from_engine(&e), kmeans_done }
    }

    /// Schedule prefill ops onto an existing engine; returns per-layer
    /// K-Means completion events (PQCache only).
    fn schedule_prefill(&self, e: &mut SimEngine, method: &LatencyMethod, s: usize) -> Vec<Event> {
        let layers = self.shape.n_layers;
        let mut kmeans_done = Vec::new();
        let layer_kv = self.shape.layer_kv_bytes(s);

        let compute_time = match method {
            // H2O cannot use FlashAttention: materialising and accumulating
            // the (h, s, s) score tensor adds ~50% to the attention term and
            // O(s²) traffic; model it as 1.8× the attention FLOPs.
            LatencyMethod::H2o => {
                let base = self.cost.prefill_layer_time(&self.shape, s);
                let attn_extra = 0.8 * 2.0 * 2.0 * (self.shape.n_heads as f64)
                    * (s as f64)
                    * (s as f64)
                    * (self.shape.head_dim as f64)
                    / self.cost.gpu_flops;
                base + attn_extra
            }
            _ => self.cost.prefill_layer_time(&self.shape, s),
        };

        for _l in 0..layers {
            let c = e.schedule(Resource::Gpu, labels::COMPUTE, compute_time, &[]);
            match method {
                LatencyMethod::Full | LatencyMethod::H2o | LatencyMethod::SnapKv
                | LatencyMethod::PyramidKv => {
                    // Dropping methods keep (part of) the KVCache on GPU; no
                    // offload in the paper's latency accounting.
                }
                LatencyMethod::Sparq { .. } => {
                    e.schedule(Resource::D2H, labels::OFFLOAD, self.cost.transfer_time(layer_kv), &[c]);
                }
                LatencyMethod::InfLlm { .. } => {
                    let off = e.schedule(
                        Resource::D2H,
                        labels::OFFLOAD,
                        self.cost.transfer_time(layer_kv),
                        &[c],
                    );
                    // Block-structure setup on CPU (representative picking).
                    e.schedule(
                        Resource::Cpu,
                        labels::KMEANS,
                        self.cost.kmeans_setup + (s as f64) * 2e-8,
                        &[off],
                    );
                }
                LatencyMethod::PqCache { m, b, iters, .. } => {
                    let off = e.schedule(
                        Resource::D2H,
                        labels::OFFLOAD,
                        self.cost.transfer_time(layer_kv),
                        &[c],
                    );
                    let t = self.kmeans_iters(*iters, s, *m, *b);
                    let km = e.schedule(
                        Resource::Cpu,
                        labels::KMEANS,
                        self.cost.kmeans_layer_time(&self.shape, s, *m, *b, t),
                        &[off],
                    );
                    kmeans_done.push(km);
                }
            }
        }
        kmeans_done
    }

    /// Schedule one decoding step at current length `s`, attending to `k`
    /// tokens. `extra_deps` lets the caller thread in prefill-side events
    /// (the TT2T computation passes K-Means completions).
    pub fn decode_step(
        &self,
        method: &LatencyMethod,
        s: usize,
        k: usize,
        extra_deps: &[Event],
    ) -> PhaseReport {
        let mut e = SimEngine::new();
        self.schedule_decode(&mut e, method, s, k, extra_deps);
        PhaseReport { decomp: Decomposition::from_engine(&e), kmeans_done: Vec::new() }
    }

    /// Schedule one decode step onto an existing engine.
    fn schedule_decode(
        &self,
        e: &mut SimEngine,
        method: &LatencyMethod,
        s: usize,
        k: usize,
        extra_deps: &[Event],
    ) {
        let layers = self.shape.n_layers;
        let hkv = self.shape.n_kv_heads as u64;
        let dh = self.shape.head_dim as u64;
        let fetch_bytes_full = 2 * (k as u64) * dh * hkv * 2; // K+V, FP16

        for l in 0..layers {
            let dep = if l < extra_deps.len() { vec![extra_deps[l]] } else { vec![] };
            match method {
                LatencyMethod::Full => {
                    e.schedule(
                        Resource::Gpu,
                        labels::COMPUTE,
                        self.cost.decode_layer_time(&self.shape, s),
                        &dep,
                    );
                }
                LatencyMethod::H2o | LatencyMethod::SnapKv | LatencyMethod::PyramidKv => {
                    e.schedule(
                        Resource::Gpu,
                        labels::COMPUTE,
                        self.cost.decode_layer_time(&self.shape, k),
                        &dep,
                    );
                }
                LatencyMethod::Sparq { r } => {
                    // Stage 1: fetch r dims of ALL keys — depends on this
                    // layer's query, so it serialises with compute.
                    let q = e.schedule(
                        Resource::Gpu,
                        labels::COMPUTE,
                        self.cost.gpu_layer_overhead,
                        &dep,
                    );
                    // SPARQ picks dimensions per *query* head, so stage-1
                    // traffic scales with h, not h_kv.
                    let bytes1 = (s as u64) * (*r as u64) * (self.shape.n_heads as u64) * 2;
                    let c1 = e.schedule(Resource::H2D, labels::PQ_COMM, self.cost.transfer_time(bytes1), &[q]);
                    // Stage 2: fetch the selected top-k rows.
                    let c2 = e.schedule(
                        Resource::H2D,
                        labels::TOPK_FETCH,
                        self.cost.transfer_time(fetch_bytes_full),
                        &[c1],
                    );
                    e.schedule(
                        Resource::Gpu,
                        labels::COMPUTE,
                        self.cost.decode_layer_time(&self.shape, k),
                        &[c2],
                    );
                }
                LatencyMethod::InfLlm { block, reps } => {
                    // Representatives are prefetched (overlap with previous
                    // layer); the block fetch is serialised but block-granular.
                    let nb = s.div_ceil(*block) as u64;
                    let rep_bytes = nb * (*reps as u64) * dh * hkv * 2;
                    e.schedule(Resource::H2D, labels::PQ_COMM, self.cost.transfer_time(rep_bytes), &[]);
                    let f = e.schedule(
                        Resource::H2D,
                        labels::TOPK_FETCH,
                        self.cost.transfer_time(fetch_bytes_full),
                        &dep,
                    );
                    e.schedule(
                        Resource::Gpu,
                        labels::COMPUTE,
                        self.cost.decode_layer_time(&self.shape, k),
                        &[f],
                    );
                }
                LatencyMethod::PqCache { m, b, cache_hit, .. } => {
                    // PQ codes for the *next* layer prefetch while this layer
                    // computes: model as an H2D op with no GPU dependency.
                    let code_bytes = ((s * m * *b as usize) as u64).div_ceil(8) * hkv;
                    e.schedule(Resource::H2D, labels::PQ_COMM, self.cost.transfer_time(code_bytes), &[]);
                    // ADC + top-k on GPU (tiny).
                    let adc_flops = ((1u64 << *b) * dh * 2 + (s as u64) * (*m as u64) * 2) * hkv;
                    let search = e.schedule(
                        Resource::Gpu,
                        labels::PQ_SEARCH,
                        self.cost.gpu_layer_overhead + adc_flops as f64 / self.cost.gpu_flops,
                        &dep,
                    );
                    // Fetch only cache misses.
                    let miss_bytes = (fetch_bytes_full as f64 * (1.0 - cache_hit)).round() as u64;
                    let f = e.schedule(
                        Resource::H2D,
                        labels::TOPK_FETCH,
                        self.cost.transfer_time(miss_bytes),
                        &[search],
                    );
                    e.schedule(
                        Resource::Gpu,
                        labels::COMPUTE,
                        self.cost.decode_layer_time(&self.shape, k),
                        &[f],
                    );
                }
            }
        }
    }

    /// Time To Second Token: prefill and the first decode step scheduled on
    /// one shared timeline. PQCache's decode layer `i` waits on layer `i`'s
    /// K-Means completion (Algorithm 1 lines 14-17) — everything else simply
    /// queues behind the streams it uses, so overlap is accounted exactly.
    pub fn tt2t(&self, method: &LatencyMethod, s: usize, k: usize) -> f64 {
        let mut e = SimEngine::new();
        let kmeans_done = self.schedule_prefill(&mut e, method, s);
        self.schedule_decode(&mut e, method, s, k, &kmeans_done);
        e.makespan()
    }

    /// Time Per Output Token (steady state): one decode step, plus
    /// cache-management overhead for PQCache when a cache is configured.
    pub fn tpot(&self, method: &LatencyMethod, s: usize, k: usize, cache_mgmt_ops: u64) -> f64 {
        let dec = self.decode_step(method, s, k, &[]);
        dec.decomp.end_to_end + cache_mgmt_ops as f64 * self.cache_op_cost
    }

    /// Whether H2O's prefill would exceed GPU memory at this length (the
    /// paper reports OOM for lengthy inputs because the score matrix is
    /// O(s²)): `h · s² · 2` bytes against a 24 GB card.
    pub fn h2o_prefill_oom(&self, s: usize) -> bool {
        let bytes = self.shape.n_heads as u64 * (s as u64) * (s as u64) * 2;
        bytes > 24 * (1u64 << 30)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> LatencyModel {
        LatencyModel::paper_default()
    }

    fn pqc(hit: f64) -> LatencyMethod {
        LatencyMethod::PqCache {
            m: 2,
            b: 6,
            iters: KmeansIters::Adaptive { min: 1, max: 100 },
            cache_hit: hit,
        }
    }

    #[test]
    fn fig11b_sparq_tpot_scales_pqcache_stays_flat() {
        // Retrieval set size k is capped by GPU memory (paper §5: "the
        // practical limit is the available GPU memory"), so at long s the
        // only s-dependent per-step traffic differentiates the methods.
        let m = model();
        let k = 4096;
        let sparq = LatencyMethod::Sparq { r: 2 };
        let t_sparq_32k = m.tpot(&sparq, 32_000, k, 0);
        let t_sparq_128k = m.tpot(&sparq, 128_000, k, 0);
        let t_pqc_32k = m.tpot(&pqc(0.6), 32_000, k, 0);
        let t_pqc_128k = m.tpot(&pqc(0.6), 128_000, k, 0);
        // SPARQ's stage-1 scan grows with s; PQCache stays near-flat
        // (codes prefetch is 1/128 of key memory) and stays far cheaper.
        assert!(t_sparq_128k > 1.5 * t_sparq_32k, "{t_sparq_32k} vs {t_sparq_128k}");
        assert!(t_pqc_128k < 1.25 * t_pqc_32k, "{t_pqc_32k} vs {t_pqc_128k}");
        assert!(t_pqc_128k < t_sparq_128k / 3.0);
    }

    #[test]
    fn fig11b_human_reading_speed() {
        // Paper: all methods except SPARQ decode faster than ~333 tokens/min
        // (0.18 s/token) at 128K.
        let m = model();
        let k = 4_096; // the paper's GPU-cache-sized retrieval set
        let budget = 0.18;
        for meth in [
            LatencyMethod::SnapKv,
            LatencyMethod::PyramidKv,
            LatencyMethod::InfLlm { block: 128, reps: 2 },
            pqc(0.6),
        ] {
            let t = m.tpot(&meth, 128_000, k, 0);
            assert!(t < budget, "{} too slow: {t}", meth.name());
        }
        let t_sparq = m.tpot(&LatencyMethod::Sparq { r: 2 }, 128_000, k, 0);
        assert!(t_sparq > budget, "SPARQ should exceed reading speed: {t_sparq}");
        assert!(t_sparq > m.tpot(&pqc(0.6), 128_000, k, 0) * 2.0, "SPARQ {t_sparq}");
    }

    #[test]
    fn fig11a_tt2t_ordering() {
        let m = model();
        let s = 64_000;
        let k = s / 5;
        let t_h2o = m.tt2t(&LatencyMethod::H2o, s, k);
        let t_snap = m.tt2t(&LatencyMethod::SnapKv, s, k);
        let t_pqc = m.tt2t(&pqc(0.6), s, k);
        let t_sparq = m.tt2t(&LatencyMethod::Sparq { r: 2 }, s, k);
        // H2O worst (no flash); PQCache close to SnapKV; SPARQ above both
        // because its first decode step already pays the full key scan.
        assert!(t_h2o > t_snap * 1.2, "h2o {t_h2o} snap {t_snap}");
        assert!(t_pqc < t_snap * 1.25, "pqc {t_pqc} snap {t_snap}");
        assert!(t_sparq > t_snap, "sparq {t_sparq} snap {t_snap}");
    }

    #[test]
    fn fig12a_prefill_overlap_hides_kmeans() {
        // With the adaptive budget, prefill end-to-end stays close to pure
        // GPU compute: offload and clustering ride their own streams.
        let m = model();
        let pre = m.prefill(&pqc(0.6), 128_000);
        let d = pre.decomp;
        assert!(d.kmeans > 0.0 && d.offload > 0.0);
        assert!(
            d.end_to_end < d.compute * 1.10,
            "overlap failed: e2e {} vs compute {}",
            d.end_to_end,
            d.compute
        );
        assert!(d.end_to_end <= d.component_sum());
    }

    #[test]
    fn fig12b_decode_overlap_beats_serialized() {
        let m = model();
        let dec = m.decode_step(&pqc(0.6), 128_000, 12_800, &[]);
        let d = dec.decomp;
        assert!(d.pq_comm > 0.0);
        assert!(d.end_to_end < d.component_sum(), "no overlap achieved");
    }

    #[test]
    fn fig11c_cache_hit_rate_reduces_tpot() {
        let m = model();
        let t0 = m.tpot(&pqc(0.0), 128_000, 12_800, 0);
        let t6 = m.tpot(&pqc(0.6), 128_000, 12_800, 0);
        let t9 = m.tpot(&pqc(0.9), 128_000, 12_800, 0);
        assert!(t6 < t0 * 0.9, "t0 {t0} t6 {t6}");
        assert!(t9 < t6);
        // Paper: 26-33% reduction for 4K-8K caches; 0.6 hit rate should land
        // in that neighbourhood.
        let reduction = 1.0 - t6 / t0;
        assert!((0.10..0.60).contains(&reduction), "reduction {reduction}");
    }

    #[test]
    fn fig11c_token_level_management_overhead_hurts() {
        let m = model();
        // Token-level cache: one management op per selected token per layer
        // per head vs block-level's per-block ops.
        let token_ops = 12_800u64 * 32 * 8;
        let block_ops = (12_800u64 / 128) * 32 * 8;
        let t_tok = m.tpot(&pqc(0.6), 128_000, 12_800, token_ops);
        let t_blk = m.tpot(&pqc(0.6), 128_000, 12_800, block_ops);
        assert!(t_tok > t_blk * 1.5, "tok {t_tok} blk {t_blk}");
    }

    #[test]
    fn fig12c_fixed_iters_tradeoff() {
        // Unrestricted clustering blocks TT2T; adaptive stays near SnapKV.
        let m = model();
        let s = 16_000;
        let k = s / 10;
        let fixed_big = LatencyMethod::PqCache {
            m: 2,
            b: 6,
            iters: KmeansIters::Fixed(200),
            cache_hit: 0.6,
        };
        let t_adaptive = m.tt2t(&pqc(0.6), s, k);
        let t_fixed = m.tt2t(&fixed_big, s, k);
        assert!(t_fixed > t_adaptive * 1.3, "fixed {t_fixed} adaptive {t_adaptive}");
    }

    #[test]
    fn adaptive_iters_grow_with_length() {
        let m = model();
        let it_short = m.kmeans_iters(KmeansIters::Adaptive { min: 1, max: 1000 }, 4_000, 2, 6);
        let it_long = m.kmeans_iters(KmeansIters::Adaptive { min: 1, max: 1000 }, 128_000, 2, 6);
        assert!(it_long > it_short, "short {it_short} long {it_long}");
    }

    #[test]
    fn h2o_oom_threshold() {
        let m = model();
        assert!(!m.h2o_prefill_oom(16_000));
        assert!(m.h2o_prefill_oom(128_000));
    }
}
