//! Synthetic long-context workload generators.
//!
//! Stand-ins for LongBench / InfiniteBench task families (DESIGN.md §2).
//! Each generator produces a token sequence over the simulated vocabulary
//! plus the ground-truth set of *planted* positions — the tokens a competent
//! selective-attention method must retrieve. Fillers are drawn from a
//! Zipf-ish distribution over a "common-word" band so the haystack has
//! realistic repetition structure; planted content uses reserved rare tokens
//! so its keys are distinctive, the way salient facts are in real text.

use pqc_tensor::Rng64;

/// A generated workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Task family name (table row label).
    pub name: &'static str,
    /// The prompt.
    pub tokens: Vec<u32>,
    /// Positions a faithful method must be able to retrieve.
    pub planted: Vec<usize>,
    /// Tokens to re-probe with during decoding (appended to random driver
    /// tokens by the harness); usually the question span.
    pub probe: Vec<u32>,
}

/// Vocabulary layout shared by all generators.
#[derive(Debug, Clone, Copy)]
pub struct VocabLayout {
    /// Total vocabulary size (must match the model config).
    pub vocab: usize,
    /// Filler tokens come from `[0, common)`.
    pub common: usize,
    /// Rare/salient tokens come from `[common, vocab)`.
    pub rare_lo: usize,
}

impl VocabLayout {
    /// Layout for a model vocabulary of `vocab` tokens.
    pub fn for_vocab(vocab: usize) -> Self {
        Self { vocab, common: (vocab * 3) / 4, rare_lo: (vocab * 3) / 4 }
    }

    fn filler(&self, rng: &mut Rng64) -> u32 {
        // Zipf-ish: square a uniform to skew toward low token ids.
        let u = rng.uniform();
        ((u * u * self.common as f64) as usize).min(self.common - 1) as u32
    }

    fn rare(&self, rng: &mut Rng64) -> u32 {
        (self.rare_lo + rng.below(self.vocab - self.rare_lo)) as u32
    }
}

/// Fill `out[lo..hi]` with filler tokens.
fn fill(out: &mut [u32], layout: &VocabLayout, rng: &mut Rng64) {
    for t in out.iter_mut() {
        *t = layout.filler(rng);
    }
}

/// Needle-in-a-haystack (Fig. 9): one rare-token span ("the needle") hidden
/// at `depth` (fraction of the context), with the probe/question at the end.
pub fn needle(s: usize, depth: f64, layout: &VocabLayout, seed: u64) -> Workload {
    assert!(s >= 64, "needle workload needs s >= 64");
    assert!((0.0..=1.0).contains(&depth));
    let mut rng = Rng64::new(seed);
    let mut tokens = vec![0u32; s];
    fill(&mut tokens, layout, &mut rng);

    let needle_len = 8;
    let probe_len = 8;
    // Needle body: marker + payload of rare tokens.
    let needle_toks: Vec<u32> = (0..needle_len).map(|_| layout.rare(&mut rng)).collect();
    let pos = ((s - probe_len - needle_len - 1) as f64 * depth) as usize;
    let planted: Vec<usize> = (pos..pos + needle_len).collect();
    tokens[pos..pos + needle_len].copy_from_slice(&needle_toks);

    // Probe: re-states the needle marker (first half of the needle) at the
    // very end, like asking "what was the magic number?".
    let probe: Vec<u32> = needle_toks[..probe_len.min(needle_len) / 2]
        .iter()
        .copied()
        .chain((0..probe_len / 2).map(|_| layout.rare(&mut rng)))
        .collect();
    let plo = s - probe.len();
    tokens[plo..].copy_from_slice(&probe);

    Workload { name: "Needle", tokens, planted, probe }
}

/// Passkey retrieval (InfiniteBench Retr.PassKey): like needle but the
/// payload is a repeated digit-style pattern, making the key signature very
/// strong.
pub fn passkey(s: usize, layout: &VocabLayout, seed: u64) -> Workload {
    let mut w = needle(s, 0.5, layout, seed.wrapping_add(0x9A55));
    w.name = "Retr.PassKey";
    w
}

/// Key-value retrieval (InfiniteBench Retr.KV): `n_pairs` (key, value) rare
/// token pairs scattered through the haystack; the probe asks for one pair.
/// Hard for block methods because pairs are discretely placed.
pub fn kv_retrieval(s: usize, n_pairs: usize, layout: &VocabLayout, seed: u64) -> Workload {
    assert!(s >= 16 * n_pairs + 32, "context too small for {n_pairs} pairs");
    let mut rng = Rng64::new(seed);
    let mut tokens = vec![0u32; s];
    fill(&mut tokens, layout, &mut rng);

    let pair_len = 4; // key marker, key, value marker, value
    let probe_len = 6;
    let usable = s - probe_len - pair_len;
    let mut positions: Vec<usize> = (0..n_pairs)
        .map(|i| 8 + (usable - 16) * i / n_pairs + rng.below(usable / (2 * n_pairs)))
        .collect();
    positions.dedup();

    let mut pairs = Vec::new();
    for &p in &positions {
        let pair: Vec<u32> = (0..pair_len).map(|_| layout.rare(&mut rng)).collect();
        tokens[p..p + pair_len].copy_from_slice(&pair);
        pairs.push((p, pair));
    }
    // Query a middle pair (neither first nor last).
    let (qpos, qpair) = pairs[pairs.len() / 2].clone();
    let planted: Vec<usize> = (qpos..qpos + pair_len).collect();
    let probe: Vec<u32> = qpair[..2]
        .iter()
        .copied()
        .chain((0..probe_len - 2).map(|_| layout.rare(&mut rng)))
        .collect();
    let plo = s - probe.len();
    tokens[plo..].copy_from_slice(&probe);

    Workload { name: "Retr.KV", tokens, planted, probe }
}

/// Where the question is placed in a QA workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuestionPosition {
    /// Question at the end (standard LongBench layout — favours SnapKV).
    End,
    /// Question before the context (Table 3's adversarial layout).
    Start,
}

/// Long-document QA: several salient "fact" spans; the question references
/// one of them and is placed at the start or end.
pub fn qa(
    s: usize,
    n_facts: usize,
    position: QuestionPosition,
    layout: &VocabLayout,
    seed: u64,
) -> Workload {
    assert!(s >= 32 * n_facts.max(2), "context too small");
    let mut rng = Rng64::new(seed);
    let mut tokens = vec![0u32; s];
    fill(&mut tokens, layout, &mut rng);

    let fact_len = 6;
    let q_len = 8;
    let body_lo = q_len + 2;
    let body_hi = s - q_len - 2;
    let mut facts = Vec::new();
    for i in 0..n_facts {
        let span = (body_hi - body_lo - fact_len) / n_facts;
        let p = body_lo + i * span + rng.below(span / 2 + 1);
        let fact: Vec<u32> = (0..fact_len).map(|_| layout.rare(&mut rng)).collect();
        tokens[p..p + fact_len].copy_from_slice(&fact);
        facts.push((p, fact));
    }
    let (fpos, fact) = facts[rng.below(n_facts)].clone();
    let planted: Vec<usize> = (fpos..fpos + fact_len).collect();
    // Question = first half of the fact + filler question words.
    let probe: Vec<u32> = fact[..fact_len / 2]
        .iter()
        .copied()
        .chain((0..q_len - fact_len / 2).map(|_| layout.filler(&mut rng)))
        .collect();
    match position {
        QuestionPosition::End => {
            let plo = s - probe.len();
            tokens[plo..].copy_from_slice(&probe);
        }
        QuestionPosition::Start => {
            tokens[..probe.len()].copy_from_slice(&probe);
        }
    }

    let name = match position {
        QuestionPosition::End => "QA",
        QuestionPosition::Start => "QA-qfirst",
    };
    Workload { name, tokens, planted, probe }
}

/// Multi-hop chain-of-thought (GSM8k-CoT proxy): `hops` linked facts
/// scattered through the context; each hop's span shares tokens with the
/// next, and the probe references only the first hop — the model must chain.
pub fn cot_chain(s: usize, hops: usize, layout: &VocabLayout, seed: u64) -> Workload {
    assert!(hops >= 2 && s >= 48 * hops, "context too small for {hops} hops");
    let mut rng = Rng64::new(seed);
    let mut tokens = vec![0u32; s];
    fill(&mut tokens, layout, &mut rng);

    let span_len = 6;
    let q_len = 6;
    let mut planted = Vec::new();
    // Shuffled placement so hops are NOT in textual order.
    let mut slots: Vec<usize> = (0..hops).collect();
    rng.shuffle(&mut slots);
    let region = (s - q_len - span_len - 8) / hops;
    let mut link: u32 = layout.rare(&mut rng);
    let mut first_link = link;
    for (i, &slot) in slots.iter().enumerate() {
        let p = 4 + slot * region + rng.below(region / 2 + 1);
        let next_link = layout.rare(&mut rng);
        let mut span = vec![link; 1];
        span.extend((0..span_len - 2).map(|_| layout.rare(&mut rng)));
        span.push(next_link);
        tokens[p..p + span_len].copy_from_slice(&span);
        planted.extend(p..p + span_len);
        if i == 0 {
            first_link = link;
        }
        link = next_link;
    }
    let probe: Vec<u32> = std::iter::once(first_link)
        .chain((0..q_len - 1).map(|_| layout.filler(&mut rng)))
        .collect();
    let plo = s - probe.len();
    tokens[plo..].copy_from_slice(&probe);

    Workload { name: "CoT", tokens, planted, probe }
}

/// Aggregation/summarisation proxy (En.Sum / GovReport): importance is
/// spread over many moderately-salient spans; no single needle.
pub fn aggregation(s: usize, n_spans: usize, layout: &VocabLayout, seed: u64) -> Workload {
    assert!(s >= 16 * n_spans.max(4));
    let mut rng = Rng64::new(seed);
    let mut tokens = vec![0u32; s];
    fill(&mut tokens, layout, &mut rng);
    let span_len = 3;
    let mut planted = Vec::new();
    for i in 0..n_spans {
        let region = (s - 16) / n_spans;
        let p = 4 + i * region + rng.below(region / 2 + 1);
        for j in 0..span_len {
            tokens[p + j] = layout.rare(&mut rng);
        }
        planted.extend(p..p + span_len);
    }
    let probe: Vec<u32> = (0..6).map(|_| layout.filler(&mut rng)).collect();
    let plo = s - probe.len();
    tokens[plo..].copy_from_slice(&probe);
    Workload { name: "Summ", tokens, planted, probe }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> VocabLayout {
        VocabLayout::for_vocab(1024)
    }

    #[test]
    fn needle_planted_positions_hold_rare_tokens() {
        let w = needle(512, 0.4, &layout(), 1);
        assert_eq!(w.tokens.len(), 512);
        for &p in &w.planted {
            assert!(w.tokens[p] as usize >= layout().rare_lo, "pos {p}");
        }
        // Depth 0.4 puts the needle around 40% in.
        let mid = w.planted[0] as f64 / 512.0;
        assert!((0.3..0.5).contains(&mid), "depth {mid}");
    }

    #[test]
    fn needle_probe_overlaps_needle_tokens() {
        let w = needle(256, 0.5, &layout(), 2);
        // The probe's first tokens are drawn from the needle span.
        assert!(w.probe.len() >= 4);
        let needle_toks: Vec<u32> = w.planted.iter().map(|&p| w.tokens[p]).collect();
        assert!(needle_toks.contains(&w.probe[0]));
    }

    #[test]
    fn generators_deterministic() {
        let a = kv_retrieval(512, 8, &layout(), 7);
        let b = kv_retrieval(512, 8, &layout(), 7);
        assert_eq!(a.tokens, b.tokens);
        assert_eq!(a.planted, b.planted);
        let c = kv_retrieval(512, 8, &layout(), 8);
        assert_ne!(a.tokens, c.tokens);
    }

    #[test]
    fn qa_question_position_respected() {
        let end = qa(512, 4, QuestionPosition::End, &layout(), 3);
        let start = qa(512, 4, QuestionPosition::Start, &layout(), 3);
        // Same probe tokens at opposite ends.
        let e = &end.tokens[512 - end.probe.len()..];
        assert_eq!(e, &end.probe[..]);
        let s0 = &start.tokens[..start.probe.len()];
        assert_eq!(s0, &start.probe[..]);
    }

    #[test]
    fn cot_hops_are_linked() {
        let w = cot_chain(512, 3, &layout(), 4);
        // 3 hops × 6 tokens planted.
        assert_eq!(w.planted.len(), 18);
        // First probe token appears somewhere in a planted span (the first
        // hop's link).
        let link = w.probe[0];
        assert!(w.planted.iter().any(|&p| w.tokens[p] == link));
    }

    #[test]
    fn aggregation_spreads_importance() {
        let w = aggregation(512, 12, &layout(), 5);
        assert_eq!(w.planted.len(), 36);
        // Spans spread across at least half of the context.
        let lo = *w.planted.iter().min().unwrap();
        let hi = *w.planted.iter().max().unwrap();
        assert!(hi - lo > 256);
    }

    #[test]
    fn tokens_within_vocab() {
        for w in [
            needle(256, 0.9, &layout(), 6),
            kv_retrieval(512, 6, &layout(), 6),
            qa(512, 4, QuestionPosition::End, &layout(), 6),
            cot_chain(512, 4, &layout(), 6),
            aggregation(256, 8, &layout(), 6),
        ] {
            assert!(w.tokens.iter().all(|&t| (t as usize) < 1024), "{}", w.name);
            assert!(w.planted.iter().all(|&p| p < w.tokens.len()));
        }
    }
}
