//! Evaluation harness: teacher-forced comparison against the full-attention
//! reference.
//!
//! Greedy free-running generation from a random-weight transformer collapses
//! to fixed points, so (as in perplexity-style evaluation) we *teacher-force*
//! a shared driver sequence and compare each method's per-step prediction to
//! the full-attention reference:
//!
//! - **agreement**: mean overlap between the method's and the reference's
//!   top-5 next-token candidates — the discrete "score" reported in the
//!   Tables 2/4 stand-ins (argmax alone saturates; top-5 discriminates);
//! - **hidden cosine**: mean cosine similarity between final hidden states —
//!   a smooth fidelity signal;
//! - **planted recall**: over re-probe steps, whether the probed planted
//!   position was selected by *any* (layer, head) — token-identity retrieval
//!   is per-head, and one attending head suffices for the value to flow into
//!   the output. This is the needle/passkey/KV retrieval signal.

use crate::gen::Workload;
use crate::methods::MethodSpec;
use pqc_core::{SelectiveSession, SessionConfig};
use pqc_llm::{FullKvSource, Model, PrefillOptions, PrefillOutput};
use pqc_tensor::{cosine, top_k_indices, Rng64};

/// Size of the next-token candidate set compared between a method and the
/// full-attention reference.
pub const TOPK_TOKENS: usize = 5;

/// Per-(method, task) evaluation outcome.
#[derive(Debug, Clone)]
pub struct TaskResult {
    /// Method display name.
    pub method: &'static str,
    /// Task display name.
    pub task: &'static str,
    /// Teacher-forced top-5 next-token overlap with full attention,
    /// in `[0, 100]`.
    pub agreement: f64,
    /// Mean hidden-state cosine vs the reference, in `[-1, 1]`.
    pub hidden_cosine: f64,
    /// Fraction of probe steps whose probed planted position was selected
    /// by at least one (layer, kv-head).
    pub planted_recall: f64,
    /// Host→device bytes moved during decode.
    pub h2d_bytes: u64,
    /// GPU cache hit rate over the run.
    pub cache_hit_rate: f64,
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Teacher-forced decode steps.
    pub steps: usize,
    /// Session configuration shared by all methods ("Full" gets
    /// `token_ratio = 1.0` automatically).
    pub session: SessionConfig,
    /// Driver-sequence seed.
    pub driver_seed: u64,
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self { steps: 24, session: SessionConfig::default(), driver_seed: 0xD21E }
    }
}

/// Build the deterministic driver sequence: random filler tokens
/// interleaved with the workload's probe tokens (each third step re-probes,
/// keeping retrieval pressure on through the decode).
pub fn driver_tokens(w: &Workload, vocab: usize, steps: usize, seed: u64) -> Vec<u32> {
    let mut rng = Rng64::new(seed ^ 0xD21F);
    (0..steps)
        .map(|i| {
            if i % 3 == 2 && !w.probe.is_empty() {
                w.probe[(i / 3) % w.probe.len()]
            } else {
                rng.below(vocab) as u32
            }
        })
        .collect()
}

/// Reference trajectory: per-step argmax and hidden state under exact full
/// attention.
pub struct Reference {
    /// Prefill output (reused across methods).
    pub prefill: PrefillOutput,
    /// Driver tokens fed at each step.
    pub driver: Vec<u32>,
    /// Reference top-5 next-token candidates per step.
    pub top_tokens: Vec<Vec<usize>>,
    /// Reference hidden state per step.
    pub hiddens: Vec<Vec<f32>>,
}

/// Compute the reference trajectory for a workload (one prefill + teacher-
/// forced full-attention decode).
pub fn reference(model: &Model, w: &Workload, cfg: &EvalConfig) -> Reference {
    let prefill = model.prefill(
        &w.tokens,
        &PrefillOptions {
            capture_window: Some(cfg.session.obs_window.min(w.tokens.len())),
            ..Default::default()
        },
    );
    let driver = driver_tokens(w, model.config().vocab_size, cfg.steps, cfg.driver_seed);
    let mut src = FullKvSource::from_prefill(&prefill);
    let mut top_tokens = Vec::with_capacity(cfg.steps);
    let mut hiddens = Vec::with_capacity(cfg.steps);
    for (pos, &t) in (w.tokens.len()..).zip(driver.iter()) {
        let dec = model.decode_step(t, pos, &mut src);
        top_tokens.push(top_k_indices(&dec.logits, TOPK_TOKENS));
        hiddens.push(dec.hidden);
    }
    Reference { prefill, driver, top_tokens, hiddens }
}

/// Evaluate one method against a precomputed reference.
pub fn evaluate_method(
    model: &Model,
    w: &Workload,
    rf: &Reference,
    spec: MethodSpec,
    cfg: &EvalConfig,
) -> TaskResult {
    evaluate_method_with_prefill(model, w, rf, &rf.prefill, spec, cfg)
}

/// Evaluate a method whose session starts from a *different* prefill than
/// the scoring reference — used by the Table 5 (MInference) experiment,
/// where the session consumes a sparse-attention prefill but fidelity is
/// still judged against the dense full-attention reference.
pub fn evaluate_method_with_prefill(
    model: &Model,
    w: &Workload,
    rf: &Reference,
    session_prefill: &PrefillOutput,
    spec: MethodSpec,
    cfg: &EvalConfig,
) -> TaskResult {
    let mut session_cfg = cfg.session;
    if spec == MethodSpec::Full {
        session_cfg.token_ratio = 1.0;
    }
    let dh = model.config().head_dim;
    let policy = spec.build(dh, session_cfg.comm_fraction);
    let start = SelectiveSession::start_from_prefill(model, policy, session_cfg, session_prefill);
    let mut session = start.session;

    // Planted positions that live in the middle region (absolute ids).
    let s = w.tokens.len();
    let planted_mid: Vec<usize> = w
        .planted
        .iter()
        .copied()
        .filter(|&p| p >= session_cfg.n_init && p < s - session_cfg.n_local)
        .collect();
    // Positions retrievable by token identity for a given probe token.
    let positions_of = |tok: u32| -> Vec<usize> {
        planted_mid.iter().copied().filter(|&p| w.tokens[p] == tok).collect()
    };

    let mut agree = 0.0f64;
    let mut cos_sum = 0.0f64;
    let mut recall_sum = 0.0f64;
    let mut recall_steps = 0usize;
    let n_layers = model.config().n_layers;
    let n_heads = model.config().n_kv_heads;

    for (i, &t) in rf.driver.iter().enumerate() {
        let dec = session.decode(t);
        let mine = top_k_indices(&dec.logits, TOPK_TOKENS);
        let hit = rf.top_tokens[i].iter().filter(|x| mine.contains(x)).count();
        agree += hit as f64 / rf.top_tokens[i].len().max(1) as f64;
        cos_sum += cosine(&dec.hidden, &rf.hiddens[i]) as f64;
        // Recall is only meaningful on re-probe steps whose probe token is
        // itself a planted token — token-identity retrieval.
        let is_probe_step = i % 3 == 2 && !w.probe.is_empty();
        if is_probe_step {
            let targets = positions_of(t);
            if !targets.is_empty() {
                let mut hit = false;
                'outer: for l in 0..n_layers {
                    for h in 0..n_heads {
                        let sel = session.last_selected(l, h);
                        if targets.iter().any(|p| sel.contains(p)) {
                            hit = true;
                            break 'outer;
                        }
                    }
                }
                recall_sum += if hit { 1.0 } else { 0.0 };
                recall_steps += 1;
            }
        }
    }

    let steps = rf.driver.len().max(1);
    TaskResult {
        method: spec.name(),
        task: w.name,
        agreement: 100.0 * agree / steps as f64,
        hidden_cosine: cos_sum / steps as f64,
        planted_recall: if planted_mid.is_empty() || recall_steps == 0 {
            1.0
        } else {
            recall_sum / recall_steps as f64
        },
        h2d_bytes: session.transfer_stats().h2d_bytes,
        cache_hit_rate: session.cache_stats().hit_rate(),
    }
}

/// Evaluate a full method lineup on one workload (prefill shared).
pub fn evaluate_workload(
    model: &Model,
    w: &Workload,
    specs: &[MethodSpec],
    cfg: &EvalConfig,
) -> Vec<TaskResult> {
    let rf = reference(model, w, cfg);
    specs.iter().map(|&spec| evaluate_method(model, w, &rf, spec, cfg)).collect()
}

/// Pretty-print a result grid (rows = tasks, columns = methods) the way the
/// paper's tables are laid out. `metric` selects which number is shown.
pub fn format_table(results: &[TaskResult], metric: fn(&TaskResult) -> f64) -> String {
    let mut methods: Vec<&'static str> = Vec::new();
    let mut tasks: Vec<&'static str> = Vec::new();
    for r in results {
        if !methods.contains(&r.method) {
            methods.push(r.method);
        }
        if !tasks.contains(&r.task) {
            tasks.push(r.task);
        }
    }
    let mut out = String::new();
    out.push_str(&format!("{:<14}", "Dataset"));
    for m in &methods {
        out.push_str(&format!("{m:>14}"));
    }
    out.push('\n');
    let mut sums = vec![0.0f64; methods.len()];
    let mut counts = vec![0usize; methods.len()];
    for t in &tasks {
        out.push_str(&format!("{t:<14}"));
        for (mi, m) in methods.iter().enumerate() {
            let v = results
                .iter()
                .find(|r| r.task == *t && r.method == *m)
                .map(&metric);
            match v {
                Some(v) => {
                    out.push_str(&format!("{v:>14.2}"));
                    sums[mi] += v;
                    counts[mi] += 1;
                }
                None => out.push_str(&format!("{:>14}", "-")),
            }
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<14}", "Average"));
    for (s, c) in sums.iter().zip(counts.iter()) {
        if *c > 0 {
            out.push_str(&format!("{:>14.2}", s / *c as f64));
        } else {
            out.push_str(&format!("{:>14}", "-"));
        }
    }
    out.push('\n');
    out
}

/// Mean of a metric over every task for one method.
pub fn method_average(
    results: &[TaskResult],
    method: &str,
    metric: fn(&TaskResult) -> f64,
) -> f64 {
    let vals: Vec<f64> = results.iter().filter(|r| r.method == method).map(metric).collect();
    if vals.is_empty() {
        return 0.0;
    }
    vals.iter().sum::<f64>() / vals.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{needle, VocabLayout};
    use pqc_core::CacheConfig;
    use pqc_llm::LlmConfig;

    fn tiny_cfg() -> EvalConfig {
        EvalConfig {
            steps: 9,
            session: SessionConfig {
                n_init: 2,
                n_local: 8,
                token_ratio: 0.25,
                comm_fraction: 1.0 / 8.0,
                obs_window: 8,
                cache: CacheConfig { capacity_tokens: 64, block_size: 8, lfu: true, k_cache_blocks: 4 },
                ivf: pqc_core::IvfMode::Exact,
            },
            driver_seed: 1,
        }
    }

    #[test]
    fn full_method_agrees_perfectly() {
        let model = Model::new(LlmConfig::tiny());
        let layout = VocabLayout::for_vocab(256);
        let w = needle(96, 0.5, &layout, 1);
        let rf = reference(&model, &w, &tiny_cfg());
        let r = evaluate_method(&model, &w, &rf, MethodSpec::Full, &tiny_cfg());
        assert_eq!(r.agreement, 100.0);
        assert!(r.hidden_cosine > 0.999, "{}", r.hidden_cosine);
        assert_eq!(r.planted_recall, 1.0);
    }

    #[test]
    fn oracle_beats_streaming_on_needle() {
        let model = Model::new(LlmConfig::tiny());
        let layout = VocabLayout::for_vocab(256);
        let w = needle(128, 0.5, &layout, 2);
        let cfg = tiny_cfg();
        let rf = reference(&model, &w, &cfg);
        let oracle = evaluate_method(&model, &w, &rf, MethodSpec::Oracle, &cfg);
        let streaming = evaluate_method(&model, &w, &rf, MethodSpec::StreamingLlm, &cfg);
        assert!(oracle.hidden_cosine > streaming.hidden_cosine, "{} vs {}", oracle.hidden_cosine, streaming.hidden_cosine);
        assert!(oracle.agreement >= streaming.agreement);
        assert!(oracle.planted_recall > 0.1, "{}", oracle.planted_recall);
        assert_eq!(streaming.planted_recall, 0.0);
    }

    #[test]
    fn driver_is_deterministic_and_reprobes() {
        let layout = VocabLayout::for_vocab(256);
        let w = needle(96, 0.5, &layout, 3);
        let a = driver_tokens(&w, 256, 12, 7);
        let b = driver_tokens(&w, 256, 12, 7);
        assert_eq!(a, b);
        assert_eq!(a[2], w.probe[0]);
        assert_eq!(a[5], w.probe[1]);
    }

    #[test]
    fn table_formatting_includes_all() {
        let results = vec![
            TaskResult { method: "A", task: "T1", agreement: 50.0, hidden_cosine: 0.9, planted_recall: 0.5, h2d_bytes: 0, cache_hit_rate: 0.0 },
            TaskResult { method: "B", task: "T1", agreement: 75.0, hidden_cosine: 0.95, planted_recall: 0.7, h2d_bytes: 0, cache_hit_rate: 0.0 },
        ];
        let t = format_table(&results, |r| r.agreement);
        assert!(t.contains("T1"));
        assert!(t.contains("50.00"));
        assert!(t.contains("75.00"));
        assert!(t.contains("Average"));
        assert_eq!(method_average(&results, "B", |r| r.agreement), 75.0);
    }
}
