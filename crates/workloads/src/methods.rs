//! Method registry: maps paper method names to policy constructors with
//! communication-budget-aligned parameters (paper §4.1.3).
//!
//! At simulation scale (`d_h = 32`) the paper's 1/128 key-memory budget is
//! not reachable by SPARQ (its minimum is r=1 → 1/32), so budgets are
//! expressed as fractions and each method maps a fraction to its own
//! parameter exactly as the paper does at `d_h = 128`:
//! SPARQ `r = f·d_h`, InfLLM `reps = f·block`, PQCache `m·b = 16·d_h·f`.

use pqc_policies::{
    FullAttentionPolicy, H2oPolicy, InfLlmPolicy, OraclePolicy, PqCachePolicy,
    PqCachePolicyConfig, PyramidKvPolicy, SelectionPolicy, SnapKvPolicy, SparqPolicy,
    StreamingLlmPolicy,
};

/// A method identifier with everything needed to instantiate its policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MethodSpec {
    /// No compression.
    Full,
    /// Exact top-k (upper bound).
    Oracle,
    /// Initial + local only.
    StreamingLlm,
    /// Heavy-hitter dropping (compensated).
    H2o,
    /// Observation-window dropping (compensated).
    SnapKv,
    /// SnapKV with pyramid budgets (compensated).
    PyramidKv,
    /// Top-r query dimensions.
    Sparq,
    /// Block representatives.
    InfLlm,
    /// Product quantization (the paper's method) with explicit `m`, `b`,
    /// and K-Means iteration budget.
    PqCache {
        /// Sub-spaces.
        m: usize,
        /// Bits per code.
        b: u32,
        /// K-Means iterations.
        iters: usize,
    },
    /// PQCache with IVF-routed retrieval (the paper's §5 extension): the
    /// decode-step scan probes `n_probe` of `n_list` coarse cells instead
    /// of every token — sublinear selection for long contexts.
    PqCacheIvf {
        /// Sub-spaces.
        m: usize,
        /// Bits per code.
        b: u32,
        /// K-Means iterations.
        iters: usize,
        /// Coarse cells per (layer, kv-head).
        n_list: usize,
        /// Cells probed per query.
        n_probe: usize,
    },
}

impl MethodSpec {
    /// The default PQCache configuration scaled from the paper's m=2, b=6
    /// at d_h=128 to simulation scale (same comm-fraction semantics).
    pub fn pqcache_default() -> Self {
        MethodSpec::PqCache { m: 2, b: 6, iters: 15 }
    }

    /// The default IVF-routed PQCache: same PQ geometry, 16-cell inverted
    /// file probing 4 cells per step (the `IvfConfig` defaults).
    pub fn pqcache_ivf_default() -> Self {
        MethodSpec::PqCacheIvf { m: 2, b: 6, iters: 15, n_list: 16, n_probe: 4 }
    }

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            MethodSpec::Full => "Full",
            MethodSpec::Oracle => "Oracle",
            MethodSpec::StreamingLlm => "StreamingLLM",
            MethodSpec::H2o => "H2O(C)",
            MethodSpec::SnapKv => "SnapKV(C)",
            MethodSpec::PyramidKv => "PyramidKV(C)",
            MethodSpec::Sparq => "SPARQ",
            MethodSpec::InfLlm => "InfLLM",
            MethodSpec::PqCache { .. } => "PQCache",
            MethodSpec::PqCacheIvf { .. } => "PQCache-IVF",
        }
    }

    /// Instantiate the policy for a model with head dimension `dh` under an
    /// extra-communication budget of `comm_fraction` of the keys' memory.
    pub fn build(&self, dh: usize, comm_fraction: f64) -> Box<dyn SelectionPolicy + Send> {
        match *self {
            MethodSpec::Full => Box::new(FullAttentionPolicy::default()),
            MethodSpec::Oracle => Box::new(OraclePolicy::default()),
            MethodSpec::StreamingLlm => Box::new(StreamingLlmPolicy),
            MethodSpec::H2o => Box::new(H2oPolicy::default()),
            MethodSpec::SnapKv => Box::new(SnapKvPolicy::default()),
            MethodSpec::PyramidKv => Box::new(PyramidKvPolicy::default()),
            MethodSpec::Sparq => Box::new(SparqPolicy::for_comm_fraction(comm_fraction, dh)),
            MethodSpec::InfLlm => {
                // Representatives per block so that reps/block ≈ fraction:
                // block of 32 tokens at sim scale (128 in the paper).
                let block = 32;
                let reps = ((comm_fraction * block as f64).round() as usize).max(1);
                Box::new(InfLlmPolicy::new(block, reps))
            }
            MethodSpec::PqCache { m, b, iters } => Box::new(PqCachePolicy::new(
                PqCachePolicyConfig { m, b, kmeans_iters: iters, seed: 0xBEEF, ..Default::default() },
            )),
            MethodSpec::PqCacheIvf { m, b, iters, n_list, n_probe } => {
                Box::new(PqCachePolicy::new(PqCachePolicyConfig {
                    m,
                    b,
                    kmeans_iters: iters,
                    seed: 0xBEEF,
                    ivf: pqc_policies::IvfMode::Probe(n_probe),
                    ivf_n_list: n_list,
                }))
            }
        }
    }

    /// The standard comparison set of the paper's quality tables
    /// (Tables 2 and 4): Full, Oracle, three compensated droppers, the two
    /// offloading baselines, and PQCache.
    pub fn paper_lineup() -> Vec<MethodSpec> {
        vec![
            MethodSpec::Full,
            MethodSpec::Oracle,
            MethodSpec::H2o,
            MethodSpec::SnapKv,
            MethodSpec::PyramidKv,
            MethodSpec::InfLlm,
            MethodSpec::Sparq,
            MethodSpec::pqcache_default(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineup_has_eight_methods() {
        let l = MethodSpec::paper_lineup();
        assert_eq!(l.len(), 8);
        assert_eq!(l.last().unwrap().name(), "PQCache");
    }

    #[test]
    fn build_produces_matching_policies() {
        for spec in MethodSpec::paper_lineup() {
            let p = spec.build(32, 1.0 / 16.0);
            // Policy names drop the "(C)" suffix (compensation is an engine
            // concern), otherwise they match.
            let expect = spec.name().trim_end_matches("(C)");
            assert_eq!(p.name(), expect);
        }
    }

    #[test]
    fn comm_fraction_maps_to_sparq_r() {
        let p = MethodSpec::Sparq.build(32, 1.0 / 16.0);
        // 32/16 = 2 dims; comm per step per head = 2·2 bytes/key.
        assert_eq!(p.comm_bytes_per_step(100), 400);
    }

    #[test]
    fn droppers_marked_dropping() {
        for spec in [MethodSpec::H2o, MethodSpec::SnapKv, MethodSpec::PyramidKv, MethodSpec::StreamingLlm] {
            assert!(spec.build(32, 0.05).is_dropping(), "{}", spec.name());
        }
        assert!(!MethodSpec::pqcache_default().build(32, 0.05).is_dropping());
    }
}
