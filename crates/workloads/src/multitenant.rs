//! Multi-tenant serving traces: the request streams a `ServeEngine` eats.
//!
//! Models the traffic shape the ROADMAP's production north-star implies:
//! requests **arrive over time** (Poisson process — exponential
//! inter-arrival gaps), with a **mixture of prompt lengths** (chat-sized
//! through long-document) drawn from the existing task generators, and
//! **session churn** (decode lengths vary several-fold, so short sessions
//! retire while long ones are mid-flight and admission back-fills the
//! freed slots).
//!
//! `arrival_tick` is abstract time: it fixes the arrival *order* and burst
//! structure. The current drivers (`tests/serve_stress.rs`, the serve
//! bench) feed requests in that order through the engine's bounded queue —
//! back-pressure, not wall-clock, paces admission — while the ticks remain
//! available to a time-accurate replay driver.
//!
//! The generator is purely deterministic in its seed: the same
//! [`TraceConfig`] always yields the same trace, which is what lets the
//! concurrency test battery drive the serve engine with reproducible
//! traffic.

use crate::gen::{aggregation, needle, qa, QuestionPosition, VocabLayout, Workload};
use pqc_tensor::Rng64;

/// Configuration of a multi-tenant trace.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Number of requests to generate.
    pub sessions: usize,
    /// Mean arrivals per tick of the Poisson process (λ).
    pub arrival_rate: f64,
    /// Prompt-length tiers sampled per request (short / medium / long).
    /// Values must satisfy the generators' minima (≥ 64).
    pub prompt_lens: [usize; 3],
    /// Mixture weights over the tiers (need not be normalised).
    pub prompt_mix: [f64; 3],
    /// Decode-step range `[min, max]` sampled uniformly per request —
    /// spreading this range is what produces churn under the engine.
    pub decode_steps: (usize, usize),
    /// Mixture weights over priority tiers (low / normal / high, need not
    /// be normalised). The default is all-normal — the SLO-neutral traffic
    /// every pre-priority battery assumes. Priorities are sampled from an
    /// independent RNG stream, so changing the mix never perturbs prompts,
    /// arrivals, or decode lengths.
    pub priority_mix: [f64; 3],
    /// Vocabulary layout shared with the model.
    pub layout: VocabLayout,
    /// Trace seed.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            sessions: 32,
            arrival_rate: 0.5,
            prompt_lens: [96, 192, 384],
            prompt_mix: [0.5, 0.3, 0.2],
            decode_steps: (4, 24),
            priority_mix: [0.0, 1.0, 0.0],
            layout: VocabLayout::for_vocab(256),
            seed: 0x7EA5,
        }
    }
}

/// One request of a trace.
#[derive(Debug, Clone)]
pub struct TraceRequest {
    /// Sequential request id (also the arrival order).
    pub id: u64,
    /// Arrival time in abstract ticks (non-decreasing across the trace).
    pub arrival_tick: u64,
    /// The prompt and its ground truth (task family varies per request).
    pub workload: Workload,
    /// Greedy decode steps this session runs before completing.
    pub decode_steps: usize,
    /// Priority tier: 0 = low, 1 = normal, 2 = high. Plain data — the
    /// serve layer maps it onto its own `Priority` enum.
    pub priority: u8,
}

/// A generated request stream, ordered by arrival.
#[derive(Debug, Clone)]
pub struct TenantTrace {
    /// Requests in arrival order.
    pub requests: Vec<TraceRequest>,
}

impl TenantTrace {
    /// Total decode steps over the whole trace.
    pub fn total_decode_steps(&self) -> usize {
        self.requests.iter().map(|r| r.decode_steps).sum()
    }

    /// Mean inter-arrival gap in ticks (0 for traces shorter than 2).
    pub fn mean_interarrival(&self) -> f64 {
        if self.requests.len() < 2 {
            return 0.0;
        }
        let span = self.requests.last().expect("non-empty").arrival_tick
            - self.requests[0].arrival_tick;
        span as f64 / (self.requests.len() - 1) as f64
    }
}

/// Generate a Poisson-arrival, mixed-length, churn-heavy request stream.
pub fn multi_tenant_trace(cfg: &TraceConfig) -> TenantTrace {
    assert!(cfg.sessions > 0, "need at least one session");
    assert!(cfg.arrival_rate > 0.0, "arrival rate must be positive");
    assert!(cfg.decode_steps.0 <= cfg.decode_steps.1, "decode range inverted");
    assert!(cfg.prompt_mix.iter().sum::<f64>() > 0.0, "mixture weights all zero");
    assert!(cfg.priority_mix.iter().sum::<f64>() > 0.0, "priority weights all zero");
    let mut rng = Rng64::new(cfg.seed);
    // Priorities draw from their own stream so the prompt/arrival/decode
    // content of a trace is invariant under priority_mix changes — an SLO
    // battery can compare mixes on bit-identical traffic.
    let mut prio_rng = Rng64::new(cfg.seed ^ 0x5710_11E5);
    let prio_mix: Vec<f64> = cfg.priority_mix.to_vec();
    let mix: Vec<f64> = cfg.prompt_mix.to_vec();
    let mut tick = 0u64;
    let mut requests = Vec::with_capacity(cfg.sessions);
    for id in 0..cfg.sessions as u64 {
        // Exponential inter-arrival gap: -ln(1-u)/λ, rounded to whole
        // ticks (gaps under half a tick coalesce into a burst).
        let u = rng.uniform();
        let gap = (-(1.0 - u).ln() / cfg.arrival_rate).round() as u64;
        tick += gap;
        let tier = rng.weighted(&mix);
        let s = cfg.prompt_lens[tier];
        // Rotate task families so one trace exercises needle retrieval,
        // QA-style probing, and aggregation pressure concurrently.
        let wseed = cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(id);
        let workload = match id % 3 {
            0 => needle(s.max(64), 0.25 + 0.5 * rng.uniform(), &cfg.layout, wseed),
            1 => qa(s.max(64), 2, QuestionPosition::End, &cfg.layout, wseed),
            _ => aggregation(s.max(64), 4, &cfg.layout, wseed),
        };
        let (lo, hi) = cfg.decode_steps;
        let decode_steps = lo + rng.below(hi - lo + 1);
        let priority = prio_rng.weighted(&prio_mix) as u8;
        requests.push(TraceRequest { id, arrival_tick: tick, workload, decode_steps, priority });
    }
    TenantTrace { requests }
}

/// Generate an overload storm: a three-phase arrival profile that drives a
/// brownout controller through its whole ladder in one trace. The first
/// quarter of the requests arrive at the base [`TraceConfig::arrival_rate`]
/// (warmup — the controller should sit at `Nominal`), the middle half at
/// `overload`× that rate (the storm — pressure builds, the ladder climbs),
/// and the last quarter at the base rate again (drain — hysteresis unwinds
/// and deferred work re-admits). Everything else — workload rotation,
/// decode churn, the independent priority stream — matches
/// [`multi_tenant_trace`], and the generator is purely deterministic in
/// the seed, so storm batteries replay bit-identically.
pub fn overload_storm_trace(cfg: &TraceConfig, overload: f64) -> TenantTrace {
    assert!(cfg.sessions > 0, "need at least one session");
    assert!(cfg.arrival_rate > 0.0, "arrival rate must be positive");
    assert!(overload >= 1.0, "an overload factor below 1 is not a storm");
    assert!(cfg.decode_steps.0 <= cfg.decode_steps.1, "decode range inverted");
    assert!(cfg.prompt_mix.iter().sum::<f64>() > 0.0, "mixture weights all zero");
    assert!(cfg.priority_mix.iter().sum::<f64>() > 0.0, "priority weights all zero");
    let mut rng = Rng64::new(cfg.seed);
    let mut prio_rng = Rng64::new(cfg.seed ^ 0x5710_11E5);
    let prio_mix: Vec<f64> = cfg.priority_mix.to_vec();
    let mix: Vec<f64> = cfg.prompt_mix.to_vec();
    let warmup_end = cfg.sessions / 4;
    let storm_end = cfg.sessions - cfg.sessions / 4;
    let mut tick = 0u64;
    let mut requests = Vec::with_capacity(cfg.sessions);
    for id in 0..cfg.sessions as u64 {
        let rate = if (id as usize) >= warmup_end && (id as usize) < storm_end {
            cfg.arrival_rate * overload
        } else {
            cfg.arrival_rate
        };
        let u = rng.uniform();
        let gap = (-(1.0 - u).ln() / rate).round() as u64;
        tick += gap;
        let tier = rng.weighted(&mix);
        let s = cfg.prompt_lens[tier];
        let wseed = cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(id);
        let workload = match id % 3 {
            0 => needle(s.max(64), 0.25 + 0.5 * rng.uniform(), &cfg.layout, wseed),
            1 => qa(s.max(64), 2, QuestionPosition::End, &cfg.layout, wseed),
            _ => aggregation(s.max(64), 4, &cfg.layout, wseed),
        };
        let (lo, hi) = cfg.decode_steps;
        let decode_steps = lo + rng.below(hi - lo + 1);
        let priority = prio_rng.weighted(&prio_mix) as u8;
        requests.push(TraceRequest { id, arrival_tick: tick, workload, decode_steps, priority });
    }
    TenantTrace { requests }
}

/// Generate a shared-prefix fleet: `cfg.sessions` requests partitioned into
/// `groups` prompt groups, every request in a group carrying an **identical**
/// prompt (the group's canonical workload). This is the traffic shape that
/// exercises the serve engine's prefix cache — system prompts, few-shot
/// preambles, or fan-out agents all issue the same prefix many times — and
/// the expected full-hit rate is exactly `(sessions - groups) / sessions`
/// under sequential admission.
///
/// Arrival ticks and decode lengths still churn like [`multi_tenant_trace`];
/// only the prompt content is deduplicated. Requests round-robin over the
/// groups so hits interleave with misses instead of trailing them.
pub fn shared_prefix_trace(cfg: &TraceConfig, groups: usize) -> TenantTrace {
    assert!(groups > 0, "need at least one prompt group");
    assert!(groups <= cfg.sessions, "more prompt groups than sessions");
    assert!(cfg.arrival_rate > 0.0, "arrival rate must be positive");
    assert!(cfg.decode_steps.0 <= cfg.decode_steps.1, "decode range inverted");
    assert!(cfg.prompt_mix.iter().sum::<f64>() > 0.0, "mixture weights all zero");
    assert!(cfg.priority_mix.iter().sum::<f64>() > 0.0, "priority weights all zero");
    let mut rng = Rng64::new(cfg.seed ^ 0x5AA5_F00D);
    let mut prio_rng = Rng64::new(cfg.seed ^ 0x5710_11E5);
    let prio_mix: Vec<f64> = cfg.priority_mix.to_vec();
    let mix: Vec<f64> = cfg.prompt_mix.to_vec();
    // One canonical workload per group, rotated over the task families.
    let canon: Vec<Workload> = (0..groups as u64)
        .map(|g| {
            let tier = rng.weighted(&mix);
            let s = cfg.prompt_lens[tier].max(64);
            let wseed = cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(g);
            match g % 3 {
                0 => needle(s, 0.25 + 0.5 * rng.uniform(), &cfg.layout, wseed),
                1 => qa(s, 2, QuestionPosition::End, &cfg.layout, wseed),
                _ => aggregation(s, 4, &cfg.layout, wseed),
            }
        })
        .collect();
    let mut tick = 0u64;
    let mut requests = Vec::with_capacity(cfg.sessions);
    for id in 0..cfg.sessions as u64 {
        let u = rng.uniform();
        let gap = (-(1.0 - u).ln() / cfg.arrival_rate).round() as u64;
        tick += gap;
        let workload = canon[(id as usize) % groups].clone();
        let (lo, hi) = cfg.decode_steps;
        let decode_steps = lo + rng.below(hi - lo + 1);
        let priority = prio_rng.weighted(&prio_mix) as u8;
        requests.push(TraceRequest { id, arrival_tick: tick, workload, decode_steps, priority });
    }
    TenantTrace { requests }
}

/// Pick deterministic chaos victims from a trace: roughly `frac` of the
/// requests (at least one), each paired with a panic step inside its own
/// decode range. The output is plain `(request_id, panic_step)` data — the
/// serve layer turns it into fault-plan entries — chosen by seeded
/// reservoir-free sampling so the same `(trace, seed, frac)` always marks
/// the same victims, which is what lets a chaos battery replay a storm and
/// compare survivors across runs.
pub fn chaos_victims(trace: &TenantTrace, seed: u64, frac: f64) -> Vec<(u64, u64)> {
    assert!((0.0..=1.0).contains(&frac), "victim fraction must be in [0, 1]");
    if trace.requests.is_empty() || frac == 0.0 {
        return Vec::new();
    }
    let want = ((trace.requests.len() as f64 * frac).round() as usize)
        .clamp(1, trace.requests.len());
    let mut rng = Rng64::new(seed ^ 0xC0A5_7A1E);
    // Sample without replacement by shuffling indices with seeded swaps.
    let mut order: Vec<usize> = (0..trace.requests.len()).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.below(i + 1));
    }
    let mut victims: Vec<(u64, u64)> = order[..want]
        .iter()
        .map(|&i| {
            let r = &trace.requests[i];
            // A panic step strictly inside the decode range (step 0 when
            // the request decodes nothing — it then fails at admission
            // depth instead, which the battery tolerates).
            let step = if r.decode_steps > 0 { rng.below(r.decode_steps) as u64 } else { 0 };
            (r.id, step)
        })
        .collect();
    victims.sort_unstable();
    victims
}

/// Pick deterministic store-corruption victims from a trace: roughly
/// `frac` of the requests (at least one), each paired with a decode step
/// at which a bit flip lands and the bit index to flip. The output is
/// plain `(request_id, flip_step, bit)` data — the serve layer turns it
/// into `BitFlip` fault-plan entries. Flip steps skip a request's first
/// decode step so a checkpoint taken at tick 0 always precedes the
/// damage; requests that decode fewer than 2 steps are never marked
/// (nothing lands mid-decode). Same `(trace, seed, frac)` → same victims.
pub fn corruption_victims(trace: &TenantTrace, seed: u64, frac: f64) -> Vec<(u64, u64, u64)> {
    assert!((0.0..=1.0).contains(&frac), "victim fraction must be in [0, 1]");
    let eligible: Vec<&TraceRequest> =
        trace.requests.iter().filter(|r| r.decode_steps >= 2).collect();
    if eligible.is_empty() || frac == 0.0 {
        return Vec::new();
    }
    let want =
        ((trace.requests.len() as f64 * frac).round() as usize).clamp(1, eligible.len());
    let mut rng = Rng64::new(seed ^ 0xB17_F11B5);
    let mut order: Vec<usize> = (0..eligible.len()).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.below(i + 1));
    }
    let mut victims: Vec<(u64, u64, u64)> = order[..want]
        .iter()
        .map(|&i| {
            let r = eligible[i];
            // Strictly after the first step, strictly inside the range.
            let step = 1 + rng.below(r.decode_steps - 1) as u64;
            let bit = rng.below(1 << 20) as u64;
            (r.id, step, bit)
        })
        .collect();
    victims.sort_unstable();
    victims
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TraceConfig {
        TraceConfig { sessions: 200, ..Default::default() }
    }

    #[test]
    fn trace_is_deterministic() {
        let a = multi_tenant_trace(&cfg());
        let b = multi_tenant_trace(&cfg());
        assert_eq!(a.requests.len(), 200);
        for (x, y) in a.requests.iter().zip(b.requests.iter()) {
            assert_eq!(x.arrival_tick, y.arrival_tick);
            assert_eq!(x.workload.tokens, y.workload.tokens);
            assert_eq!(x.decode_steps, y.decode_steps);
        }
        let c = multi_tenant_trace(&TraceConfig { seed: 999, ..cfg() });
        assert_ne!(
            a.requests[0].workload.tokens, c.requests[0].workload.tokens,
            "seed must matter"
        );
    }

    #[test]
    fn arrivals_are_poisson_ish() {
        // With λ = 0.5 the mean gap is 2 ticks; a 200-sample mean should
        // land well within [1, 3].
        let t = multi_tenant_trace(&cfg());
        let ticks: Vec<u64> = t.requests.iter().map(|r| r.arrival_tick).collect();
        assert!(ticks.windows(2).all(|w| w[0] <= w[1]), "arrivals must be ordered");
        let mean = t.mean_interarrival();
        assert!((1.0..3.0).contains(&mean), "mean gap {mean}");
        // A Poisson process has bursts: some consecutive requests share a
        // tick, others are far apart.
        assert!(ticks.windows(2).any(|w| w[0] == w[1]), "no bursts generated");
        assert!(ticks.windows(2).any(|w| w[1] - w[0] >= 4), "no quiet gaps generated");
    }

    #[test]
    fn prompt_mixture_spans_tiers_and_families() {
        let t = multi_tenant_trace(&cfg());
        let mut by_len = [0usize; 3];
        let mut names = std::collections::HashSet::new();
        for r in &t.requests {
            let s = r.workload.tokens.len();
            let tier = [96, 192, 384].iter().position(|&l| l == s).expect("unknown prompt len");
            by_len[tier] += 1;
            names.insert(r.workload.name);
        }
        assert!(by_len.iter().all(|&c| c > 10), "tiers unused: {by_len:?}");
        assert!(by_len[0] > by_len[2], "mixture weights ignored: {by_len:?}");
        assert!(names.len() >= 3, "task families missing: {names:?}");
    }

    #[test]
    fn decode_steps_spread_for_churn() {
        let t = multi_tenant_trace(&cfg());
        let min = t.requests.iter().map(|r| r.decode_steps).min().unwrap();
        let max = t.requests.iter().map(|r| r.decode_steps).max().unwrap();
        assert!(min >= 4 && max <= 24);
        assert!(max >= min + 10, "decode lengths too uniform for churn: {min}..{max}");
        assert_eq!(
            t.total_decode_steps(),
            t.requests.iter().map(|r| r.decode_steps).sum::<usize>()
        );
    }

    #[test]
    fn default_priority_mix_is_all_normal() {
        for r in multi_tenant_trace(&cfg()).requests {
            assert_eq!(r.priority, 1, "default traffic must be SLO-neutral");
        }
        for r in shared_prefix_trace(&cfg(), 4).requests {
            assert_eq!(r.priority, 1);
        }
    }

    #[test]
    fn priority_mix_spans_tiers_without_perturbing_the_trace() {
        let mixed =
            multi_tenant_trace(&TraceConfig { priority_mix: [1.0, 1.0, 1.0], ..cfg() });
        let mut by_tier = [0usize; 3];
        for r in &mixed.requests {
            by_tier[r.priority as usize] += 1;
        }
        assert!(by_tier.iter().all(|&c| c > 20), "tiers unused: {by_tier:?}");
        // Same trace content as the all-normal default: priorities ride an
        // independent RNG stream.
        let plain = multi_tenant_trace(&cfg());
        for (m, p) in mixed.requests.iter().zip(plain.requests.iter()) {
            assert_eq!(m.arrival_tick, p.arrival_tick);
            assert_eq!(m.workload.tokens, p.workload.tokens);
            assert_eq!(m.decode_steps, p.decode_steps);
        }
        // Deterministic in the seed.
        let again =
            multi_tenant_trace(&TraceConfig { priority_mix: [1.0, 1.0, 1.0], ..cfg() });
        for (a, b) in mixed.requests.iter().zip(again.requests.iter()) {
            assert_eq!(a.priority, b.priority);
        }
    }

    #[test]
    #[should_panic(expected = "priority weights all zero")]
    fn zero_priority_mix_rejected() {
        let _ = multi_tenant_trace(&TraceConfig {
            priority_mix: [0.0, 0.0, 0.0],
            ..Default::default()
        });
    }

    #[test]
    #[should_panic(expected = "arrival rate")]
    fn zero_rate_rejected() {
        let _ = multi_tenant_trace(&TraceConfig { arrival_rate: 0.0, ..Default::default() });
    }

    #[test]
    fn shared_prefix_trace_dedups_prompts_per_group() {
        let t = shared_prefix_trace(&cfg(), 4);
        assert_eq!(t.requests.len(), 200);
        // Exactly 4 distinct prompts, assigned round-robin by id.
        let mut distinct = std::collections::HashSet::new();
        for r in &t.requests {
            assert_eq!(
                r.workload.tokens,
                t.requests[(r.id % 4) as usize].workload.tokens,
                "request {} left its prompt group",
                r.id
            );
            distinct.insert(r.workload.tokens.clone());
        }
        assert_eq!(distinct.len(), 4, "groups must carry distinct prompts");
        // Churn survives dedup: decode lengths and arrival gaps still vary.
        let min = t.requests.iter().map(|r| r.decode_steps).min().unwrap();
        let max = t.requests.iter().map(|r| r.decode_steps).max().unwrap();
        assert!(max > min, "decode lengths degenerate");
        assert!(t.requests.last().unwrap().arrival_tick > 0, "arrivals degenerate");
        // Deterministic in the seed.
        let again = shared_prefix_trace(&cfg(), 4);
        for (a, b) in t.requests.iter().zip(again.requests.iter()) {
            assert_eq!(a.workload.tokens, b.workload.tokens);
            assert_eq!(a.decode_steps, b.decode_steps);
        }
    }

    #[test]
    #[should_panic(expected = "more prompt groups than sessions")]
    fn oversized_group_count_rejected() {
        let _ = shared_prefix_trace(&TraceConfig { sessions: 2, ..Default::default() }, 3);
    }

    #[test]
    fn overload_storm_compresses_the_middle_phase() {
        let base = TraceConfig { sessions: 200, arrival_rate: 0.25, ..cfg() };
        let t = overload_storm_trace(&base, 4.0);
        assert_eq!(t.requests.len(), 200);
        // Mean inter-arrival gap per phase: the storm's middle half must
        // arrive markedly denser than the warmup and drain quarters.
        let gap = |lo: usize, hi: usize| {
            let span = t.requests[hi - 1].arrival_tick - t.requests[lo].arrival_tick;
            span as f64 / (hi - 1 - lo) as f64
        };
        let (warm, storm, drain) = (gap(0, 50), gap(50, 150), gap(150, 200));
        assert!(storm * 2.0 < warm, "storm not denser than warmup: {storm} vs {warm}");
        assert!(storm * 2.0 < drain, "storm not denser than drain: {storm} vs {drain}");
        // Deterministic in the seed; a different seed moves the arrivals.
        let again = overload_storm_trace(&base, 4.0);
        for (a, b) in t.requests.iter().zip(again.requests.iter()) {
            assert_eq!(a.arrival_tick, b.arrival_tick);
            assert_eq!(a.workload.tokens, b.workload.tokens);
            assert_eq!(a.decode_steps, b.decode_steps);
            assert_eq!(a.priority, b.priority);
        }
        let other = overload_storm_trace(&TraceConfig { seed: 0xD1FF, ..base.clone() }, 4.0);
        assert_ne!(
            t.requests.iter().map(|r| r.arrival_tick).collect::<Vec<_>>(),
            other.requests.iter().map(|r| r.arrival_tick).collect::<Vec<_>>(),
            "seed must matter"
        );
    }

    #[test]
    #[should_panic(expected = "not a storm")]
    fn sub_unit_overload_factor_rejected() {
        let _ = overload_storm_trace(&TraceConfig::default(), 0.5);
    }

    #[test]
    fn chaos_victims_are_deterministic_and_in_range() {
        let t = multi_tenant_trace(&cfg());
        let a = chaos_victims(&t, 42, 0.1);
        let b = chaos_victims(&t, 42, 0.1);
        assert_eq!(a, b, "same seed must mark the same victims");
        assert_eq!(a.len(), 20, "10% of 200 requests");
        let ids: std::collections::HashSet<u64> = a.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids.len(), a.len(), "victims must be distinct requests");
        for &(id, step) in &a {
            let r = &t.requests[id as usize];
            assert_eq!(r.id, id);
            assert!((step as usize) < r.decode_steps.max(1), "panic step outside decode range");
        }
        let c = chaos_victims(&t, 43, 0.1);
        assert_ne!(a, c, "seed must matter");
        assert!(chaos_victims(&t, 42, 0.0).is_empty());
        assert_eq!(chaos_victims(&t, 42, 1.0).len(), 200);
        // Tiny fractions still mark at least one victim.
        assert_eq!(chaos_victims(&t, 42, 0.0001).len(), 1);
    }

    #[test]
    fn corruption_victims_are_deterministic_and_flip_mid_decode() {
        let t = multi_tenant_trace(&cfg());
        let a = corruption_victims(&t, 42, 0.1);
        let b = corruption_victims(&t, 42, 0.1);
        assert_eq!(a, b, "same seed must mark the same victims");
        assert_eq!(a.len(), 20, "10% of 200 requests");
        let ids: std::collections::HashSet<u64> = a.iter().map(|&(id, _, _)| id).collect();
        assert_eq!(ids.len(), a.len(), "victims must be distinct requests");
        for &(id, step, _bit) in &a {
            let r = &t.requests[id as usize];
            assert_eq!(r.id, id);
            assert!(r.decode_steps >= 2, "victims must decode at least twice");
            assert!(step >= 1, "flip must land after the first decode step");
            assert!((step as usize) < r.decode_steps, "flip step outside decode range");
        }
        let c = corruption_victims(&t, 43, 0.1);
        assert_ne!(a, c, "seed must matter");
        assert!(corruption_victims(&t, 42, 0.0).is_empty());
        // Tiny fractions still mark at least one victim.
        assert_eq!(corruption_victims(&t, 42, 0.0001).len(), 1);
    }
}
