//! # pqc-workloads
//!
//! Synthetic long-context workloads (needle, passkey, KV retrieval, QA with
//! configurable question position, multi-hop CoT, aggregation) standing in
//! for LongBench/InfiniteBench, the paper's method lineup, and the
//! teacher-forced evaluation harness that scores every method against the
//! full-attention reference.

#![warn(missing_docs)]

pub mod gen;
pub mod harness;
pub mod methods;
pub mod multitenant;

pub use gen::{aggregation, cot_chain, kv_retrieval, needle, passkey, qa, QuestionPosition, VocabLayout, Workload};
pub use multitenant::{
    chaos_victims, corruption_victims, multi_tenant_trace, overload_storm_trace,
    shared_prefix_trace, TenantTrace, TraceConfig, TraceRequest,
};
pub use harness::{
    driver_tokens, evaluate_method, evaluate_method_with_prefill, evaluate_workload, format_table, method_average, reference,
    EvalConfig, Reference, TaskResult,
};
pub use methods::MethodSpec;
