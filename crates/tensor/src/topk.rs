//! Top-k selection.
//!
//! Decoding needs "indices of the k largest approximate scores" every step at
//! every layer/head (Algorithm 2, line 14). The workhorse is an **O(n)
//! two-pass threshold selector**: a strided sample estimates the k-th-score
//! threshold, one counting pass verifies it, and one collection pass gathers
//! the (rare) survivors, which a quickselect then trims exactly. When the
//! estimate misses (degenerate/duplicated distributions, NaN floods, large
//! k/n), selection falls back to a full quickselect — still O(n), still
//! exact. A streaming min-heap API serves callers that produce scores
//! incrementally (the fused ADC scan) and want a running k-th-best threshold
//! to prune against. Every path returns *bit-identical* results to the
//! argsort reference: score descending, ties toward the smaller index, NaN
//! ranked lowest.

use std::cmp::Ordering;

/// A `(score, index)` pair packed into one order-preserving `u64` key:
/// descending `u64` order is exactly "score descending (NaN lowest), ties
/// toward the smaller index". Selection, compaction, and the final sort all
/// become single-instruction integer comparisons.
///
/// Layout: `rank(score) << 32 | !index`.
///
/// - `rank` is the classic monotone f32→u32 bijection (flip all bits of
///   negatives, set the sign bit of non-negatives), so `rank(a) < rank(b)`
///   iff `a < b` for all non-NaN floats. `-0.0` is canonicalised to `+0.0`
///   first so the pair compares *equal* in rank (as `partial_cmp` does) and
///   falls through to the index tie-break. Every NaN maps to rank 0, below
///   `-inf` (whose rank is `0x007F_FFFF`), so NaN sorts lowest; no real
///   score maps to 0 (that preimage is itself a NaN pattern).
/// - `!index` makes the *smaller* index win ties under descending key
///   order, for scores and NaNs alike.
#[inline]
fn encode_key(score: f32, index: usize) -> u64 {
    debug_assert!(index <= u32::MAX as usize);
    let rank = if score.is_nan() {
        0u32
    } else {
        let bits = if score == 0.0 { 0u32 } else { score.to_bits() };
        if bits & 0x8000_0000 != 0 {
            !bits
        } else {
            bits | 0x8000_0000
        }
    };
    ((rank as u64) << 32) | (!(index as u32)) as u64
}

/// The index packed into a key.
#[inline]
fn decode_index(key: u64) -> usize {
    !(key as u32) as usize
}

/// The score packed into a key (NaN for the canonical NaN rank; `-0.0`
/// comes back as `+0.0`, which compares equal everywhere it is used).
#[inline]
fn decode_score(key: u64) -> f32 {
    let rank = (key >> 32) as u32;
    if rank == 0 {
        f32::NAN
    } else if rank & 0x8000_0000 != 0 {
        f32::from_bits(rank & 0x7FFF_FFFF)
    } else {
        f32::from_bits(!rank)
    }
}

/// Strided-sample size for the threshold estimate. Big enough that the
/// k/n-quantile estimate is stable, small enough that sampling is free
/// relative to the scan it guards.
const SAMPLE_CAP: usize = 256;

/// Safety factor on the estimated survivor count: the threshold targets
/// ~`OVERSAMPLE × k` strict survivors so that sampling error almost never
/// leaves fewer than `k` (which would force the full-quickselect fallback).
const OVERSAMPLE: usize = 3;

/// Below this input size the bookkeeping of the threshold pass costs more
/// than it saves; go straight to the full quickselect.
const SMALL_N: usize = 1024;

/// Ceiling on the streaming candidate buffer. A larger buffer means fewer,
/// better-amortised compactions on long streams, at 16 bytes per slot.
const MAX_STREAM_CAP: usize = 4096;

/// First compaction trigger (when `2k` is smaller): a threshold published
/// after a few hundred offers lets short streams (decode-step selections
/// over a few thousand tokens) start pruning early; the trigger then
/// doubles up to the ceiling so long streams still amortise.
const FIRST_STREAM_COMPACT: usize = 256;

/// Reusable top-k selector over owned scratch buffers, so steady-state decode
/// loops (one selection per layer/head per step) perform zero heap
/// allocations after warm-up. One instance serves both selection styles:
///
/// - [`TopK::select_into`] — batch selection over a full score slice via the
///   O(n) threshold/quickselect path;
/// - [`TopK::stream_begin`] / [`TopK::stream_offer`] /
///   [`TopK::stream_finish_into`] — streaming selection with a running
///   k-th-best threshold ([`TopK::stream_threshold`]), used by the fused
///   ADC score-and-select scan to prune whole blocks. Accepted offers are
///   *appended* to an unordered candidate buffer that is compacted back to
///   `k` by quickselect whenever it fills — amortised O(1) per offer, with
///   none of the per-accept sift cost a heap would pay.
#[derive(Debug, Default, Clone)]
pub struct TopK {
    /// Candidate / quickselect storage (batch paths and streaming mode):
    /// packed `(score, index)` keys, see [`encode_key`].
    entries: Vec<u64>,
    /// Strided sample of scores for the threshold estimate.
    sample: Vec<f32>,
    /// Streaming-mode `k`, set by [`TopK::stream_begin`].
    stream_k: usize,
    /// Next compaction trigger (escalates from [`FIRST_STREAM_COMPACT`]
    /// towards `max(2k, MAX_STREAM_CAP)` by doubling).
    stream_next: usize,
    /// Running k-th-best score, refreshed at each compaction.
    stream_thr: Option<f32>,
}

impl TopK {
    /// An empty selector; its buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total capacity of the internal scratch buffers (for
    /// allocation-stability tests).
    pub fn scratch_capacity(&self) -> usize {
        self.entries.capacity() + self.sample.capacity()
    }

    /// Indices of the `k` largest scores written into `out` (cleared first),
    /// in descending score order with ties broken toward the smaller index —
    /// identical results to [`top_k_indices`] and to the
    /// [`argsort_desc`]-prefix reference.
    pub fn select_into(&mut self, scores: &[f32], k: usize, out: &mut Vec<usize>) {
        // The batch and streaming modes share the candidate buffer, so a
        // batch call would wipe an in-progress stream's candidates while
        // its stale threshold kept rejecting new offers — a silently wrong
        // result. Catch the interleaving instead.
        debug_assert!(
            self.stream_k == 0,
            "select_into called while a streaming selection is in progress \
             (finish it with stream_finish_into first)"
        );
        out.clear();
        let n = scores.len();
        assert!(n <= u32::MAX as usize, "select_into supports up to 2^32 scores");
        let k = k.min(n);
        if k == 0 {
            return;
        }
        // One up-front reservation to the worst case (the full-quickselect
        // path holds all n entries) keeps the scratch capacity deterministic:
        // it never grows after the first call at a given n, whichever path
        // later inputs take.
        self.entries.clear();
        self.entries.reserve(n);

        // Small inputs and large k/n ratios: the threshold pass can't win.
        if n <= SMALL_N || k.saturating_mul(4) >= n {
            self.select_full(scores, k, out);
            return;
        }

        // Pass 0 (O(SAMPLE_CAP)): strided sample -> estimated threshold at
        // the k/n quantile, biased low so ~OVERSAMPLE*k survive.
        let Some(threshold) = self.estimate_threshold(scores, k) else {
            self.select_full(scores, k, out);
            return;
        };

        // Pass 1: count strict survivors. NaN fails `>` and is excluded,
        // which matches its rank-lowest ordering.
        let count = scores.iter().filter(|&&s| s > threshold).count();
        if count < k {
            // Estimate missed (duplicate-heavy or adversarial distribution):
            // the boundary needs ties at `threshold` itself — resolve them
            // exactly with the full quickselect.
            self.select_full(scores, k, out);
            return;
        }

        // Pass 2: collect the survivors. `count >= k` strict survivors means
        // the true top-k all score strictly above the threshold, so the
        // candidate set provably contains the answer.
        self.entries.extend(
            scores
                .iter()
                .enumerate()
                .filter(|&(_, &s)| s > threshold)
                .map(|(index, &s)| encode_key(s, index)),
        );
        debug_assert_eq!(self.entries.len(), count);
        Self::emit_top_k(&mut self.entries, k, out);
    }

    /// Quantile estimate from a strided sample: the value at (approximately)
    /// rank `OVERSAMPLE * k * sample_len / n` of the sample, descending.
    /// Returns `None` when the sample is all-NaN (nothing to estimate from).
    fn estimate_threshold(&mut self, scores: &[f32], k: usize) -> Option<f32> {
        let n = scores.len();
        self.sample.clear();
        if self.sample.capacity() < SAMPLE_CAP {
            self.sample.reserve(SAMPLE_CAP - self.sample.capacity());
        }
        let stride = n.div_ceil(SAMPLE_CAP).max(1);
        self.sample.extend(scores.iter().step_by(stride).filter(|s| !s.is_nan()));
        if self.sample.is_empty() {
            return None;
        }
        let s_len = self.sample.len();
        // Descending rank targeting OVERSAMPLE*k survivors out of n.
        let rank = (k.saturating_mul(OVERSAMPLE).saturating_mul(s_len) / n).min(s_len - 1);
        // All sample entries are non-NaN: partial_cmp cannot fail.
        self.sample
            .select_nth_unstable_by(rank, |a, b| b.partial_cmp(a).expect("non-NaN sample"));
        Some(self.sample[rank])
    }

    /// Exact O(n) fallback: materialise every `(score, index)` pair and
    /// quickselect. Assumes `self.entries` is cleared with capacity >= n.
    fn select_full(&mut self, scores: &[f32], k: usize, out: &mut Vec<usize>) {
        self.entries
            .extend(scores.iter().enumerate().map(|(index, &score)| encode_key(score, index)));
        Self::emit_top_k(&mut self.entries, k, out);
    }

    /// Shared tail: quickselect the top `k` keys (descending `u64` order is
    /// the full selection order), sort them, emit the indices.
    fn emit_top_k(entries: &mut [u64], k: usize, out: &mut Vec<usize>) {
        debug_assert!(k >= 1 && k <= entries.len());
        if k < entries.len() {
            // `select_nth_unstable_by` is introselect: O(n) average with an
            // O(n log n) worst-case guard. The key order is total, so the
            // partition is exact and the final output is independent of
            // pivot choices.
            entries.select_nth_unstable_by(k - 1, |a, b| b.cmp(a));
        }
        let top = &mut entries[..k];
        top.sort_unstable_by(|a, b| b.cmp(a));
        out.extend(top.iter().map(|&e| decode_index(e)));
    }

    // -----------------------------------------------------------------------
    // Streaming (heap) API — for producers that generate scores block by
    // block and want a running k-th-best threshold to prune against.
    // -----------------------------------------------------------------------

    /// Start a streaming selection of the best `k` offers. Clears any
    /// previous streaming state; the batch API above is unaffected.
    pub fn stream_begin(&mut self, k: usize) {
        self.stream_k = k;
        self.stream_next = (2 * k).max(FIRST_STREAM_COMPACT);
        self.stream_thr = None;
        self.entries.clear();
        // Reserve the worst case (the largest trigger the escalation can
        // reach) up front: how full the buffer actually gets between
        // compactions depends on the data, and reserving the ceiling keeps
        // the scratch capacity deterministic across calls.
        self.entries.reserve((2 * k).max(MAX_STREAM_CAP));
    }

    /// Trigger for the compaction *after* the one that just ran: double,
    /// capped at `max(2k, MAX_STREAM_CAP)`.
    #[inline]
    fn stream_advance_trigger(&mut self) {
        self.stream_next = (self.stream_next * 2).min((2 * self.stream_k).max(MAX_STREAM_CAP));
    }

    /// Running k-th-best score, refreshed at each compaction: `Some(s)` once
    /// at least `k` offers have been compacted, `None` before that. It never
    /// exceeds the *current* k-th-best score, so any offer scoring strictly
    /// below it provably cannot enter the final result set — callers may
    /// prune candidates (or whole candidate blocks) whose score upper bound
    /// is `< threshold` without affecting the selected set. Offers scoring
    /// exactly at the threshold are retained and resolved exactly (total
    /// order, ties toward the smaller index) at finish.
    #[inline]
    pub fn stream_threshold(&self) -> Option<f32> {
        self.stream_thr
    }

    /// Offer one `(score, index)` pair. Rejected outright when strictly
    /// below the running threshold (NaN fails the comparison and is kept as
    /// a candidate; compaction ranks it lowest); otherwise appended — no
    /// per-offer sift, compaction amortises to O(1) per offer.
    #[inline]
    pub fn stream_offer(&mut self, score: f32, index: usize) {
        assert!(index <= u32::MAX as usize, "stream indices must fit in u32");
        if self.stream_k == 0 {
            return;
        }
        if let Some(t) = self.stream_thr {
            if score < t {
                return;
            }
        }
        self.entries.push(encode_key(score, index));
        if self.entries.len() >= self.stream_next {
            self.stream_compact();
            self.stream_advance_trigger();
        }
    }

    /// Offer one contiguous block of scores whose indices are
    /// `base_index..base_index + scores.len()` — the bulk form of
    /// [`TopK::stream_offer`] used by the fused ADC scan. The threshold
    /// reject loop runs tight over the slice (no per-token call), so the
    /// common all-rejected block costs ~one comparison per token. Identical
    /// accept/reject decisions to offering each pair individually.
    pub fn stream_offer_block(&mut self, scores: &[f32], base_index: usize) {
        assert!(
            scores.is_empty() || base_index + scores.len() - 1 <= u32::MAX as usize,
            "stream indices must fit in u32"
        );
        self.stream_offer_run(scores, |i| base_index + i);
    }

    /// Offer one block of scores whose indices are *arbitrary* (given by the
    /// parallel `indices` slice) — the inverted-list form of
    /// [`TopK::stream_offer_block`], used by the IVF-routed scan where a
    /// probed cell's tokens are scattered across the sequence. Same tight
    /// threshold reject loop, same accept/reject decisions as offering each
    /// `(scores[i], indices[i])` pair individually. Indices are `u32`
    /// (matching the packed-key width), so no overflow check is needed.
    pub fn stream_offer_indexed(&mut self, scores: &[f32], indices: &[u32]) {
        debug_assert_eq!(scores.len(), indices.len(), "score/index length mismatch");
        self.stream_offer_run(scores, |i| indices[i] as usize);
    }

    /// Shared body of the bulk offers: the tight threshold reject loop over
    /// a score run, with `index_of` mapping run position to token index
    /// (monomorphised per caller — no indirection on the hot path).
    #[inline]
    fn stream_offer_run(&mut self, scores: &[f32], index_of: impl Fn(usize) -> usize) {
        if self.stream_k == 0 {
            return;
        }
        let mut i = 0usize;
        while i < scores.len() {
            if let Some(t) = self.stream_thr {
                // Tight reject scan: `<` fails for NaN, which therefore
                // falls through to the candidate push like any survivor.
                while i < scores.len() && scores[i] < t {
                    i += 1;
                }
                if i >= scores.len() {
                    break;
                }
            }
            self.entries.push(encode_key(scores[i], index_of(i)));
            if self.entries.len() >= self.stream_next {
                self.stream_compact();
                self.stream_advance_trigger();
            }
            i += 1;
        }
    }

    /// Quickselect the candidate buffer back down to the best `k` and
    /// refresh the running threshold to the (exact) k-th-best score so far.
    fn stream_compact(&mut self) {
        let k = self.stream_k;
        if self.entries.len() > k {
            self.entries.select_nth_unstable_by(k - 1, |a, b| b.cmp(a));
            self.entries.truncate(k);
        }
        if self.entries.len() == k {
            self.stream_thr = Some(decode_score(self.entries[k - 1]));
        }
    }

    /// Finish the streaming selection: write the retained indices into `out`
    /// (cleared first), descending by score with ties toward the smaller
    /// index — the same order every other path produces.
    pub fn stream_finish_into(&mut self, out: &mut Vec<usize>) {
        out.clear();
        if self.stream_k == 0 {
            return;
        }
        self.stream_compact();
        // The key order is total, so the unstable (allocation-free) sort is
        // deterministic.
        self.entries.sort_unstable_by(|a, b| b.cmp(a));
        out.extend(self.entries.iter().map(|&e| decode_index(e)));
        self.stream_k = 0;
        self.stream_thr = None;
    }
}

/// Indices of the `k` largest scores, in descending score order.
///
/// If `k >= scores.len()` every index is returned (still sorted by score).
/// Ties are broken toward the smaller index. Allocating convenience wrapper
/// around [`TopK::select_into`].
pub fn top_k_indices(scores: &[f32], k: usize) -> Vec<usize> {
    let mut out = Vec::new();
    TopK::new().select_into(scores, k, &mut out);
    out
}

/// Indices that would sort `scores` descending (stable for equal scores,
/// NaN ranked lowest) — the reference ordering every selection path above
/// must reproduce exactly.
pub fn argsort_desc(scores: &[f32]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        let (sa, sb) = (scores[a], scores[b]);
        match sb.partial_cmp(&sa) {
            Some(o) => o.then(a.cmp(&b)),
            // At least one NaN: NaN sorts after (below) every number; two
            // NaNs tie toward the smaller index.
            None => match (sa.is_nan(), sb.is_nan()) {
                (true, true) => a.cmp(&b),
                (true, false) => Ordering::Greater, // a ranks lower
                (false, true) => Ordering::Less,
                (false, false) => unreachable!("partial_cmp failed without NaN"),
            },
        }
    });
    idx
}

/// Recall of a predicted top-k set against the exact top-k set:
/// `|pred ∩ exact| / |exact|`. Returns 1.0 when `exact` is empty.
pub fn topk_recall(exact: &[usize], predicted: &[usize]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let set: std::collections::HashSet<usize> = predicted.iter().copied().collect();
    let hit = exact.iter().filter(|i| set.contains(i)).count();
    hit as f64 / exact.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    #[test]
    fn topk_small_known() {
        let s = [0.1f32, 5.0, 3.0, 4.0, -1.0];
        assert_eq!(top_k_indices(&s, 3), vec![1, 3, 2]);
    }

    #[test]
    fn topk_k_zero_and_oversized() {
        let s = [1.0f32, 2.0];
        assert!(top_k_indices(&s, 0).is_empty());
        assert_eq!(top_k_indices(&s, 10), vec![1, 0]);
    }

    #[test]
    fn topk_ties_prefer_smaller_index() {
        let s = [2.0f32, 2.0, 2.0, 1.0];
        assert_eq!(top_k_indices(&s, 2), vec![0, 1]);
    }

    #[test]
    fn topk_matches_argsort_prefix() {
        let mut rng = Rng64::new(77);
        for _ in 0..20 {
            let n = 1 + rng.below(200);
            let scores: Vec<f32> = (0..n).map(|_| rng.normal_f32(0.0, 1.0)).collect();
            let k = rng.below(n + 1);
            let fast = top_k_indices(&scores, k);
            let slow: Vec<usize> = argsort_desc(&scores).into_iter().take(k).collect();
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn topk_threshold_path_matches_argsort_prefix() {
        // Large n, small k: exercises the sample-threshold fast path
        // (n > SMALL_N and 4k < n) against the exact reference.
        let mut rng = Rng64::new(78);
        for trial in 0..6 {
            let n = 4096 + rng.below(8192);
            let scores: Vec<f32> = (0..n).map(|_| rng.normal_f32(0.0, 1.0)).collect();
            for k in [1usize, 16, 128, n / 5] {
                let fast = top_k_indices(&scores, k);
                let slow: Vec<usize> = argsort_desc(&scores).into_iter().take(k).collect();
                assert_eq!(fast, slow, "trial {trial}, n={n}, k={k}");
            }
        }
    }

    #[test]
    fn topk_duplicate_heavy_falls_back_exactly() {
        // Scores drawn from 3 distinct values: the threshold estimate lands
        // on a massive tie plateau, so count < k forces the fallback — which
        // must still match the reference exactly, index ties included.
        let mut rng = Rng64::new(79);
        let vals = [1.0f32, 2.0, 3.0];
        let scores: Vec<f32> = (0..5000).map(|_| vals[rng.below(3)]).collect();
        for k in [1usize, 100, 1700, 4999] {
            let fast = top_k_indices(&scores, k);
            let slow: Vec<usize> = argsort_desc(&scores).into_iter().take(k).collect();
            assert_eq!(fast, slow, "k={k}");
        }
    }

    #[test]
    fn select_into_reuses_buffers() {
        let mut rng = Rng64::new(91);
        let scores: Vec<f32> = (0..4096).map(|_| rng.normal_f32(0.0, 1.0)).collect();
        let mut topk = TopK::new();
        let mut out = Vec::new();
        topk.select_into(&scores, 128, &mut out);
        let caps = (topk.scratch_capacity(), out.capacity());
        for _ in 0..50 {
            topk.select_into(&scores, 128, &mut out);
            assert_eq!(out, top_k_indices(&scores, 128));
        }
        assert_eq!(caps, (topk.scratch_capacity(), out.capacity()));
    }

    #[test]
    fn topk_handles_nan_by_ranking_it_last() {
        let s = [1.0f32, f32::NAN, 2.0];
        assert_eq!(top_k_indices(&s, 2), vec![2, 0]);
        // All-NaN input: indices in ascending order (all tied at rank-lowest).
        let nans = [f32::NAN; 5];
        assert_eq!(top_k_indices(&nans, 3), vec![0, 1, 2]);
    }

    #[test]
    fn topk_nan_flood_large_n() {
        // Mostly-NaN input at threshold-path sizes: the sample filters NaN
        // and the count pass excludes it, so either path stays exact.
        let mut rng = Rng64::new(80);
        let scores: Vec<f32> = (0..8000)
            .map(|i| if i % 3 == 0 { rng.normal_f32(0.0, 1.0) } else { f32::NAN })
            .collect();
        for k in [1usize, 64, 500] {
            let fast = top_k_indices(&scores, k);
            let slow: Vec<usize> = argsort_desc(&scores).into_iter().take(k).collect();
            assert_eq!(fast, slow, "k={k}");
        }
    }

    #[test]
    fn stream_matches_batch() {
        let mut rng = Rng64::new(92);
        for &(n, k) in &[(1usize, 1usize), (50, 7), (4096, 128), (3000, 3000), (100, 0)] {
            let scores: Vec<f32> =
                (0..n).map(|i| if i % 97 == 0 { f32::NAN } else { rng.normal_f32(0.0, 1.0) }).collect();
            let mut topk = TopK::new();
            topk.stream_begin(k.min(n));
            for (i, &s) in scores.iter().enumerate() {
                topk.stream_offer(s, i);
            }
            let mut streamed = Vec::new();
            topk.stream_finish_into(&mut streamed);
            assert_eq!(streamed, top_k_indices(&scores, k), "n={n}, k={k}");
        }
    }

    #[test]
    fn stream_threshold_is_kth_best_and_prunable() {
        // Offer ascending scores with k = 2: the first compaction fires at
        // FIRST_STREAM_COMPACT offers and must publish the exact 2nd-best
        // score seen so far.
        let mut topk = TopK::new();
        topk.stream_begin(2);
        assert_eq!(topk.stream_threshold(), None);
        for i in 0..FIRST_STREAM_COMPACT - 1 {
            topk.stream_offer(i as f32, i);
            assert_eq!(topk.stream_threshold(), None, "no compaction before trigger");
        }
        let last = FIRST_STREAM_COMPACT - 1;
        topk.stream_offer(last as f32, last);
        assert_eq!(topk.stream_threshold(), Some((last - 1) as f32));
        // Offers strictly below the threshold are dropped without growing
        // the candidate buffer.
        let len_before = topk.entries.len();
        topk.stream_offer(0.5, last + 1);
        assert_eq!(topk.entries.len(), len_before);
        // A new global best still enters and wins.
        topk.stream_offer(f32::INFINITY, last + 2);
        let mut out = Vec::new();
        topk.stream_finish_into(&mut out);
        assert_eq!(out, vec![last + 2, last]);
    }

    #[test]
    fn stream_offer_indexed_matches_batch_on_scattered_ids() {
        // Offer a permuted, gap-ridden index set in chunks: the result must
        // equal batch selection over the scattered scores (same total order,
        // NaNs included).
        let mut rng = Rng64::new(93);
        for &(n, k, chunk) in &[(1usize, 1usize, 1usize), (300, 17, 7), (4000, 256, 93)] {
            // Scattered ids: stride-3 with an offset, descending within
            // pairs so the offer order is not ascending.
            let ids: Vec<u32> = (0..n).map(|i| (i * 3 + (i % 2) * 7) as u32).collect();
            let scores: Vec<f32> = (0..n)
                .map(|i| if i % 41 == 0 { f32::NAN } else { rng.normal_f32(0.0, 1.0) })
                .collect();
            // Dense reference vector: position id -> score, others -inf
            // (never selected before any real candidate, and n >= k real
            // candidates always exist here).
            let max_id = *ids.iter().max().unwrap() as usize;
            let mut dense = vec![f32::NEG_INFINITY; max_id + 1];
            for (&id, &s) in ids.iter().zip(scores.iter()) {
                dense[id as usize] = s;
            }
            let mut topk = TopK::new();
            topk.stream_begin(k.min(n));
            for start in (0..n).step_by(chunk) {
                let end = (start + chunk).min(n);
                topk.stream_offer_indexed(&scores[start..end], &ids[start..end]);
            }
            let mut streamed = Vec::new();
            topk.stream_finish_into(&mut streamed);
            assert_eq!(streamed, top_k_indices(&dense, k.min(n)), "n={n}, k={k}");
        }
    }

    #[test]
    fn argsort_desc_stable() {
        let s = [1.0f32, 3.0, 1.0];
        assert_eq!(argsort_desc(&s), vec![1, 0, 2]);
    }

    #[test]
    fn recall_bounds() {
        assert_eq!(topk_recall(&[], &[1, 2]), 1.0);
        assert_eq!(topk_recall(&[1, 2], &[1, 2]), 1.0);
        assert_eq!(topk_recall(&[1, 2], &[3, 4]), 0.0);
        assert_eq!(topk_recall(&[1, 2, 3, 4], &[1, 2]), 0.5);
    }
}
