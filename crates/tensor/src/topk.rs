//! Top-k selection.
//!
//! Decoding needs "indices of the k largest approximate scores" every step at
//! every layer/head (Algorithm 2, line 14). We provide a heap-based partial
//! selection that is O(s log k) — the same asymptotics PyTorch's radix-select
//! achieves in practice for the sizes here — plus a full argsort for tests.

use std::cmp::Ordering;

/// A `(score, index)` pair ordered by score then by index (descending index
/// breaks ties so results are deterministic).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    score: f32,
    index: usize,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Total order: scores first (NaN sorts lowest), larger index loses
        // ties so that earlier tokens win deterministically.
        match self.score.partial_cmp(&other.score) {
            Some(o) => o.then_with(|| other.index.cmp(&self.index)),
            None => {
                if self.score.is_nan() && other.score.is_nan() {
                    other.index.cmp(&self.index)
                } else if self.score.is_nan() {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
        }
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable top-k selector: a hand-rolled binary min-heap over an owned
/// buffer, so steady-state decode loops (one selection per layer/head per
/// step) perform zero heap allocations after warm-up.
#[derive(Debug, Default, Clone)]
pub struct TopK {
    heap: Vec<Entry>,
}

impl TopK {
    /// An empty selector; its buffer grows to `k` on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Capacity of the internal heap buffer (for allocation-stability tests).
    pub fn scratch_capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Indices of the `k` largest scores written into `out` (cleared first),
    /// in descending score order with ties broken toward the smaller index —
    /// identical results to [`top_k_indices`].
    pub fn select_into(&mut self, scores: &[f32], k: usize, out: &mut Vec<usize>) {
        out.clear();
        let k = k.min(scores.len());
        if k == 0 {
            return;
        }
        let heap = &mut self.heap;
        heap.clear();
        heap.reserve(k);
        // Min-heap of the current best k: the smallest retained entry sits at
        // the root and is displaced by any larger incoming entry.
        for (index, &score) in scores.iter().take(k).enumerate() {
            heap.push(Entry { score, index });
            // Sift up.
            let mut i = heap.len() - 1;
            while i > 0 {
                let parent = (i - 1) / 2;
                if heap[i] < heap[parent] {
                    heap.swap(i, parent);
                    i = parent;
                } else {
                    break;
                }
            }
        }
        // Fast-path threshold: a primitive `<` against the root's score
        // rejects almost every element without building an `Entry` or
        // running the total-order comparison. NaN fails `<` and falls to the
        // slow path, which handles it via `Entry`'s total order.
        let mut threshold = heap[0].score;
        for (index, &score) in scores.iter().enumerate().skip(k) {
            if score < threshold {
                continue;
            }
            let e = Entry { score, index };
            if e > heap[0] {
                heap[0] = e;
                // Sift down.
                let mut i = 0;
                loop {
                    let l = 2 * i + 1;
                    let r = l + 1;
                    let mut smallest = i;
                    if l < k && heap[l] < heap[smallest] {
                        smallest = l;
                    }
                    if r < k && heap[r] < heap[smallest] {
                        smallest = r;
                    }
                    if smallest == i {
                        break;
                    }
                    heap.swap(i, smallest);
                    i = smallest;
                }
                threshold = heap[0].score;
            }
        }
        // `Entry`'s ordering is total, so the unstable (allocation-free) sort
        // is deterministic.
        heap.sort_unstable_by(|a, b| b.cmp(a));
        out.extend(heap.iter().map(|e| e.index));
    }
}

/// Indices of the `k` largest scores, in descending score order.
///
/// If `k >= scores.len()` every index is returned (still sorted by score).
/// Ties are broken toward the smaller index. Allocating convenience wrapper
/// around [`TopK::select_into`].
pub fn top_k_indices(scores: &[f32], k: usize) -> Vec<usize> {
    let mut out = Vec::new();
    TopK::new().select_into(scores, k, &mut out);
    out
}

/// Indices that would sort `scores` descending (stable for equal scores).
pub fn argsort_desc(scores: &[f32]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b].partial_cmp(&scores[a]).unwrap_or(Ordering::Equal).then(a.cmp(&b))
    });
    idx
}

/// Recall of a predicted top-k set against the exact top-k set:
/// `|pred ∩ exact| / |exact|`. Returns 1.0 when `exact` is empty.
pub fn topk_recall(exact: &[usize], predicted: &[usize]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let set: std::collections::HashSet<usize> = predicted.iter().copied().collect();
    let hit = exact.iter().filter(|i| set.contains(i)).count();
    hit as f64 / exact.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    #[test]
    fn topk_small_known() {
        let s = [0.1f32, 5.0, 3.0, 4.0, -1.0];
        assert_eq!(top_k_indices(&s, 3), vec![1, 3, 2]);
    }

    #[test]
    fn topk_k_zero_and_oversized() {
        let s = [1.0f32, 2.0];
        assert!(top_k_indices(&s, 0).is_empty());
        assert_eq!(top_k_indices(&s, 10), vec![1, 0]);
    }

    #[test]
    fn topk_ties_prefer_smaller_index() {
        let s = [2.0f32, 2.0, 2.0, 1.0];
        assert_eq!(top_k_indices(&s, 2), vec![0, 1]);
    }

    #[test]
    fn topk_matches_argsort_prefix() {
        let mut rng = Rng64::new(77);
        for _ in 0..20 {
            let n = 1 + rng.below(200);
            let scores: Vec<f32> = (0..n).map(|_| rng.normal_f32(0.0, 1.0)).collect();
            let k = rng.below(n + 1);
            let fast = top_k_indices(&scores, k);
            let slow: Vec<usize> = argsort_desc(&scores).into_iter().take(k).collect();
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn select_into_reuses_buffers() {
        let mut rng = Rng64::new(91);
        let scores: Vec<f32> = (0..4096).map(|_| rng.normal_f32(0.0, 1.0)).collect();
        let mut topk = TopK::new();
        let mut out = Vec::new();
        topk.select_into(&scores, 128, &mut out);
        let caps = (topk.scratch_capacity(), out.capacity());
        for _ in 0..50 {
            topk.select_into(&scores, 128, &mut out);
            assert_eq!(out, top_k_indices(&scores, 128));
        }
        assert_eq!(caps, (topk.scratch_capacity(), out.capacity()));
    }

    #[test]
    fn topk_handles_nan_by_ranking_it_last() {
        let s = [1.0f32, f32::NAN, 2.0];
        assert_eq!(top_k_indices(&s, 2), vec![2, 0]);
    }

    #[test]
    fn argsort_desc_stable() {
        let s = [1.0f32, 3.0, 1.0];
        assert_eq!(argsort_desc(&s), vec![1, 0, 2]);
    }

    #[test]
    fn recall_bounds() {
        assert_eq!(topk_recall(&[], &[1, 2]), 1.0);
        assert_eq!(topk_recall(&[1, 2], &[1, 2]), 1.0);
        assert_eq!(topk_recall(&[1, 2], &[3, 4]), 0.0);
        assert_eq!(topk_recall(&[1, 2, 3, 4], &[1, 2]), 0.5);
    }
}
