//! Batched distance kernels.
//!
//! The K-Means assignment step (and every nearest-centroid lookup in PQ
//! construction, eviction encoding, and IVF routing) is a nearest-neighbour
//! problem: for each row `x` of a data matrix, find the centroid `c`
//! minimising `‖x − c‖²`. Computed naively that is one `squared_l2` per
//! (row, centroid) pair with no reuse. This module uses the blocked
//! expansion
//!
//! ```text
//! ‖x − c‖² = ‖x‖² − 2·x·c + ‖c‖²
//! ```
//!
//! so the dominant term becomes a `(block, k)` GEMM against the transposed
//! centroid matrix — contiguous 8-wide FMA dot products with the centroid
//! rows hot in cache across the whole block — while `‖x‖²` is constant per
//! row (irrelevant to the argmin) and `‖c‖²` is computed once per call.
//!
//! All scratch lives in a reusable [`AssignScratch`] so Lloyd iterations
//! allocate nothing after the first assignment pass.

use crate::matrix::{dot, row_sq_norms_into, squared_l2, Matrix};

/// Rows per GEMM block. 64 rows × up to 256 centroids of ≤128 dims keeps the
/// score block plus one row block comfortably inside L2.
const ASSIGN_BLOCK: usize = 64;

/// Reusable scratch for blocked nearest-centroid assignment.
#[derive(Debug, Default, Clone)]
pub struct AssignScratch {
    /// `‖c‖²` per centroid (recomputed each call: centroids move).
    c_norms: Vec<f32>,
    /// `(d, k)` transposed centroid matrix, row-major.
    ct: Vec<f32>,
    /// `(block, k)` inner-product panel, row-major.
    panel: Vec<f32>,
}

impl AssignScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assign every row of `data` to its nearest centroid (squared-L2),
    /// writing cluster ids into `assignments` and returning the total
    /// inertia (sum of *exact* squared distances to the chosen centroid —
    /// recomputed directly so inertia accounting is independent of the
    /// expansion's rounding).
    ///
    /// Ties break toward the smaller centroid index, matching the naive
    /// scan.
    pub fn assign(&mut self, data: &Matrix, centroids: &Matrix, assignments: &mut [u32]) -> f64 {
        let n = data.rows();
        let k = centroids.rows();
        assert_eq!(data.cols(), centroids.cols(), "dimension mismatch");
        assert_eq!(assignments.len(), n, "assignment buffer length mismatch");
        assert!(k > 0, "no centroids");
        let d = data.cols();

        row_sq_norms_into(centroids, &mut self.c_norms);
        // Blocked transpose of the centroids: `ct[l * k + c] = centroids[c][l]`.
        // The GEMM below then runs ikj rank-1 updates whose inner loop is a
        // contiguous `+= x_l * ct_row` sweep — straight-line vectorisable.
        const TILE: usize = 32;
        self.ct.clear();
        self.ct.resize(d * k, 0.0);
        let cdata = centroids.as_slice();
        for cb in (0..k).step_by(TILE) {
            let c_hi = (cb + TILE).min(k);
            for lb in (0..d).step_by(TILE) {
                let l_hi = (lb + TILE).min(d);
                for c in cb..c_hi {
                    for l in lb..l_hi {
                        self.ct[l * k + c] = cdata[c * d + l];
                    }
                }
            }
        }
        self.panel.clear();
        self.panel.resize(ASSIGN_BLOCK.min(n.max(1)) * k, 0.0);

        let mut inertia = 0.0f64;
        let mut lo = 0;
        while lo < n {
            let hi = (lo + ASSIGN_BLOCK).min(n);
            let block = hi - lo;
            // GEMM panel: panel[bi * k + c] = <x_{lo+bi}, centroid_c>,
            // computed as a sum of rank-1 updates over the transposed
            // centroids (ikj order).
            for bi in 0..block {
                let xrow = data.row(lo + bi);
                let prow = &mut self.panel[bi * k..(bi + 1) * k];
                prow.fill(0.0);
                for (l, &x) in xrow.iter().enumerate() {
                    let ctrow = &self.ct[l * k..(l + 1) * k];
                    for (p, &b) in prow.iter_mut().zip(ctrow.iter()) {
                        *p += x * b;
                    }
                }
            }
            // Argmin of ‖c‖² − 2·x·c per row (‖x‖² is constant in c).
            for bi in 0..block {
                let prow = &self.panel[bi * k..(bi + 1) * k];
                let mut best = 0usize;
                let mut best_score = f32::INFINITY;
                for (c, (&g, &cn)) in prow.iter().zip(self.c_norms.iter()).enumerate() {
                    let score = cn - 2.0 * g;
                    if score < best_score {
                        best_score = score;
                        best = c;
                    }
                }
                assignments[lo + bi] = best as u32;
                inertia += squared_l2(data.row(lo + bi), centroids.row(best)) as f64;
            }
            lo = hi;
        }
        inertia
    }
}

/// One-shot nearest centroid for a single vector against a centroid matrix
/// whose row norms are already cached (`c_norms[c] = ‖centroid_c‖²`).
/// Returns `(index, exact squared distance)`.
#[inline]
pub fn nearest_centroid_cached(key: &[f32], centroids: &Matrix, c_norms: &[f32]) -> (usize, f32) {
    debug_assert_eq!(centroids.rows(), c_norms.len());
    debug_assert_eq!(centroids.cols(), key.len());
    let mut best = 0usize;
    let mut best_score = f32::INFINITY;
    for (c, &cn) in c_norms.iter().enumerate() {
        let score = cn - 2.0 * dot(key, centroids.row(c));
        if score < best_score {
            best_score = score;
            best = c;
        }
    }
    (best, squared_l2(key, centroids.row(best)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    fn naive_assign(data: &Matrix, centroids: &Matrix) -> (Vec<u32>, f64) {
        let mut out = Vec::with_capacity(data.rows());
        let mut inertia = 0.0f64;
        for i in 0..data.rows() {
            let mut best = 0u32;
            let mut best_d = f32::INFINITY;
            for c in 0..centroids.rows() {
                let d = squared_l2(data.row(i), centroids.row(c));
                if d < best_d {
                    best_d = d;
                    best = c as u32;
                }
            }
            out.push(best);
            inertia += best_d as f64;
        }
        (out, inertia)
    }

    #[test]
    fn batched_matches_naive_on_random_data() {
        let mut rng = Rng64::new(11);
        for (n, k, d) in [(1usize, 1usize, 4usize), (7, 3, 8), (130, 16, 16), (300, 64, 32)] {
            let data = Matrix::randn(n, d, 1.0, &mut rng);
            let centroids = Matrix::randn(k, d, 1.0, &mut rng);
            let mut scratch = AssignScratch::new();
            let mut got = vec![0u32; n];
            let inertia = scratch.assign(&data, &centroids, &mut got);
            let (want, want_inertia) = naive_assign(&data, &centroids);
            // The chosen centroid must be at least as close as the naive
            // pick (up to expansion rounding), and inertia must agree.
            for i in 0..n {
                let dg = squared_l2(data.row(i), centroids.row(got[i] as usize));
                let dw = squared_l2(data.row(i), centroids.row(want[i] as usize));
                assert!(dg <= dw + 1e-4, "row {i}: batched {dg} vs naive {dw}");
            }
            assert!(
                (inertia - want_inertia).abs() <= 1e-3 * want_inertia.max(1.0),
                "inertia {inertia} vs {want_inertia}"
            );
        }
    }

    #[test]
    fn scratch_reuse_allocates_once() {
        let mut rng = Rng64::new(12);
        let data = Matrix::randn(200, 16, 1.0, &mut rng);
        let centroids = Matrix::randn(32, 16, 1.0, &mut rng);
        let mut scratch = AssignScratch::new();
        let mut assignments = vec![0u32; 200];
        let _ = scratch.assign(&data, &centroids, &mut assignments);
        let caps = (scratch.c_norms.capacity(), scratch.panel.capacity());
        for _ in 0..10 {
            let _ = scratch.assign(&data, &centroids, &mut assignments);
        }
        assert_eq!(caps, (scratch.c_norms.capacity(), scratch.panel.capacity()));
    }

    #[test]
    fn nearest_centroid_cached_matches_scan() {
        let mut rng = Rng64::new(13);
        let centroids = Matrix::randn(24, 8, 1.0, &mut rng);
        let mut c_norms = Vec::new();
        row_sq_norms_into(&centroids, &mut c_norms);
        for _ in 0..50 {
            let key: Vec<f32> = (0..8).map(|_| rng.normal_f32(0.0, 1.0)).collect();
            let (idx, d) = nearest_centroid_cached(&key, &centroids, &c_norms);
            let mut best_d = f32::INFINITY;
            for c in 0..24 {
                best_d = best_d.min(squared_l2(&key, centroids.row(c)));
            }
            assert!((d - best_d).abs() <= 1e-4, "{d} vs {best_d}");
            assert!((squared_l2(&key, centroids.row(idx)) - d).abs() < 1e-6);
        }
    }
}
