//! # pqc-tensor
//!
//! Minimal dense linear-algebra, RNG, and statistics substrate shared by the
//! PQCache reproduction. No external math dependencies: everything the
//! transformer substrate, Product Quantization, and the benchmark harness
//! need — GEMM, softmax (naive + streaming), top-k selection, least-squares
//! fitting — is implemented here in plain Rust and unit/property tested.

#![warn(missing_docs)]
// Index-based loops are kept where they mirror the mathematical notation
// (row/column/cluster indices); iterator rewrites obscure the kernels.
#![allow(clippy::needless_range_loop, clippy::explicit_counter_loop)]

pub mod batch;
pub mod matrix;
pub mod ops;
pub mod rng;
pub mod stats;
pub mod topk;

pub use batch::{nearest_centroid_cached, AssignScratch};
pub use matrix::{axpy, dot, row_sq_norms_into, squared_l2, Matrix};
pub use ops::{argmax, cosine, l2_norm, log_sum_exp, softmax_inplace, StreamingSoftmax};
pub use rng::Rng64;
pub use topk::{argsort_desc, top_k_indices, topk_recall, TopK};
