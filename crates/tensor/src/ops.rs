//! Row-wise numeric kernels: softmax (naive and streaming), norms, cosine.
//!
//! The streaming ("online") softmax is the same recurrence FlashAttention
//! tiles over; we implement it so the substrate's attention can honestly
//! claim O(s) memory during prefill, and so we can property-test that it is
//! numerically equivalent to the naive two-pass softmax.

use crate::matrix::dot;

/// In-place numerically-stable softmax over a single slice.
pub fn softmax_inplace(xs: &mut [f32]) {
    if xs.is_empty() {
        return;
    }
    let max = xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in xs.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    let inv = 1.0 / sum;
    for v in xs.iter_mut() {
        *v *= inv;
    }
}

/// Streaming softmax-weighted sum accumulator.
///
/// Consumes `(score, value-row)` pairs one tile at a time and maintains the
/// running maximum `m`, running normaliser `l`, and the unnormalised output
/// `acc`, exactly as in FlashAttention's online softmax:
///
/// ```text
/// m' = max(m, s)
/// l' = l * exp(m - m') + exp(s - m')
/// acc' = acc * exp(m - m') + exp(s - m') * v
/// ```
#[derive(Debug, Clone)]
pub struct StreamingSoftmax {
    m: f32,
    l: f32,
    acc: Vec<f32>,
}

impl StreamingSoftmax {
    /// A fresh accumulator producing vectors of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        Self { m: f32::NEG_INFINITY, l: 0.0, acc: vec![0.0; dim] }
    }

    /// Fold in one `(score, value)` pair.
    pub fn push(&mut self, score: f32, value: &[f32]) {
        debug_assert_eq!(value.len(), self.acc.len());
        let m_new = self.m.max(score);
        let scale_old = if self.l > 0.0 { (self.m - m_new).exp() } else { 0.0 };
        let w = (score - m_new).exp();
        self.l = self.l * scale_old + w;
        for (a, v) in self.acc.iter_mut().zip(value.iter()) {
            *a = *a * scale_old + w * v;
        }
        self.m = m_new;
    }

    /// Number of (score, value) pairs absorbed so far is not tracked;
    /// `is_empty` reports whether anything has been pushed.
    pub fn is_empty(&self) -> bool {
        self.l == 0.0
    }

    /// Finalise into the softmax-weighted average of the pushed values.
    pub fn finish(self) -> Vec<f32> {
        if self.l == 0.0 {
            return self.acc; // all zeros: no inputs
        }
        let inv = 1.0 / self.l;
        self.acc.into_iter().map(|a| a * inv).collect()
    }

    /// The log of the normaliser (`m + ln l`), i.e. log-sum-exp of the
    /// scores pushed so far. Useful for attention-mass diagnostics.
    pub fn log_normalizer(&self) -> f32 {
        if self.l == 0.0 {
            f32::NEG_INFINITY
        } else {
            self.m + self.l.ln()
        }
    }
}

/// L2 norm of a slice.
pub fn l2_norm(xs: &[f32]) -> f32 {
    dot(xs, xs).sqrt()
}

/// Cosine similarity; returns 0 when either vector is all-zero.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = l2_norm(a);
    let nb = l2_norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot(a, b) / (na * nb)
}

/// Index of the maximum element (first on ties). Panics on empty input.
pub fn argmax(xs: &[f32]) -> usize {
    assert!(!xs.is_empty(), "argmax of empty slice");
    let mut best = 0;
    let mut bv = xs[0];
    for (i, &v) in xs.iter().enumerate().skip(1) {
        if v > bv {
            bv = v;
            best = i;
        }
    }
    best
}

/// Log-sum-exp of a slice (stable).
pub fn log_sum_exp(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return f32::NEG_INFINITY;
    }
    let m = xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    if m.is_infinite() {
        return m;
    }
    let s: f32 = xs.iter().map(|v| (v - m).exp()).sum();
    m + s.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    #[test]
    fn softmax_sums_to_one() {
        let mut xs = vec![1.0f32, 2.0, 3.0, -5.0];
        softmax_inplace(&mut xs);
        let s: f32 = xs.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        assert!(xs.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn softmax_shift_invariant() {
        let mut a = vec![1.0f32, 2.0, 3.0];
        let mut b = vec![101.0f32, 102.0, 103.0];
        softmax_inplace(&mut a);
        softmax_inplace(&mut b);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_large_magnitudes() {
        let mut xs = vec![1000.0f32, 999.0, -1000.0];
        softmax_inplace(&mut xs);
        assert!(xs.iter().all(|v| v.is_finite()));
        assert!((xs.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn streaming_matches_naive() {
        let mut rng = Rng64::new(10);
        for n in [1usize, 2, 7, 64] {
            let dim = 5;
            let scores: Vec<f32> = (0..n).map(|_| rng.normal_f32(0.0, 3.0)).collect();
            let values: Vec<Vec<f32>> = (0..n)
                .map(|_| (0..dim).map(|_| rng.normal_f32(0.0, 1.0)).collect())
                .collect();

            let mut naive_scores = scores.clone();
            softmax_inplace(&mut naive_scores);
            let mut naive = vec![0.0f32; dim];
            for (w, v) in naive_scores.iter().zip(values.iter()) {
                for (o, x) in naive.iter_mut().zip(v.iter()) {
                    *o += w * x;
                }
            }

            let mut st = StreamingSoftmax::new(dim);
            for (s, v) in scores.iter().zip(values.iter()) {
                st.push(*s, v);
            }
            let got = st.finish();
            for (a, b) in naive.iter().zip(got.iter()) {
                assert!((a - b).abs() < 1e-5, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn streaming_log_normalizer_is_lse() {
        let scores = [0.5f32, -1.0, 2.0, 0.0];
        let mut st = StreamingSoftmax::new(1);
        for &s in &scores {
            st.push(s, &[0.0]);
        }
        assert!((st.log_normalizer() - log_sum_exp(&scores)).abs() < 1e-5);
    }

    #[test]
    fn streaming_empty_finishes_zero() {
        let st = StreamingSoftmax::new(3);
        assert!(st.is_empty());
        assert_eq!(st.finish(), vec![0.0; 3]);
    }

    #[test]
    fn cosine_bounds_and_identity() {
        let a = [1.0f32, 2.0, 3.0];
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-6);
        let b = [-1.0f32, -2.0, -3.0];
        assert!((cosine(&a, &b) + 1.0).abs() < 1e-6);
        assert_eq!(cosine(&a, &[0.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn argmax_first_max_on_tie() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
    }

    #[test]
    fn lse_known_value() {
        let v = log_sum_exp(&[0.0, 0.0]);
        assert!((v - std::f32::consts::LN_2).abs() < 1e-6);
    }
}
