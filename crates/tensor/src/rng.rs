//! Deterministic pseudo-random number generation.
//!
//! The whole reproduction is seeded: model weights, workloads, and K-Means
//! initialisation all draw from [`Rng64`], a xoshiro256** generator seeded via
//! SplitMix64. This keeps every experiment bit-reproducible across runs and
//! platforms, which the test suite relies on.

/// A small, fast, deterministic PRNG (xoshiro256**).
///
/// Not cryptographically secure; statistically solid for simulation use.
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: [u64; 4],
    /// Cached second output of the Box-Muller transform.
    gauss_spare: Option<f64>,
}

#[inline]
fn splitmix64(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng64 {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        let state = [
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
        ];
        Self { state, gauss_spare: None }
    }

    /// Derive an independent child generator; used to give each layer/head
    /// its own stream without coupling draw order across components.
    pub fn fork(&mut self, salt: u64) -> Self {
        let a = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Self::new(a)
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        // Use the top 53 bits for a uniform double.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[lo, hi)`.
    #[inline]
    pub fn uniform_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform() as f32
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "Rng64::below called with n = 0");
        // Multiply-shift bounded sampling (Lemire); bias is negligible for
        // the n used here (≪ 2^32) but we use 128-bit math to be exact-ish.
        let x = self.next_u64();
        ((x as u128 * n as u128) >> 64) as usize
    }

    /// Standard normal via Box-Muller with spare caching.
    pub fn normal(&mut self) -> f64 {
        if let Some(s) = self.gauss_spare.take() {
            return s;
        }
        loop {
            let u = 2.0 * self.uniform() - 1.0;
            let v = 2.0 * self.uniform() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let m = (-2.0 * s.ln() / s).sqrt();
                self.gauss_spare = Some(v * m);
                return u * m;
            }
        }
    }

    /// Normal `f32` with the given mean and standard deviation.
    #[inline]
    pub fn normal_f32(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal() as f32
    }

    /// Fill a slice with i.i.d. normal samples scaled by `std`.
    pub fn fill_normal(&mut self, out: &mut [f32], std: f32) {
        for v in out.iter_mut() {
            *v = self.normal_f32(0.0, std);
        }
    }

    /// A random permutation of `0..n` (Fisher-Yates).
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        self.shuffle(&mut p);
        p
    }

    /// In-place Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `0..n` (partial Fisher-Yates).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct items from {n}");
        let mut p: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below(n - i);
            p.swap(i, j);
        }
        p.truncate(k);
        p
    }

    /// Sample an index from an (unnormalised, non-negative) weight vector.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weighted sample needs positive total weight");
        let mut r = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            r -= w;
            if r <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = Rng64::new(7);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_close_to_half() {
        let mut r = Rng64::new(9);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_bounds() {
        let mut r = Rng64::new(3);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn below_covers_all_values() {
        let mut r = Rng64::new(4);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.below(8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng64::new(11);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn permutation_is_permutation() {
        let mut r = Rng64::new(5);
        let mut p = r.permutation(100);
        p.sort_unstable();
        assert_eq!(p, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = Rng64::new(6);
        let s = r.sample_indices(50, 20);
        assert_eq!(s.len(), 20);
        let mut t = s.clone();
        t.sort_unstable();
        t.dedup();
        assert_eq!(t.len(), 20);
        assert!(t.iter().all(|&i| i < 50));
    }

    #[test]
    fn weighted_prefers_heavy_index() {
        let mut r = Rng64::new(8);
        let w = [0.01, 0.01, 10.0, 0.01];
        let hits = (0..1000).filter(|_| r.weighted(&w) == 2).count();
        assert!(hits > 900, "hits {hits}");
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = Rng64::new(100);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 2);
    }
}
