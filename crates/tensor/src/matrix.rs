//! Row-major dense `f32` matrices.
//!
//! Everything the transformer substrate and PQ need reduces to dense GEMM,
//! transposed GEMM, and row-wise reductions over contiguous `f32` buffers.
//! We keep a single simple type rather than a general tensor: shapes above
//! rank 2 (layers, heads) are modelled as collections of matrices, matching
//! how the paper manipulates per-layer per-head keys.

use crate::rng::Rng64;

/// A dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from an existing buffer. Panics if the length mismatches.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length != rows*cols");
        Self { rows, cols, data }
    }

    /// Build by evaluating `f(r, c)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Gaussian random matrix with standard deviation `std`.
    pub fn randn(rows: usize, cols: usize, std: f32, rng: &mut Rng64) -> Self {
        let mut data = vec![0.0; rows * cols];
        rng.fill_normal(&mut data, std);
        Self { rows, cols, data }
    }

    /// Rows drawn from a mixture of `centers` unit Gaussians with
    /// per-dimension noise `spread` — the clustered shape attention keys
    /// have, and the regime coarse quantizers (IVF) exploit. Each row's
    /// component is chosen uniformly at random, so the cluster layout has
    /// no periodic structure in the row index.
    pub fn clustered(rows: usize, cols: usize, centers: usize, spread: f32, rng: &mut Rng64) -> Self {
        assert!(centers >= 1, "need at least one mixture component");
        let mix = Self::randn(centers, cols, 1.0, rng);
        let assign: Vec<usize> = (0..rows).map(|_| rng.below(centers)).collect();
        Self::from_fn(rows, cols, |i, j| mix.get(assign[i], j) + spread * rng.normal_f32(0.0, 1.0))
    }

    /// Identity matrix.
    pub fn eye(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Row count.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow the underlying buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Copy a row out of another matrix into row `r` of `self`.
    pub fn copy_row_from(&mut self, r: usize, src: &[f32]) {
        assert_eq!(src.len(), self.cols);
        self.row_mut(r).copy_from_slice(src);
    }

    /// A new matrix containing the listed rows (gather).
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &idx) in indices.iter().enumerate() {
            out.copy_row_from(i, self.row(idx));
        }
        out
    }

    /// A new matrix containing rows `lo..hi`.
    pub fn slice_rows(&self, lo: usize, hi: usize) -> Matrix {
        assert!(lo <= hi && hi <= self.rows);
        Matrix::from_vec(hi - lo, self.cols, self.data[lo * self.cols..hi * self.cols].to_vec())
    }

    /// Vertically stack two matrices with equal column counts.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack column mismatch");
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix::from_vec(self.rows + other.rows, self.cols, data)
    }

    /// Matrix transpose — blocked over `TRANSPOSE_TILE`-square tiles so both
    /// the read and write sides stay within a few cache lines per tile.
    pub fn transpose(&self) -> Matrix {
        const TILE: usize = 32;
        let (rows, cols) = (self.rows, self.cols);
        let mut out = Matrix::zeros(cols, rows);
        for rb in (0..rows).step_by(TILE) {
            let r_hi = (rb + TILE).min(rows);
            for cb in (0..cols).step_by(TILE) {
                let c_hi = (cb + TILE).min(cols);
                for r in rb..r_hi {
                    for c in cb..c_hi {
                        out.data[c * rows + r] = self.data[r * cols + c];
                    }
                }
            }
        }
        out
    }

    /// `self @ other` — cache-friendly ikj loop order. The inner loop runs
    /// straight-line over contiguous rows; no per-element branching (a
    /// `skip-if-zero` shortcut would silently turn `0·NaN` / `0·∞` into `0`,
    /// which is a wrong result, not an optimisation).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul inner-dimension mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let arow = &self.data[i * k..(i + 1) * k];
            let orow = &mut out.data[i * n..(i + 1) * n];
            for (p, &a) in arow.iter().enumerate() {
                let brow = &other.data[p * n..(p + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self @ other.T` — avoids materialising the transpose; inner loops are
    /// contiguous dot products, which is the hot shape for Q·Kᵀ.
    pub fn matmul_transb(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_transb_into(other, &mut out);
        out
    }

    /// `self @ other.T` written into a caller-owned output matrix (shape
    /// `(self.rows, other.rows)`), so steady-state callers allocate nothing.
    pub fn matmul_transb_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.cols, "matmul_transb dimension mismatch");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        assert_eq!(out.shape(), (m, n), "matmul_transb output shape mismatch");
        for i in 0..m {
            let arow = &self.data[i * k..(i + 1) * k];
            let orow = &mut out.data[i * n..(i + 1) * n];
            for (j, o) in orow.iter_mut().enumerate() {
                let brow = &other.data[j * k..(j + 1) * k];
                *o = dot(arow, brow);
            }
        }
    }

    /// Elementwise in-place addition.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape());
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Elementwise in-place scale.
    pub fn scale(&mut self, s: f32) {
        for v in self.data.iter_mut() {
            *v *= s;
        }
    }

    /// Apply a function to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in self.data.iter_mut() {
            *v = f(*v);
        }
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Maximum absolute elementwise difference between two matrices.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

/// Dot product of two equal-length slices (manually unrolled 8-wide with
/// independent accumulators so LLVM vectorises it into FMA lanes reliably).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let chunks = a.len() / 8;
    let mut acc = [0.0f32; 8];
    for i in 0..chunks {
        let j = i * 8;
        let av = &a[j..j + 8];
        let bv = &b[j..j + 8];
        for l in 0..8 {
            acc[l] += av[l] * bv[l];
        }
    }
    let mut s = (acc[0] + acc[4]) + (acc[1] + acc[5]) + (acc[2] + acc[6]) + (acc[3] + acc[7]);
    for j in chunks * 8..a.len() {
        s += a[j] * b[j];
    }
    s
}

/// Squared Euclidean distance between two equal-length slices (unrolled
/// 8-wide like [`dot`] — this is the K-Means assignment inner loop).
#[inline]
pub fn squared_l2(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let chunks = a.len() / 8;
    let mut acc = [0.0f32; 8];
    for i in 0..chunks {
        let j = i * 8;
        let av = &a[j..j + 8];
        let bv = &b[j..j + 8];
        for l in 0..8 {
            let d = av[l] - bv[l];
            acc[l] += d * d;
        }
    }
    let mut s = (acc[0] + acc[4]) + (acc[1] + acc[5]) + (acc[2] + acc[6]) + (acc[3] + acc[7]);
    for j in chunks * 8..a.len() {
        let d = a[j] - b[j];
        s += d * d;
    }
    s
}

/// `out += alpha * x` (used by attention weighted sums and K-Means centroid
/// updates), unrolled 8-wide.
#[inline]
pub fn axpy(out: &mut [f32], x: &[f32], alpha: f32) {
    debug_assert_eq!(out.len(), x.len());
    let chunks = out.len() / 8;
    for i in 0..chunks {
        let j = i * 8;
        let ov = &mut out[j..j + 8];
        let xv = &x[j..j + 8];
        for l in 0..8 {
            ov[l] += alpha * xv[l];
        }
    }
    for j in chunks * 8..out.len() {
        out[j] += alpha * x[j];
    }
}

/// Squared L2 norm of every row of `m`, appended into `out` (cleared first).
pub fn row_sq_norms_into(m: &Matrix, out: &mut Vec<f32>) {
    out.clear();
    out.reserve(m.rows());
    for r in 0..m.rows() {
        let row = m.row(r);
        out.push(dot(row, row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_small_known() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = Rng64::new(1);
        let a = Matrix::randn(5, 5, 1.0, &mut rng);
        let c = a.matmul(&Matrix::eye(5));
        assert!(a.max_abs_diff(&c) < 1e-6);
    }

    #[test]
    fn matmul_transb_matches_explicit_transpose() {
        let mut rng = Rng64::new(2);
        let a = Matrix::randn(4, 6, 1.0, &mut rng);
        let b = Matrix::randn(7, 6, 1.0, &mut rng);
        let via_t = a.matmul(&b.transpose());
        let direct = a.matmul_transb(&b);
        assert!(via_t.max_abs_diff(&direct) < 1e-4);
    }

    #[test]
    fn matmul_propagates_nan_and_inf_through_zero() {
        // IEEE: 0·NaN = NaN and 0·∞ = NaN. A skip-if-zero shortcut in the
        // inner loop would silently produce 0 instead.
        let a = m(1, 2, &[0.0, 1.0]);
        let b = m(2, 1, &[f32::NAN, 2.0]);
        assert!(a.matmul(&b).get(0, 0).is_nan());
        let c = m(2, 1, &[f32::INFINITY, 2.0]);
        assert!(a.matmul(&c).get(0, 0).is_nan());
    }

    #[test]
    fn transpose_involution() {
        let mut rng = Rng64::new(3);
        let a = Matrix::randn(3, 8, 1.0, &mut rng);
        assert_eq!(a, a.transpose().transpose());
    }

    #[test]
    fn gather_rows_picks_rows() {
        let a = m(3, 2, &[0.0, 1.0, 10.0, 11.0, 20.0, 21.0]);
        let g = a.gather_rows(&[2, 0]);
        assert_eq!(g.as_slice(), &[20.0, 21.0, 0.0, 1.0]);
    }

    #[test]
    fn slice_and_vstack_roundtrip() {
        let mut rng = Rng64::new(4);
        let a = Matrix::randn(6, 3, 1.0, &mut rng);
        let top = a.slice_rows(0, 2);
        let bottom = a.slice_rows(2, 6);
        assert_eq!(top.vstack(&bottom), a);
    }

    #[test]
    fn dot_matches_naive() {
        let mut rng = Rng64::new(5);
        for len in [0usize, 1, 3, 4, 7, 16, 33] {
            let a: Vec<f32> = (0..len).map(|_| rng.normal_f32(0.0, 1.0)).collect();
            let b: Vec<f32> = (0..len).map(|_| rng.normal_f32(0.0, 1.0)).collect();
            let naive: f32 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
            assert!((dot(&a, &b) - naive).abs() < 1e-4);
        }
    }

    #[test]
    fn squared_l2_zero_for_identical() {
        let a = [1.0f32, -2.0, 3.5];
        assert_eq!(squared_l2(&a, &a), 0.0);
    }

    #[test]
    fn frobenius_known() {
        let a = m(1, 2, &[3.0, 4.0]);
        assert!((a.frobenius() - 5.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "matmul inner-dimension mismatch")]
    fn matmul_shape_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = a.matmul(&b);
    }

    #[test]
    fn axpy_accumulates() {
        let mut out = vec![1.0f32, 1.0];
        axpy(&mut out, &[2.0, 4.0], 0.5);
        assert_eq!(out, vec![2.0, 3.0]);
    }
}
