//! Small statistics toolbox: summary stats, percentiles, least-squares fits.
//!
//! The adaptive K-Means iteration budget (paper §3.3, Eqs. 1–3) fits a linear
//! model to clustering time and a quadratic model to per-layer GPU compute
//! time; `fit_linear` / `fit_quadratic` implement those regressions over
//! profiled samples. The distribution helpers back the Fig. 6 power-law
//! analysis.

/// Arithmetic mean; 0.0 on empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; 0.0 on inputs shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Linear-interpolated percentile, `p` in `[0, 100]`. Panics on empty input.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in percentile input"));
    let rank = (p / 100.0) * (s.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        s[lo]
    } else {
        let t = rank - lo as f64;
        s[lo] * (1.0 - t) + s[hi] * t
    }
}

/// Ordinary least squares fit of `y ≈ a + b·x`. Returns `(a, b)`.
///
/// Degenerate inputs (fewer than 2 points, or zero x-variance) return a flat
/// line through the mean.
pub fn fit_linear(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    if xs.len() < 2 {
        return (mean(ys), 0.0);
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (x, y) in xs.iter().zip(ys.iter()) {
        sxx += (x - mx) * (x - mx);
        sxy += (x - mx) * (y - my);
    }
    if sxx == 0.0 || n == 0.0 {
        return (my, 0.0);
    }
    let b = sxy / sxx;
    (my - b * mx, b)
}

/// Ordinary least squares fit of `y ≈ a + b·x + c·x²`. Returns `(a, b, c)`.
///
/// Solves the 3×3 normal equations via Gaussian elimination with partial
/// pivoting; falls back to the linear fit when the system is singular.
pub fn fit_quadratic(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    assert_eq!(xs.len(), ys.len());
    if xs.len() < 3 {
        let (a, b) = fit_linear(xs, ys);
        return (a, b, 0.0);
    }
    // Accumulate moments S_k = sum x^k for k=0..4 and T_k = sum y x^k.
    let mut s = [0.0f64; 5];
    let mut t = [0.0f64; 3];
    for (&x, &y) in xs.iter().zip(ys.iter()) {
        let mut xp = 1.0;
        for sk in s.iter_mut() {
            *sk += xp;
            xp *= x;
        }
        let mut xp = 1.0;
        for tk in t.iter_mut() {
            *tk += y * xp;
            xp *= x;
        }
    }
    let mut a = [
        [s[0], s[1], s[2], t[0]],
        [s[1], s[2], s[3], t[1]],
        [s[2], s[3], s[4], t[2]],
    ];
    // Gaussian elimination with partial pivoting.
    for col in 0..3 {
        let piv = (col..3)
            .max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).expect("finite"))
            .expect("non-empty");
        if a[piv][col].abs() < 1e-12 {
            let (la, lb) = fit_linear(xs, ys);
            return (la, lb, 0.0);
        }
        a.swap(col, piv);
        for row in 0..3 {
            if row == col {
                continue;
            }
            let f = a[row][col] / a[col][col];
            for k in col..4 {
                a[row][k] -= f * a[col][k];
            }
        }
    }
    (a[0][3] / a[0][0], a[1][3] / a[1][1], a[2][3] / a[2][2])
}

/// Fit the tail exponent of an empirical power law by linear regression of
/// `log(value)` on `log(rank)` over sorted-descending positive values.
/// Returns the slope (≤ 0 for heavy-tailed data) or `None` when fewer than
/// 4 positive values exist.
pub fn powerlaw_slope(values: &[f64]) -> Option<f64> {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| *x > 0.0).collect();
    if v.len() < 4 {
        return None;
    }
    v.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
    let xs: Vec<f64> = (1..=v.len()).map(|r| (r as f64).ln()).collect();
    let ys: Vec<f64> = v.iter().map(|x| x.ln()).collect();
    Some(fit_linear(&xs, &ys).1)
}

/// Gini coefficient of a non-negative distribution — a scale-free measure of
/// concentration used to quantify "a few tokens dominate attention mass".
/// Returns 0 for uniform mass, → 1 as mass concentrates on one element.
pub fn gini(values: &[f64]) -> f64 {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| *x >= 0.0).collect();
    let n = v.len();
    if n < 2 {
        return 0.0;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let total: f64 = v.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    let mut weighted = 0.0;
    for (i, x) in v.iter().enumerate() {
        weighted += (2.0 * (i as f64 + 1.0) - n as f64 - 1.0) * x;
    }
    weighted / (n as f64 * total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_known() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((stddev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_endpoints_and_median() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x).collect();
        let (a, b) = fit_linear(&xs, &ys);
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_degenerate_inputs() {
        assert_eq!(fit_linear(&[], &[]), (0.0, 0.0));
        assert_eq!(fit_linear(&[1.0], &[5.0]), (5.0, 0.0));
        let (a, b) = fit_linear(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]);
        assert_eq!(b, 0.0);
        assert!((a - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quadratic_fit_recovers_exact_parabola() {
        let xs: Vec<f64> = (0..30).map(|i| i as f64 * 0.5).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.5 - 0.7 * x + 0.3 * x * x).collect();
        let (a, b, c) = fit_quadratic(&xs, &ys);
        assert!((a - 1.5).abs() < 1e-6, "a={a}");
        assert!((b + 0.7).abs() < 1e-6, "b={b}");
        assert!((c - 0.3).abs() < 1e-7, "c={c}");
    }

    #[test]
    fn quadratic_fit_falls_back_when_singular() {
        // All x equal -> singular; must not panic.
        let (_, _, c) = fit_quadratic(&[1.0, 1.0, 1.0, 1.0], &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c, 0.0);
    }

    #[test]
    fn powerlaw_slope_negative_for_zipf() {
        let vals: Vec<f64> = (1..=200).map(|r| 1.0 / r as f64).collect();
        let slope = powerlaw_slope(&vals).expect("enough data");
        assert!((slope + 1.0).abs() < 0.05, "slope {slope}");
    }

    #[test]
    fn powerlaw_slope_requires_data() {
        assert!(powerlaw_slope(&[1.0, 2.0]).is_none());
        assert!(powerlaw_slope(&[0.0; 10]).is_none());
    }

    #[test]
    fn gini_uniform_zero_concentrated_high() {
        let uniform = [1.0; 100];
        assert!(gini(&uniform).abs() < 1e-9);
        let mut spike = vec![0.0; 100];
        spike[0] = 1.0;
        assert!(gini(&spike) > 0.95);
    }
}
