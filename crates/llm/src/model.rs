//! The decoder-only transformer: prefill and decode forward passes.
//!
//! The decode pass is parameterised over a [`KvSource`] — the hook through
//! which PQCache (and every baseline policy) injects *which* key-value pairs
//! each layer/kv-head attends to. A [`FullKvSource`] reference implementation
//! reproduces exact full attention; the invariant "selective attention with
//! an everything-budget equals full attention bit-for-bit" is tested against
//! it.

use crate::attention::{attend_selected_into, causal_attention, PrefillPattern, ScoreCapture};
use crate::config::LlmConfig;
use crate::rope::{apply_rope, apply_rope_rows};
use crate::weights::{rms_norm, rms_norm_rows, ModelWeights};
use pqc_tensor::{argmax, Matrix};

/// Per-layer KVCache: one `(s, d_h)` key and value matrix per kv head.
/// Keys are stored post-RoPE, exactly as a production KVCache would.
#[derive(Debug, Clone)]
pub struct LayerKv {
    /// Keys per kv head.
    pub keys: Vec<Matrix>,
    /// Values per kv head.
    pub values: Vec<Matrix>,
}

impl LayerKv {
    /// Token count stored (same across heads).
    pub fn len(&self) -> usize {
        self.keys.first().map_or(0, |k| k.rows())
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Options controlling the prefill pass.
#[derive(Debug, Clone)]
pub struct PrefillOptions {
    /// Attention pattern (dense, or MInference-style Λ-shape for Table 5).
    pub pattern: PrefillPattern,
    /// When `Some(w)`, capture H2O/SnapKV score statistics with observation
    /// window `w`.
    pub capture_window: Option<usize>,
    /// Query rows whose full attention distribution to record (Fig. 6).
    pub sample_rows: Vec<usize>,
    /// Parallelise across kv heads with scoped threads.
    pub parallel: bool,
}

impl Default for PrefillOptions {
    fn default() -> Self {
        Self {
            pattern: PrefillPattern::Dense,
            capture_window: None,
            sample_rows: Vec::new(),
            parallel: true,
        }
    }
}

/// Everything the prefill pass produces.
#[derive(Debug, Clone)]
pub struct PrefillOutput {
    /// Per-layer KVCache.
    pub kv: Vec<LayerKv>,
    /// Final-layer hidden state of the last token.
    pub last_hidden: Vec<f32>,
    /// Classifier logits of the last token.
    pub logits: Vec<f32>,
    /// Captured attention statistics, `[layer][kv_head]`, when requested.
    pub captures: Option<Vec<Vec<ScoreCapture>>>,
}

/// Decode-phase attention data provider.
///
/// The engine calls `publish` with the new token's roped key/value *before*
/// `gather` (Algorithm 2 lines 6-7: the fresh token joins the local window
/// and participates in its own attention).
pub trait KvSource {
    /// Record the new token's key/value for `(layer, kv_head)`.
    fn publish(&mut self, layer: usize, kv_head: usize, key: &[f32], value: &[f32]);

    /// Return the `(keys, values)` the group of queries should attend over.
    /// `queries` has one row per query head in the kv head's GQA group.
    fn gather(&mut self, layer: usize, kv_head: usize, queries: &Matrix) -> (Matrix, Matrix);
}

/// Output of one decode step.
#[derive(Debug, Clone)]
pub struct DecodeOutput {
    /// Classifier logits for the next-token distribution.
    pub logits: Vec<f32>,
    /// Final-layer hidden state.
    pub hidden: Vec<f32>,
}

/// Reusable attention buffers for [`Model::decode_step_with_scratch`].
///
/// One instance per worker thread serves any number of sessions: the serving
/// layer's continuous batching hands the same scratch to every session it
/// steps, so steady-state decode performs no per-session attention
/// allocations. Buffer contents never carry state between calls — every
/// field is overwritten before use, which is what makes scratch sharing
/// bit-transparent.
#[derive(Debug, Default)]
pub struct DecodeScratch {
    /// Per-token attention scores over the gathered keys.
    attn_scores: Vec<f32>,
    /// One head's attention output (`d_h`).
    attn_out: Vec<f32>,
}

impl DecodeScratch {
    /// Empty scratch; buffers grow on first use and then stay warm.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current buffer capacities `(scores, out)` — exposed so tests can
    /// assert steady-state allocation stability across sessions.
    pub fn capacities(&self) -> (usize, usize) {
        (self.attn_scores.capacity(), self.attn_out.capacity())
    }
}

impl DecodeOutput {
    /// Greedy argmax token.
    pub fn greedy(&self) -> u32 {
        argmax(&self.logits) as u32
    }
}

/// The transformer model.
///
/// ```
/// use pqc_llm::{LlmConfig, Model, PrefillOptions};
///
/// let model = Model::new(LlmConfig::tiny());
/// let tokens: Vec<u32> = (0..32).map(|i| i % 100).collect();
/// let out = model.prefill(&tokens, &PrefillOptions::default());
/// assert_eq!(out.kv.len(), model.config().n_layers);
/// assert_eq!(out.kv[0].keys[0].shape(), (32, model.config().head_dim));
/// assert_eq!(out.logits.len(), model.config().vocab_size);
/// ```
#[derive(Debug, Clone)]
pub struct Model {
    cfg: LlmConfig,
    weights: ModelWeights,
}

impl Model {
    /// Instantiate with deterministic weights from `cfg.seed`.
    pub fn new(cfg: LlmConfig) -> Self {
        cfg.validate();
        let weights = ModelWeights::generate(&cfg);
        Self { cfg, weights }
    }

    /// Model configuration.
    pub fn config(&self) -> &LlmConfig {
        &self.cfg
    }

    /// Parameter count.
    pub fn param_count(&self) -> usize {
        self.weights.param_count()
    }

    /// Embed a token sequence into `(s, d)`.
    pub fn embed(&self, tokens: &[u32]) -> Matrix {
        let d = self.cfg.d_model;
        let mut x = Matrix::zeros(tokens.len(), d);
        for (i, &t) in tokens.iter().enumerate() {
            assert!((t as usize) < self.cfg.vocab_size, "token {t} out of vocab");
            x.copy_row_from(i, self.weights.embedding.row(t as usize));
        }
        x
    }

    /// Tied classifier: logits of a hidden state.
    pub fn logits(&self, hidden: &[f32]) -> Vec<f32> {
        let normed = rms_norm(hidden);
        let v = self.cfg.vocab_size;
        let mut out = Vec::with_capacity(v);
        for t in 0..v {
            out.push(pqc_tensor::dot(&normed, self.weights.embedding.row(t)));
        }
        out
    }

    /// Full prefill over `tokens`. Computes every layer's KVCache, the last
    /// token's hidden state and logits, and optional attention captures.
    pub fn prefill(&self, tokens: &[u32], opts: &PrefillOptions) -> PrefillOutput {
        assert!(!tokens.is_empty(), "prefill needs at least one token");
        let cfg = &self.cfg;
        let s = tokens.len();
        let dh = cfg.head_dim;
        let group = cfg.group_size();
        let mut x = self.embed(tokens);
        let mut kv_out: Vec<LayerKv> = Vec::with_capacity(cfg.n_layers);
        let mut captures: Option<Vec<Vec<ScoreCapture>>> =
            opts.capture_window.map(|_| Vec::with_capacity(cfg.n_layers));

        for l in 0..cfg.n_layers {
            let w = &self.weights.layers[l];
            let xn = rms_norm_rows(&x);
            let q_all = xn.matmul(&w.wq); // (s, h*dh)
            let k_all = xn.matmul(&w.wk); // (s, hkv*dh)
            let v_all = xn.matmul(&w.wv);

            // Split per head, apply RoPE.
            let mut q_heads: Vec<Matrix> = (0..cfg.n_heads)
                .map(|h| slice_head(&q_all, h, dh))
                .collect();
            let mut k_heads: Vec<Matrix> = (0..cfg.n_kv_heads)
                .map(|h| slice_head(&k_all, h, dh))
                .collect();
            let v_heads: Vec<Matrix> = (0..cfg.n_kv_heads)
                .map(|h| slice_head(&v_all, h, dh))
                .collect();
            for q in q_heads.iter_mut() {
                apply_rope_rows(q, 0, cfg.rope_theta);
            }
            for k in k_heads.iter_mut() {
                apply_rope_rows(k, 0, cfg.rope_theta);
            }

            // Attention per kv head (each serves `group` query heads).
            // Each group member records into its **own** capture; the
            // per-kv-head capture the policies consume is the ascending-g
            // merge of those. Chunked prefill ([`PrefillJob`]) builds the
            // identical per-(kvh, g) captures row by row and merges them in
            // the same order, which is what makes capture bits independent
            // of chunking.
            let jobs: Vec<usize> = (0..cfg.n_kv_heads).collect();
            let run_head = |kvh: usize| -> (Vec<Matrix>, Option<ScoreCapture>) {
                let mut cap: Option<ScoreCapture> = None;
                let mut outs = Vec::with_capacity(group);
                for g in 0..group {
                    let qh = &q_heads[kvh * group + g];
                    let mut gcap = opts.capture_window.map(|win| {
                        let mut c = ScoreCapture::new(s, win.min(s));
                        c.sample_rows = opts.sample_rows.clone();
                        c
                    });
                    outs.push(causal_attention(
                        qh,
                        &k_heads[kvh],
                        &v_heads[kvh],
                        opts.pattern,
                        gcap.as_mut(),
                    ));
                    if let Some(gc) = gcap {
                        match cap.as_mut() {
                            Some(c) => c.merge(&gc),
                            None => cap = Some(gc),
                        }
                    }
                }
                (outs, cap)
            };

            let results: Vec<(Vec<Matrix>, Option<ScoreCapture>)> = if opts.parallel
                && cfg.n_kv_heads > 1
            {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = jobs
                        .iter()
                        .map(|&kvh| scope.spawn(move || run_head(kvh)))
                        .collect();
                    handles.into_iter().map(|h| h.join().expect("head worker")).collect()
                })
            } else {
                jobs.iter().map(|&kvh| run_head(kvh)).collect()
            };

            // Concatenate head outputs and project.
            let mut concat = Matrix::zeros(s, cfg.n_heads * dh);
            let mut layer_caps = Vec::with_capacity(cfg.n_kv_heads);
            for (kvh, (outs, cap)) in results.into_iter().enumerate() {
                for (g, o) in outs.into_iter().enumerate() {
                    let h = kvh * group + g;
                    write_head(&mut concat, &o, h, dh);
                }
                if let Some(c) = cap {
                    layer_caps.push(c);
                }
            }
            if let Some(caps) = captures.as_mut() {
                caps.push(layer_caps);
            }

            let attn_proj = concat.matmul(&w.wo);
            x.add_assign(&attn_proj);

            // FFN with residual.
            let xn2 = rms_norm_rows(&x);
            let mut inner = xn2.matmul(&w.w1);
            inner.map_inplace(|v| if v > 0.0 { v } else { 0.0 });
            let ffn = inner.matmul(&w.w2);
            x.add_assign(&ffn);

            kv_out.push(LayerKv { keys: k_heads, values: v_heads });
        }

        let last_hidden = x.row(s - 1).to_vec();
        let logits = self.logits(&last_hidden);
        PrefillOutput { kv: kv_out, last_hidden, logits, captures }
    }

    /// One decode step for `token` at absolute position `pos`, attending
    /// through `source`. Allocates fresh attention scratch; hot loops should
    /// use [`Model::decode_step_with_scratch`].
    pub fn decode_step(&self, token: u32, pos: usize, source: &mut dyn KvSource) -> DecodeOutput {
        let mut scratch = DecodeScratch::new();
        self.decode_step_with_scratch(token, pos, source, &mut scratch)
    }

    /// [`Model::decode_step`] with caller-owned attention buffers, the
    /// serving hot path: one [`DecodeScratch`] per worker is reused across
    /// every session stepped on that worker. Bit-identical to
    /// [`Model::decode_step`].
    pub fn decode_step_with_scratch(
        &self,
        token: u32,
        pos: usize,
        source: &mut dyn KvSource,
        scratch: &mut DecodeScratch,
    ) -> DecodeOutput {
        let cfg = &self.cfg;
        let dh = cfg.head_dim;
        let group = cfg.group_size();
        assert!((token as usize) < cfg.vocab_size, "token {token} out of vocab");
        let mut x: Vec<f32> = self.weights.embedding.row(token as usize).to_vec();
        // Attention scratch shared across layers/heads within this step (and
        // across sessions, when the caller reuses `scratch`).
        let DecodeScratch { attn_scores, attn_out } = scratch;

        for l in 0..cfg.n_layers {
            let w = &self.weights.layers[l];
            let xn = Matrix::from_vec(1, cfg.d_model, rms_norm(&x));
            let q_all = xn.matmul(&w.wq);
            let k_all = xn.matmul(&w.wk);
            let v_all = xn.matmul(&w.wv);

            let mut concat = vec![0.0f32; cfg.n_heads * dh];
            for kvh in 0..cfg.n_kv_heads {
                // New token's key/value for this head; key roped at `pos`.
                let mut k_new = k_all.row(0)[kvh * dh..(kvh + 1) * dh].to_vec();
                apply_rope(&mut k_new, pos, cfg.rope_theta);
                let v_new = &v_all.row(0)[kvh * dh..(kvh + 1) * dh];
                source.publish(l, kvh, &k_new, v_new);

                // Group queries, roped at `pos`.
                let mut queries = Matrix::zeros(group, dh);
                for g in 0..group {
                    let h = kvh * group + g;
                    let mut q = q_all.row(0)[h * dh..(h + 1) * dh].to_vec();
                    apply_rope(&mut q, pos, cfg.rope_theta);
                    queries.copy_row_from(g, &q);
                }

                let (keys, values) = source.gather(l, kvh, &queries);
                for g in 0..group {
                    let h = kvh * group + g;
                    attend_selected_into(queries.row(g), &keys, &values, attn_scores, attn_out);
                    concat[h * dh..(h + 1) * dh].copy_from_slice(attn_out);
                }
            }

            let attn_proj = Matrix::from_vec(1, cfg.n_heads * dh, concat).matmul(&w.wo);
            for (a, b) in x.iter_mut().zip(attn_proj.row(0).iter()) {
                *a += b;
            }

            let xn2 = Matrix::from_vec(1, cfg.d_model, rms_norm(&x));
            let mut inner = xn2.matmul(&w.w1);
            inner.map_inplace(|v| if v > 0.0 { v } else { 0.0 });
            let ffn = inner.matmul(&w.w2);
            for (a, b) in x.iter_mut().zip(ffn.row(0).iter()) {
                *a += b;
            }
        }

        let logits = self.logits(&x);
        DecodeOutput { logits, hidden: x }
    }

    /// Begin an incremental (chunked) prefill over `tokens`. The returned
    /// [`PrefillJob`] processes the prompt in caller-budgeted chunks via
    /// [`PrefillJob::advance`]; once done, [`PrefillJob::finish`] yields a
    /// [`PrefillOutput`] **bit-identical** to the capturing monolithic
    /// [`Model::prefill`] (same logits, same KV rows, same capture
    /// statistics) for every chunk schedule — the property the SLO
    /// scheduler's chunked-prefill interleaving rests on.
    ///
    /// Note the qualifier *capturing*: the job always takes the per-row
    /// two-pass attention sweep (the one capture requires), so it matches
    /// `prefill` whenever `opts.capture_window` is set — which the session
    /// layer's prefills always do. A non-capturing monolithic prefill uses
    /// the tiled online kernel and agrees only to float tolerance.
    pub fn begin_prefill(&self, tokens: &[u32], opts: &PrefillOptions) -> PrefillJob<'_> {
        assert!(!tokens.is_empty(), "prefill needs at least one token");
        let cfg = &self.cfg;
        let s = tokens.len();
        let dh = cfg.head_dim;
        let kv = (0..cfg.n_layers)
            .map(|_| LayerKv {
                keys: vec![Matrix::zeros(s, dh); cfg.n_kv_heads],
                values: vec![Matrix::zeros(s, dh); cfg.n_kv_heads],
            })
            .collect();
        let captures = opts.capture_window.map(|win| {
            (0..cfg.n_layers)
                .map(|_| {
                    (0..cfg.n_kv_heads)
                        .map(|_| {
                            (0..cfg.group_size())
                                .map(|_| {
                                    let mut c = ScoreCapture::new(s, win.min(s));
                                    c.sample_rows = opts.sample_rows.clone();
                                    c
                                })
                                .collect()
                        })
                        .collect()
                })
                .collect()
        });
        PrefillJob {
            model: self,
            tokens: tokens.to_vec(),
            opts: opts.clone(),
            pos: 0,
            kv,
            captures,
            last_hidden: Vec::new(),
        }
    }

    /// Reference generation with exact full attention: prefill then `steps`
    /// greedy decode steps. Returns the generated token ids.
    pub fn generate_full(&self, tokens: &[u32], steps: usize) -> Vec<u32> {
        let prefill = self.prefill(tokens, &PrefillOptions::default());
        let mut source = FullKvSource::from_prefill(&prefill);
        let mut out = Vec::with_capacity(steps);
        let mut next = argmax(&prefill.logits) as u32;
        for pos in tokens.len()..tokens.len() + steps {
            out.push(next);
            let dec = self.decode_step(next, pos, &mut source);
            next = dec.greedy();
        }
        out
    }
}

/// An in-flight chunked prefill (see [`Model::begin_prefill`]).
///
/// The transformer's prefill is row-local given the KV of earlier rows:
/// embeddings, RMSNorm, the QKV/output/FFN matmuls, and residual adds all
/// operate per row, RoPE depends only on a row's absolute position, and
/// causal attention for row `i` reads keys `0..=i` — which this job keeps
/// materialised across chunks. Each [`PrefillJob::advance`] therefore
/// reproduces exactly the operations the monolithic capturing prefill would
/// have run for those rows, in the same order, on the same inputs.
#[derive(Debug)]
pub struct PrefillJob<'m> {
    model: &'m Model,
    tokens: Vec<u32>,
    opts: PrefillOptions,
    /// Prompt rows completed so far.
    pos: usize,
    /// Per-layer KV, preallocated at `(s, d_h)` and filled progressively.
    kv: Vec<LayerKv>,
    /// Per-`[layer][kv_head][group_member]` captures, merged at finish.
    captures: Option<Vec<Vec<Vec<ScoreCapture>>>>,
    /// Final-layer hidden state of the last token (set by the final chunk).
    last_hidden: Vec<f32>,
}

impl PrefillJob<'_> {
    /// Total prompt length.
    pub fn total_tokens(&self) -> usize {
        self.tokens.len()
    }

    /// Prompt rows completed so far.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Whether every prompt row has been processed.
    pub fn is_done(&self) -> bool {
        self.pos == self.tokens.len()
    }

    /// Process up to `budget` further prompt rows (at least one) through
    /// every layer. Returns the number of rows processed (0 once done).
    pub fn advance(&mut self, budget: usize) -> usize {
        assert!(budget > 0, "chunk budget must be positive");
        if self.is_done() {
            return 0;
        }
        let cfg = &self.model.cfg;
        let dh = cfg.head_dim;
        let group = cfg.group_size();
        let s = self.tokens.len();
        let c0 = self.pos;
        let c1 = (c0 + budget).min(s);

        let mut x = self.model.embed(&self.tokens[c0..c1]);
        for l in 0..cfg.n_layers {
            let w = &self.model.weights.layers[l];
            let xn = rms_norm_rows(&x);
            let q_all = xn.matmul(&w.wq);
            let k_all = xn.matmul(&w.wk);
            let v_all = xn.matmul(&w.wv);

            let mut q_heads: Vec<Matrix> =
                (0..cfg.n_heads).map(|h| slice_head(&q_all, h, dh)).collect();
            for q in q_heads.iter_mut() {
                apply_rope_rows(q, c0, cfg.rope_theta);
            }
            // Write the chunk's roped K and V rows into the stored KV at
            // their absolute offsets; attention then reads keys `0..=i`
            // from the store, exactly like the monolithic pass.
            for kvh in 0..cfg.n_kv_heads {
                let mut k_chunk = slice_head(&k_all, kvh, dh);
                apply_rope_rows(&mut k_chunk, c0, cfg.rope_theta);
                let v_chunk = slice_head(&v_all, kvh, dh);
                let lk = &mut self.kv[l];
                for r in 0..c1 - c0 {
                    lk.keys[kvh].row_mut(c0 + r).copy_from_slice(k_chunk.row(r));
                    lk.values[kvh].row_mut(c0 + r).copy_from_slice(v_chunk.row(r));
                }
            }

            let layer_kv = &self.kv[l];
            let pattern = self.opts.pattern;
            let run_head = |kvh: usize, caps: Option<&mut Vec<ScoreCapture>>| -> Vec<Matrix> {
                let mut caps = caps;
                let mut outs = Vec::with_capacity(group);
                for g in 0..group {
                    outs.push(crate::attention::causal_attention_rows(
                        &q_heads[kvh * group + g],
                        &layer_kv.keys[kvh],
                        &layer_kv.values[kvh],
                        c0,
                        s,
                        pattern,
                        caps.as_deref_mut().map(|v| &mut v[g]),
                    ));
                }
                outs
            };

            // Per-kv-head capture refs, splittable across worker threads.
            let mut cap_refs: Vec<Option<&mut Vec<ScoreCapture>>> = match self.captures.as_mut()
            {
                Some(c) => c[l].iter_mut().map(Some).collect(),
                None => (0..cfg.n_kv_heads).map(|_| None).collect(),
            };
            let results: Vec<Vec<Matrix>> = if self.opts.parallel && cfg.n_kv_heads > 1 {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = cap_refs
                        .drain(..)
                        .enumerate()
                        .map(|(kvh, caps)| scope.spawn(move || run_head(kvh, caps)))
                        .collect();
                    handles.into_iter().map(|h| h.join().expect("head worker")).collect()
                })
            } else {
                cap_refs.drain(..).enumerate().map(|(kvh, caps)| run_head(kvh, caps)).collect()
            };

            let mut concat = Matrix::zeros(c1 - c0, cfg.n_heads * dh);
            for (kvh, outs) in results.into_iter().enumerate() {
                for (g, o) in outs.into_iter().enumerate() {
                    write_head(&mut concat, &o, kvh * group + g, dh);
                }
            }

            let attn_proj = concat.matmul(&w.wo);
            x.add_assign(&attn_proj);

            let xn2 = rms_norm_rows(&x);
            let mut inner = xn2.matmul(&w.w1);
            inner.map_inplace(|v| if v > 0.0 { v } else { 0.0 });
            let ffn = inner.matmul(&w.w2);
            x.add_assign(&ffn);
        }

        self.pos = c1;
        if c1 == s {
            self.last_hidden = x.row(c1 - c0 - 1).to_vec();
        }
        c1 - c0
    }

    /// Consume the finished job into a [`PrefillOutput`]. Panics unless
    /// every row was processed ([`PrefillJob::is_done`]).
    pub fn finish(self) -> PrefillOutput {
        assert!(self.is_done(), "finish() before the prompt was fully prefilled");
        // Merge each kv head's per-group captures in ascending group order —
        // the same merge the monolithic path performs, so the bits agree.
        let captures = self.captures.map(|layers| {
            layers
                .into_iter()
                .map(|heads| {
                    heads
                        .into_iter()
                        .map(|mut groups| {
                            let mut base = groups.remove(0);
                            for gc in &groups {
                                base.merge(gc);
                            }
                            base
                        })
                        .collect()
                })
                .collect()
        });
        let logits = self.model.logits(&self.last_hidden);
        PrefillOutput { kv: self.kv, last_hidden: self.last_hidden, logits, captures }
    }
}

/// Copy head `h`'s column block out of a fused `(s, n·d_h)` matrix.
pub fn slice_head(fused: &Matrix, h: usize, dh: usize) -> Matrix {
    let s = fused.rows();
    let mut out = Matrix::zeros(s, dh);
    for r in 0..s {
        out.row_mut(r).copy_from_slice(&fused.row(r)[h * dh..(h + 1) * dh]);
    }
    out
}

/// Write a head's `(s, d_h)` output into its column block of `fused`.
fn write_head(fused: &mut Matrix, head_out: &Matrix, h: usize, dh: usize) {
    for r in 0..head_out.rows() {
        fused.row_mut(r)[h * dh..(h + 1) * dh].copy_from_slice(head_out.row(r));
    }
}

/// Reference [`KvSource`]: keeps the entire KVCache and always returns all of
/// it — exact full attention.
#[derive(Debug, Clone)]
pub struct FullKvSource {
    kv: Vec<LayerKv>,
}

impl FullKvSource {
    /// Start from a prefill's KVCache.
    pub fn from_prefill(prefill: &PrefillOutput) -> Self {
        Self { kv: prefill.kv.clone() }
    }

    /// Start from an owned KVCache.
    pub fn new(kv: Vec<LayerKv>) -> Self {
        Self { kv }
    }

    /// Current stored length for a layer.
    pub fn len(&self, layer: usize) -> usize {
        self.kv[layer].len()
    }

    /// True when layer 0 holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.kv.first().is_none_or(|l| l.is_empty())
    }
}

impl KvSource for FullKvSource {
    fn publish(&mut self, layer: usize, kv_head: usize, key: &[f32], value: &[f32]) {
        let lk = &mut self.kv[layer];
        let k1 = Matrix::from_vec(1, key.len(), key.to_vec());
        let v1 = Matrix::from_vec(1, value.len(), value.to_vec());
        lk.keys[kv_head] = lk.keys[kv_head].vstack(&k1);
        lk.values[kv_head] = lk.values[kv_head].vstack(&v1);
    }

    fn gather(&mut self, layer: usize, kv_head: usize, _queries: &Matrix) -> (Matrix, Matrix) {
        (self.kv[layer].keys[kv_head].clone(), self.kv[layer].values[kv_head].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(n: usize, seed: u64) -> Vec<u32> {
        let mut rng = pqc_tensor::Rng64::new(seed);
        (0..n).map(|_| rng.below(200) as u32).collect()
    }

    #[test]
    fn prefill_shapes() {
        let model = Model::new(LlmConfig::tiny());
        let out = model.prefill(&toks(20, 1), &PrefillOptions::default());
        assert_eq!(out.kv.len(), 2);
        assert_eq!(out.kv[0].keys.len(), 2);
        assert_eq!(out.kv[0].keys[0].shape(), (20, 16));
        assert_eq!(out.last_hidden.len(), 64);
        assert_eq!(out.logits.len(), 256);
    }

    #[test]
    fn prefill_deterministic_and_parallel_consistent() {
        let model = Model::new(LlmConfig::tiny());
        let t = toks(24, 2);
        let par = model.prefill(&t, &PrefillOptions { parallel: true, ..Default::default() });
        let ser = model.prefill(&t, &PrefillOptions { parallel: false, ..Default::default() });
        assert_eq!(par.logits, ser.logits);
        assert_eq!(par.kv[1].keys[1], ser.kv[1].keys[1]);
    }

    #[test]
    fn hidden_states_bounded() {
        // RMSNorm + fan-in scaling must keep activations finite and O(1-ish).
        let model = Model::new(LlmConfig::small());
        let out = model.prefill(&toks(40, 3), &PrefillOptions::default());
        let norm: f32 =
            out.last_hidden.iter().map(|v| v * v).sum::<f32>() / out.last_hidden.len() as f32;
        assert!(norm.is_finite() && norm < 100.0, "rms² {norm}");
    }

    #[test]
    fn decode_with_full_source_matches_incremental_prefill() {
        // Prefill over n+1 tokens must equal prefill over n tokens followed
        // by one full-attention decode step of token n.
        let model = Model::new(LlmConfig::tiny());
        let t = toks(16, 4);
        let full = model.prefill(&t, &PrefillOptions::default());

        let prefix = &t[..15];
        let pre = model.prefill(prefix, &PrefillOptions::default());
        let mut src = FullKvSource::from_prefill(&pre);
        let dec = model.decode_step(t[15], 15, &mut src);

        for (a, b) in full.logits.iter().zip(dec.logits.iter()) {
            assert!((a - b).abs() < 2e-2, "{a} vs {b}");
        }
        assert_eq!(argmax(&full.logits), argmax(&dec.logits));
    }

    #[test]
    fn publish_grows_source() {
        let model = Model::new(LlmConfig::tiny());
        let pre = model.prefill(&toks(8, 5), &PrefillOptions::default());
        let mut src = FullKvSource::from_prefill(&pre);
        assert_eq!(src.len(0), 8);
        let _ = model.decode_step(3, 8, &mut src);
        assert_eq!(src.len(0), 9);
        assert_eq!(src.len(1), 9);
    }

    #[test]
    fn decode_with_shared_scratch_is_bit_identical() {
        // One DecodeScratch serving two interleaved "sessions" must produce
        // the same bits as fresh-scratch decode_step — the property the
        // serve engine's per-shard scratch reuse rests on.
        let model = Model::new(LlmConfig::tiny());
        let pre_a = model.prefill(&toks(12, 10), &PrefillOptions::default());
        let pre_b = model.prefill(&toks(12, 11), &PrefillOptions::default());
        let mut fresh_a = FullKvSource::from_prefill(&pre_a);
        let mut fresh_b = FullKvSource::from_prefill(&pre_b);
        let mut shared_a = FullKvSource::from_prefill(&pre_a);
        let mut shared_b = FullKvSource::from_prefill(&pre_b);
        let mut scratch = DecodeScratch::new();
        for (step, pos) in (12..16).enumerate() {
            let t = (step * 31 % 200) as u32;
            let ra = model.decode_step(t, pos, &mut fresh_a);
            let rb = model.decode_step(t, pos, &mut fresh_b);
            // Interleave both sessions through one scratch.
            let sa = model.decode_step_with_scratch(t, pos, &mut shared_a, &mut scratch);
            let sb = model.decode_step_with_scratch(t, pos, &mut shared_b, &mut scratch);
            assert_eq!(ra.logits, sa.logits, "session a step {step}");
            assert_eq!(rb.logits, sb.logits, "session b step {step}");
            assert_eq!(ra.hidden, sa.hidden);
        }
        let (c_scores, c_out) = scratch.capacities();
        assert!(c_scores > 0 && c_out > 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let model = Model::new(LlmConfig::tiny());
        let t = toks(12, 6);
        let a = model.generate_full(&t, 8);
        let b = model.generate_full(&t, 8);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        assert!(a.iter().all(|&x| (x as usize) < 256));
    }

    #[test]
    fn captures_present_when_requested() {
        let model = Model::new(LlmConfig::tiny());
        let out = model.prefill(
            &toks(10, 7),
            &PrefillOptions { capture_window: Some(4), ..Default::default() },
        );
        let caps = out.captures.expect("captures");
        assert_eq!(caps.len(), 2); // layers
        assert_eq!(caps[0].len(), 2); // kv heads
        // Each kv head accumulates mass from `group` query heads × s rows.
        let total: f32 = caps[0][0].accum.iter().sum();
        assert!((total - 2.0 * 10.0).abs() < 1e-3, "total {total}");
    }

    /// Drive a PrefillJob to completion with a fixed chunk budget.
    fn run_chunked(model: &Model, t: &[u32], opts: &PrefillOptions, chunk: usize) -> PrefillOutput {
        let mut job = model.begin_prefill(t, opts);
        assert_eq!(job.total_tokens(), t.len());
        while !job.is_done() {
            let before = job.pos();
            let n = job.advance(chunk);
            assert_eq!(job.pos(), before + n);
            assert!(n > 0);
        }
        assert_eq!(job.advance(chunk), 0, "advance after done is a no-op");
        job.finish()
    }

    fn assert_prefill_bits_equal(a: &PrefillOutput, b: &PrefillOutput, tag: &str) {
        assert_eq!(a.logits, b.logits, "{tag}: logits");
        assert_eq!(a.last_hidden, b.last_hidden, "{tag}: last_hidden");
        for (l, (la, lb)) in a.kv.iter().zip(b.kv.iter()).enumerate() {
            assert_eq!(la.keys, lb.keys, "{tag}: layer {l} keys");
            assert_eq!(la.values, lb.values, "{tag}: layer {l} values");
        }
        let (ca, cb) = (a.captures.as_ref(), b.captures.as_ref());
        assert_eq!(ca.is_some(), cb.is_some(), "{tag}: capture presence");
        if let (Some(ca), Some(cb)) = (ca, cb) {
            for (l, (ha, hb)) in ca.iter().zip(cb.iter()).enumerate() {
                for (h, (xa, xb)) in ha.iter().zip(hb.iter()).enumerate() {
                    assert_eq!(xa.accum, xb.accum, "{tag}: capture accum l{l} h{h}");
                    assert_eq!(xa.window_accum, xb.window_accum, "{tag}: window l{l} h{h}");
                    assert_eq!(xa.samples, xb.samples, "{tag}: samples l{l} h{h}");
                }
            }
        }
    }

    #[test]
    fn chunked_prefill_is_bit_identical_to_monolithic_capture_prefill() {
        // The chunked-prefill contract: for every chunk budget — including 1
        // token, a budget larger than the prompt, and uneven tails — the
        // job's logits, KV rows, and capture statistics equal the capturing
        // monolithic prefill's bit for bit.
        let model = Model::new(LlmConfig::tiny());
        for s in [1usize, 5, 16, 33] {
            let t = toks(s, 0x11 + s as u64);
            let opts = PrefillOptions {
                capture_window: Some(8),
                sample_rows: vec![0, s - 1],
                parallel: false,
                ..Default::default()
            };
            let mono = model.prefill(&t, &opts);
            for chunk in [1usize, 3, 7, s, s + 10] {
                let chunked = run_chunked(&model, &t, &opts, chunk);
                assert_prefill_bits_equal(&mono, &chunked, &format!("s={s} chunk={chunk}"));
            }
        }
    }

    #[test]
    fn chunked_prefill_parallel_matches_serial() {
        // Head-parallel chunk execution must not change bits: each (kv head,
        // group member) owns its outputs and captures.
        let model = Model::new(LlmConfig::tiny());
        let t = toks(24, 0x77);
        let base =
            PrefillOptions { capture_window: Some(6), parallel: false, ..Default::default() };
        let serial = run_chunked(&model, &t, &base, 5);
        let par = run_chunked(
            &model,
            &t,
            &PrefillOptions { parallel: true, ..base.clone() },
            5,
        );
        assert_prefill_bits_equal(&serial, &par, "parallel vs serial chunked");
        // And both still equal the monolithic capture prefill.
        let mono = model.prefill(&t, &base);
        assert_prefill_bits_equal(&mono, &par, "mono vs parallel chunked");
    }

    #[test]
    fn chunked_prefill_sparse_pattern_matches_monolithic() {
        let model = Model::new(LlmConfig::tiny());
        let t = toks(20, 0x88);
        let opts = PrefillOptions {
            pattern: PrefillPattern::AShape { init: 2, local: 4 },
            capture_window: Some(4),
            parallel: false,
            ..Default::default()
        };
        let mono = model.prefill(&t, &opts);
        for chunk in [1usize, 4, 6] {
            let chunked = run_chunked(&model, &t, &opts, chunk);
            assert_prefill_bits_equal(&mono, &chunked, &format!("ashape chunk={chunk}"));
        }
    }

    #[test]
    #[should_panic(expected = "before the prompt was fully prefilled")]
    fn finishing_unfinished_job_panics() {
        let model = Model::new(LlmConfig::tiny());
        let mut job = model.begin_prefill(&toks(10, 1), &PrefillOptions::default());
        job.advance(4);
        let _ = job.finish();
    }

    #[test]
    fn different_prompts_different_logits() {
        let model = Model::new(LlmConfig::tiny());
        let a = model.prefill(&toks(10, 8), &PrefillOptions::default());
        let b = model.prefill(&toks(10, 9), &PrefillOptions::default());
        assert_ne!(argmax(&a.logits), usize::MAX); // trivial use
        assert!(a.logits.iter().zip(b.logits.iter()).any(|(x, y)| (x - y).abs() > 1e-3));
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn oversized_token_panics() {
        let model = Model::new(LlmConfig::tiny());
        let _ = model.embed(&[9999]);
    }
}
