//! Attention kernels: causal prefill attention (O(s) memory, blocked
//! single-pass online softmax), selective decode attention, sparse-pattern
//! masking, and score capture for the policies that learn from prefill
//! attention (H2O, SnapKV).
//!
//! The hot paths are single-sweep: logits for a block of keys are computed
//! into an L1-resident buffer, the running row maximum is updated once per
//! block, the accumulator is rescaled (`acc' = acc·e^{m−m'}`), and the
//! block's weighted values are folded in — the FlashAttention recurrence,
//! with no full-length logits buffer and no second softmax pass. Dense
//! prefill additionally tiles 4 query rows at a time so each key/value row
//! is loaded once per tile instead of once per row. Score capture needs the
//! materialised probability rows, so capturing callers take the legacy
//! two-pass path.

use pqc_tensor::{axpy, dot, softmax_inplace, Matrix};

/// Key-block width of the online-softmax sweeps: logits for one block
/// (`KEY_BLOCK` f32s per row) stay in L1, and the accumulator rescale
/// amortises over the block.
const KEY_BLOCK: usize = 64;

/// Query rows processed together by the dense prefill tile.
const ROW_TILE: usize = 4;

/// Below this sequence length the dense prefill uses the same per-row sweep
/// as masked patterns: tiny tiles don't amortise their bookkeeping, and a
/// shared code path keeps "Λ-shape that covers everything" bit-identical to
/// dense on the short fixtures that assert it.
const TILE_MIN_S: usize = 64;

/// Restricts which keys each prefill query row may attend to.
///
/// `Dense` is ordinary causal attention. `AShape` is the MInference-style
/// pattern used by Table 5: every query sees the first `init` tokens plus a
/// `local`-wide sliding window ("Λ-shape": vertical stripe + diagonal slash).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefillPattern {
    /// Full causal attention.
    Dense,
    /// Sparse Λ-shaped attention.
    AShape {
        /// Number of initial tokens every query attends to.
        init: usize,
        /// Sliding-window width (keys `j` with `i - j < local`).
        local: usize,
    },
}

impl PrefillPattern {
    /// Whether query row `i` may attend to key `j` (`j <= i` presumed).
    #[inline]
    pub fn allows(&self, i: usize, j: usize) -> bool {
        debug_assert!(j <= i);
        match *self {
            PrefillPattern::Dense => true,
            PrefillPattern::AShape { init, local } => j < init || i - j < local,
        }
    }

    /// Number of keys query row `i` attends to.
    pub fn keys_for_row(&self, i: usize) -> usize {
        match *self {
            PrefillPattern::Dense => i + 1,
            PrefillPattern::AShape { init, local } => {
                if i < init + local {
                    i + 1 // init and local regions cover the whole prefix
                } else {
                    init + local
                }
            }
        }
    }
}

/// Accumulates attention-probability statistics during prefill for one
/// (layer, kv-head). Used by H2O (full accumulation), SnapKV/PyramidKV
/// (observation-window accumulation), and the Fig. 6 distribution analysis
/// (sampled raw rows).
#[derive(Debug, Clone)]
pub struct ScoreCapture {
    /// Sum over all query rows of softmax probabilities per key (H2O).
    pub accum: Vec<f32>,
    /// Sum over the last `window` query rows only (SnapKV).
    pub window_accum: Vec<f32>,
    /// Observation-window width.
    pub window: usize,
    /// Query rows whose full probability vector should be kept (Fig. 6).
    pub sample_rows: Vec<usize>,
    /// Captured `(row, probabilities)` pairs.
    pub samples: Vec<(usize, Vec<f32>)>,
    /// Sorted copy of `sample_rows` built by [`Self::prepare`], so per-row
    /// membership checks are a binary search instead of a linear scan —
    /// without mutating the caller-owned field.
    sorted_rows: Vec<usize>,
    /// Reusable dense scatter buffer for sparse (masked) rows.
    scratch: Vec<f32>,
}

impl ScoreCapture {
    /// A capture sized for `s` tokens with a SnapKV window of `window`.
    pub fn new(s: usize, window: usize) -> Self {
        Self {
            accum: vec![0.0; s],
            window_accum: vec![0.0; s],
            window,
            sample_rows: Vec::new(),
            samples: Vec::new(),
            sorted_rows: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Refresh the sorted sample-row index; called once per attention pass.
    fn prepare(&mut self) {
        self.sorted_rows.clear();
        self.sorted_rows.extend_from_slice(&self.sample_rows);
        self.sorted_rows.sort_unstable();
    }

    /// Record a dense probability row (`probs[j]` = mass on key `j`).
    fn record(&mut self, row: usize, probs: &[f32], s_total: usize) {
        for (j, &p) in probs.iter().enumerate() {
            self.accum[j] += p;
        }
        if row + self.window >= s_total {
            for (j, &p) in probs.iter().enumerate() {
                self.window_accum[j] += p;
            }
        }
        if self.sorted_rows.binary_search(&row).is_ok() {
            self.samples.push((row, probs.to_vec()));
        }
    }

    /// Fold `other` into `self`: slot-wise sums of `accum`/`window_accum`
    /// (in ascending key order) and concatenated samples.
    ///
    /// This is how per-(kv-head, query-in-group) captures combine into the
    /// per-kv-head capture the policies consume. Both the monolithic and the
    /// chunked prefill record one capture per group member and merge them in
    /// ascending group order, so the floating-point accumulation order —
    /// and therefore every capture bit — is independent of how prefill was
    /// chunked.
    pub fn merge(&mut self, other: &ScoreCapture) {
        assert_eq!(self.accum.len(), other.accum.len(), "capture length mismatch");
        assert_eq!(self.window, other.window, "capture window mismatch");
        for (a, &b) in self.accum.iter_mut().zip(other.accum.iter()) {
            *a += b;
        }
        for (a, &b) in self.window_accum.iter_mut().zip(other.window_accum.iter()) {
            *a += b;
        }
        self.samples.extend(other.samples.iter().cloned());
    }

    /// Record a sparse row given the allowed key indices and their
    /// probabilities; the dense scatter goes through one reusable scratch
    /// buffer instead of a fresh allocation per masked row.
    fn record_sparse(&mut self, row: usize, allowed: &[usize], probs: &[f32], s_total: usize) {
        debug_assert_eq!(allowed.len(), probs.len());
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.resize(row + 1, 0.0);
        for (&j, &p) in allowed.iter().zip(probs.iter()) {
            scratch[j] = p;
        }
        self.record(row, &scratch, s_total);
        self.scratch = scratch;
    }
}

/// Running online-softmax state for one query row: the FlashAttention
/// `(m, l)` pair; the unnormalised accumulator lives in a caller-owned
/// slice so row tiles can pack several side by side.
#[derive(Debug, Clone, Copy)]
struct OnlineState {
    /// Running maximum logit.
    m: f32,
    /// Running normaliser `Σ e^{w − m}`.
    l: f32,
}

impl OnlineState {
    fn new() -> Self {
        Self { m: f32::NEG_INFINITY, l: 0.0 }
    }

    /// Raise the running max to `m_new`, rescaling `l` and `acc` by
    /// `e^{m − m'}`. No-op when the max doesn't move.
    #[inline]
    fn raise_max(&mut self, m_new: f32, acc: &mut [f32]) {
        if m_new > self.m {
            if self.l > 0.0 {
                let scale_old = (self.m - m_new).exp();
                self.l *= scale_old;
                for a in acc.iter_mut() {
                    *a *= scale_old;
                }
            }
            self.m = m_new;
        }
    }

    /// Normalise `acc` into `out` (`out = acc / l`).
    #[inline]
    fn finish(&self, acc: &[f32], out: &mut [f32]) {
        // NaN `l` is allowed: it propagates NaN to the output, matching the
        // two-pass softmax on NaN inputs.
        debug_assert!(self.l > 0.0 || self.l.is_nan(), "online softmax over empty key set");
        let inv = 1.0 / self.l;
        for (o, a) in out.iter_mut().zip(acc.iter()) {
            *o = a * inv;
        }
    }
}

/// Single-pass blocked sweep of one query over the contiguous key range
/// `[lo, hi)`: per block, compute the logits into `logits_buf`, raise the
/// running max once, then fold the exponentiated weights and values into
/// `acc`. Shared by the masked/short prefill rows and the decode kernel so
/// every contiguous-segment sweep is the same recurrence, bit for bit.
#[allow(clippy::too_many_arguments)]
#[inline]
fn online_sweep_segment(
    query: &[f32],
    k: &Matrix,
    v: &Matrix,
    lo: usize,
    hi: usize,
    scale: f32,
    state: &mut OnlineState,
    acc: &mut [f32],
    logits_buf: &mut Vec<f32>,
) {
    let mut blk_lo = lo;
    while blk_lo < hi {
        let blk_hi = (blk_lo + KEY_BLOCK).min(hi);
        logits_buf.clear();
        let mut blk_max = f32::NEG_INFINITY;
        for j in blk_lo..blk_hi {
            let w = dot(query, k.row(j)) * scale;
            blk_max = blk_max.max(w);
            logits_buf.push(w);
        }
        state.raise_max(blk_max, acc);
        let m = state.m;
        for (off, &w) in logits_buf.iter().enumerate() {
            let e = (w - m).exp();
            state.l += e;
            axpy(acc, v.row(blk_lo + off), e);
        }
        blk_lo = blk_hi;
    }
}

/// The two contiguous key segments query row `i` attends to under
/// `pattern`, merged into one when they touch or overlap (so a Λ-shape that
/// covers the whole prefix sweeps exactly like dense).
#[inline]
fn allowed_segments(pattern: PrefillPattern, i: usize) -> ((usize, usize), (usize, usize)) {
    match pattern {
        PrefillPattern::Dense => ((0, i + 1), (0, 0)),
        PrefillPattern::AShape { init, local } => {
            let seg1_hi = init.min(i + 1);
            let seg2_lo = (i + 1).saturating_sub(local);
            if seg2_lo <= seg1_hi {
                ((0, i + 1), (0, 0))
            } else {
                ((0, seg1_hi), (seg2_lo, i + 1))
            }
        }
    }
}

/// Causal single-(kv)head prefill attention.
///
/// `q` is `(s, d_h)` for one query head; `k`/`v` are `(s, d_h)` for its kv
/// head (already RoPE'd). Memory O(s), time O(s²·d_h) — the FlashAttention
/// trade the paper assumes — via the blocked single-pass online softmax:
/// no per-row logits vector over the whole prefix, no second softmax sweep.
/// Dense prefill of long sequences additionally processes [`ROW_TILE`]
/// query rows per pass so each K/V row is fetched once per tile.
///
/// Capturing callers (H2O/SnapKV statistics, Fig. 6 sampling) need the full
/// probability rows, which the online path never materialises, so they take
/// the legacy two-pass sweep. Consequently capture is **not bit-transparent**:
/// capturing and non-capturing prefills of the same prompt agree to float
/// tolerance, not to the bit (normalise-then-accumulate vs the online
/// accumulate-then-normalise). Comparisons that require bit-identity must
/// hold the capture setting fixed — the session layer does (its prefills
/// always capture).
pub fn causal_attention(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    pattern: PrefillPattern,
    capture: Option<&mut ScoreCapture>,
) -> Matrix {
    let (s, dh) = q.shape();
    assert_eq!(k.shape(), (s, dh));
    assert_eq!(v.shape(), (s, dh));
    let scale = 1.0 / (dh as f32).sqrt();
    let mut out = Matrix::zeros(s, dh);

    if let Some(cap) = capture {
        causal_attention_capture(q, k, v, pattern, cap, &mut out, scale);
        return out;
    }

    if matches!(pattern, PrefillPattern::Dense) && s >= TILE_MIN_S {
        if use_avx2() {
            // SAFETY: AVX2 support verified at runtime by `use_avx2`.
            unsafe { dense_tiled_avx2(q, k, v, &mut out, scale) }
        } else {
            dense_tiled_baseline(q, k, v, &mut out, scale);
        }
        return out;
    }

    if use_avx2() {
        // SAFETY: AVX2 support verified at runtime by `use_avx2`.
        unsafe { rows_online_avx2(q, k, v, pattern, &mut out, scale) }
    } else {
        rows_online_baseline(q, k, v, pattern, &mut out, scale);
    }
    out
}

/// Whether the host supports AVX2 (std caches the CPUID probe). The AVX2
/// kernel clones below run the *same* IEEE operations in the same order as
/// the baseline clones — 8-lane mul/add instead of 4-lane, identical lane
/// split and reduction — so dispatch never changes results, only speed.
#[inline]
fn use_avx2() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Masked patterns and short sequences: per-row blocked online sweep over
/// the allowed contiguous segments.
#[inline(always)]
fn rows_online_body(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    pattern: PrefillPattern,
    out: &mut Matrix,
    scale: f32,
) {
    let (s, dh) = q.shape();
    let mut logits_buf: Vec<f32> = Vec::with_capacity(KEY_BLOCK);
    let mut acc = vec![0.0f32; dh];
    for i in 0..s {
        let qi = q.row(i);
        acc.iter_mut().for_each(|a| *a = 0.0);
        let mut state = OnlineState::new();
        let (seg1, seg2) = allowed_segments(pattern, i);
        for (lo, hi) in [seg1, seg2] {
            online_sweep_segment(qi, k, v, lo, hi, scale, &mut state, &mut acc, &mut logits_buf);
        }
        // A degenerate pattern (AShape with init = local = 0) can leave a
        // row with no allowed keys; match the two-pass path's behaviour
        // (softmax over nothing = zero row) instead of dividing by l = 0.
        // The zero-row shortcut applies only to the genuinely-empty case —
        // NaN inputs leave `m` raised (or `l` NaN) and fall through to
        // `finish`, which propagates NaN exactly like the two-pass path.
        if state.l != 0.0 || state.m != f32::NEG_INFINITY {
            state.finish(&acc, out.row_mut(i));
        }
    }
}

#[inline(never)]
fn rows_online_baseline(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    pattern: PrefillPattern,
    out: &mut Matrix,
    scale: f32,
) {
    rows_online_body(q, k, v, pattern, out, scale);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn rows_online_avx2(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    pattern: PrefillPattern,
    out: &mut Matrix,
    scale: f32,
) {
    rows_online_body(q, k, v, pattern, out, scale);
}

#[cfg(not(target_arch = "x86_64"))]
unsafe fn rows_online_avx2(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    pattern: PrefillPattern,
    out: &mut Matrix,
    scale: f32,
) {
    rows_online_body(q, k, v, pattern, out, scale);
}

/// Dense prefill fast path: tiles of [`ROW_TILE`] query rows sweep the key
/// prefix together. Full [`KEY_BLOCK`]-wide key blocks below the tile are
/// shared (the K and V blocks stay L1-hot across the tile's rows); the
/// causal staircase inside the tile is finished with per-key updates.
///
/// The online-softmax state lives in local arrays and the recurrence is
/// written out straight-line: routing every key through the abstracted
/// per-segment helper measurably (≈2×) slows this loop down.
#[inline(always)]
fn dense_tiled_body(q: &Matrix, k: &Matrix, v: &Matrix, out: &mut Matrix, scale: f32) {
    let (s, dh) = q.shape();
    let mut logits = vec![0.0f32; ROW_TILE * KEY_BLOCK];
    let mut acc = vec![0.0f32; ROW_TILE * dh];
    let mut m = [f32::NEG_INFINITY; ROW_TILE];
    let mut l = [0.0f32; ROW_TILE];

    let mut i0 = 0usize;
    while i0 < s {
        let rows = ROW_TILE.min(s - i0);
        acc.iter_mut().for_each(|a| *a = 0.0);
        m[..rows].fill(f32::NEG_INFINITY);
        l[..rows].fill(0.0);

        // Shared full key blocks: every row of the tile attends to all of
        // `[0, i0)`.
        let mut blk_lo = 0usize;
        while blk_lo < i0 {
            let blk_hi = (blk_lo + KEY_BLOCK).min(i0);
            let blk_len = blk_hi - blk_lo;
            // Logit tile: the key block (≤ KEY_BLOCK·d_h floats) is L1-hot,
            // so each query row sweeps it with its own registers pinned.
            // (A paired-row `dot2` variant was measured here and lost ~30%:
            // the doubled accumulator state spills on SSE register budgets.)
            for r in 0..rows {
                let qr = q.row(i0 + r);
                let wrow = &mut logits[r * KEY_BLOCK..r * KEY_BLOCK + blk_len];
                for (off, j) in (blk_lo..blk_hi).enumerate() {
                    wrow[off] = dot(qr, k.row(j)) * scale;
                }
            }
            // Per-row max raise + in-place exponentiation of the tile.
            for r in 0..rows {
                let w = &mut logits[r * KEY_BLOCK..r * KEY_BLOCK + blk_len];
                let blk_max = w.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
                if blk_max > m[r] {
                    if l[r] > 0.0 {
                        let rescale = (m[r] - blk_max).exp();
                        l[r] *= rescale;
                        for a in acc[r * dh..(r + 1) * dh].iter_mut() {
                            *a *= rescale;
                        }
                    }
                    m[r] = blk_max;
                }
                let mr = m[r];
                let mut lr = l[r];
                for e in w.iter_mut() {
                    *e = (*e - mr).exp();
                    lr += *e;
                }
                l[r] = lr;
            }
            // Value tile: per row, fold the block's weighted values into the
            // row accumulator (the value block stays L1-hot across rows, the
            // accumulator stays register/L1-hot across the block).
            for r in 0..rows {
                let accr = &mut acc[r * dh..(r + 1) * dh];
                let wrow = &logits[r * KEY_BLOCK..r * KEY_BLOCK + blk_len];
                for (off, j) in (blk_lo..blk_hi).enumerate() {
                    axpy(accr, v.row(j), wrow[off]);
                }
            }
            blk_lo = blk_hi;
        }

        // Causal staircase: row i0+r additionally attends keys [i0, i0+r],
        // folded in per key, then the row is normalised out.
        for r in 0..rows {
            let i = i0 + r;
            let qi = q.row(i);
            let accr = &mut acc[r * dh..(r + 1) * dh];
            for j in i0..=i {
                let w = dot(qi, k.row(j)) * scale;
                if w > m[r] {
                    if l[r] > 0.0 {
                        let rescale = (m[r] - w).exp();
                        l[r] *= rescale;
                        for a in accr.iter_mut() {
                            *a *= rescale;
                        }
                    }
                    m[r] = w;
                }
                let e = (w - m[r]).exp();
                l[r] += e;
                axpy(accr, v.row(j), e);
            }
            let inv = 1.0 / l[r];
            for (o, a) in out.row_mut(i).iter_mut().zip(accr.iter()) {
                *o = a * inv;
            }
        }
        i0 += rows;
    }
}

#[inline(never)]
fn dense_tiled_baseline(q: &Matrix, k: &Matrix, v: &Matrix, out: &mut Matrix, scale: f32) {
    dense_tiled_body(q, k, v, out, scale);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dense_tiled_avx2(q: &Matrix, k: &Matrix, v: &Matrix, out: &mut Matrix, scale: f32) {
    dense_tiled_body(q, k, v, out, scale);
}

#[cfg(not(target_arch = "x86_64"))]
unsafe fn dense_tiled_avx2(q: &Matrix, k: &Matrix, v: &Matrix, out: &mut Matrix, scale: f32) {
    dense_tiled_body(q, k, v, out, scale);
}

/// Legacy two-pass sweep for capturing callers: materialises each row's
/// probability vector (which the capture consumes) exactly as before.
#[inline(never)]
fn causal_attention_capture(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    pattern: PrefillPattern,
    cap: &mut ScoreCapture,
    out: &mut Matrix,
    scale: f32,
) {
    let s = q.rows();
    let mut scores: Vec<f32> = Vec::with_capacity(s);
    let mut allowed: Vec<usize> = Vec::with_capacity(s);
    cap.prepare();

    for i in 0..s {
        scores.clear();
        allowed.clear();
        let qi = q.row(i);
        for j in 0..=i {
            if pattern.allows(i, j) {
                allowed.push(j);
                scores.push(dot(qi, k.row(j)) * scale);
            }
        }
        softmax_inplace(&mut scores);
        let orow = out.row_mut(i);
        for (&j, &p) in allowed.iter().zip(scores.iter()) {
            axpy(orow, v.row(j), p);
        }
        if allowed.len() == i + 1 {
            cap.record(i, &scores, s);
        } else {
            cap.record_sparse(i, &allowed, &scores, s);
        }
    }
}

/// Causal prefill attention for one **chunk** of query rows against the
/// full key prefix: query row `r` of `q` sits at absolute position
/// `row_offset + r` and attends keys `0..=row_offset + r` of `k`/`v`
/// (whose rows `0..row_offset + q.rows()` must already be populated).
///
/// This is the chunked-prefill kernel. It runs the *same* per-row two-pass
/// sweep as the capturing monolithic path (`causal_attention_capture`) —
/// per-row scaled dots over the allowed keys, `softmax`, per-key `axpy` —
/// so a prefill split into chunks at any boundaries produces bit-identical
/// outputs and bit-identical capture statistics to the unchunked capturing
/// prefill: every per-row operation touches only that row, and the capture
/// accumulates rows in ascending order regardless of chunk boundaries.
/// `s_total` is the full prompt length (it anchors the capture's
/// observation window, which must not depend on chunking).
pub fn causal_attention_rows(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    row_offset: usize,
    s_total: usize,
    pattern: PrefillPattern,
    capture: Option<&mut ScoreCapture>,
) -> Matrix {
    let (rows, dh) = q.shape();
    assert_eq!(k.cols(), dh);
    assert_eq!(k.shape(), v.shape());
    assert!(row_offset + rows <= s_total, "chunk extends past the prompt");
    assert!(k.rows() >= row_offset + rows, "key prefix shorter than the chunk needs");
    let scale = 1.0 / (dh as f32).sqrt();
    let mut out = Matrix::zeros(rows, dh);
    let mut scores: Vec<f32> = Vec::with_capacity(row_offset + rows);
    let mut allowed: Vec<usize> = Vec::with_capacity(row_offset + rows);
    let mut cap = capture;
    if let Some(c) = cap.as_deref_mut() {
        c.prepare();
    }

    for r in 0..rows {
        let i = row_offset + r;
        scores.clear();
        allowed.clear();
        let qi = q.row(r);
        for j in 0..=i {
            if pattern.allows(i, j) {
                allowed.push(j);
                scores.push(dot(qi, k.row(j)) * scale);
            }
        }
        softmax_inplace(&mut scores);
        let orow = out.row_mut(r);
        for (&j, &p) in allowed.iter().zip(scores.iter()) {
            axpy(orow, v.row(j), p);
        }
        if let Some(c) = cap.as_deref_mut() {
            if allowed.len() == i + 1 {
                c.record(i, &scores, s_total);
            } else {
                c.record_sparse(i, &allowed, &scores, s_total);
            }
        }
    }
    out
}

/// Decode-time attention of a single query vector over an arbitrary set of
/// gathered keys/values (the selective-attention kernel, Step ❻).
pub fn attend_selected(query: &[f32], keys: &Matrix, values: &Matrix) -> Vec<f32> {
    let mut scores = Vec::new();
    let mut out = Vec::new();
    attend_selected_into(query, keys, values, &mut scores, &mut out);
    out
}

/// [`attend_selected`] with caller-owned score and output buffers (both
/// cleared first) — the decode loop runs one of these per query head per
/// layer per step, so buffer reuse removes its steady-state allocations.
///
/// Single-pass blocked online softmax: `scores` now only ever holds one
/// [`KEY_BLOCK`]-wide logit block (it no longer scales with the gathered
/// set), and the softmax + weighted sum complete in the same sweep as the
/// score computation. Same recurrence as the prefill row path.
pub fn attend_selected_into(
    query: &[f32],
    keys: &Matrix,
    values: &Matrix,
    scores: &mut Vec<f32>,
    out: &mut Vec<f32>,
) {
    let dh = query.len();
    assert_eq!(keys.cols(), dh);
    assert_eq!(keys.shape(), values.shape());
    let n = keys.rows();
    assert!(n > 0, "attend_selected over empty set");
    let scale = 1.0 / (dh as f32).sqrt();
    out.clear();
    out.resize(dh, 0.0);
    if use_avx2() {
        // SAFETY: AVX2 support verified at runtime by `use_avx2`.
        unsafe { attend_selected_avx2(query, keys, values, n, scale, scores, out.as_mut_slice()) }
    } else {
        attend_selected_baseline(query, keys, values, n, scale, scores, out.as_mut_slice());
    }
}

/// Shared body: `out` doubles as the online accumulator and is normalised
/// in place at the end.
#[inline(always)]
fn attend_selected_body(
    query: &[f32],
    keys: &Matrix,
    values: &Matrix,
    n: usize,
    scale: f32,
    scores: &mut Vec<f32>,
    out: &mut [f32],
) {
    let mut state = OnlineState::new();
    online_sweep_segment(query, keys, values, 0, n, scale, &mut state, out, scores);
    let inv = 1.0 / state.l;
    for o in out.iter_mut() {
        *o *= inv;
    }
}

#[inline(never)]
fn attend_selected_baseline(
    query: &[f32],
    keys: &Matrix,
    values: &Matrix,
    n: usize,
    scale: f32,
    scores: &mut Vec<f32>,
    out: &mut [f32],
) {
    attend_selected_body(query, keys, values, n, scale, scores, out);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn attend_selected_avx2(
    query: &[f32],
    keys: &Matrix,
    values: &Matrix,
    n: usize,
    scale: f32,
    scores: &mut Vec<f32>,
    out: &mut [f32],
) {
    attend_selected_body(query, keys, values, n, scale, scores, out);
}

#[cfg(not(target_arch = "x86_64"))]
unsafe fn attend_selected_avx2(
    query: &[f32],
    keys: &Matrix,
    values: &Matrix,
    n: usize,
    scale: f32,
    scores: &mut Vec<f32>,
    out: &mut [f32],
) {
    attend_selected_body(query, keys, values, n, scale, scores, out);
}

/// Exact attention scores (pre-softmax logits) of a query against all keys —
/// the Oracle's scoring primitive.
pub fn exact_logits(query: &[f32], keys: &Matrix) -> Vec<f32> {
    let scale = 1.0 / (query.len() as f32).sqrt();
    (0..keys.rows()).map(|j| dot(query, keys.row(j)) * scale).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqc_tensor::Rng64;

    fn rand_mats(s: usize, dh: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
        let mut rng = Rng64::new(seed);
        (
            Matrix::randn(s, dh, 1.0, &mut rng),
            Matrix::randn(s, dh, 1.0, &mut rng),
            Matrix::randn(s, dh, 1.0, &mut rng),
        )
    }

    #[test]
    fn first_row_copies_first_value() {
        let (q, k, v) = rand_mats(5, 8, 1);
        let out = causal_attention(&q, &k, &v, PrefillPattern::Dense, None);
        // Query 0 can only attend to key 0: softmax over one element = 1.
        for (a, b) in out.row(0).iter().zip(v.row(0).iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn attend_selected_full_set_matches_last_prefill_row() {
        let (q, k, v) = rand_mats(12, 8, 2);
        let out = causal_attention(&q, &k, &v, PrefillPattern::Dense, None);
        let dec = attend_selected(q.row(11), &k, &v);
        for (a, b) in out.row(11).iter().zip(dec.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn capture_accumulates_probability_mass() {
        let (q, k, v) = rand_mats(10, 8, 3);
        let mut cap = ScoreCapture::new(10, 3);
        let _ = causal_attention(&q, &k, &v, PrefillPattern::Dense, Some(&mut cap));
        // Total accumulated mass = number of query rows (each row sums to 1).
        let total: f32 = cap.accum.iter().sum();
        assert!((total - 10.0).abs() < 1e-4, "total {total}");
        // Window mass = window rows.
        let wtotal: f32 = cap.window_accum.iter().sum();
        assert!((wtotal - 3.0).abs() < 1e-4, "wtotal {wtotal}");
    }

    #[test]
    fn capture_samples_requested_rows() {
        let (q, k, v) = rand_mats(8, 4, 4);
        let mut cap = ScoreCapture::new(8, 2);
        cap.sample_rows = vec![3, 7];
        let _ = causal_attention(&q, &k, &v, PrefillPattern::Dense, Some(&mut cap));
        assert_eq!(cap.samples.len(), 2);
        assert_eq!(cap.samples[0].0, 3);
        assert_eq!(cap.samples[0].1.len(), 4);
        assert_eq!(cap.samples[1].1.len(), 8);
    }

    #[test]
    fn ashape_pattern_masks_middle() {
        let p = PrefillPattern::AShape { init: 2, local: 3 };
        // Row 10: allowed j in {0,1} ∪ {8,9,10}.
        assert!(p.allows(10, 0));
        assert!(p.allows(10, 1));
        assert!(!p.allows(10, 2));
        assert!(!p.allows(10, 7));
        assert!(p.allows(10, 8));
        assert!(p.allows(10, 10));
    }

    #[test]
    fn ashape_equals_dense_for_short_rows() {
        let (q, k, v) = rand_mats(6, 8, 5);
        let dense = causal_attention(&q, &k, &v, PrefillPattern::Dense, None);
        // init+local cover everything when i < init + local.
        let sparse = causal_attention(
            &q,
            &k,
            &v,
            PrefillPattern::AShape { init: 3, local: 3 },
            None,
        );
        assert!(dense.max_abs_diff(&sparse) < 1e-6);
    }

    #[test]
    fn ashape_differs_from_dense_for_long_rows() {
        let (q, k, v) = rand_mats(32, 8, 6);
        let dense = causal_attention(&q, &k, &v, PrefillPattern::Dense, None);
        let sparse = causal_attention(
            &q,
            &k,
            &v,
            PrefillPattern::AShape { init: 2, local: 4 },
            None,
        );
        assert!(dense.max_abs_diff(&sparse) > 1e-4);
    }

    #[test]
    fn keys_for_row_matches_allows() {
        for pattern in [
            PrefillPattern::Dense,
            PrefillPattern::AShape { init: 2, local: 3 },
            PrefillPattern::AShape { init: 0, local: 1 },
            PrefillPattern::AShape { init: 5, local: 5 },
        ] {
            for i in 0..40 {
                let counted = (0..=i).filter(|&j| pattern.allows(i, j)).count();
                assert_eq!(pattern.keys_for_row(i), counted, "{pattern:?} row {i}");
            }
        }
    }

    #[test]
    fn exact_logits_scaled_dots() {
        let (q, k, _) = rand_mats(4, 16, 7);
        let logits = exact_logits(q.row(2), &k);
        assert_eq!(logits.len(), 4);
        let expect = dot(q.row(2), k.row(1)) / 4.0;
        assert!((logits[1] - expect).abs() < 1e-6);
    }

    #[test]
    fn chunked_rows_match_monolithic_capture_bits() {
        // Any chunking of the query rows must reproduce the capturing
        // monolithic sweep exactly: outputs, accumulators, and samples.
        for (s, chunk) in [(10usize, 3usize), (16, 1), (7, 16), (12, 4), (9, 9)] {
            for pattern in
                [PrefillPattern::Dense, PrefillPattern::AShape { init: 2, local: 3 }]
            {
                let (q, k, v) = rand_mats(s, 8, 0xC0 + s as u64);
                let mut cap_mono = ScoreCapture::new(s, 4.min(s));
                cap_mono.sample_rows = vec![2, s - 1];
                let mono = causal_attention(&q, &k, &v, pattern, Some(&mut cap_mono));

                let mut cap_chunk = ScoreCapture::new(s, 4.min(s));
                cap_chunk.sample_rows = vec![2, s - 1];
                let mut done = 0;
                let mut out = Matrix::zeros(s, 8);
                while done < s {
                    let hi = (done + chunk).min(s);
                    let qc = q.slice_rows(done, hi);
                    let oc = causal_attention_rows(
                        &qc,
                        &k,
                        &v,
                        done,
                        s,
                        pattern,
                        Some(&mut cap_chunk),
                    );
                    for r in done..hi {
                        out.row_mut(r).copy_from_slice(oc.row(r - done));
                    }
                    done = hi;
                }
                assert_eq!(out, mono, "s={s} chunk={chunk} {pattern:?} outputs");
                assert_eq!(cap_chunk.accum, cap_mono.accum, "s={s} chunk={chunk} accum");
                assert_eq!(cap_chunk.window_accum, cap_mono.window_accum);
                assert_eq!(cap_chunk.samples, cap_mono.samples);
            }
        }
    }

    #[test]
    fn merge_sums_slots_and_concatenates_samples() {
        let mut a = ScoreCapture::new(4, 2);
        a.accum = vec![1.0, 2.0, 3.0, 4.0];
        a.window_accum = vec![0.5; 4];
        a.samples = vec![(1, vec![0.25; 2])];
        let mut b = ScoreCapture::new(4, 2);
        b.accum = vec![10.0, 20.0, 30.0, 40.0];
        b.window_accum = vec![1.5; 4];
        b.samples = vec![(1, vec![0.75; 2]), (3, vec![0.1; 4])];
        a.merge(&b);
        assert_eq!(a.accum, vec![11.0, 22.0, 33.0, 44.0]);
        assert_eq!(a.window_accum, vec![2.0; 4]);
        assert_eq!(
            a.samples,
            vec![(1, vec![0.25; 2]), (1, vec![0.75; 2]), (3, vec![0.1; 4])]
        );
    }

    #[test]
    #[should_panic(expected = "empty set")]
    fn attend_selected_empty_panics() {
        let k = Matrix::zeros(0, 4);
        let v = Matrix::zeros(0, 4);
        let _ = attend_selected(&[0.0; 4], &k, &v);
    }
}
