//! Attention kernels: causal prefill attention (O(s) memory, row-wise
//! softmax), selective decode attention, sparse-pattern masking, and score
//! capture for the policies that learn from prefill attention (H2O, SnapKV).

use pqc_tensor::{dot, softmax_inplace, Matrix};

/// Restricts which keys each prefill query row may attend to.
///
/// `Dense` is ordinary causal attention. `AShape` is the MInference-style
/// pattern used by Table 5: every query sees the first `init` tokens plus a
/// `local`-wide sliding window ("Λ-shape": vertical stripe + diagonal slash).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefillPattern {
    /// Full causal attention.
    Dense,
    /// Sparse Λ-shaped attention.
    AShape {
        /// Number of initial tokens every query attends to.
        init: usize,
        /// Sliding-window width (keys `j` with `i - j < local`).
        local: usize,
    },
}

impl PrefillPattern {
    /// Whether query row `i` may attend to key `j` (`j <= i` presumed).
    #[inline]
    pub fn allows(&self, i: usize, j: usize) -> bool {
        debug_assert!(j <= i);
        match *self {
            PrefillPattern::Dense => true,
            PrefillPattern::AShape { init, local } => j < init || i - j < local,
        }
    }

    /// Number of keys query row `i` attends to.
    pub fn keys_for_row(&self, i: usize) -> usize {
        match *self {
            PrefillPattern::Dense => i + 1,
            PrefillPattern::AShape { init, local } => {
                if i < init + local {
                    i + 1 // init and local regions cover the whole prefix
                } else {
                    init + local
                }
            }
        }
    }
}

/// Accumulates attention-probability statistics during prefill for one
/// (layer, kv-head). Used by H2O (full accumulation), SnapKV/PyramidKV
/// (observation-window accumulation), and the Fig. 6 distribution analysis
/// (sampled raw rows).
#[derive(Debug, Clone)]
pub struct ScoreCapture {
    /// Sum over all query rows of softmax probabilities per key (H2O).
    pub accum: Vec<f32>,
    /// Sum over the last `window` query rows only (SnapKV).
    pub window_accum: Vec<f32>,
    /// Observation-window width.
    pub window: usize,
    /// Query rows whose full probability vector should be kept (Fig. 6).
    pub sample_rows: Vec<usize>,
    /// Captured `(row, probabilities)` pairs.
    pub samples: Vec<(usize, Vec<f32>)>,
    /// Sorted copy of `sample_rows` built by [`Self::prepare`], so per-row
    /// membership checks are a binary search instead of a linear scan —
    /// without mutating the caller-owned field.
    sorted_rows: Vec<usize>,
    /// Reusable dense scatter buffer for sparse (masked) rows.
    scratch: Vec<f32>,
}

impl ScoreCapture {
    /// A capture sized for `s` tokens with a SnapKV window of `window`.
    pub fn new(s: usize, window: usize) -> Self {
        Self {
            accum: vec![0.0; s],
            window_accum: vec![0.0; s],
            window,
            sample_rows: Vec::new(),
            samples: Vec::new(),
            sorted_rows: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Refresh the sorted sample-row index; called once per attention pass.
    fn prepare(&mut self) {
        self.sorted_rows.clear();
        self.sorted_rows.extend_from_slice(&self.sample_rows);
        self.sorted_rows.sort_unstable();
    }

    /// Record a dense probability row (`probs[j]` = mass on key `j`).
    fn record(&mut self, row: usize, probs: &[f32], s_total: usize) {
        for (j, &p) in probs.iter().enumerate() {
            self.accum[j] += p;
        }
        if row + self.window >= s_total {
            for (j, &p) in probs.iter().enumerate() {
                self.window_accum[j] += p;
            }
        }
        if self.sorted_rows.binary_search(&row).is_ok() {
            self.samples.push((row, probs.to_vec()));
        }
    }

    /// Record a sparse row given the allowed key indices and their
    /// probabilities; the dense scatter goes through one reusable scratch
    /// buffer instead of a fresh allocation per masked row.
    fn record_sparse(&mut self, row: usize, allowed: &[usize], probs: &[f32], s_total: usize) {
        debug_assert_eq!(allowed.len(), probs.len());
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.resize(row + 1, 0.0);
        for (&j, &p) in allowed.iter().zip(probs.iter()) {
            scratch[j] = p;
        }
        self.record(row, &scratch, s_total);
        self.scratch = scratch;
    }
}

/// Causal single-(kv)head prefill attention.
///
/// `q` is `(s, d_h)` for one query head; `k`/`v` are `(s, d_h)` for its kv
/// head (already RoPE'd). Row-wise: materialise the score vector for query
/// `i` over keys `0..=i`, softmax, weighted-sum values. Memory O(s), time
/// O(s²·d_h) — the FlashAttention trade the paper assumes.
pub fn causal_attention(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    pattern: PrefillPattern,
    mut capture: Option<&mut ScoreCapture>,
) -> Matrix {
    let (s, dh) = q.shape();
    assert_eq!(k.shape(), (s, dh));
    assert_eq!(v.shape(), (s, dh));
    let scale = 1.0 / (dh as f32).sqrt();
    let mut out = Matrix::zeros(s, dh);
    let mut scores: Vec<f32> = Vec::with_capacity(s);
    let mut allowed: Vec<usize> = Vec::with_capacity(s);
    if let Some(cap) = capture.as_deref_mut() {
        cap.prepare();
    }

    for i in 0..s {
        scores.clear();
        allowed.clear();
        let qi = q.row(i);
        for j in 0..=i {
            if pattern.allows(i, j) {
                allowed.push(j);
                scores.push(dot(qi, k.row(j)) * scale);
            }
        }
        softmax_inplace(&mut scores);
        let orow = out.row_mut(i);
        for (&j, &p) in allowed.iter().zip(scores.iter()) {
            pqc_tensor::axpy(orow, v.row(j), p);
        }
        if let Some(cap) = capture.as_deref_mut() {
            if allowed.len() == i + 1 {
                cap.record(i, &scores, s);
            } else {
                cap.record_sparse(i, &allowed, &scores, s);
            }
        }
    }
    out
}

/// Decode-time attention of a single query vector over an arbitrary set of
/// gathered keys/values (the selective-attention kernel, Step ❻).
pub fn attend_selected(query: &[f32], keys: &Matrix, values: &Matrix) -> Vec<f32> {
    let mut scores = Vec::new();
    let mut out = Vec::new();
    attend_selected_into(query, keys, values, &mut scores, &mut out);
    out
}

/// [`attend_selected`] with caller-owned score and output buffers (both
/// cleared first) — the decode loop runs one of these per query head per
/// layer per step, so buffer reuse removes its steady-state allocations.
pub fn attend_selected_into(
    query: &[f32],
    keys: &Matrix,
    values: &Matrix,
    scores: &mut Vec<f32>,
    out: &mut Vec<f32>,
) {
    let dh = query.len();
    assert_eq!(keys.cols(), dh);
    assert_eq!(keys.shape(), values.shape());
    let n = keys.rows();
    assert!(n > 0, "attend_selected over empty set");
    let scale = 1.0 / (dh as f32).sqrt();
    scores.clear();
    scores.reserve(n);
    for j in 0..n {
        scores.push(dot(query, keys.row(j)) * scale);
    }
    softmax_inplace(scores);
    out.clear();
    out.resize(dh, 0.0);
    for (j, &p) in scores.iter().enumerate() {
        pqc_tensor::axpy(out, values.row(j), p);
    }
}

/// Exact attention scores (pre-softmax logits) of a query against all keys —
/// the Oracle's scoring primitive.
pub fn exact_logits(query: &[f32], keys: &Matrix) -> Vec<f32> {
    let scale = 1.0 / (query.len() as f32).sqrt();
    (0..keys.rows()).map(|j| dot(query, keys.row(j)) * scale).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqc_tensor::Rng64;

    fn rand_mats(s: usize, dh: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
        let mut rng = Rng64::new(seed);
        (
            Matrix::randn(s, dh, 1.0, &mut rng),
            Matrix::randn(s, dh, 1.0, &mut rng),
            Matrix::randn(s, dh, 1.0, &mut rng),
        )
    }

    #[test]
    fn first_row_copies_first_value() {
        let (q, k, v) = rand_mats(5, 8, 1);
        let out = causal_attention(&q, &k, &v, PrefillPattern::Dense, None);
        // Query 0 can only attend to key 0: softmax over one element = 1.
        for (a, b) in out.row(0).iter().zip(v.row(0).iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn attend_selected_full_set_matches_last_prefill_row() {
        let (q, k, v) = rand_mats(12, 8, 2);
        let out = causal_attention(&q, &k, &v, PrefillPattern::Dense, None);
        let dec = attend_selected(q.row(11), &k, &v);
        for (a, b) in out.row(11).iter().zip(dec.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn capture_accumulates_probability_mass() {
        let (q, k, v) = rand_mats(10, 8, 3);
        let mut cap = ScoreCapture::new(10, 3);
        let _ = causal_attention(&q, &k, &v, PrefillPattern::Dense, Some(&mut cap));
        // Total accumulated mass = number of query rows (each row sums to 1).
        let total: f32 = cap.accum.iter().sum();
        assert!((total - 10.0).abs() < 1e-4, "total {total}");
        // Window mass = window rows.
        let wtotal: f32 = cap.window_accum.iter().sum();
        assert!((wtotal - 3.0).abs() < 1e-4, "wtotal {wtotal}");
    }

    #[test]
    fn capture_samples_requested_rows() {
        let (q, k, v) = rand_mats(8, 4, 4);
        let mut cap = ScoreCapture::new(8, 2);
        cap.sample_rows = vec![3, 7];
        let _ = causal_attention(&q, &k, &v, PrefillPattern::Dense, Some(&mut cap));
        assert_eq!(cap.samples.len(), 2);
        assert_eq!(cap.samples[0].0, 3);
        assert_eq!(cap.samples[0].1.len(), 4);
        assert_eq!(cap.samples[1].1.len(), 8);
    }

    #[test]
    fn ashape_pattern_masks_middle() {
        let p = PrefillPattern::AShape { init: 2, local: 3 };
        // Row 10: allowed j in {0,1} ∪ {8,9,10}.
        assert!(p.allows(10, 0));
        assert!(p.allows(10, 1));
        assert!(!p.allows(10, 2));
        assert!(!p.allows(10, 7));
        assert!(p.allows(10, 8));
        assert!(p.allows(10, 10));
    }

    #[test]
    fn ashape_equals_dense_for_short_rows() {
        let (q, k, v) = rand_mats(6, 8, 5);
        let dense = causal_attention(&q, &k, &v, PrefillPattern::Dense, None);
        // init+local cover everything when i < init + local.
        let sparse = causal_attention(
            &q,
            &k,
            &v,
            PrefillPattern::AShape { init: 3, local: 3 },
            None,
        );
        assert!(dense.max_abs_diff(&sparse) < 1e-6);
    }

    #[test]
    fn ashape_differs_from_dense_for_long_rows() {
        let (q, k, v) = rand_mats(32, 8, 6);
        let dense = causal_attention(&q, &k, &v, PrefillPattern::Dense, None);
        let sparse = causal_attention(
            &q,
            &k,
            &v,
            PrefillPattern::AShape { init: 2, local: 4 },
            None,
        );
        assert!(dense.max_abs_diff(&sparse) > 1e-4);
    }

    #[test]
    fn keys_for_row_matches_allows() {
        for pattern in [
            PrefillPattern::Dense,
            PrefillPattern::AShape { init: 2, local: 3 },
            PrefillPattern::AShape { init: 0, local: 1 },
            PrefillPattern::AShape { init: 5, local: 5 },
        ] {
            for i in 0..40 {
                let counted = (0..=i).filter(|&j| pattern.allows(i, j)).count();
                assert_eq!(pattern.keys_for_row(i), counted, "{pattern:?} row {i}");
            }
        }
    }

    #[test]
    fn exact_logits_scaled_dots() {
        let (q, k, _) = rand_mats(4, 16, 7);
        let logits = exact_logits(q.row(2), &k);
        assert_eq!(logits.len(), 4);
        let expect = dot(q.row(2), k.row(1)) / 4.0;
        assert!((logits[1] - expect).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "empty set")]
    fn attend_selected_empty_panics() {
        let k = Matrix::zeros(0, 4);
        let v = Matrix::zeros(0, 4);
        let _ = attend_selected(&[0.0; 4], &k, &v);
    }
}
