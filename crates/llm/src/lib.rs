//! # pqc-llm
//!
//! From-scratch decoder-only transformer substrate: GQA attention with RoPE,
//! RMSNorm residual blocks, a tied classifier head, O(s)-memory causal
//! prefill, selective-attention decode through a pluggable [`KvSource`], an
//! MInference-style sparse prefill pattern, and attention-distribution
//! instrumentation. This is the simulation-scale stand-in for the paper's
//! Llama/Mistral models (see DESIGN.md §2 for the substitution argument).

#![warn(missing_docs)]
// Index-based loops are kept where they mirror the mathematical notation
// (row/column/cluster indices); iterator rewrites obscure the kernels.
#![allow(clippy::needless_range_loop, clippy::explicit_counter_loop)]

pub mod attention;
pub mod config;
pub mod instrument;
pub mod model;
pub mod rope;
pub mod weights;

pub use attention::{
    attend_selected, attend_selected_into, causal_attention, causal_attention_rows, exact_logits,
    PrefillPattern, ScoreCapture,
};
pub use config::LlmConfig;
pub use model::{
    slice_head, DecodeOutput, DecodeScratch, FullKvSource, KvSource, LayerKv, Model,
    PrefillJob, PrefillOptions, PrefillOutput,
};
pub use weights::{rms_norm, ModelWeights};
