//! Deterministic random weight generation.
//!
//! Weights are drawn from scaled Gaussians (variance `1/d` fan-in scaling)
//! so residual-stream magnitudes stay O(1) through depth. The classifier is
//! weight-tied to the embedding, as in most open LLMs.

use crate::config::LlmConfig;
use pqc_tensor::{Matrix, Rng64};

/// Per-layer projection weights.
#[derive(Debug, Clone)]
pub struct LayerWeights {
    /// Query projection `(d, h·d_h)`.
    pub wq: Matrix,
    /// Key projection `(d, h_kv·d_h)`.
    pub wk: Matrix,
    /// Value projection `(d, h_kv·d_h)`.
    pub wv: Matrix,
    /// Output projection `(h·d_h, d)`.
    pub wo: Matrix,
    /// FFN up-projection `(d, ffn)`.
    pub w1: Matrix,
    /// FFN down-projection `(ffn, d)`.
    pub w2: Matrix,
}

/// All model parameters.
#[derive(Debug, Clone)]
pub struct ModelWeights {
    /// Token embedding `(vocab, d)`; also the (tied) classifier.
    pub embedding: Matrix,
    /// Transformer layers.
    pub layers: Vec<LayerWeights>,
}

impl ModelWeights {
    /// Generate all weights deterministically from `cfg.seed`.
    pub fn generate(cfg: &LlmConfig) -> Self {
        cfg.validate();
        let mut root = Rng64::new(cfg.seed);
        let d = cfg.d_model;
        let qdim = cfg.n_heads * cfg.head_dim;
        let kvdim = cfg.n_kv_heads * cfg.head_dim;
        let std_d = 1.0 / (d as f32).sqrt();
        let std_f = 1.0 / (cfg.ffn_dim as f32).sqrt();

        let mut emb_rng = root.fork(0xE13B);
        let embedding = Matrix::randn(cfg.vocab_size, d, 1.0, &mut emb_rng);

        let layers = (0..cfg.n_layers)
            .map(|l| {
                let mut r = root.fork(0x1A7E_5000 + l as u64);
                let wq = Matrix::randn(d, qdim, std_d, &mut r);
                let mut wk = Matrix::randn(d, kvdim, std_d, &mut r);
                // Retrieval heads: trained LLMs contain heads whose key
                // projection is aligned with their query projection, so a
                // query formed from token X scores token X's earlier key
                // highly — the mechanism behind induction/needle retrieval
                // (and the reason selective attention works at all). With
                // two independent Gaussian projections that alignment has
                // expectation zero, so we plant it: the first half of the
                // kv heads get Wk ← α·Wq(first group head) + β·noise.
                let group = cfg.n_heads / cfg.n_kv_heads;
                let dh = cfg.head_dim;
                let alpha = 0.95f32;
                let beta = (1.0 - alpha * alpha).sqrt();
                for kvh in 0..cfg.n_kv_heads / 2 {
                    let qh = kvh * group; // first query head of the group
                    for row in 0..d {
                        for c in 0..dh {
                            let qv = wq.get(row, qh * dh + c);
                            let nv = wk.get(row, kvh * dh + c);
                            wk.set(row, kvh * dh + c, alpha * qv + beta * nv);
                        }
                    }
                }
                LayerWeights {
                    wq,
                    wk,
                    wv: Matrix::randn(d, kvdim, std_d, &mut r),
                    wo: Matrix::randn(qdim, d, std_d, &mut r),
                    w1: Matrix::randn(d, cfg.ffn_dim, std_d, &mut r),
                    w2: Matrix::randn(cfg.ffn_dim, d, std_f, &mut r),
                }
            })
            .collect();

        Self { embedding, layers }
    }

    /// Total parameter count (for sanity reporting).
    pub fn param_count(&self) -> usize {
        let emb = self.embedding.rows() * self.embedding.cols();
        let per_layer: usize = self
            .layers
            .iter()
            .map(|l| {
                let s = |m: &Matrix| m.rows() * m.cols();
                s(&l.wq) + s(&l.wk) + s(&l.wv) + s(&l.wo) + s(&l.w1) + s(&l.w2)
            })
            .sum();
        emb + per_layer
    }
}

/// RMS normalisation of one vector into a fresh buffer.
pub fn rms_norm(x: &[f32]) -> Vec<f32> {
    let ms = x.iter().map(|v| v * v).sum::<f32>() / x.len() as f32;
    let inv = 1.0 / (ms + 1e-6).sqrt();
    x.iter().map(|v| v * inv).collect()
}

/// RMS-normalise every row of a matrix.
pub fn rms_norm_rows(x: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(x.rows(), x.cols());
    for r in 0..x.rows() {
        out.copy_row_from(r, &rms_norm(x.row(r)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = LlmConfig::tiny();
        let a = ModelWeights::generate(&cfg);
        let b = ModelWeights::generate(&cfg);
        assert_eq!(a.embedding, b.embedding);
        assert_eq!(a.layers[0].wq, b.layers[0].wq);
        assert_eq!(a.layers[1].w2, b.layers[1].w2);
    }

    #[test]
    fn layers_have_distinct_weights() {
        let cfg = LlmConfig::tiny();
        let w = ModelWeights::generate(&cfg);
        assert_ne!(w.layers[0].wq, w.layers[1].wq);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg2 = LlmConfig::tiny();
        cfg2.seed = 999;
        let a = ModelWeights::generate(&LlmConfig::tiny());
        let b = ModelWeights::generate(&cfg2);
        assert_ne!(a.embedding, b.embedding);
    }

    #[test]
    fn shapes_match_config() {
        let cfg = LlmConfig::small();
        let w = ModelWeights::generate(&cfg);
        assert_eq!(w.embedding.shape(), (cfg.vocab_size, cfg.d_model));
        let l = &w.layers[0];
        assert_eq!(l.wq.shape(), (cfg.d_model, cfg.n_heads * cfg.head_dim));
        assert_eq!(l.wk.shape(), (cfg.d_model, cfg.n_kv_heads * cfg.head_dim));
        assert_eq!(l.wv.shape(), (cfg.d_model, cfg.n_kv_heads * cfg.head_dim));
        assert_eq!(l.wo.shape(), (cfg.n_heads * cfg.head_dim, cfg.d_model));
        assert_eq!(l.w1.shape(), (cfg.d_model, cfg.ffn_dim));
        assert_eq!(l.w2.shape(), (cfg.ffn_dim, cfg.d_model));
    }

    #[test]
    fn rms_norm_unit_scale() {
        let x = vec![3.0f32; 16];
        let y = rms_norm(&x);
        let ms: f32 = y.iter().map(|v| v * v).sum::<f32>() / 16.0;
        assert!((ms - 1.0).abs() < 1e-4);
    }

    #[test]
    fn param_count_positive_and_scales() {
        let small = ModelWeights::generate(&LlmConfig::tiny()).param_count();
        let big = ModelWeights::generate(&LlmConfig::small()).param_count();
        assert!(big > small * 4);
    }
}
