//! Attention-distribution instrumentation (paper §3.1, Fig. 6).
//!
//! The paper motivates selective attention by showing attention scores
//! follow power-law-like distributions: a handful of tokens carry most of
//! the mass. These helpers turn captured probability rows into the summary
//! statistics the Fig. 6 reproduction prints: sorted mass curves, tail
//! exponents, Gini concentration, and top-p coverage.

use pqc_tensor::stats::{gini, powerlaw_slope};

/// Summary of one attention-probability row.
#[derive(Debug, Clone)]
pub struct DistributionSummary {
    /// (layer, kv head, query row) provenance.
    pub layer: usize,
    /// KV head index.
    pub kv_head: usize,
    /// Query row position.
    pub row: usize,
    /// Number of keys in the row.
    pub n_keys: usize,
    /// Fitted log-log rank slope (None when too few positive entries).
    pub tail_slope: Option<f64>,
    /// Gini concentration of the mass.
    pub gini: f64,
    /// Fraction of keys needed to cover 50% of the mass.
    pub keys_for_half_mass: f64,
    /// Fraction of keys needed to cover 90% of the mass.
    pub keys_for_90_mass: f64,
}

/// Fraction of entries (sorted descending) needed to reach `target` total
/// probability mass.
pub fn coverage_fraction(probs: &[f32], target: f64) -> f64 {
    assert!((0.0..=1.0).contains(&target));
    if probs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = probs.iter().map(|&p| p as f64).collect();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
    let total: f64 = sorted.iter().sum();
    if total <= 0.0 {
        return 1.0;
    }
    let mut acc = 0.0;
    for (i, p) in sorted.iter().enumerate() {
        acc += p;
        if acc >= target * total {
            return (i + 1) as f64 / sorted.len() as f64;
        }
    }
    1.0
}

/// Summarise one captured probability row.
pub fn summarize_row(layer: usize, kv_head: usize, row: usize, probs: &[f32]) -> DistributionSummary {
    let as64: Vec<f64> = probs.iter().map(|&p| p as f64).collect();
    DistributionSummary {
        layer,
        kv_head,
        row,
        n_keys: probs.len(),
        tail_slope: powerlaw_slope(&as64),
        gini: gini(&as64),
        keys_for_half_mass: coverage_fraction(probs, 0.5),
        keys_for_90_mass: coverage_fraction(probs, 0.9),
    }
}

/// The sorted (descending) probability curve, optionally subsampled to at
/// most `max_points` points for plotting.
pub fn sorted_curve(probs: &[f32], max_points: usize) -> Vec<(usize, f32)> {
    let mut sorted: Vec<f32> = probs.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
    let n = sorted.len();
    if n <= max_points || max_points == 0 {
        return sorted.into_iter().enumerate().map(|(i, p)| (i + 1, p)).collect();
    }
    let step = n as f64 / max_points as f64;
    (0..max_points)
        .map(|i| {
            let idx = ((i as f64 * step) as usize).min(n - 1);
            (idx + 1, sorted[idx])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zipf_row(n: usize) -> Vec<f32> {
        let raw: Vec<f32> = (1..=n).map(|r| 1.0 / r as f32).collect();
        let total: f32 = raw.iter().sum();
        raw.into_iter().map(|v| v / total).collect()
    }

    #[test]
    fn coverage_uniform_is_proportional() {
        let probs = vec![0.1f32; 10];
        assert!((coverage_fraction(&probs, 0.5) - 0.5).abs() < 1e-9);
        assert!((coverage_fraction(&probs, 0.9) - 0.9).abs() < 1e-9);
    }

    #[test]
    fn coverage_concentrated_is_small() {
        let mut probs = vec![0.001f32; 100];
        probs[42] = 0.9;
        assert!(coverage_fraction(&probs, 0.5) <= 0.02);
    }

    #[test]
    fn zipf_summary_is_heavy_tailed() {
        let row = zipf_row(500);
        let s = summarize_row(0, 0, 499, &row);
        assert!(s.gini > 0.5, "gini {}", s.gini);
        assert!(s.keys_for_half_mass < 0.1, "half {}", s.keys_for_half_mass);
        let slope = s.tail_slope.expect("slope");
        assert!(slope < -0.8, "slope {slope}");
    }

    #[test]
    fn uniform_summary_is_flat() {
        let row = vec![0.002f32; 500];
        let s = summarize_row(0, 0, 0, &row);
        assert!(s.gini < 0.01);
        assert!(s.keys_for_half_mass > 0.45);
    }

    #[test]
    fn sorted_curve_subsamples() {
        let row = zipf_row(1000);
        let curve = sorted_curve(&row, 50);
        assert_eq!(curve.len(), 50);
        // Monotone non-increasing probabilities.
        for w in curve.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert_eq!(curve[0].0, 1);
    }

    #[test]
    fn sorted_curve_short_input_passthrough() {
        let row = vec![0.5f32, 0.3, 0.2];
        let curve = sorted_curve(&row, 10);
        assert_eq!(curve, vec![(1, 0.5), (2, 0.3), (3, 0.2)]);
    }

    #[test]
    fn coverage_empty_and_zero() {
        assert_eq!(coverage_fraction(&[], 0.5), 0.0);
        assert_eq!(coverage_fraction(&[0.0, 0.0], 0.5), 1.0);
    }
}
