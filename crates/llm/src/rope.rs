//! Rotary positional embeddings (RoPE).
//!
//! Keys are stored in the KVCache *after* rotation, matching real inference
//! stacks (and the paper, which clusters KVCache keys as stored). Queries
//! are rotated at their own position; the attention dot product then encodes
//! relative position.

/// Apply RoPE in place to one head vector at `pos`.
///
/// Pairs `(x[2i], x[2i+1])` are rotated by angle `pos / theta^(2i/d)`.
pub fn apply_rope(x: &mut [f32], pos: usize, theta: f32) {
    let d = x.len();
    debug_assert!(d.is_multiple_of(2), "RoPE needs an even head dimension");
    let half = d / 2;
    for i in 0..half {
        let freq = theta.powf(-((2 * i) as f32) / d as f32);
        let angle = pos as f32 * freq;
        let (sin, cos) = angle.sin_cos();
        let a = x[2 * i];
        let b = x[2 * i + 1];
        x[2 * i] = a * cos - b * sin;
        x[2 * i + 1] = a * sin + b * cos;
    }
}

/// Rotate every row of a `(s, d_h)` block, row `i` at position `start + i`.
pub fn apply_rope_rows(rows: &mut pqc_tensor::Matrix, start: usize, theta: f32) {
    for i in 0..rows.rows() {
        apply_rope(rows.row_mut(i), start + i, theta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqc_tensor::{dot, Matrix, Rng64};

    #[test]
    fn position_zero_is_identity() {
        let orig = vec![1.0f32, 2.0, 3.0, 4.0];
        let mut x = orig.clone();
        apply_rope(&mut x, 0, 10_000.0);
        for (a, b) in x.iter().zip(orig.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn rotation_preserves_norm() {
        let mut rng = Rng64::new(1);
        for pos in [1usize, 17, 1000, 100_000] {
            let orig: Vec<f32> = (0..16).map(|_| rng.normal_f32(0.0, 1.0)).collect();
            let mut x = orig.clone();
            apply_rope(&mut x, pos, 10_000.0);
            let n0: f32 = orig.iter().map(|v| v * v).sum();
            let n1: f32 = x.iter().map(|v| v * v).sum();
            assert!((n0 - n1).abs() < 1e-4, "pos {pos}: {n0} vs {n1}");
        }
    }

    #[test]
    fn dot_product_depends_only_on_relative_position() {
        // <rope(q, p+Δ), rope(k, p)> must be invariant in p.
        let mut rng = Rng64::new(2);
        let q: Vec<f32> = (0..8).map(|_| rng.normal_f32(0.0, 1.0)).collect();
        let k: Vec<f32> = (0..8).map(|_| rng.normal_f32(0.0, 1.0)).collect();
        let delta = 5;
        let mut reference = None;
        for p in [0usize, 3, 50, 1234] {
            let mut qq = q.clone();
            let mut kk = k.clone();
            apply_rope(&mut qq, p + delta, 10_000.0);
            apply_rope(&mut kk, p, 10_000.0);
            let d = dot(&qq, &kk);
            match reference {
                None => reference = Some(d),
                Some(r) => assert!((d - r).abs() < 1e-3, "p={p}: {d} vs {r}"),
            }
        }
    }

    #[test]
    fn rows_offset_matches_scalar() {
        let mut rng = Rng64::new(3);
        let m = Matrix::randn(4, 8, 1.0, &mut rng);
        let mut rows = m.clone();
        apply_rope_rows(&mut rows, 10, 10_000.0);
        for i in 0..4 {
            let mut expect = m.row(i).to_vec();
            apply_rope(&mut expect, 10 + i, 10_000.0);
            for (a, b) in rows.row(i).iter().zip(expect.iter()) {
                assert!((a - b).abs() < 1e-6);
            }
        }
    }
}
