//! Model configuration and presets.

use serde::{Deserialize, Serialize};

/// Geometry and seeding of the simulated decoder-only transformer.
///
/// The presets are *simulation-scale* stand-ins for the paper's models: the
/// layer/head structure (GQA ratio, head count, RoPE) matches, but hidden
/// sizes are shrunk so that the full evaluation suite runs on a laptop in
/// minutes. EXPERIMENTS.md documents the mapping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LlmConfig {
    /// Transformer layer count.
    pub n_layers: usize,
    /// Hidden dimension `d`.
    pub d_model: usize,
    /// Query head count `h`.
    pub n_heads: usize,
    /// Key/value head count `h_kv` (GQA; must divide `n_heads`).
    pub n_kv_heads: usize,
    /// Per-head dimension `d_h` (`d = h · d_h`).
    pub head_dim: usize,
    /// FFN inner dimension.
    pub ffn_dim: usize,
    /// Vocabulary size of the synthetic tokenizer.
    pub vocab_size: usize,
    /// RoPE base frequency.
    pub rope_theta: f32,
    /// Weight-generation seed.
    pub seed: u64,
}

impl LlmConfig {
    /// Minimal config for unit tests (fast prefill at s ≤ 256).
    pub fn tiny() -> Self {
        Self {
            n_layers: 2,
            d_model: 64,
            n_heads: 4,
            n_kv_heads: 2,
            head_dim: 16,
            ffn_dim: 128,
            vocab_size: 256,
            rope_theta: 100_000.0,
            seed: 0x5eed,
        }
    }

    /// The default evaluation model ("8B-sim"): GQA 2:1, 8 layers.
    pub fn small() -> Self {
        Self {
            n_layers: 8,
            d_model: 256,
            n_heads: 8,
            n_kv_heads: 4,
            head_dim: 32,
            ffn_dim: 512,
            vocab_size: 1024,
            rope_theta: 500_000.0,
            seed: 0x005e_ed8b,
        }
    }

    /// Scaled-up model for the Table 6 experiment ("70B-sim"): more layers
    /// and query heads, same KV-head count — mirroring how Llama keeps
    /// `h_kv` fixed while scaling (paper §4.2.5, footnote 3).
    pub fn large() -> Self {
        Self {
            n_layers: 16,
            d_model: 512,
            n_heads: 16,
            n_kv_heads: 4,
            head_dim: 32,
            ffn_dim: 1024,
            vocab_size: 1024,
            rope_theta: 500_000.0,
            seed: 0x05ee_d70b,
        }
    }

    /// A second "different model" config standing in for Mistral-7B
    /// (Appendix A): same scale as [`LlmConfig::small`] but different seed
    /// and FFN width, so its weights and behaviour are genuinely distinct.
    pub fn mistral_sim() -> Self {
        Self {
            n_layers: 8,
            d_model: 256,
            n_heads: 8,
            n_kv_heads: 4,
            head_dim: 32,
            ffn_dim: 640,
            vocab_size: 1024,
            rope_theta: 1_000_000.0,
            seed: 0x05ee_d7b2,
        }
    }

    /// GQA group size (`h / h_kv`).
    pub fn group_size(&self) -> usize {
        self.n_heads / self.n_kv_heads
    }

    /// Validate internal consistency; panics with a clear message otherwise.
    pub fn validate(&self) {
        assert!(self.n_layers > 0, "n_layers must be positive");
        assert_eq!(self.d_model, self.n_heads * self.head_dim, "d != h*dh");
        assert!(self.n_kv_heads > 0 && self.n_heads.is_multiple_of(self.n_kv_heads), "h_kv must divide h");
        assert!(self.vocab_size > 1, "vocab too small");
        assert!(self.ffn_dim > 0, "ffn_dim must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        for cfg in [LlmConfig::tiny(), LlmConfig::small(), LlmConfig::large(), LlmConfig::mistral_sim()] {
            cfg.validate();
            assert!(cfg.group_size() >= 1);
        }
    }

    #[test]
    fn gqa_grouping() {
        let cfg = LlmConfig::small();
        assert_eq!(cfg.group_size(), 2);
        let t = LlmConfig::tiny();
        assert_eq!(t.group_size(), 2);
    }

    #[test]
    #[should_panic(expected = "d != h*dh")]
    fn inconsistent_dims_panic() {
        let mut cfg = LlmConfig::tiny();
        cfg.d_model = 100;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "h_kv must divide h")]
    fn bad_gqa_panics() {
        let mut cfg = LlmConfig::tiny();
        cfg.n_kv_heads = 3;
        cfg.validate();
    }
}
