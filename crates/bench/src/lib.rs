//! # pqc-bench
//!
//! Shared fixtures for the benchmark harness. One bench target per paper
//! table/figure lives in `benches/`; this library holds the simulated
//! benchmark-suite definitions (the LongBench / InfiniteBench stand-ins) and
//! common printing helpers so every bench emits the same row format.
//!
//! Scale note: quality benches run the `small()` simulation model with
//! contexts of 512-2048 tokens (the "128K" of this substrate — see
//! EXPERIMENTS.md for the mapping); latency benches run the analytical cost
//! model at the paper's true scale (Llama-3-8B, RTX 4090, PCIe 1.0 x16).

#![warn(missing_docs)]

use pqc_core::{CacheConfig, SessionConfig};
use pqc_workloads::{
    aggregation, cot_chain, kv_retrieval, needle, passkey, qa, EvalConfig, QuestionPosition,
    VocabLayout, Workload,
};

/// Context length used by the LongBench-sim suite.
pub const LONGBENCH_LEN: usize = 1024;
/// Context length used by the InfiniteBench-sim suite (longer contexts, as
/// InfiniteBench averages ~100K vs LongBench's ~10K).
pub const INFINITEBENCH_LEN: usize = 2048;

/// The session configuration used by quality benches, parameterised by the
/// selective-attention token ratio (paper: 1/5 and 1/10).
pub fn quality_session(token_ratio: f64, comm_fraction: f64) -> SessionConfig {
    SessionConfig {
        n_init: 4,
        n_local: 32,
        token_ratio,
        comm_fraction,
        obs_window: 32,
        cache: CacheConfig::sim_default(),
        ivf: pqc_core::IvfMode::Exact,
    }
}

/// Evaluation settings for the quality benches.
pub fn quality_eval(token_ratio: f64, comm_fraction: f64) -> EvalConfig {
    EvalConfig {
        steps: 24,
        session: quality_session(token_ratio, comm_fraction),
        driver_seed: 0xBEC5,
    }
}

/// The LongBench-sim task list: task families mirroring LongBench's mix of
/// single/multi-doc QA, multi-hop reasoning, summarisation, and retrieval.
pub fn longbench_sim(vocab: usize) -> Vec<Workload> {
    let l = VocabLayout::for_vocab(vocab);
    let s = LONGBENCH_LEN;
    let mut tasks = vec![
        named(qa(s, 4, QuestionPosition::End, &l, 101), "SingleDocQA"),
        named(qa(s, 8, QuestionPosition::End, &l, 102), "MultiFieldQA"),
        named(cot_chain(s, 2, &l, 103), "HotpotQA-2hop"),
        named(cot_chain(s, 3, &l, 104), "Musique-3hop"),
        named(aggregation(s, 16, &l, 105), "GovReport"),
        named(aggregation(s, 8, &l, 106), "QMSum"),
        named(kv_retrieval(s, 12, &l, 107), "FewShot-KV"),
        named(needle(s, 0.35, &l, 108), "Retrieval-P"),
        named(needle(s, 0.75, &l, 109), "Count-Deep"),
        named(passkey(s, &l, 110), "PassageRetr"),
    ];
    // A second QA distribution, like LongBench's bilingual split.
    tasks.push(named(qa(s, 6, QuestionPosition::End, &l, 111), "NarrativeQA"));
    tasks
}

/// The InfiniteBench-sim task list (longer contexts, retrieval-heavy mix).
pub fn infinitebench_sim(vocab: usize) -> Vec<Workload> {
    let l = VocabLayout::for_vocab(vocab);
    let s = INFINITEBENCH_LEN;
    vec![
        named(aggregation(s, 24, &l, 201), "En.Sum"),
        named(qa(s, 8, QuestionPosition::End, &l, 202), "En.QA"),
        named(qa(s, 4, QuestionPosition::End, &l, 203), "En.MC"),
        named(cot_chain(s, 3, &l, 204), "En.Dia"),
        named(qa(s, 6, QuestionPosition::End, &l, 205), "Zh.QA"),
        named(cot_chain(s, 4, &l, 206), "Math.Find"),
        named(passkey(s, &l, 207), "Retr.PassKey"),
        named(needle(s, 0.6, &l, 208), "Retr.Number"),
        named(kv_retrieval(s, 24, &l, 209), "Retr.KV"),
    ]
}

/// QA tasks with the question placed *before* the context (Table 3).
pub fn question_first_sim(vocab: usize) -> Vec<Workload> {
    let l = VocabLayout::for_vocab(vocab);
    let s = LONGBENCH_LEN;
    vec![
        named(qa(s, 4, QuestionPosition::Start, &l, 301), "SingleDocQA"),
        named(qa(s, 8, QuestionPosition::Start, &l, 302), "MultiFieldQA"),
        named(qa(s, 6, QuestionPosition::Start, &l, 303), "NarrativeQA"),
        named(qa(s, 12, QuestionPosition::Start, &l, 304), "HotpotQA"),
    ]
}

fn named(mut w: Workload, name: &'static str) -> Workload {
    w.name = name;
    w
}

/// Standard section header for bench output.
pub fn header(title: &str, source: &str) {
    println!("\n=== {title} ===");
    println!("(reproduces {source}; simulation scale — see EXPERIMENTS.md)");
}

/// Format seconds as milliseconds with 2 decimals.
pub fn ms(t: f64) -> String {
    format!("{:.2}ms", t * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_expected_sizes() {
        assert_eq!(longbench_sim(1024).len(), 11);
        assert_eq!(infinitebench_sim(1024).len(), 9);
        assert_eq!(question_first_sim(1024).len(), 4);
    }

    #[test]
    fn suite_names_unique() {
        let names: Vec<&str> = longbench_sim(1024).iter().map(|w| w.name).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }

    #[test]
    fn workload_lengths_match_constants() {
        for w in longbench_sim(1024) {
            assert_eq!(w.tokens.len(), LONGBENCH_LEN, "{}", w.name);
        }
        for w in infinitebench_sim(1024) {
            assert_eq!(w.tokens.len(), INFINITEBENCH_LEN, "{}", w.name);
        }
    }
}
