//! Table 2: LongBench-sim evaluation at 1/5 and 1/10 token budgets with
//! 1/128-equivalent extra communication.
//!
//! Scores are teacher-forced top-5 agreement with the full-attention
//! reference (×100); a hidden-state-cosine table and a planted-recall table
//! are printed as supplementary views. The property to check against the
//! paper: PQCache tops every baseline (Oracle excluded) and lands within a
//! hair of Oracle, with the gap widening at 1/10 budget.

use pqc_llm::{LlmConfig, Model};
use pqc_workloads::{evaluate_method, format_table, method_average, reference, MethodSpec, TaskResult};

fn main() {
    pqc_bench::header("Table 2 — LongBench-sim (Llama-8B-sim)", "paper Table 2");
    let model = Model::new(LlmConfig::small());
    let tasks = pqc_bench::longbench_sim(model.config().vocab_size);
    let specs = MethodSpec::paper_lineup();
    // At sim scale (dh=32) the paper's 1/128 maps to the smallest budget
    // every method can express: 1/32 of key memory (SPARQ r=1).
    let comm = 1.0 / 32.0;

    for ratio in [0.2f64, 0.1] {
        let cfg = pqc_bench::quality_eval(ratio, comm);
        let mut results: Vec<TaskResult> = Vec::new();
        for w in &tasks {
            let rf = reference(&model, w, &cfg);
            for &spec in &specs {
                results.push(evaluate_method(&model, w, &rf, spec, &cfg));
            }
        }
        println!("\n--- 1/{} tokens + 1/32-eq comm: top-5 agreement score ---", (1.0 / ratio) as usize);
        print!("{}", format_table(&results, |r| r.agreement));
        println!("\n--- hidden-state cosine x100 ---");
        print!("{}", format_table(&results, |r| 100.0 * r.hidden_cosine));

        let pqc = method_average(&results, "PQCache", |r| r.agreement);
        let best_baseline = ["H2O(C)", "SnapKV(C)", "PyramidKV(C)", "InfLLM", "SPARQ"]
            .iter()
            .map(|m| method_average(&results, m, |r| r.agreement))
            .fold(f64::NEG_INFINITY, f64::max);
        let oracle = method_average(&results, "Oracle", |r| r.agreement);
        println!(
            "PQCache avg {pqc:.2} | best baseline {best_baseline:.2} ({:+.2}%) | Oracle gap {:.2}",
            100.0 * (pqc - best_baseline) / best_baseline.max(1e-9),
            oracle - pqc
        );
    }
}
