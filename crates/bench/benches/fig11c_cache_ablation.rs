//! Fig. 11(c): decode TPOT vs GPU-cache size, including the token-level
//! cache ablation.
//!
//! Hit rates are *measured* on the simulation model with a real PQCache
//! session at each cache size, then fed into the paper-scale latency model.
//! Token-level caching additionally pays per-token management overhead.

use pqc_core::{CacheConfig, KmeansIters, LatencyMethod, LatencyModel, SelectiveSession, SessionConfig};
use pqc_llm::{LlmConfig, Model};
use pqc_workloads::{driver_tokens, needle, MethodSpec, VocabLayout};

/// Measure the steady-state hit rate of a PQCache session with the given
/// cache geometry on a needle workload.
fn measured_hit_rate(model: &Model, cache: CacheConfig, steps: usize) -> f64 {
    let layout = VocabLayout::for_vocab(model.config().vocab_size);
    let w = needle(1024, 0.5, &layout, 0xCAFE);
    let session_cfg = SessionConfig { cache, ..pqc_bench::quality_session(0.2, 1.0 / 32.0) };
    let policy = MethodSpec::pqcache_default().build(model.config().head_dim, 1.0 / 32.0);
    let start = SelectiveSession::start(model, policy, session_cfg, &w.tokens);
    let mut session = start.session;
    let driver = driver_tokens(&w, model.config().vocab_size, steps, 7);
    for &t in &driver {
        let _ = session.decode(t);
    }
    session.cache_stats().hit_rate()
}

fn main() {
    pqc_bench::header("Fig. 11(c) — TPOT vs GPU cache size", "paper Fig. 11c");
    let model = Model::new(LlmConfig::small());
    let lm = LatencyModel::paper_default();
    // Simulation cache sizes; paper-scale equivalents are 8x larger
    // (sim context 1024 vs paper 8K-128K); block 32 tokens (paper 128).
    let configs: [(&str, CacheConfig, bool); 5] = [
        ("0 (no cache)", CacheConfig { capacity_tokens: 0, block_size: 32, lfu: true, k_cache_blocks: 8 }, false),
        ("2K-eq", CacheConfig { capacity_tokens: 256, block_size: 32, lfu: true, k_cache_blocks: 8 }, false),
        ("4K-eq", CacheConfig { capacity_tokens: 512, block_size: 32, lfu: true, k_cache_blocks: 8 }, false),
        ("8K-eq", CacheConfig { capacity_tokens: 1024, block_size: 32, lfu: true, k_cache_blocks: 16 }, false),
        ("4K-eq token-level", CacheConfig { capacity_tokens: 512, block_size: 1, lfu: true, k_cache_blocks: 512 }, true),
    ];

    let s = 128 << 10;
    let k = 4096usize;
    println!("\n{:>20} | {:>10} {:>12}", "cache", "hit rate", "TPOT");
    let mut baseline = None;
    for (name, cfg, token_level) in configs {
        let hit = measured_hit_rate(&model, cfg, 48);
        let method = LatencyMethod::PqCache {
            m: 2,
            b: 6,
            iters: KmeansIters::Adaptive { min: 1, max: 100 },
            cache_hit: hit,
        };
        // Management ops per step at paper scale: per selected token for the
        // token-level cache, per block otherwise, per layer per kv head.
        let per_lh = if token_level { k as u64 } else { (k / 128) as u64 };
        let ops = per_lh * (lm.shape.n_layers as u64) * (lm.shape.n_kv_heads as u64);
        let tpot = lm.tpot(&method, s, k, ops);
        if baseline.is_none() {
            baseline = Some(tpot);
        }
        let delta = 100.0 * (1.0 - tpot / baseline.unwrap());
        println!("{:>20} | {:>10.3} {:>12}  (-{:.1}% vs no cache)", name, hit, pqc_bench::ms(tpot), delta);
    }
    println!("\nShape check: block cache cuts TPOT by tens of percent; token-level management erases the win.");
}
