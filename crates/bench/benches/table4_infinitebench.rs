//! Table 4: InfiniteBench-sim — longer contexts, retrieval-heavy tasks,
//! 1/64-equivalent extra communication (scaled to 1/16 at d_h=32).

use pqc_llm::{LlmConfig, Model};
use pqc_workloads::{evaluate_method, format_table, method_average, reference, MethodSpec, TaskResult};

fn main() {
    pqc_bench::header("Table 4 — InfiniteBench-sim (Llama-8B-sim)", "paper Table 4");
    let model = Model::new(LlmConfig::small());
    let tasks = pqc_bench::infinitebench_sim(model.config().vocab_size);
    let mut specs = MethodSpec::paper_lineup();
    // InfiniteBench runs the richer PQ config (paper: m=4, b=8 ⇒ 1/64).
    if let Some(last) = specs.last_mut() {
        *last = MethodSpec::PqCache { m: 4, b: 8, iters: 15 };
    }
    let comm = 1.0 / 16.0;

    for ratio in [0.2f64, 0.1] {
        let cfg = pqc_bench::quality_eval(ratio, comm);
        let mut results: Vec<TaskResult> = Vec::new();
        for w in &tasks {
            let rf = reference(&model, w, &cfg);
            for &spec in &specs {
                results.push(evaluate_method(&model, w, &rf, spec, &cfg));
            }
        }
        println!("\n--- 1/{} tokens + 1/16-eq comm: top-5 agreement score ---", (1.0 / ratio) as usize);
        print!("{}", format_table(&results, |r| r.agreement));
        println!("--- planted recall (retrieval tasks) ---");
        let retr: Vec<TaskResult> = results
            .iter()
            .filter(|r| r.task.starts_with("Retr"))
            .cloned()
            .collect();
        print!("{}", format_table(&retr, |r| 100.0 * r.planted_recall));

        let pqc = method_average(&results, "PQCache", |r| r.agreement);
        let best_baseline = ["H2O(C)", "SnapKV(C)", "PyramidKV(C)", "InfLLM", "SPARQ"]
            .iter()
            .map(|m| method_average(&results, m, |r| r.agreement))
            .fold(f64::NEG_INFINITY, f64::max);
        println!(
            "PQCache avg {pqc:.2} | best baseline {best_baseline:.2} ({:+.2}%)",
            100.0 * (pqc - best_baseline) / best_baseline.max(1e-9)
        );
    }
}
