//! Fig. 12(b): decoding-phase time decomposition — PQ computation, LLM
//! computation, communication (codes + top-k fetch), and the overlapped
//! end-to-end step time.

use pqc_core::{KmeansIters, LatencyMethod, LatencyModel};

fn main() {
    pqc_bench::header("Fig. 12(b) — decode time decomposition", "paper Fig. 12b");
    let lm = LatencyModel::paper_default();

    println!(
        "\n{:>8} | {:>10} {:>10} {:>10} {:>10} {:>12}",
        "seqlen", "pq-search", "llm", "pq-comm", "topk-fetch", "end-to-end"
    );
    for &s in &[16usize << 10, 32 << 10, 64 << 10, 128 << 10] {
        let k = (s / 5).min(4096);
        // Decompose WITHOUT the cache (the paper profiles components without
        // the GPU-cache optimisation, then reports optimised end-to-end).
        let no_cache = LatencyMethod::PqCache {
            m: 2,
            b: 6,
            iters: KmeansIters::Adaptive { min: 1, max: 100 },
            cache_hit: 0.0,
        };
        let with_cache = LatencyMethod::PqCache {
            m: 2,
            b: 6,
            iters: KmeansIters::Adaptive { min: 1, max: 100 },
            cache_hit: 0.6,
        };
        let d = lm.decode_step(&no_cache, s, k, &[]).decomp;
        let opt = lm.decode_step(&with_cache, s, k, &[]).decomp;
        println!(
            "{:>8} | {:>10} {:>10} {:>10} {:>10} {:>12}",
            s,
            pqc_bench::ms(d.pq_search),
            pqc_bench::ms(d.compute),
            pqc_bench::ms(d.pq_comm),
            pqc_bench::ms(d.topk_fetch),
            format!("{} (opt)", pqc_bench::ms(opt.end_to_end)),
        );
    }
    println!("\nShape check: optimised end-to-end < sum of components (codes overlapped, fetch cut by");
    println!("the GPU cache), and stays near-stable as the input grows.");
}
