//! Table 5: PQCache combined with MInference-style sparse prefill.
//!
//! MInference accelerates prefill with a Λ-shaped sparse attention pattern;
//! that changes the hidden states and hence the KVCache PQCache clusters.
//! The paper finds MInference alone degrades quality vs dense baselines and
//! that PQCache composes with it at only slight additional cost.

use pqc_llm::{LlmConfig, Model, PrefillOptions, PrefillPattern};
use pqc_workloads::{
    evaluate_method, evaluate_method_with_prefill, format_table, method_average, reference,
    MethodSpec, TaskResult,
};

fn main() {
    pqc_bench::header("Table 5 — PQCache × MInference sparse prefill", "paper Table 5");
    let model = Model::new(LlmConfig::small());
    let tasks = pqc_bench::infinitebench_sim(model.config().vocab_size);
    let cfg = pqc_bench::quality_eval(0.2, 1.0 / 16.0);
    let pqc = MethodSpec::PqCache { m: 4, b: 8, iters: 15 };

    let mut results: Vec<TaskResult> = Vec::new();
    for w in &tasks {
        let rf = reference(&model, w, &cfg); // dense full-attention reference
        // Sparse Λ-shape prefill: init stripe + local slash (MInference-like).
        let sparse_prefill = model.prefill(
            &w.tokens,
            &PrefillOptions {
                pattern: PrefillPattern::AShape { init: 8, local: 48 },
                capture_window: Some(cfg.session.obs_window),
                ..Default::default()
            },
        );

        // Full (dense), PQC (dense prefill), MInf (sparse prefill + full
        // decode), Comb (sparse prefill + PQCache decode).
        let mut full = evaluate_method(&model, w, &rf, MethodSpec::Full, &cfg);
        full.method = "Full";
        results.push(full);
        let mut p = evaluate_method(&model, w, &rf, pqc, &cfg);
        p.method = "PQC";
        results.push(p);
        let mut minf =
            evaluate_method_with_prefill(&model, w, &rf, &sparse_prefill, MethodSpec::Full, &cfg);
        minf.method = "MInf";
        results.push(minf);
        let mut comb = evaluate_method_with_prefill(&model, w, &rf, &sparse_prefill, pqc, &cfg);
        comb.method = "Comb";
        results.push(comb);
    }

    println!("\n--- top-5 agreement score (1/5 tokens, 1/16-eq comm) ---");
    print!("{}", format_table(&results, |r| r.agreement));
    let f = method_average(&results, "Full", |r| r.agreement);
    let p = method_average(&results, "PQC", |r| r.agreement);
    let m = method_average(&results, "MInf", |r| r.agreement);
    let c = method_average(&results, "Comb", |r| r.agreement);
    println!("\nFull {f:.2} ~ PQC {p:.2} > MInf {m:.2} ~ Comb {c:.2}");
    println!("Shape check: sparse prefill costs quality; adding PQCache on top costs only slightly more.");
}
