//! Fig. 12(a): prefilling-phase time decomposition — GPU compute, KVCache
//! offload, K-Means, and the overlapped end-to-end time.

use pqc_core::{KmeansIters, LatencyMethod, LatencyModel};

fn main() {
    pqc_bench::header("Fig. 12(a) — prefill time decomposition", "paper Fig. 12a");
    let lm = LatencyModel::paper_default();
    let method = LatencyMethod::PqCache {
        m: 2,
        b: 6,
        iters: KmeansIters::Adaptive { min: 1, max: 100 },
        cache_hit: 0.6,
    };

    println!(
        "\n{:>8} | {:>10} {:>10} {:>10} {:>12} {:>10}",
        "seqlen", "compute", "offload", "kmeans", "end-to-end", "hidden"
    );
    for &s in &[16usize << 10, 32 << 10, 64 << 10, 128 << 10] {
        let rep = lm.prefill(&method, s);
        let d = rep.decomp;
        println!(
            "{:>8} | {:>10} {:>10} {:>10} {:>12} {:>9.1}%",
            s,
            format!("{:.2}s", d.compute),
            format!("{:.2}s", d.offload),
            format!("{:.2}s", d.kmeans),
            format!("{:.2}s", d.end_to_end),
            100.0 * d.overlap_savings()
        );
    }
    println!("\nShape check: adaptive K-Means tracks (stays within) the compute window, so end-to-end");
    println!("time ~= GPU compute alone — offload and clustering are fully hidden.");
}
