//! Fig. 11(d): GPU-cache hit rate for LRU vs LFU across the number of
//! written-back blocks (`top-k_cache`), measured on live PQCache sessions.

use pqc_core::{CacheConfig, SelectiveSession, SessionConfig};
use pqc_llm::{LlmConfig, Model};
use pqc_workloads::{driver_tokens, qa, MethodSpec, QuestionPosition, VocabLayout};

fn hit_rate(model: &Model, lfu: bool, k_cache_blocks: usize, steps: usize) -> f64 {
    let layout = VocabLayout::for_vocab(model.config().vocab_size);
    // Paper uses HotpotQA; our multi-fact QA stand-in.
    let w = qa(1024, 8, QuestionPosition::End, &layout, 0x11D);
    let cache = CacheConfig { capacity_tokens: 512, block_size: 32, lfu, k_cache_blocks };
    let session_cfg = SessionConfig { cache, ..pqc_bench::quality_session(0.1, 1.0 / 32.0) };
    let policy = MethodSpec::pqcache_default().build(model.config().head_dim, 1.0 / 32.0);
    let start = SelectiveSession::start(model, policy, session_cfg, &w.tokens);
    let mut session = start.session;
    for &t in &driver_tokens(&w, model.config().vocab_size, steps, 3) {
        let _ = session.decode(t);
    }
    session.cache_stats().hit_rate()
}

fn main() {
    pqc_bench::header("Fig. 11(d) — cache hit rate, LRU vs LFU vs #blocks", "paper Fig. 11d");
    let model = Model::new(LlmConfig::small());
    // Cache holds 512/32 = 16 blocks at sim scale (paper: 4K/128 = 32).
    println!("\n{:>10} | {:>8} {:>8}", "k_cache", "LRU", "LFU");
    for &blocks in &[2usize, 4, 8, 16, 24, 32] {
        let lru = hit_rate(&model, false, blocks, 48);
        let lfu = hit_rate(&model, true, blocks, 48);
        println!("{blocks:>10} | {lru:>8.3} {lfu:>8.3}");
    }
    println!("\nShape check: LRU and LFU are close; hit rate rises with blocks, then degrades once");
    println!("k_cache exceeds the cache capacity (16 blocks here) and churns the update logic.");
}
