//! Fig. 10(b): PQ configuration sweep m×b at (near-)constant communication.
//!
//! The paper sweeps m·b ≤ 16 on HotpotQA and Qasper; 2×6 is the chosen
//! default. Cell value: top-5 agreement at 1/10 tokens.

use pqc_llm::{LlmConfig, Model};
use pqc_workloads::{cot_chain, evaluate_method, qa, reference, MethodSpec, QuestionPosition, VocabLayout};

fn main() {
    pqc_bench::header("Fig. 10(b) — PQ configuration m x b", "paper Fig. 10b");
    let model = Model::new(LlmConfig::mistral_sim());
    let layout = VocabLayout::for_vocab(model.config().vocab_size);
    let cfg = pqc_bench::quality_eval(0.1, 1.0 / 16.0);
    let configs: [(usize, u32); 6] = [(1, 8), (2, 4), (2, 6), (2, 8), (4, 4), (8, 2)];
    let tasks = [
        ("HotpotQA-sim", cot_chain(768, 2, &layout, 0x10B1)),
        ("Qasper-sim", qa(768, 6, QuestionPosition::End, &layout, 0x10B2)),
    ];

    print!("\n{:>14} |", "config (mxb)");
    for (m, b) in configs {
        print!("{:>10}", format!("{m}x{b}"));
    }
    println!();
    for (name, w) in &tasks {
        let rf = reference(&model, w, &cfg);
        print!("{name:>14} |");
        for (m, b) in configs {
            let spec = MethodSpec::PqCache { m, b, iters: 15 };
            let r = evaluate_method(&model, w, &rf, spec, &cfg);
            print!("{:>10.2}", r.agreement);
        }
        println!();
    }
    println!("\nShape check: robust across configurations; very low-bit settings (8x2) trail;");
    println!("2x6 is a solid default — matching the paper's choice.");
}
