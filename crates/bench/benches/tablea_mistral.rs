//! Appendix A: LongBench-sim on the second model configuration
//! (Mistral-7B stand-in: different weights, FFN width, RoPE base).

use pqc_llm::{LlmConfig, Model};
use pqc_workloads::{evaluate_method, format_table, method_average, reference, MethodSpec, TaskResult};

fn main() {
    pqc_bench::header("Appendix A — LongBench-sim on Mistral-7B-sim", "paper Appendix A");
    let model = Model::new(LlmConfig::mistral_sim());
    let tasks = pqc_bench::longbench_sim(model.config().vocab_size);
    let specs = MethodSpec::paper_lineup();
    let cfg = pqc_bench::quality_eval(0.2, 1.0 / 32.0);

    let mut results: Vec<TaskResult> = Vec::new();
    for w in &tasks[..8] {
        let rf = reference(&model, w, &cfg);
        for &spec in &specs {
            results.push(evaluate_method(&model, w, &rf, spec, &cfg));
        }
    }
    println!("\n--- top-5 agreement score (1/5 tokens) ---");
    print!("{}", format_table(&results, |r| r.agreement));
    let pqc = method_average(&results, "PQCache", |r| r.agreement);
    let best_baseline = ["H2O(C)", "SnapKV(C)", "PyramidKV(C)", "InfLLM", "SPARQ"]
        .iter()
        .map(|m| method_average(&results, m, |r| r.agreement))
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "\nPQCache avg {pqc:.2} vs best baseline {best_baseline:.2} ({:+.2}%)",
        100.0 * (pqc - best_baseline) / best_baseline.max(1e-9)
    );
    println!("Shape check: the ordering transfers to a second model configuration.");
}
