//! Fig. 10(d): score vs extra-communication budget at fixed 1/5 tokens.
//!
//! SPARQ and InfLLM improve as they may move more proxy data per step;
//! PQCache is already near-saturated at the smallest budget — the paper's
//! point that PQ structures are communication-efficient.

use pqc_llm::{LlmConfig, Model};
use pqc_workloads::{cot_chain, evaluate_method, reference, MethodSpec, VocabLayout};

fn main() {
    pqc_bench::header("Fig. 10(d) — score vs extra communication", "paper Fig. 10d");
    let model = Model::new(LlmConfig::mistral_sim());
    let layout = VocabLayout::for_vocab(model.config().vocab_size);
    let w = cot_chain(1024, 2, &layout, 0x10D);

    // Communication fractions from 1/32 (sim-scale floor) to 1/4.
    let fractions = [1.0 / 32.0, 1.0 / 16.0, 1.0 / 8.0, 1.0 / 4.0];
    // PQCache configs matched to each fraction: m·b = 16·dh·f at dh=32.
    let pq_for: [(usize, u32); 4] = [(2, 8), (4, 8), (8, 8), (8, 16)];

    println!("\n{:>10} | {:>12} {:>12} {:>12}", "comm", "SPARQ", "InfLLM", "PQCache");
    for (i, &f) in fractions.iter().enumerate() {
        let cfg = pqc_bench::quality_eval(0.2, f);
        let rf = reference(&model, &w, &cfg);
        let sparq = evaluate_method(&model, &w, &rf, MethodSpec::Sparq, &cfg).agreement;
        let infllm = evaluate_method(&model, &w, &rf, MethodSpec::InfLlm, &cfg).agreement;
        let (m, b) = pq_for[i];
        let pqc = evaluate_method(
            &model,
            &w,
            &rf,
            MethodSpec::PqCache { m, b: b.min(8), iters: 15 },
            &cfg,
        )
        .agreement;
        println!("{:>10} | {sparq:>12.2} {infllm:>12.2} {pqc:>12.2}", format!("1/{}", (1.0 / f) as usize));
    }
    println!("\nShape check: SPARQ/InfLLM climb with budget; PQCache is flat (already sufficient at 1/32).");
}
