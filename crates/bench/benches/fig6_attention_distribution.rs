//! Fig. 6: attention-score distributions at randomly-selected positions are
//! power-law-like — a small set of tokens dominates the mass.
//!
//! Runs a real prefill over a long synthetic document and prints the sorted
//! probability curves plus tail statistics for four (layer, head) samples,
//! mirroring the paper's four panels.

use pqc_llm::instrument::{sorted_curve, summarize_row};
use pqc_llm::{LlmConfig, Model, PrefillOptions};
use pqc_workloads::{aggregation, VocabLayout};

fn main() {
    pqc_bench::header("Fig. 6 — attention score distributions", "paper Fig. 6");
    let model = Model::new(LlmConfig::small());
    let layout = VocabLayout::for_vocab(model.config().vocab_size);
    // A summarisation-style document (the paper samples XSUM).
    let w = aggregation(1024, 24, &layout, 0xF16);

    let sample_rows = vec![512usize, 768, 1000];
    let out = model.prefill(
        &w.tokens,
        &PrefillOptions {
            capture_window: Some(32),
            sample_rows: sample_rows.clone(),
            ..Default::default()
        },
    );
    let caps = out.captures.expect("captures requested");

    // Four (layer, head) panels like the paper's (3,25), (11,15), (20,27), (21,16).
    let panels = [(1usize, 0usize), (3, 1), (5, 2), (7, 3)];
    for (layer, head) in panels {
        let cap = &caps[layer][head];
        println!("\n--- layer {layer}, kv head {head} ---");
        for (row, probs) in &cap.samples {
            let s = summarize_row(layer, head, *row, probs);
            println!(
                "query@{row}: keys={} gini={:.3} half-mass@{:.1}% 90%-mass@{:.1}% tail-slope={}",
                s.n_keys,
                s.gini,
                100.0 * s.keys_for_half_mass,
                100.0 * s.keys_for_90_mass,
                s.tail_slope.map_or("n/a".into(), |v| format!("{v:.2}")),
            );
            let curve = sorted_curve(probs, 8);
            let pts: Vec<String> =
                curve.iter().map(|(r, p)| format!("#{r}:{p:.4}")).collect();
            println!("  sorted curve: {}", pts.join("  "));
        }
    }
    println!("\nShape check: mass concentrates (gini >> 0, half-mass within a few % of keys) and the");
    println!("log-log tail slope is negative — the power-law behaviour motivating selective attention.");
}
