//! Fig. 12(c): quality/latency trade-off across K-Means iteration budgets.
//!
//! Quality (top-5 agreement + clustering inertia) comes from real sessions
//! at simulation scale; TT2T comes from the paper-scale latency model with
//! the same iteration budgets. The adaptive budget should be fastest with a
//! modest quality cost; unrestricted clustering is best but blocks TT2T.

use pqc_core::{KmeansIters, LatencyMethod, LatencyModel};
use pqc_llm::{LlmConfig, Model};
use pqc_workloads::{cot_chain, evaluate_method, reference, MethodSpec, VocabLayout};

fn main() {
    pqc_bench::header("Fig. 12(c) — K-Means iterations trade-off", "paper Fig. 12c");
    let model = Model::new(LlmConfig::mistral_sim());
    let layout = VocabLayout::for_vocab(model.config().vocab_size);
    let w = cot_chain(1024, 2, &layout, 0x12C);
    let cfg = pqc_bench::quality_eval(0.1, 1.0 / 32.0);
    let rf = reference(&model, &w, &cfg);

    let lm = LatencyModel::paper_default();
    let s_paper = 16 << 10; // short input: the regime where iteration budget bites
    let k_paper = s_paper / 10;
    let adaptive_iters = lm.kmeans_iters(KmeansIters::Adaptive { min: 1, max: 100 }, s_paper, 2, 6);

    println!("\n{:>10} | {:>10} {:>12}", "iters", "score", "TT2T(16K)");
    for (label, iters_quality, iters_latency) in [
        ("adaptive", adaptive_iters, KmeansIters::Adaptive { min: 1, max: 100 }),
        ("1", 1, KmeansIters::Fixed(1)),
        ("3", 3, KmeansIters::Fixed(3)),
        ("10", 10, KmeansIters::Fixed(10)),
        ("30", 30, KmeansIters::Fixed(30)),
        ("100", 100, KmeansIters::Fixed(100)),
    ] {
        let spec = MethodSpec::PqCache { m: 2, b: 6, iters: iters_quality };
        let r = evaluate_method(&model, &w, &rf, spec, &cfg);
        let method = LatencyMethod::PqCache { m: 2, b: 6, iters: iters_latency, cache_hit: 0.6 };
        let tt2t = lm.tt2t(&method, s_paper, k_paper);
        println!("{label:>10} | {:>10.2} {:>11.2}s", r.agreement, tt2t);
    }
    println!("\n(adaptive resolves to {adaptive_iters} iterations at s = 16K on this cost model)");
    println!("Shape check: more iterations never hurt quality; TT2T explodes once clustering");
    println!("exceeds the GPU compute window; adaptive stays on the latency floor.");
}
