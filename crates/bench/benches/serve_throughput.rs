//! Serving throughput: `ServeEngine` vs back-to-back sequential sessions.
//!
//! For each fleet size N, the same N fixed-seed sessions (mixed prompt
//! lengths, PQCache policy) are served two ways:
//!
//! - **sequential**: one thread runs each session to completion in turn
//!   (prefill + greedy decode) through `SelectiveSession` — the pre-serve
//!   engine's only option;
//! - **serve**: `ServeEngine` with `min(4, N)` shards and continuous
//!   batching.
//!
//! Two throughput numbers are recorded for the serve side:
//!
//! - `serve_wall_tok_s` — decoded tokens over wall-clock of the threaded
//!   run. Genuine thread parallelism; on a single-core container this is
//!   ≈ the sequential number (shards time-slice one core), on an M-core
//!   host it approaches min(shards, M)×.
//! - `serve_modeled_tok_s` — the one-core-per-shard projection, measured
//!   (not extrapolated): each shard's round-robin partition is run alone
//!   on one uncontended thread through the same engine code path, and the
//!   modeled wall is the slowest partition. Shards share nothing on the
//!   decode path, so this is what an M ≥ shards host delivers; it is the
//!   serving analogue of the latency model's overlap accounting
//!   (EXPERIMENTS.md) and is hardware-independent, so the recorded
//!   trajectory is comparable across machines.
//!
//! The `≥ 2× aggregate tokens/sec at 8 sessions` acceptance gate is
//! checked against the modeled number (and against wall-clock when enough
//! cores are present). Results land in `BENCH_serve.json` (override with
//! `BENCH_SERVE_OUT`); pass `--quick` or `BENCH_QUICK=1` for the CI smoke
//! mode.

use pqc_core::{IvfMode, SelectiveSession, SessionConfig};
use pqc_llm::{LlmConfig, Model, PrefillOptions};
use pqc_serve::{
    FaultPlan, OverloadConfig, Percentiles, Priority, ServeConfig, ServeEngine, ServeError,
    ServeReport, ServeRequest, ShardAssignment,
};
use pqc_workloads::{overload_storm_trace, shared_prefix_trace, MethodSpec, TraceConfig, VocabLayout};
use std::time::{Duration, Instant};

struct Config {
    quick: bool,
    decode_steps: usize,
}

fn session_cfg() -> SessionConfig {
    SessionConfig {
        n_init: 2,
        n_local: 8,
        token_ratio: 0.25,
        comm_fraction: 1.0 / 16.0,
        obs_window: 8,
        cache: pqc_core::CacheConfig { capacity_tokens: 64, block_size: 8, lfu: true, k_cache_blocks: 4 },
        ivf: pqc_core::IvfMode::Exact,
    }
}

fn prompt(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = pqc_tensor::Rng64::new(seed);
    (0..n).map(|_| rng.below(200) as u32).collect()
}

fn fleet_prompts(n: usize, quick: bool) -> Vec<Vec<u32>> {
    let base = if quick { 48 } else { 96 };
    (0..n).map(|i| prompt(base + 16 * (i % 3), 0xBE9C + i as u64)).collect()
}

fn policy(model: &Model) -> Box<dyn pqc_policies::SelectionPolicy + Send> {
    let _ = model;
    // MethodSpec::build returns an unsendable box; construct directly.
    Box::new(pqc_policies::PqCachePolicy::default())
}

struct Row {
    sessions: usize,
    shards: usize,
    tokens: u64,
    seq_s: f64,
    serve_wall_s: f64,
    serve_modeled_s: f64,
}

impl Row {
    fn seq_tok_s(&self) -> f64 {
        self.tokens as f64 / self.seq_s
    }
    fn wall_tok_s(&self) -> f64 {
        self.tokens as f64 / self.serve_wall_s
    }
    fn modeled_tok_s(&self) -> f64 {
        self.tokens as f64 / self.serve_modeled_s
    }
    fn wall_speedup(&self) -> f64 {
        self.seq_s / self.serve_wall_s
    }
    fn modeled_speedup(&self) -> f64 {
        self.seq_s / self.serve_modeled_s
    }
}

/// Back-to-back on one thread: sequential prefill + decode per session,
/// head-parallelism off so exactly one core is occupied.
fn run_sequential(model: &Model, cfg: &Config, prompts: &[Vec<u32>]) -> (u64, f64) {
    let scfg = session_cfg();
    let t0 = Instant::now();
    let mut tokens = 0u64;
    for toks in prompts {
        let opts = PrefillOptions {
            parallel: false,
            ..SelectiveSession::prefill_options(&scfg, toks.len())
        };
        let prefill = model.prefill(toks, &opts);
        let start =
            SelectiveSession::start_from_prefill(model, policy(model), scfg, &prefill);
        let mut session = start.session;
        let out = session.generate(&start.logits, cfg.decode_steps);
        tokens += out.len() as u64;
    }
    (tokens, t0.elapsed().as_secs_f64())
}

fn make_requests(model: &Model, cfg: &Config, prompts: &[Vec<u32>]) -> Vec<ServeRequest> {
    prompts
        .iter()
        .enumerate()
        .map(|(i, toks)| ServeRequest::new(i as u64, toks.clone(), cfg.decode_steps, policy(model)))
        .collect()
}

/// The threaded run: `shards` workers, round-robin placement (deterministic
/// balance — on hosts with fewer cores than shards, first-free lets one
/// timesliced worker hog the queue).
fn run_serve(model: &Model, cfg: &Config, prompts: &[Vec<u32>]) -> (u64, f64) {
    let n = prompts.len();
    let shards = n.min(4);
    let serve_cfg = ServeConfig {
        shards,
        max_active_per_shard: n.div_ceil(shards),
        queue_capacity: n.max(shards),
        assignment: ShardAssignment::RoundRobin,
        session: session_cfg(),
        ..Default::default()
    };
    let report =
        ServeEngine::run(model, &serve_cfg, make_requests(model, cfg, prompts)).expect("config");
    assert_eq!(report.completions.len(), n, "serve lost requests");
    (report.tokens_decoded(), report.wall.as_secs_f64())
}

/// The one-core-per-shard measurement: run each shard's round-robin
/// partition alone on a single uncontended worker (same engine, same
/// continuous-batching width) and report the slowest partition's wall —
/// what a host with one core per shard would deliver.
fn run_modeled(model: &Model, cfg: &Config, prompts: &[Vec<u32>]) -> f64 {
    let n = prompts.len();
    let shards = n.min(4);
    let mut worst = 0.0f64;
    for shard in 0..shards {
        let part: Vec<Vec<u32>> = prompts
            .iter()
            .enumerate()
            .filter(|(i, _)| i % shards == shard)
            .map(|(_, p)| p.clone())
            .collect();
        let serve_cfg = ServeConfig {
            shards: 1,
            max_active_per_shard: n.div_ceil(shards),
            queue_capacity: part.len().max(1),
            session: session_cfg(),
            ..Default::default()
        };
        let t0 = Instant::now();
        let report = ServeEngine::run(model, &serve_cfg, make_requests(model, cfg, &part))
            .expect("config");
        assert_eq!(report.completions.len(), part.len());
        worst = worst.max(t0.elapsed().as_secs_f64());
    }
    worst.max(1e-9)
}

fn bench_fleet(model: &Model, cfg: &Config, sessions: usize) -> Row {
    let prompts = fleet_prompts(sessions, cfg.quick);
    // Warm-up pass keeps first-touch page faults out of the small fleets.
    let _ = run_serve(model, cfg, &prompts[..1.min(prompts.len())]);
    let (seq_tokens, seq_s) = run_sequential(model, cfg, &prompts);
    let (serve_tokens, serve_wall_s) = run_serve(model, cfg, &prompts);
    let serve_modeled_s = run_modeled(model, cfg, &prompts);
    assert_eq!(seq_tokens, serve_tokens, "the two drivers must do identical work");
    Row {
        sessions,
        shards: sessions.min(4),
        tokens: serve_tokens,
        seq_s,
        serve_wall_s,
        serve_modeled_s,
    }
}

/// One long-context serve comparison: the same fleet decoded with the exact
/// fused selector vs IVF-routed selection (`SessionConfig::ivf`).
struct LongRow {
    prompt_len: usize,
    sessions: usize,
    decode_steps: usize,
    tokens: u64,
    exact_s: f64,
    ivf_s: f64,
}

impl LongRow {
    fn exact_tok_s(&self) -> f64 {
        self.tokens as f64 / self.exact_s
    }
    fn ivf_tok_s(&self) -> f64 {
        self.tokens as f64 / self.ivf_s
    }
    fn speedup(&self) -> f64 {
        self.exact_s / self.ivf_s
    }
}

/// Long-context fleet: one shard (deterministic schedule), the same
/// fixed-seed prompts served twice — `IvfMode::Exact` vs `Probe(4)` of the
/// default 16-cell tier. At simulation scale the decode step is
/// attention/FFN-dominated, so this row records *end-to-end integration*
/// (routing on the real serving path, sessions sharing one IVF scratch per
/// shard); the isolated selection-kernel gate at s = 262 144 lives in
/// `BENCH_kernels.json`'s `ivf_select` row.
fn bench_long_context(model: &Model, cfg: &Config) -> LongRow {
    let (prompt_len, sessions, decode_steps) =
        if cfg.quick { (192, 2, 6) } else { (1536, 4, 32) };
    let prompts: Vec<Vec<u32>> =
        (0..sessions).map(|i| prompt(prompt_len, 0x10C + i as u64)).collect();
    let run = |ivf: IvfMode| -> (u64, f64) {
        let serve_cfg = ServeConfig {
            shards: 1,
            max_active_per_shard: sessions,
            queue_capacity: sessions,
            session: SessionConfig { ivf, ..session_cfg() },
            ..Default::default()
        };
        let reqs: Vec<ServeRequest> = prompts
            .iter()
            .enumerate()
            .map(|(i, toks)| ServeRequest::new(i as u64, toks.clone(), decode_steps, policy(model)))
            .collect();
        let t0 = Instant::now();
        let report = ServeEngine::run(model, &serve_cfg, reqs).expect("config");
        assert_eq!(report.completions.len(), sessions, "long-context serve lost requests");
        (report.tokens_decoded(), t0.elapsed().as_secs_f64())
    };
    let _ = run(IvfMode::Exact); // warm-up (page faults, allocator)
    let (tokens, exact_s) = run(IvfMode::Exact);
    let (ivf_tokens, ivf_s) = run(IvfMode::Probe(4));
    assert_eq!(tokens, ivf_tokens, "both modes must decode the same token count");
    LongRow { prompt_len, sessions, decode_steps, tokens, exact_s, ivf_s }
}

/// The prefix-cache comparison: a shared-prefix fleet served with the
/// paged tier's prefix registry on vs off.
struct PrefixRow {
    sessions: usize,
    groups: usize,
    page_tokens: usize,
    lookups: u64,
    full_hits: u64,
    hit_rate: f64,
    prefix_hit_tokens: u64,
    cow_copies: u64,
    shared_peak_host_bytes: u64,
    cold_peak_host_bytes: u64,
    shared_d2h_bytes: u64,
    cold_d2h_bytes: u64,
    shared_s: f64,
    cold_s: f64,
}

impl PrefixRow {
    fn dedup_factor(&self) -> f64 {
        self.cold_peak_host_bytes as f64 / self.shared_peak_host_bytes.max(1) as f64
    }
    fn d2h_saving(&self) -> f64 {
        1.0 - self.shared_d2h_bytes as f64 / self.cold_d2h_bytes.max(1) as f64
    }
}

/// Shared-prefix fleet (system-prompt traffic): `sessions` requests over
/// `groups` identical prompts, one shard so admission is sequential and
/// the hit count is exact (`sessions - groups` full hits). The whole fleet
/// is concurrently resident, so peak host bytes compare O(unique tokens)
/// against O(sessions × tokens) with the registry off.
fn bench_prefix_cache(model: &Model, cfg: &Config) -> PrefixRow {
    let (sessions, groups) = if cfg.quick { (12, 1) } else { (32, 2) };
    let trace = shared_prefix_trace(
        &TraceConfig {
            sessions,
            // Prompts long relative to decode so the shared pages dominate
            // each session's private CoW/append tail (the dedup signal).
            prompt_lens: if cfg.quick { [160, 160, 160] } else { [192, 288, 384] },
            decode_steps: if cfg.quick { (2, 4) } else { (4, 12) },
            layout: VocabLayout::for_vocab(256),
            ..Default::default()
        },
        groups,
    );
    let requests = || -> Vec<ServeRequest> {
        trace
            .requests
            .iter()
            .map(|r| {
                ServeRequest::new(r.id, r.workload.tokens.clone(), r.decode_steps, policy(model))
            })
            .collect()
    };
    let serve_cfg = ServeConfig {
        shards: 1,
        max_active_per_shard: sessions,
        queue_capacity: sessions,
        session: session_cfg(),
        ..Default::default()
    };
    let _ = ServeEngine::run(model, &serve_cfg, requests()); // warm-up
    let t0 = Instant::now();
    let shared = ServeEngine::run(model, &serve_cfg, requests()).expect("config");
    let shared_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let cold = ServeEngine::run(
        model,
        &ServeConfig { prefix_cache: false, ..serve_cfg },
        requests(),
    )
    .expect("config");
    let cold_s = t0.elapsed().as_secs_f64();
    for (a, b) in shared.completions.iter().zip(cold.completions.iter()) {
        assert_eq!(a.generated, b.generated, "prefix cache changed results");
    }
    PrefixRow {
        sessions,
        groups,
        page_tokens: serve_cfg.page_tokens,
        lookups: shared.prefix.lookups,
        full_hits: shared.prefix.full_hits,
        hit_rate: shared.prefix.full_hit_rate(),
        prefix_hit_tokens: shared.aggregate_sharing.prefix_hit_tokens,
        cow_copies: shared.aggregate_sharing.cow_copies,
        shared_peak_host_bytes: shared.peak_host_bytes,
        cold_peak_host_bytes: cold.peak_host_bytes,
        shared_d2h_bytes: shared.aggregate_transfer.d2h_bytes,
        cold_d2h_bytes: cold.aggregate_transfer.d2h_bytes,
        shared_s,
        cold_s,
    }
}

/// The SLO-tail comparison: one long low-priority prompt sharing a shard
/// with a stream of short high-priority requests, fair-share monolithic vs
/// chunked + priority scheduling.
struct SloRow {
    long_prompt: usize,
    short_prompt: usize,
    shorts: usize,
    chunk_tokens: usize,
    fair_short_p99_ttft_s: f64,
    slo_short_p99_ttft_s: f64,
}

impl SloRow {
    fn ttft_speedup(&self) -> f64 {
        self.fair_short_p99_ttft_s / self.slo_short_p99_ttft_s.max(1e-9)
    }
}

/// One shard, two slots, a long prompt arriving first and `shorts` short
/// latency-sensitive requests queued behind it. **Fair share** (monolithic
/// prefill, one priority class) makes every short request eat the long
/// prefill head-of-line; **SLO scheduling** (chunked prefill + `High` on
/// the shorts) admits the shorts first and advances their chunks ahead of
/// the long prompt's, so the short class's TTFT tail collapses while every
/// request still decodes bit-identical tokens. The gate is the p99-TTFT
/// ratio of the short class.
fn bench_slo_tail(model: &Model, cfg: &Config) -> SloRow {
    let (long_len, short_len, chunk) = if cfg.quick { (768, 48, 96) } else { (4096, 64, 256) };
    let shorts = 6usize;
    let decode = if cfg.quick { 4 } else { 8 };
    let long_toks = prompt(long_len, 0x510A);
    let short_toks: Vec<Vec<u32>> =
        (0..shorts).map(|i| prompt(short_len, 0x510B + i as u64)).collect();
    let requests = |slo: bool| -> Vec<ServeRequest> {
        let mut reqs =
            vec![ServeRequest::new(0, long_toks.clone(), decode, policy(model))
                .with_priority(if slo { Priority::Low } else { Priority::Normal })];
        for (i, toks) in short_toks.iter().enumerate() {
            reqs.push(
                ServeRequest::new(1 + i as u64, toks.clone(), decode, policy(model))
                    .with_priority(if slo { Priority::High } else { Priority::Normal }),
            );
        }
        reqs
    };
    let fair_cfg = ServeConfig {
        shards: 1,
        max_active_per_shard: 2,
        queue_capacity: 1 + shorts,
        session: session_cfg(),
        ..Default::default()
    };
    let slo_cfg = ServeConfig { prefill_chunk_tokens: Some(chunk), ..fair_cfg.clone() };
    let _ = ServeEngine::run(model, &fair_cfg, requests(false)); // warm-up
    let fair = ServeEngine::run(model, &fair_cfg, requests(false)).expect("config");
    let slo = ServeEngine::run(model, &slo_cfg, requests(true)).expect("config");
    // Scheduling must never change results: bit-identical decodes per id.
    for (a, b) in fair.completions.iter().zip(slo.completions.iter()) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.generated, b.generated, "SLO scheduling changed request {}", a.id);
    }
    // The short class's TTFT tail (id 0 is the long prompt).
    let short_p99 = |r: &ServeReport| -> f64 {
        let ttfts: Vec<f64> = r
            .completions
            .iter()
            .filter(|c| c.id != 0)
            .map(|c| c.ttft_wall.expect("short request must reach a first token").as_secs_f64())
            .collect();
        assert_eq!(ttfts.len(), shorts);
        Percentiles::from_samples(&ttfts).p99
    };
    SloRow {
        long_prompt: long_len,
        short_prompt: short_len,
        shorts,
        chunk_tokens: chunk,
        fair_short_p99_ttft_s: short_p99(&fair),
        slo_short_p99_ttft_s: short_p99(&slo),
    }
}

/// The crash-recovery comparison: checkpoint cadence overhead on a clean
/// run, and the recovered-token fraction when a shard dies mid-run.
struct RecoveryRow {
    sessions: usize,
    checkpoint_interval: u64,
    base_wall_s: f64,
    ckpt_wall_s: f64,
    checkpoints: u64,
    checkpoint_bytes: u64,
    kill_tick: u64,
    recovered_sessions: u64,
    recovered_tokens: u64,
    tokens: u64,
}

impl RecoveryRow {
    fn overhead(&self) -> f64 {
        self.ckpt_wall_s / self.base_wall_s.max(1e-9) - 1.0
    }
    fn recovered_fraction(&self) -> f64 {
        self.recovered_tokens as f64 / self.tokens.max(1) as f64
    }
}

/// Three runs over the same 8-session fleet: checkpointing off (base wall),
/// checkpointing every 4 ticks (overhead numerator), and checkpointing plus
/// a worker kill mid-decode (failover). Walls are min-of-3 — the overhead
/// is a ratio of two small numbers, so scheduler noise must not decide the
/// gate. Both the cadence and the failover must leave every request's
/// tokens exactly equal to the base run's: the overhead being measured is
/// the cost of durability, never a behaviour change.
fn bench_recovery(model: &Model, cfg: &Config) -> RecoveryRow {
    let sessions = 8usize;
    let interval = 4u64;
    // Not a multiple of the interval: the last checkpoints strictly predate
    // the kill, so failover replays a real gap.
    let kill_tick = if cfg.quick { 6 } else { 18 };
    let prompts = fleet_prompts(sessions, cfg.quick);
    let serve_cfg = ServeConfig {
        shards: 2,
        max_active_per_shard: sessions.div_ceil(2),
        queue_capacity: sessions,
        assignment: ShardAssignment::RoundRobin,
        session: session_cfg(),
        ..Default::default()
    };
    let ckpt_cfg = ServeConfig { checkpoint_every_ticks: Some(interval), ..serve_cfg.clone() };
    let run = |scfg: &ServeConfig| -> ServeReport {
        ServeEngine::run(model, scfg, make_requests(model, cfg, &prompts)).expect("config")
    };
    let _ = run(&serve_cfg); // warm-up
    let (mut base_wall_s, mut ckpt_wall_s) = (f64::INFINITY, f64::INFINITY);
    let (mut base, mut ckpt) = (None, None);
    for _ in 0..3 {
        let b = run(&serve_cfg);
        base_wall_s = base_wall_s.min(b.wall.as_secs_f64());
        base = Some(b);
        let c = run(&ckpt_cfg);
        ckpt_wall_s = ckpt_wall_s.min(c.wall.as_secs_f64());
        ckpt = Some(c);
    }
    let (base, ckpt) = (base.expect("3 iters"), ckpt.expect("3 iters"));
    for a in &base.completions {
        let b = ckpt.completion(a.id).expect("id present under checkpointing");
        assert_eq!(a.generated, b.generated, "checkpointing changed request {}", a.id);
    }

    let fail_cfg = ServeConfig {
        faults: Some(FaultPlan::seeded(0xFA11).with_worker_kill(0, kill_tick)),
        ..ckpt_cfg
    };
    let failed =
        ServeEngine::run(model, &fail_cfg, make_requests(model, cfg, &prompts)).expect("config");
    assert_eq!(failed.worker_panics, 1, "the planned kill must fire");
    for a in &base.completions {
        let b = failed.completion(a.id).expect("id present under failover");
        assert!(b.is_success(), "request {} lost to the kill: {:?}", a.id, b.failure);
        assert_eq!(a.generated, b.generated, "failover changed request {}", a.id);
    }

    RecoveryRow {
        sessions,
        checkpoint_interval: interval,
        base_wall_s,
        ckpt_wall_s,
        checkpoints: ckpt.total_checkpoints(),
        checkpoint_bytes: ckpt.total_checkpoint_bytes(),
        kill_tick,
        recovered_sessions: failed.total_recovered_sessions(),
        recovered_tokens: failed.total_recovered_tokens(),
        tokens: ckpt.tokens_decoded(),
    }
}

/// The brownout comparison: the same 4× overload storm served shed-only
/// (no controller — overloaded requests blow their wall SLOs and are
/// reaped) vs with the default adaptive brownout policy.
struct BrownoutRow {
    sessions: usize,
    overload_factor: f64,
    slots: usize,
    token_cost_s: f64,
    // Shed-only (controller off).
    shed_completed: usize,
    shed_missed: usize,
    shed_shed: usize,
    shed_good_tokens: u64,
    shed_wall_s: f64,
    shed_high_p99_ttft_s: f64,
    // Adaptive (default OverloadConfig).
    adpt_completed: usize,
    adpt_missed: usize,
    adpt_shed: usize,
    adpt_good_tokens: u64,
    adpt_wall_s: f64,
    adpt_high_p99_ttft_s: f64,
    adpt_degraded_tokens: u64,
    adpt_deferrals: u64,
    adpt_ctrl_sheds: u64,
    adpt_pressured_ticks: u64,
    /// Mean Normal-class TPOT under each regime — the visible mechanism:
    /// degraded effort must actually make contended ticks cheaper.
    shed_normal_tpot_s: f64,
    adpt_normal_tpot_s: f64,
}

impl BrownoutRow {
    fn shed_goodput(&self) -> f64 {
        self.shed_good_tokens as f64 / self.shed_wall_s.max(1e-9)
    }
    fn adpt_goodput(&self) -> f64 {
        self.adpt_good_tokens as f64 / self.adpt_wall_s.max(1e-9)
    }
    fn goodput_ratio(&self) -> f64 {
        self.adpt_goodput() / self.shed_goodput().max(1e-9)
    }
    fn high_ttft_ratio(&self) -> f64 {
        self.adpt_high_p99_ttft_s / self.shed_high_p99_ttft_s.max(1e-9)
    }
}

/// One shard, four slots, a storm trace whose middle half arrives at 4×
/// the sustainable rate, every request carrying a wall-clock SLO
/// calibrated from the measured full-effort token cost (tight for Low,
/// moderate for Normal, generous for High). **Shed-only** admits
/// everything at full effort and loses whole requests — and all the slot
/// time they burned — to mid-decode deadline reaping. **Adaptive** runs
/// the default brownout ladder: Low/Normal effort drops within the recall
/// floor (cheaper ticks for everyone), Low admissions defer out of the
/// storm (their SLO clock starts at admission, so deferred work completes
/// in the drain instead of missing in the peak), and Critical sheds fail
/// fast instead of wasting decode. Goodput = SLO-good tokens per wall
/// second.
fn bench_brownout(model: &Model, cfg: &Config) -> BrownoutRow {
    let sessions = if cfg.quick { 12 } else { 32 };
    let overload_factor = 4.0;
    let slots = 4usize;
    let trace = overload_storm_trace(
        &TraceConfig {
            sessions,
            // Sustainable base rate: sessions hold a slot for roughly
            // their decode length, so 0.15 arrivals/tick × ~24-tick holds
            // ≈ 3.6 concurrent demand over 4 slots. The warmup and drain
            // quarters are then genuinely nominal, and the 4× middle is a
            // genuine overload (~14 concurrent demand) — not just a
            // deeper shade of an always-saturated shard.
            arrival_rate: 0.15,
            // Long prompts on purpose: the wider the middle region, the
            // larger the k-dependent share of a decode step (selection
            // scan, attention rows, cache fetches) — the share brownout
            // effort can actually shrink.
            prompt_lens: if cfg.quick { [96, 128, 160] } else { [128, 192, 256] },
            prompt_mix: [0.5, 0.3, 0.2],
            decode_steps: if cfg.quick { (8, 14) } else { (16, 32) },
            priority_mix: [1.2, 1.2, 0.6],
            layout: VocabLayout::for_vocab(256),
            seed: 0xB10,
        },
        overload_factor,
    );
    let serve_cfg = |overload: Option<OverloadConfig>| ServeConfig {
        shards: 1,
        max_active_per_shard: slots,
        queue_capacity: sessions.max(slots),
        assignment: ShardAssignment::RoundRobin,
        // IVF-routed selection: the probe-cap half of the effort ladder
        // only exists on this path (Exact mode has no probe to narrow).
        session: SessionConfig { ivf: IvfMode::Probe(8), ..session_cfg() },
        overload,
        ..Default::default()
    };
    let requests = |deadline: Option<&dyn Fn(&pqc_workloads::TraceRequest) -> Duration>| {
        trace
            .requests
            .iter()
            .map(|r| {
                let mut req = ServeRequest::new(
                    r.id,
                    r.workload.tokens.clone(),
                    r.decode_steps,
                    policy(model),
                )
                .with_arrival_tick(r.arrival_tick)
                .with_priority(match r.priority {
                    0 => Priority::Low,
                    1 => Priority::Normal,
                    _ => Priority::High,
                });
                if let Some(f) = deadline {
                    req = req.with_wall_deadline(f(r));
                }
                req
            })
            .collect::<Vec<_>>()
    };

    // Warm-up: the whole storm once, no deadlines, so first-touch page
    // faults and allocator growth don't land on the measured runs.
    let _ = ServeEngine::run(model, &serve_cfg(None), requests(None)).expect("config");

    // Nominal-service calibration: one longest-tier request alone on the
    // shard measures the *uncontended* prefill wall and per-token decode
    // cost. SLOs are set against nominal service — what a correctly
    // provisioned system delivers — precisely so that a 4× storm at full
    // effort cannot meet them; that is what makes it an overload.
    let solo_len = if cfg.quick { 128 } else { 192 };
    let solo_steps = if cfg.quick { 8 } else { 18 };
    let solo = || {
        let req = vec![ServeRequest::new(
            0,
            prompt(solo_len, 0xB11),
            solo_steps,
            policy(model),
        )];
        ServeEngine::run(model, &serve_cfg(None), req).expect("config")
    };
    let _ = solo(); // calibration warm-up
    let cal = solo();
    let c = &cal.completions[0];
    let prefill_solo_s = c.ttft_wall.expect("solo prefill").as_secs_f64();
    let token_cost_s = c.tpot_wall.expect("solo decode").as_secs_f64();

    // Per-class wall SLO from nominal service: prefill scaled by prompt
    // length, decode at the nominal rate with a fixed contention headroom,
    // then the class's slack. Low is tight (the deferrable/degradable
    // class), Normal moderate, High generous (the protected class must
    // never be the one missing).
    const HEADROOM: f64 = 3.0;
    let slo = move |r: &pqc_workloads::TraceRequest| -> Duration {
        let slack = match r.priority {
            0 => 1.15,
            1 => 1.2,
            _ => 8.0,
        };
        let prefill = prefill_solo_s * r.workload.tokens.len() as f64 / solo_len as f64;
        let decode = token_cost_s * HEADROOM * r.decode_steps as f64;
        Duration::from_secs_f64(slack * (prefill + decode))
    };

    let shed = ServeEngine::run(model, &serve_cfg(None), requests(Some(&slo))).expect("config");
    let adpt =
        ServeEngine::run(model, &serve_cfg(Some(OverloadConfig::default())), requests(Some(&slo)))
            .expect("config");

    let tally = |r: &ServeReport| -> (usize, usize, usize, u64) {
        let mut completed = 0;
        let mut missed = 0;
        let mut shed_n = 0;
        let mut good = 0u64;
        for c in &r.completions {
            match &c.failure {
                None => {
                    completed += 1;
                    good += c.generated.len() as u64;
                }
                Some(f) if matches!(f.error, ServeError::DeadlineExceeded { .. }) => missed += 1,
                Some(_) => shed_n += 1,
            }
        }
        (completed, missed, shed_n, good)
    };
    let (shed_completed, shed_missed, shed_shed, shed_good_tokens) = tally(&shed);
    let (adpt_completed, adpt_missed, adpt_shed, adpt_good_tokens) = tally(&adpt);

    BrownoutRow {
        sessions,
        overload_factor,
        slots,
        token_cost_s,
        shed_completed,
        shed_missed,
        shed_shed,
        shed_good_tokens,
        shed_wall_s: shed.wall.as_secs_f64(),
        shed_high_p99_ttft_s: shed.latency_for(Priority::High).ttft_wall.p99,
        adpt_completed,
        adpt_missed,
        adpt_shed,
        adpt_good_tokens,
        adpt_wall_s: adpt.wall.as_secs_f64(),
        adpt_high_p99_ttft_s: adpt.latency_for(Priority::High).ttft_wall.p99,
        adpt_degraded_tokens: adpt.overload.degraded_tokens,
        adpt_deferrals: adpt.overload.deferrals,
        adpt_ctrl_sheds: adpt.overload.sheds,
        adpt_pressured_ticks: adpt.overload.pressured_ticks(),
        shed_normal_tpot_s: shed.latency_for(Priority::Normal).tpot_wall.mean,
        adpt_normal_tpot_s: adpt.latency_for(Priority::Normal).tpot_wall.mean,
    }
}

#[allow(clippy::too_many_arguments)] // one flat emitter for the whole record
fn write_json(
    path: &std::path::Path,
    mode: &str,
    cores: usize,
    rows: &[Row],
    long: &LongRow,
    prefix: &PrefixRow,
    slo: &SloRow,
    recovery: &RecoveryRow,
    brownout: &BrownoutRow,
) {
    let unix_s = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let max_shards = rows.iter().map(|r| r.shards).max().unwrap_or(0);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"suite\": \"serve_throughput\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    // `host_cores` comes from std::thread::available_parallelism at run
    // time; the two annotation fields make the wall column self-describing
    // instead of leaving its interpretation to the reader.
    out.push_str(&format!("  \"host_cores\": {cores},\n"));
    out.push_str(&format!(
        "  \"wall_expresses_parallelism\": {},\n",
        cores >= max_shards
    ));
    if cores < max_shards {
        out.push_str(&format!(
            "  \"wall_note\": \"{cores}-core host cannot express {max_shards}-shard \
             parallelism: wall_speedup ≈ 1x is expected here (shards time-slice the \
             cores); modeled_speedup is the hardware-independent metric\",\n"
        ));
    }
    out.push_str(&format!("  \"unix_time_s\": {unix_s},\n"));
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"sessions\": {}, \"shards\": {}, \"tokens\": {}, \
             \"seq_tok_per_s\": {:.1}, \"serve_wall_tok_per_s\": {:.1}, \
             \"serve_modeled_tok_per_s\": {:.1}, \"wall_speedup\": {:.3}, \
             \"modeled_speedup\": {:.3}}}{}\n",
            r.sessions,
            r.shards,
            r.tokens,
            r.seq_tok_s(),
            r.wall_tok_s(),
            r.modeled_tok_s(),
            r.wall_speedup(),
            r.modeled_speedup(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"long_context\": {{\"prompt_len\": {}, \"sessions\": {}, \"decode_steps\": {}, \
         \"tokens\": {}, \"exact_tok_per_s\": {:.1}, \"ivf_tok_per_s\": {:.1}, \
         \"ivf_speedup\": {:.3}, \"note\": \"end-to-end serve wall with IvfMode::Probe(4) vs \
         Exact at simulation scale, where decode steps are attention/FFN-dominated; the \
         isolated selection-kernel gate (>=2x at s=262144) is the ivf_select row of \
         BENCH_kernels.json\"}},\n",
        long.prompt_len,
        long.sessions,
        long.decode_steps,
        long.tokens,
        long.exact_tok_s(),
        long.ivf_tok_s(),
        long.speedup(),
    ));
    out.push_str(&format!(
        "  \"prefix_cache\": {{\"sessions\": {}, \"groups\": {}, \"page_tokens\": {}, \
         \"lookups\": {}, \"full_hits\": {}, \"hit_rate\": {:.4}, \
         \"prefix_hit_tokens\": {}, \"cow_copies\": {}, \
         \"shared_peak_host_bytes\": {}, \"cold_peak_host_bytes\": {}, \
         \"dedup_factor\": {:.3}, \"shared_d2h_bytes\": {}, \"cold_d2h_bytes\": {}, \
         \"d2h_saving\": {:.3}, \"shared_wall_s\": {:.4}, \"cold_wall_s\": {:.4}, \
         \"note\": \"{} sessions over {} identical prompts, 1 shard (sequential admission \
         => exactly groups misses); peak bytes compare O(unique tokens) vs O(sessions x \
         tokens); gates: hit_rate >= 0.9 and dedup_factor >= 2.0 in full mode\"}},\n",
        prefix.sessions,
        prefix.groups,
        prefix.page_tokens,
        prefix.lookups,
        prefix.full_hits,
        prefix.hit_rate,
        prefix.prefix_hit_tokens,
        prefix.cow_copies,
        prefix.shared_peak_host_bytes,
        prefix.cold_peak_host_bytes,
        prefix.dedup_factor(),
        prefix.shared_d2h_bytes,
        prefix.cold_d2h_bytes,
        prefix.d2h_saving(),
        prefix.shared_s,
        prefix.cold_s,
        prefix.sessions,
        prefix.groups,
    ));
    out.push_str(&format!(
        "  \"slo_tail\": {{\"long_prompt\": {}, \"short_prompt\": {}, \"shorts\": {}, \
         \"chunk_tokens\": {}, \"fair_short_p99_ttft_s\": {:.6}, \
         \"slo_short_p99_ttft_s\": {:.6}, \"ttft_speedup\": {:.3}, \
         \"note\": \"{} short high-priority requests queued behind a {}-token prompt on 1 \
         shard / 2 slots; fair share is monolithic single-class admission, SLO is chunked \
         prefill ({} tokens/tick) + priority scheduling; p99 TTFT of the short class, \
         decodes bit-identical across both runs; gate: ttft_speedup >= 5.0 in full mode\"}},\n",
        slo.long_prompt,
        slo.short_prompt,
        slo.shorts,
        slo.chunk_tokens,
        slo.fair_short_p99_ttft_s,
        slo.slo_short_p99_ttft_s,
        slo.ttft_speedup(),
        slo.shorts,
        slo.long_prompt,
        slo.chunk_tokens,
    ));
    out.push_str(&format!(
        "  \"recovery\": {{\"sessions\": {}, \"checkpoint_interval_ticks\": {}, \
         \"base_wall_s\": {:.6}, \"ckpt_wall_s\": {:.6}, \"checkpoint_overhead\": {:.4}, \
         \"checkpoints\": {}, \"checkpoint_bytes\": {}, \"kill_tick\": {}, \
         \"recovered_sessions\": {}, \"recovered_tokens\": {}, \
         \"recovered_token_fraction\": {:.4}, \
         \"note\": \"{} sessions / 2 shards checkpointed every {} ticks; overhead is the \
         min-of-3 wall ratio vs checkpointing off (both runs bit-identical); the failover \
         column kills shard 0 at tick {} and replays its sessions on the survivor, again \
         bit-identical; gates: checkpoint_overhead <= 0.10 and recovered_tokens > 0 in \
         full mode\"}},\n",
        recovery.sessions,
        recovery.checkpoint_interval,
        recovery.base_wall_s,
        recovery.ckpt_wall_s,
        recovery.overhead(),
        recovery.checkpoints,
        recovery.checkpoint_bytes,
        recovery.kill_tick,
        recovery.recovered_sessions,
        recovery.recovered_tokens,
        recovery.recovered_fraction(),
        recovery.sessions,
        recovery.checkpoint_interval,
        recovery.kill_tick,
    ));
    out.push_str(&format!(
        "  \"brownout\": {{\"sessions\": {}, \"overload_factor\": {:.1}, \"slots\": {}, \
         \"token_cost_s\": {:.8}, \
         \"shed_only\": {{\"completed\": {}, \"deadline_missed\": {}, \"shed\": {}, \
         \"good_tokens\": {}, \"wall_s\": {:.4}, \"goodput_tok_per_s\": {:.1}, \
         \"high_p99_ttft_s\": {:.6}}}, \
         \"adaptive\": {{\"completed\": {}, \"deadline_missed\": {}, \"shed\": {}, \
         \"good_tokens\": {}, \"wall_s\": {:.4}, \"goodput_tok_per_s\": {:.1}, \
         \"high_p99_ttft_s\": {:.6}, \"degraded_tokens\": {}, \"deferrals\": {}, \
         \"ctrl_sheds\": {}, \"pressured_ticks\": {}}}, \
         \"goodput_ratio\": {:.3}, \"high_ttft_ratio\": {:.3}, \
         \"note\": \"the same {:.0}x overload storm ({} sessions, 1 shard / {} slots, \
         per-class wall SLOs calibrated from the measured full-effort token cost) served \
         shed-only (no controller) vs with the default adaptive brownout ladder; goodput = \
         SLO-good tokens per wall second; gates: goodput_ratio >= 1.5 and \
         high_ttft_ratio <= 1.25 in full mode\"}}\n",
        brownout.sessions,
        brownout.overload_factor,
        brownout.slots,
        brownout.token_cost_s,
        brownout.shed_completed,
        brownout.shed_missed,
        brownout.shed_shed,
        brownout.shed_good_tokens,
        brownout.shed_wall_s,
        brownout.shed_goodput(),
        brownout.shed_high_p99_ttft_s,
        brownout.adpt_completed,
        brownout.adpt_missed,
        brownout.adpt_shed,
        brownout.adpt_good_tokens,
        brownout.adpt_wall_s,
        brownout.adpt_goodput(),
        brownout.adpt_high_p99_ttft_s,
        brownout.adpt_degraded_tokens,
        brownout.adpt_deferrals,
        brownout.adpt_ctrl_sheds,
        brownout.adpt_pressured_ticks,
        brownout.goodput_ratio(),
        brownout.high_ttft_ratio(),
        brownout.overload_factor,
        brownout.sessions,
        brownout.slots,
    ));
    out.push_str("}\n");
    std::fs::write(path, out).expect("write BENCH_serve.json");
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("BENCH_QUICK").map(|v| v == "1").unwrap_or(false);
    let cfg = Config { quick, decode_steps: if quick { 8 } else { 32 } };
    let mode = if quick { "quick" } else { "full" };
    let cores = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    println!("serve throughput ({mode} mode, {cores} host cores) — ServeEngine vs back-to-back\n");

    let model = Model::new(LlmConfig::tiny());
    // MethodSpec link check: the serve fleet runs the same PQCache policy
    // the evaluation lineup names.
    assert_eq!(MethodSpec::pqcache_default().name(), "PQCache");

    let fleet_sizes: &[usize] = if quick { &[2, 8] } else { &[1, 2, 4, 8] };
    let rows: Vec<Row> = fleet_sizes.iter().map(|&n| bench_fleet(&model, &cfg, n)).collect();
    let long = bench_long_context(&model, &cfg);
    let prefix = bench_prefix_cache(&model, &cfg);
    let slo = bench_slo_tail(&model, &cfg);
    let recovery = bench_recovery(&model, &cfg);
    let brownout = bench_brownout(&model, &cfg);

    println!(
        "{:>8} {:>7} {:>8} {:>12} {:>12} {:>14} {:>10} {:>12}",
        "sessions", "shards", "tokens", "seq tok/s", "wall tok/s", "modeled tok/s", "wall spd", "modeled spd"
    );
    for r in &rows {
        println!(
            "{:>8} {:>7} {:>8} {:>12.1} {:>12.1} {:>14.1} {:>9.2}x {:>11.2}x",
            r.sessions,
            r.shards,
            r.tokens,
            r.seq_tok_s(),
            r.wall_tok_s(),
            r.modeled_tok_s(),
            r.wall_speedup(),
            r.modeled_speedup()
        );
    }

    println!(
        "\nlong-context fleet ({} x {}-token prompts, {} steps): exact {:.1} tok/s, \
         ivf {:.1} tok/s ({:.2}x end-to-end; selection-kernel gate lives in BENCH_kernels)",
        long.sessions,
        long.prompt_len,
        long.decode_steps,
        long.exact_tok_s(),
        long.ivf_tok_s(),
        long.speedup()
    );

    println!(
        "\nprefix cache ({} sessions over {} prompts, {}-token pages): hit rate {:.3}, \
         host peak {} -> {} bytes ({:.2}x dedup), d2h {} -> {} bytes ({:.0}% saved)",
        prefix.sessions,
        prefix.groups,
        prefix.page_tokens,
        prefix.hit_rate,
        prefix.cold_peak_host_bytes,
        prefix.shared_peak_host_bytes,
        prefix.dedup_factor(),
        prefix.cold_d2h_bytes,
        prefix.shared_d2h_bytes,
        100.0 * prefix.d2h_saving()
    );

    println!(
        "\nslo tail ({} shorts of {} tokens behind a {}-token prompt, {}-token chunks): \
         short-class p99 TTFT {:.4}s fair-share -> {:.4}s SLO ({:.1}x sooner)",
        slo.shorts,
        slo.short_prompt,
        slo.long_prompt,
        slo.chunk_tokens,
        slo.fair_short_p99_ttft_s,
        slo.slo_short_p99_ttft_s,
        slo.ttft_speedup()
    );

    println!(
        "\nrecovery ({} sessions, checkpoint every {} ticks): overhead {:.1}% \
         ({:.4}s -> {:.4}s, {} checkpoints / {} bytes); kill at tick {}: {} sessions / {} \
         tokens replayed bit-identically ({:.0}% of decode)",
        recovery.sessions,
        recovery.checkpoint_interval,
        100.0 * recovery.overhead(),
        recovery.base_wall_s,
        recovery.ckpt_wall_s,
        recovery.checkpoints,
        recovery.checkpoint_bytes,
        recovery.kill_tick,
        recovery.recovered_sessions,
        recovery.recovered_tokens,
        100.0 * recovery.recovered_fraction()
    );

    println!(
        "\nbrownout ({} sessions at {:.0}x overload, 1 shard / {} slots): shed-only \
         {}/{}/{} ok/missed/shed, {:.1} good tok/s; adaptive {}/{}/{}, {:.1} good tok/s \
         ({:.2}x goodput; {} degraded tokens, {} deferrals, {} ctrl sheds); Normal tpot \
         {:.6}s -> {:.6}s; High p99 TTFT {:.4}s -> {:.4}s",
        brownout.sessions,
        brownout.overload_factor,
        brownout.slots,
        brownout.shed_completed,
        brownout.shed_missed,
        brownout.shed_shed,
        brownout.shed_goodput(),
        brownout.adpt_completed,
        brownout.adpt_missed,
        brownout.adpt_shed,
        brownout.adpt_goodput(),
        brownout.goodput_ratio(),
        brownout.adpt_degraded_tokens,
        brownout.adpt_deferrals,
        brownout.adpt_ctrl_sheds,
        brownout.shed_normal_tpot_s,
        brownout.adpt_normal_tpot_s,
        brownout.shed_high_p99_ttft_s,
        brownout.adpt_high_p99_ttft_s,
    );

    // Acceptance gate: ≥ 2× aggregate tokens/sec at 8 sessions. The
    // modeled number is hardware-independent and gates in full mode; the
    // wall-clock number additionally gates when the host has the cores to
    // express shard parallelism.
    let mut gate_failed = false;
    if let Some(r8) = rows.iter().find(|r| r.sessions == 8) {
        let modeled = r8.modeled_speedup();
        if modeled < 2.0 {
            println!("GATE MISS: modeled speedup at 8 sessions {modeled:.2}x below 2.0x");
            gate_failed = true;
        }
        let wall = r8.wall_speedup();
        if cores >= 4 && wall < 2.0 {
            println!("GATE MISS: wall speedup at 8 sessions {wall:.2}x below 2.0x on {cores} cores");
            gate_failed = true;
        }
        if cores < 4 {
            println!(
                "\nnote: {cores}-core host cannot express {}-shard wall-clock parallelism; \
                 wall speedup {wall:.2}x is expected ≈1x here and ≥2x on ≥4 cores \
                 (the modeled number, {modeled:.2}x, is the hardware-independent gate)",
                r8.shards
            );
        }
    }

    // Prefix-cache gates: a shared-prefix fleet must full-hit > 0.9 of its
    // admissions and at least halve the host peak (O(unique tokens)).
    let hit_rate = prefix.hit_rate;
    if hit_rate < 0.9 {
        println!("GATE MISS: prefix-cache hit rate {hit_rate:.3} below 0.9");
        gate_failed = true;
    }
    let dedup = prefix.dedup_factor();
    if dedup < 2.0 {
        println!("GATE MISS: prefix-cache dedup factor {dedup:.2}x below 2.0x");
        gate_failed = true;
    }

    // SLO gate: the high-priority short class must reach its first token at
    // least 5× sooner (p99) under chunked + priority scheduling than under
    // fair share. A ratio of wall times on the same host, so the gate is
    // hardware-independent.
    let slo_speedup = slo.ttft_speedup();
    if slo_speedup < 5.0 {
        println!("GATE MISS: SLO short-class p99 TTFT speedup {slo_speedup:.2}x below 5.0x");
        gate_failed = true;
    }

    // Recovery gates: checkpointing must cost at most 10% of wall, and a
    // mid-run kill must actually replay tokens (failover exercised, not
    // vacuously green).
    let overhead = recovery.overhead();
    if overhead > 0.10 {
        println!("GATE MISS: checkpoint overhead {:.1}% above 10%", 100.0 * overhead);
        gate_failed = true;
    }
    if recovery.recovered_tokens == 0 {
        println!("GATE MISS: shard kill at tick {} recovered no tokens", recovery.kill_tick);
        gate_failed = true;
    }

    // Brownout gates: adaptive degradation must convert the storm into at
    // least 1.5× the shed-only goodput, and must not buy it by letting the
    // protected class's TTFT tail slip (1.25 tolerance absorbs wall noise
    // on a ratio of two small tails).
    let goodput_ratio = brownout.goodput_ratio();
    if goodput_ratio < 1.5 {
        println!("GATE MISS: brownout goodput ratio {goodput_ratio:.2}x below 1.5x");
        gate_failed = true;
    }
    let ttft_ratio = brownout.high_ttft_ratio();
    if ttft_ratio > 1.25 {
        println!(
            "GATE MISS: brownout High-priority p99 TTFT ratio {ttft_ratio:.2} above 1.25 \
             (the protected class got slower)"
        );
        gate_failed = true;
    }

    let path = std::env::var("BENCH_SERVE_OUT").unwrap_or_else(|_| {
        format!("{}/../../BENCH_serve.json", env!("CARGO_MANIFEST_DIR"))
    });
    let path = std::path::PathBuf::from(path);
    write_json(&path, mode, cores, &rows, &long, &prefix, &slo, &recovery, &brownout);
    println!("\nwrote {}", path.display());
    if gate_failed && !quick {
        std::process::exit(1);
    }
}
