//! Fig. 11(b): Time Per Output Token (TPOT) vs sequence length.
//!
//! The retrieval set size is capped by GPU memory (paper §5), so SPARQ's
//! per-step full-key scan is the only traffic that keeps growing with `s` —
//! reproducing the paper's "SPARQ scales linearly, everything else stays
//! below human reading speed (~333 tokens/min ≈ 0.18 s/token)".

use pqc_core::{KmeansIters, LatencyMethod, LatencyModel};

fn main() {
    pqc_bench::header("Fig. 11(b) — Time Per Output Token", "paper Fig. 11b");
    let lm = LatencyModel::paper_default();
    let methods = [
        LatencyMethod::H2o,
        LatencyMethod::SnapKv,
        LatencyMethod::PyramidKv,
        LatencyMethod::Sparq { r: 2 },
        LatencyMethod::InfLlm { block: 128, reps: 2 },
        LatencyMethod::PqCache {
            m: 2,
            b: 6,
            iters: KmeansIters::Adaptive { min: 1, max: 100 },
            cache_hit: 0.6,
        },
    ];

    print!("\n{:>8} |", "seqlen");
    for m in &methods {
        print!("{:>12}", m.name());
    }
    println!();
    for &s in &[8usize << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10] {
        let k = (s / 5).min(4096);
        print!("{s:>8} |");
        for m in &methods {
            print!("{:>12}", pqc_bench::ms(lm.tpot(m, s, k, 0)));
        }
        println!();
    }
    println!("\nHuman reading speed budget: 180.00ms/token.");
    println!("Shape check: SPARQ grows linearly and crosses the budget; PQCache stays near-flat.");
}
