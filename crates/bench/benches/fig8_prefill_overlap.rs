//! Fig. 8: execution time of one-layer transformer computation, offloading,
//! and K-Means clustering at the prefilling phase, vs sequence length.
//!
//! The paper's point: compute is quadratic in `s` while offload and
//! clustering are linear, so past a crossover the GPU hides both. The
//! adaptive iteration budget (Eq. 3) keeps clustering inside the compute
//! window on the short side of the crossover.

use pqc_core::{KmeansIters, LatencyModel};
use pqc_memhier::{CostModel, ModelShape};

fn main() {
    pqc_bench::header("Fig. 8 — one-layer prefill compute vs offload vs clustering", "paper Fig. 8");
    let cost = CostModel::paper_testbed();
    let shape = ModelShape::llama3_8b();
    let lm = LatencyModel::paper_default();
    let adaptive = KmeansIters::Adaptive { min: 1, max: 100 };

    println!(
        "\n{:>8} | {:>12} {:>12} {:>16} {:>16} {:>8}",
        "seqlen", "compute", "offload", "kmeans(T=25)", "kmeans(adapt)", "T_max"
    );
    for &s in &[1usize << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10] {
        let comp = cost.prefill_layer_time(&shape, s);
        let off = cost.transfer_time(shape.layer_kv_bytes(s));
        let km_fixed = cost.kmeans_layer_time(&shape, s, 2, 6, 25);
        let t_max = lm.kmeans_iters(adaptive, s, 2, 6);
        let km_adapt = cost.kmeans_layer_time(&shape, s, 2, 6, t_max);
        println!(
            "{:>8} | {:>12} {:>12} {:>16} {:>16} {:>8}",
            s,
            pqc_bench::ms(comp),
            pqc_bench::ms(off),
            pqc_bench::ms(km_fixed),
            pqc_bench::ms(km_adapt),
            t_max
        );
    }
    println!("\nShape check: fixed-T clustering exceeds compute at short s and is dwarfed at long s;");
    println!("the adaptive budget tracks the compute curve from below.");
}
