//! Fig. 10(c): score vs selected-token ratio (0.05-0.4) at fixed 1/128-eq
//! communication, on the HotpotQA stand-in.

use pqc_llm::{LlmConfig, Model};
use pqc_workloads::{cot_chain, evaluate_method, reference, MethodSpec, VocabLayout};

fn main() {
    pqc_bench::header("Fig. 10(c) — score vs token ratio", "paper Fig. 10c");
    let model = Model::new(LlmConfig::mistral_sim());
    let layout = VocabLayout::for_vocab(model.config().vocab_size);
    let w = cot_chain(1024, 2, &layout, 0x10C);
    let methods = [
        MethodSpec::Oracle,
        MethodSpec::H2o,
        MethodSpec::SnapKv,
        MethodSpec::Sparq,
        MethodSpec::InfLlm,
        MethodSpec::pqcache_default(),
    ];

    print!("\n{:>8} |", "ratio");
    for m in &methods {
        print!("{:>14}", m.name());
    }
    println!();
    for ratio in [0.05f64, 0.1, 0.2, 0.3, 0.4] {
        let cfg = pqc_bench::quality_eval(ratio, 1.0 / 32.0);
        let rf = reference(&model, &w, &cfg);
        print!("{ratio:>8.2} |");
        for &spec in &methods {
            print!("{:>14.2}", evaluate_method(&model, &w, &rf, spec, &cfg).agreement);
        }
        println!();
    }
    println!("\nShape check: every method trends upward with budget; PQCache dominates the");
    println!("baselines at each ratio and tracks Oracle.");
}
