//! Table 3: QA tasks with the question placed *before* the context.
//!
//! SnapKV/PyramidKV rank tokens by the prompt's last window; when the
//! question moves to the front, that window holds filler and their kept sets
//! go blind. PQCache is position-agnostic. The paper reports +7.10% for
//! PQCache over both.

use pqc_llm::{LlmConfig, Model};
use pqc_workloads::{evaluate_method, format_table, method_average, reference, MethodSpec, TaskResult};

fn main() {
    pqc_bench::header("Table 3 — question-first QA", "paper Table 3");
    let model = Model::new(LlmConfig::small());
    let tasks = pqc_bench::question_first_sim(model.config().vocab_size);
    let specs = [MethodSpec::SnapKv, MethodSpec::PyramidKv, MethodSpec::pqcache_default()];
    let cfg = pqc_bench::quality_eval(0.1, 1.0 / 32.0);

    let mut results: Vec<TaskResult> = Vec::new();
    for w in &tasks {
        let rf = reference(&model, w, &cfg);
        for &spec in &specs {
            results.push(evaluate_method(&model, w, &rf, spec, &cfg));
        }
    }
    println!("\n--- top-5 agreement score (1/10 tokens) ---");
    print!("{}", format_table(&results, |r| r.agreement));
    println!("\n--- planted-fact recall ---");
    print!("{}", format_table(&results, |r| 100.0 * r.planted_recall));

    let combined = |r: &pqc_workloads::TaskResult| (r.agreement + 100.0 * r.planted_recall) / 2.0;
    let pqc = method_average(&results, "PQCache", combined);
    let snap = method_average(&results, "SnapKV(C)", combined);
    let pyra = method_average(&results, "PyramidKV(C)", combined);
    println!(
        "\nCombined (fidelity+retrieval) score: PQCache {pqc:.2} vs SnapKV(C) {snap:.2} ({:+.2}%) / PyramidKV(C) {pyra:.2} ({:+.2}%)",
        100.0 * (pqc - snap) / snap.max(1e-9),
        100.0 * (pqc - pyra) / pyra.max(1e-9)
    );
    println!("Shape check: with the question first, SnapKV/PyramidKV's observation window misses the");
    println!("facts (recall collapses) while PQCache's query-time retrieval is position-agnostic —");
    println!("the paper reports +7.10% for PQCache in this setting.");
}
