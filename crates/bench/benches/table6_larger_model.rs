//! Table 6: PQCache on the larger model with half / same CPU resources.
//!
//! The paper's argument: scaling a Llama-family model multiplies GPU work
//! per layer but keeps `h_kv` (hence clustering work) constant, so the same
//! CPU budget buys *more* K-Means iterations relative to the compute window
//! and PQCache closes on the uncompressed baseline. We emulate half/same
//! CPU with halved/full iteration budgets.

use pqc_llm::{LlmConfig, Model};
use pqc_workloads::{evaluate_method, format_table, method_average, reference, MethodSpec, TaskResult};

fn main() {
    pqc_bench::header("Table 6 — larger model (70B-sim), half/same CPU", "paper Table 6");
    let model = Model::new(LlmConfig::large());
    let layout_tasks = pqc_bench::longbench_sim(model.config().vocab_size);
    // Subset for runtime: the large model's prefill is ~4x the small one.
    let tasks = &layout_tasks[..6];
    let cfg = pqc_bench::quality_eval(0.2, 1.0 / 32.0);

    let mut results: Vec<TaskResult> = Vec::new();
    for w in tasks {
        let rf = reference(&model, w, &cfg);
        let mut full = evaluate_method(&model, w, &rf, MethodSpec::Full, &cfg);
        full.method = "Full";
        results.push(full);
        let mut half = evaluate_method(
            &model,
            w,
            &rf,
            MethodSpec::PqCache { m: 2, b: 6, iters: 7 },
            &cfg,
        );
        half.method = "PQC-half";
        results.push(half);
        let mut same = evaluate_method(
            &model,
            w,
            &rf,
            MethodSpec::PqCache { m: 2, b: 6, iters: 15 },
            &cfg,
        );
        same.method = "PQC-same";
        results.push(same);
    }

    println!("\n--- top-5 agreement score (1/5 tokens, 1/128-eq comm) ---");
    print!("{}", format_table(&results, |r| r.agreement));
    let f = method_average(&results, "Full", |r| r.agreement);
    let h = method_average(&results, "PQC-half", |r| r.agreement);
    let s = method_average(&results, "PQC-same", |r| r.agreement);
    println!("\nFull {f:.2} vs PQC-half {h:.2} vs PQC-same {s:.2}");
    println!("Shape check: on the larger model both PQCache budgets land within noise of Full.");
}
