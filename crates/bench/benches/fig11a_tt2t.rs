//! Fig. 11(a): Time To Second Token (TT2T) vs input length, per method.
//!
//! TT2T covers prefill plus the first decode step, so it charges PQCache for
//! any clustering that failed to overlap, H2O for its FlashAttention
//! incompatibility, and SPARQ for its first full key scan.

use pqc_core::{KmeansIters, LatencyMethod, LatencyModel};

fn main() {
    pqc_bench::header("Fig. 11(a) — Time To Second Token", "paper Fig. 11a");
    let lm = LatencyModel::paper_default();
    let methods = [
        LatencyMethod::H2o,
        LatencyMethod::SnapKv,
        LatencyMethod::PyramidKv,
        LatencyMethod::Sparq { r: 2 },
        LatencyMethod::InfLlm { block: 128, reps: 2 },
        LatencyMethod::PqCache {
            m: 2,
            b: 6,
            iters: KmeansIters::Adaptive { min: 1, max: 100 },
            cache_hit: 0.6,
        },
    ];

    print!("\n{:>8} |", "seqlen");
    for m in &methods {
        print!("{:>12}", m.name());
    }
    println!();
    for &s in &[8usize << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10] {
        let k = (s / 5).min(4096);
        print!("{s:>8} |");
        for m in &methods {
            let t = lm.tt2t(m, s, k);
            let oom = matches!(m, LatencyMethod::H2o) && lm.h2o_prefill_oom(s);
            if oom {
                print!("{:>12}", format!("{:.2}s*", t));
            } else {
                print!("{:>12}", format!("{t:.2}s"));
            }
        }
        println!();
    }
    println!("\n(* = H2O's O(s^2) score matrix exceeds 24GB GPU memory: the paper reports OOM / multi-GPU)");
    println!("Shape check: PQCache tracks SnapKV/PyramidKV; SPARQ pays its key scan; H2O is worst.");
}
