//! Fig. 10(a): GSM8k chain-of-thought proxy — multi-hop chained facts —
//! accuracy (top-5 agreement) across token budgets, per method.

use pqc_llm::{LlmConfig, Model};
use pqc_workloads::{cot_chain, evaluate_method, reference, MethodSpec, VocabLayout};

fn main() {
    pqc_bench::header("Fig. 10(a) — multi-hop CoT vs token budget", "paper Fig. 10a");
    // The paper runs GSM8k-CoT on Mistral; use the second model config.
    let model = Model::new(LlmConfig::mistral_sim());
    let layout = VocabLayout::for_vocab(model.config().vocab_size);
    let methods = [
        MethodSpec::H2o,
        MethodSpec::SnapKv,
        MethodSpec::PyramidKv,
        MethodSpec::Sparq,
        MethodSpec::InfLlm,
        MethodSpec::pqcache_default(),
    ];
    let workloads: Vec<_> = (0..3)
        .map(|i| cot_chain(768, 3 + i % 2, &layout, 0xC07 + i as u64))
        .collect();

    print!("\n{:>8} |", "ratio");
    for m in &methods {
        print!("{:>14}", m.name());
    }
    println!();
    for ratio in [0.05f64, 0.1, 0.2, 0.4] {
        let cfg = pqc_bench::quality_eval(ratio, 1.0 / 32.0);
        print!("{ratio:>8.2} |");
        for &spec in &methods {
            let mut sum = 0.0;
            for w in &workloads {
                let rf = reference(&model, w, &cfg);
                sum += evaluate_method(&model, w, &rf, spec, &cfg).agreement;
            }
            print!("{:>14.2}", sum / workloads.len() as f64);
        }
        println!();
    }
    println!("\nShape check: PQCache leads across budgets; all methods improve with more tokens.");
}
