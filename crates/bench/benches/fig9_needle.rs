//! Fig. 9: Needle-in-a-Haystack heatmap — context length × needle depth,
//! per method.
//!
//! Cell value: probed-needle retrieval rate (was the needle's position
//! selected by any head on re-probe steps) — the retrieval ability the
//! paper's green/red heatmap encodes. Expected shape: SnapKV(C),
//! PyramidKV(C), PQCache ≈ Oracle nearly everywhere; InfLLM fails broadly;
//! H2O patchy.

use pqc_llm::{LlmConfig, Model};
use pqc_workloads::{evaluate_method, needle, reference, MethodSpec, VocabLayout};
use std::collections::HashMap;

fn main() {
    pqc_bench::header("Fig. 9 — needle-in-a-haystack heatmap", "paper Fig. 9");
    let model = Model::new(LlmConfig::small());
    let layout = VocabLayout::for_vocab(model.config().vocab_size);
    let cfg = pqc_bench::quality_eval(0.1, 1.0 / 16.0);
    let methods = [
        MethodSpec::Oracle,
        MethodSpec::H2o,
        MethodSpec::SnapKv,
        MethodSpec::Sparq,
        MethodSpec::InfLlm,
        MethodSpec::pqcache_default(),
    ];
    // Scaled lengths: 1536 tokens is this substrate's "131K".
    let lengths = [384usize, 640, 1024, 1536];
    let depths = [0.1f64, 0.3, 0.5, 0.7, 0.9];

    // One prefill/reference per cell, shared across all methods.
    let mut grid: HashMap<(&'static str, usize, usize), f64> = HashMap::new();
    for (di, &d) in depths.iter().enumerate() {
        for (si, &s) in lengths.iter().enumerate() {
            let w = needle(s, d, &layout, 0xF19 + s as u64 * 31 + (d * 10.0) as u64);
            let rf = reference(&model, &w, &cfg);
            for &spec in &methods {
                let r = evaluate_method(&model, &w, &rf, spec, &cfg);
                grid.insert((spec.name(), di, si), r.planted_recall);
            }
        }
    }

    for spec in methods {
        println!("\n--- {} (cell = needle retrieval rate) ---", spec.name());
        print!("{:>8}", "depth\\s");
        for &s in &lengths {
            print!("{s:>8}");
        }
        println!();
        let mut total = 0.0;
        for (di, &d) in depths.iter().enumerate() {
            print!("{d:>8.1}");
            for si in 0..lengths.len() {
                let v = grid[&(spec.name(), di, si)];
                total += v;
                print!("{v:>8.2}");
            }
            println!();
        }
        println!("  mean over grid: {:.3}", total / (depths.len() * lengths.len()) as f64);
    }
    println!("\nShape check: Oracle/PQCache/SnapKV stay green (high) across depths; InfLLM collapses");
    println!("(needles are rarely block representatives); H2O drops needles down-weighted at prefill.");
}
