//! Fig. 1: KVCache memory size and theoretical CPU-GPU transfer latency for
//! varying batch sizes, model sizes, and sequence lengths.
//!
//! Purely analytical (the paper's figure is too); uses PCIe Gen 5 for the
//! transfer-latency series, as the paper's caption states.

use pqc_memhier::{CostModel, ModelShape};

fn main() {
    pqc_bench::header("Fig. 1 — KVCache memory & transfer latency", "paper Fig. 1");
    let gen5 = CostModel::pcie_gen5();
    let shapes = [("7B", ModelShape::llama_7b()), ("13B", ModelShape::llama_13b())];
    let batches = [8usize, 32, 128];
    let seqlens = [1usize << 10, 4 << 10, 16 << 10, 64 << 10, 128 << 10];

    println!("\n{:<6}{:<6}{:>10} | {:>12} {:>14}", "model", "bs", "seqlen", "KVCache", "PCIe5 xfer");
    for (name, shape) in &shapes {
        for &bs in &batches {
            for &s in &seqlens {
                let bytes = shape.kvcache_bytes(bs, s, 2);
                let gb = bytes as f64 / 1e9;
                let xfer = gen5.transfer_time(bytes);
                println!(
                    "{:<6}{:<6}{:>10} | {:>10.1}GB {:>12.2}s",
                    name, bs, s, gb, xfer
                );
            }
        }
    }
    println!(
        "\n8xA100 memory = 640GB; 7B/bs=128/s=128K KVCache = {:.1}GB (exceeds it)",
        ModelShape::llama_7b().kvcache_bytes(128, 128 << 10, 2) as f64 / 1e9
    );
}
