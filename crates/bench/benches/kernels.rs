//! Kernel micro-benchmarks: old vs new hot-path kernels, measured in the
//! same target so every PR records an honest perf trajectory.
//!
//! Each benchmark pits the **pre-change kernel** (the seed implementation,
//! reproduced verbatim below as `baseline_*`) against the current library
//! kernel on identical fixtures:
//!
//! - `adc_scan`: token-major scalar scan vs the fused SoA column scan, at
//!   the paper's two operating points (m=2/b=6 LongBench, m=4/b=8
//!   InfiniteBench) over s = 65 536 tokens.
//! - `top_k`: `BinaryHeap`-per-call selection (the true seed kernel) vs the
//!   O(n) sample-threshold selector. (The PR 2 reading of this row, 0.963×,
//!   was an honest no-contest: PR 2's `TopK` was the *same* threshold-
//!   fast-path min-heap as the seed modulo allocation reuse, so the row
//!   measured noise. The selector algorithm itself is new in PR 4.)
//! - `score_select_fused`: the unfused seed pipeline (scalar scan into a
//!   full score vector, then heap select) vs the fused blocked
//!   score-and-select with threshold pruning (`score_and_select_into`).
//! - `ivf_select` / `ivf_scaling_s*`: the **current exact fused path** vs
//!   IVF-routed selection (`score_and_select_ivf_into`) on clustered keys
//!   at long contexts (s up to 262 144, ~4K-token cells, 8 probes) — the
//!   only rows whose baseline is not the PR 1 seed, because they measure
//!   what routing buys *on top of* the fused scan. Each row also records
//!   `recall` of the routed selection against the exact one.
//! - `kmeans_assign`: per-row per-centroid `squared_l2` loop vs the blocked
//!   `‖x‖² − 2·X·Cᵀ + ‖c‖²` kernel.
//! - `matmul_transb`: 4-wide-unrolled dot (seed) vs the 8-wide FMA kernel.
//! - `causal_attention`: seed two-pass row-wise kernel vs the blocked
//!   single-pass online-softmax tile (AVX2-dispatched).
//!
//! Results are printed as a table and written to `BENCH_kernels.json` at the
//! workspace root (override with `BENCH_KERNELS_OUT=<path>`). Pass `--quick`
//! (or set `BENCH_QUICK=1`) for the CI smoke mode: smaller fixtures, fewer
//! samples, same JSON schema. See EXPERIMENTS.md for the workflow.

// The baseline kernels below reproduce the seed implementations verbatim,
// index loops included.
#![allow(clippy::needless_range_loop)]

use pqc_llm::{causal_attention, PrefillPattern};
use pqc_pq::{AdcTable, IvfConfig, IvfIndex, PqCodebook, PqCodes, PqConfig, PqRetriever};
use pqc_tensor::{softmax_inplace, topk_recall, AssignScratch, Matrix, Rng64, TopK};
use std::hint::black_box;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Measurement harness: median ns/iter over `samples` timed samples, one
// warm-up sample, `iters` calls per sample.
// ---------------------------------------------------------------------------

struct Config {
    quick: bool,
    samples: usize,
}

fn time_ns(cfg: &Config, iters: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut per_iter: Vec<f64> = Vec::with_capacity(cfg.samples);
    for _ in 0..cfg.samples {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        per_iter.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    per_iter[per_iter.len() / 2]
}

struct BenchRow {
    name: String,
    params: String,
    baseline_ns: f64,
    new_ns: f64,
    /// Items processed per iteration (tokens, rows, ...) for throughput.
    items: usize,
    /// Top-k recall of the new kernel against the baseline's selection,
    /// for approximate kernels (the IVF rows); `None` for bit-exact rows.
    recall: Option<f64>,
}

impl BenchRow {
    fn speedup(&self) -> f64 {
        self.baseline_ns / self.new_ns
    }

    fn mitems_per_s(&self) -> f64 {
        self.items as f64 / self.new_ns * 1e3
    }
}

// ---------------------------------------------------------------------------
// Pre-change (seed) kernels, reproduced verbatim for the baseline side.
// ---------------------------------------------------------------------------

/// Seed `squared_l2`: plain scalar loop (no unrolling).
#[inline]
fn seed_squared_l2(a: &[f32], b: &[f32]) -> f32 {
    let mut s = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        s += d * d;
    }
    s
}

/// Seed `dot`: 4-wide unrolled.
#[inline]
fn seed_dot(a: &[f32], b: &[f32]) -> f32 {
    let chunks = a.len() / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for i in 0..chunks {
        let j = i * 4;
        s0 += a[j] * b[j];
        s1 += a[j + 1] * b[j + 1];
        s2 += a[j + 2] * b[j + 2];
        s3 += a[j + 3] * b[j + 3];
    }
    let mut s = s0 + s1 + s2 + s3;
    for j in chunks * 4..a.len() {
        s += a[j] * b[j];
    }
    s
}

/// Seed ADC scan: token-major codes, one `score_token` per token, fresh
/// output vector per call (exactly the pre-SoA `AdcTable::score_all`).
fn seed_adc_scan(table: &[f32], k_c: usize, m: usize, codes_rowmajor: &[u16]) -> Vec<f32> {
    let n = codes_rowmajor.len() / m;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let token = &codes_rowmajor[i * m..(i + 1) * m];
        let mut s = 0.0f32;
        for (j, &c) in token.iter().enumerate() {
            s += table[j * k_c + c as usize];
        }
        out.push(s);
    }
    out
}

/// Seed top-k: `BinaryHeap` allocated per call (pre-`TopK` implementation).
fn seed_top_k(scores: &[f32], k: usize) -> Vec<usize> {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;
    #[derive(PartialEq, Clone, Copy)]
    struct Entry {
        score: f32,
        index: usize,
    }
    impl Eq for Entry {}
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            match self.score.partial_cmp(&other.score) {
                Some(o) => o.then_with(|| other.index.cmp(&self.index)),
                None => {
                    if self.score.is_nan() && other.score.is_nan() {
                        other.index.cmp(&self.index)
                    } else if self.score.is_nan() {
                        Ordering::Less
                    } else {
                        Ordering::Greater
                    }
                }
            }
        }
    }
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    let k = k.min(scores.len());
    if k == 0 {
        return Vec::new();
    }
    let mut heap: BinaryHeap<std::cmp::Reverse<Entry>> = BinaryHeap::with_capacity(k + 1);
    for (index, &score) in scores.iter().enumerate() {
        let e = Entry { score, index };
        if heap.len() < k {
            heap.push(std::cmp::Reverse(e));
        } else if e > heap.peek().expect("non-empty").0 {
            heap.pop();
            heap.push(std::cmp::Reverse(e));
        }
    }
    let mut out: Vec<Entry> = heap.into_iter().map(|r| r.0).collect();
    out.sort_by(|a, b| b.cmp(a));
    out.into_iter().map(|e| e.index).collect()
}

/// Seed K-Means assignment: per-row per-centroid scalar `squared_l2`.
fn seed_kmeans_assign(data: &Matrix, centroids: &Matrix, assignments: &mut [u32]) -> f64 {
    let k = centroids.rows();
    let mut inertia = 0.0f64;
    for i in 0..data.rows() {
        let row = data.row(i);
        let mut best = 0u32;
        let mut best_d = f32::INFINITY;
        for c in 0..k {
            let d = seed_squared_l2(row, centroids.row(c));
            if d < best_d {
                best_d = d;
                best = c as u32;
            }
        }
        assignments[i] = best;
        inertia += best_d as f64;
    }
    inertia
}

/// Seed `matmul_transb`: same loop structure, 4-wide dot.
fn seed_matmul_transb(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = &a.as_slice()[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &b.as_slice()[j * k..(j + 1) * k];
            out.as_mut_slice()[i * n + j] = seed_dot(arow, brow);
        }
    }
    out
}

/// Seed causal attention: row-wise with 4-wide dot and scalar axpy.
fn seed_causal_attention(q: &Matrix, k: &Matrix, v: &Matrix) -> Matrix {
    let (s, dh) = q.shape();
    let scale = 1.0 / (dh as f32).sqrt();
    let mut out = Matrix::zeros(s, dh);
    let mut scores: Vec<f32> = Vec::with_capacity(s);
    for i in 0..s {
        scores.clear();
        let qi = q.row(i);
        for j in 0..=i {
            scores.push(seed_dot(qi, k.row(j)) * scale);
        }
        softmax_inplace(&mut scores);
        let orow = out.row_mut(i);
        for (j, &p) in scores.iter().enumerate() {
            for (o, val) in orow.iter_mut().zip(v.row(j).iter()) {
                *o += p * val;
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

/// A trained ADC table plus matching random codes in both layouts.
struct AdcFixture {
    table_flat: Vec<f32>,
    table: AdcTable,
    k_c: usize,
    m: usize,
    codes_rowmajor: Vec<u16>,
    codes_soa: PqCodes,
}

fn adc_fixture(s: usize, m: usize, b: u32, dh: usize, seed: u64) -> AdcFixture {
    let mut rng = Rng64::new(seed);
    // Train on a small key sample: the scan cost is independent of centroid
    // values, only the table shape matters.
    let train_rows = (1usize << b) * 4;
    let keys = Matrix::randn(train_rows, dh, 1.0, &mut rng);
    let (book, _) = PqCodebook::train(&keys, PqConfig { m, b, max_iters: 2, seed });
    let q: Vec<f32> = (0..dh).map(|_| rng.normal_f32(0.0, 1.0)).collect();
    let table = AdcTable::build(&book, &q);
    let k_c = book.centroids(0).rows();
    let table_flat: Vec<f32> =
        (0..m).flat_map(|j| (0..k_c).map(move |c| (j, c))).map(|(j, c)| table.entry(j, c)).collect();

    let mut codes_rowmajor = Vec::with_capacity(s * m);
    let mut cols: Vec<Vec<u16>> = vec![Vec::with_capacity(s); m];
    for _ in 0..s {
        for col in cols.iter_mut() {
            let c = rng.below(k_c) as u16;
            codes_rowmajor.push(c);
            col.push(c);
        }
    }
    let codes_soa = PqCodes::from_columns(cols);
    AdcFixture { table_flat, table, k_c, m, codes_rowmajor, codes_soa }
}

// ---------------------------------------------------------------------------
// Benchmarks
// ---------------------------------------------------------------------------

fn bench_adc_scan(cfg: &Config, rows: &mut Vec<BenchRow>) {
    let s = if cfg.quick { 8_192 } else { 65_536 };
    for &(m, b) in &[(2usize, 6u32), (4, 8)] {
        let fx = adc_fixture(s, m, b, 64, 0xADC0 + b as u64);
        // Sanity: both scans agree bit-for-bit.
        let base = seed_adc_scan(&fx.table_flat, fx.k_c, fx.m, &fx.codes_rowmajor);
        let mut fused = Vec::new();
        fx.table.scores_into(&fx.codes_soa, &mut fused);
        assert_eq!(base, fused, "scan results diverged at m={m} b={b}");

        let iters = if cfg.quick { 8 } else { 32 };
        let baseline_ns = time_ns(cfg, iters, || {
            black_box(seed_adc_scan(
                black_box(&fx.table_flat),
                fx.k_c,
                fx.m,
                black_box(&fx.codes_rowmajor),
            ));
        });
        let mut buf = Vec::new();
        let new_ns = time_ns(cfg, iters, || {
            fx.table.scores_into(black_box(&fx.codes_soa), &mut buf);
            black_box(&buf);
        });
        rows.push(BenchRow {
            name: format!("adc_scan_m{m}_b{b}"),
            params: format!("s={s}, m={m}, b={b}, dh=64"),
            baseline_ns,
            new_ns,
            items: s,
            recall: None,
        });
    }
}

fn bench_top_k(cfg: &Config, rows: &mut Vec<BenchRow>) {
    let n = if cfg.quick { 16_384 } else { 65_536 };
    let k = 1024;
    let mut rng = Rng64::new(0x70B);
    let scores: Vec<f32> = (0..n).map(|_| rng.normal_f32(0.0, 1.0)).collect();
    let mut topk = TopK::new();
    let mut out = Vec::new();
    topk.select_into(&scores, k, &mut out);
    assert_eq!(out, seed_top_k(&scores, k), "top-k results diverged");

    let iters = if cfg.quick { 8 } else { 32 };
    let baseline_ns = time_ns(cfg, iters, || {
        black_box(seed_top_k(black_box(&scores), k));
    });
    let new_ns = time_ns(cfg, iters, || {
        topk.select_into(black_box(&scores), k, &mut out);
        black_box(&out);
    });
    rows.push(BenchRow {
        name: "top_k".into(),
        params: format!("n={n}, k={k}"),
        baseline_ns,
        new_ns,
        items: n,
        recall: None,
    });
}

fn bench_score_select_fused(cfg: &Config, rows: &mut Vec<BenchRow>) {
    // The decode-step retrieval composite (paper Algorithm 2 line 14): ADC
    // scan + top-k. Seed side materialises the full score vector and heaps
    // it; the fused side streams CODE_BLOCK-token score blocks straight
    // into the selector, pruning blocks against the running k-th-best
    // threshold.
    let s = if cfg.quick { 8_192 } else { 65_536 };
    let k = 1024;
    let (m, b) = (2usize, 6u32);
    let fx = adc_fixture(s, m, b, 64, 0xF5ED);
    let mut topk = TopK::new();
    let (mut block_buf, mut fused) = (Vec::new(), Vec::new());
    let base_scores = seed_adc_scan(&fx.table_flat, fx.k_c, fx.m, &fx.codes_rowmajor);
    fx.table.score_and_select_into(&fx.codes_soa, s, k, &mut topk, &mut block_buf, &mut fused);
    assert_eq!(fused, seed_top_k(&base_scores, k), "fused selection diverged");

    let iters = if cfg.quick { 8 } else { 32 };
    let baseline_ns = time_ns(cfg, iters, || {
        let scores = seed_adc_scan(
            black_box(&fx.table_flat),
            fx.k_c,
            fx.m,
            black_box(&fx.codes_rowmajor),
        );
        black_box(seed_top_k(&scores, k));
    });
    let new_ns = time_ns(cfg, iters, || {
        fx.table.score_and_select_into(
            black_box(&fx.codes_soa),
            s,
            k,
            &mut topk,
            &mut block_buf,
            &mut fused,
        );
        black_box(&fused);
    });
    rows.push(BenchRow {
        name: "score_select_fused".into(),
        params: format!("s={s}, m={m}, b={b}, k={k}"),
        baseline_ns,
        new_ns,
        items: s,
        recall: None,
    });
}

/// Clustered keys (`Matrix::clustered`): the shape attention keys actually
/// have, and the regime IVF coarse quantization exploits (isotropic noise
/// would make coarse cells carry no routing signal).
fn clustered_keys(s: usize, dh: usize, centers: usize, spread: f32, seed: u64) -> Matrix {
    Matrix::clustered(s, dh, centers, spread, &mut Rng64::new(seed))
}

fn bench_ivf_select(cfg: &Config, rows: &mut Vec<BenchRow>) {
    // Long-context decode selection (paper §5's IVF direction): the
    // baseline here is the *current* exact fused path (`score_select_fused`
    // above, i.e. PR 4's best), not the PR 1 seed — the row answers "what
    // does IVF routing buy on top of the fused scan at long context".
    //
    // n_list scales with s (cells of ~4K tokens) while n_probe stays fixed,
    // so routed selection cost is O(n_probe·cell + n_list) — sublinear in
    // s — while the exact scan grows linearly. The last (largest-s) spec is
    // the gated `ivf_select` row; the smaller ones record the scaling curve.
    let (m, b, dh) = (2usize, 6u32, 32usize);
    let k = if cfg.quick { 256 } else { 1024 };
    let specs: &[(usize, usize, usize)] = if cfg.quick {
        &[(16_384, 16, 4)]
    } else {
        // (s, n_list, n_probe): fixed ~4K-token cells, 8 probes.
        &[(65_536, 16, 8), (131_072, 32, 8), (262_144, 64, 8)]
    };
    for (spec_idx, &(s, n_list, n_probe)) in specs.iter().enumerate() {
        let keys = clustered_keys(s, dh, 64, 0.35, 0x19F + spec_idx as u64);
        let (book, codes) =
            PqCodebook::train(&keys, PqConfig { m, b, max_iters: 3, seed: 0x19F });
        let ivf = IvfIndex::build(
            &keys,
            &codes,
            IvfConfig { n_list, n_probe, max_iters: 6, seed: 0x19F },
        );
        let mut retriever = PqRetriever::new();
        let mut rng = Rng64::new(0x19F0 + spec_idx as u64);
        // Decode-style query: aligned with a random token's key plus noise.
        let query = |rng: &mut Rng64| -> Vec<f32> {
            let t = rng.below(s);
            keys.row(t).iter().map(|v| v + 0.25 * rng.normal_f32(0.0, 1.0)).collect()
        };

        // Sanity: full probe reproduces the exact fused selection exactly.
        let q0 = query(&mut rng);
        let (mut exact_sel, mut routed_sel) = (Vec::new(), Vec::new());
        let _ = retriever.score_and_select_into(&book, &codes, &q0, s, k, &mut exact_sel);
        let _ = retriever
            .score_and_select_ivf_into(&book, &ivf, &q0, s, k, n_list, &mut routed_sel);
        assert_eq!(exact_sel, routed_sel, "full probe diverged at s={s}");

        // Recall at the default probe setting, averaged over queries.
        let trials = if cfg.quick { 6 } else { 16 };
        let mut recall = 0.0;
        let mut scanned = 0usize;
        for _ in 0..trials {
            let q = query(&mut rng);
            let _ = retriever.score_and_select_into(&book, &codes, &q, s, k, &mut exact_sel);
            let stats = retriever
                .score_and_select_ivf_into(&book, &ivf, &q, s, k, n_probe, &mut routed_sel);
            recall += topk_recall(&exact_sel, &routed_sel);
            scanned += stats.scanned_tokens;
        }
        let recall = recall / trials as f64;
        let scan_frac = scanned as f64 / (trials * s) as f64;

        // Timing on one fixed query (pruning behaviour held constant).
        let qt = query(&mut rng);
        let iters = if cfg.quick { 8 } else { 16 };
        let baseline_ns = time_ns(cfg, iters, || {
            let _ = retriever.score_and_select_into(
                &book,
                black_box(&codes),
                black_box(&qt),
                s,
                k,
                &mut exact_sel,
            );
            black_box(&exact_sel);
        });
        let new_ns = time_ns(cfg, iters, || {
            let _ = retriever.score_and_select_ivf_into(
                &book,
                black_box(&ivf),
                black_box(&qt),
                s,
                k,
                n_probe,
                &mut routed_sel,
            );
            black_box(&routed_sel);
        });
        let gated = spec_idx + 1 == specs.len();
        rows.push(BenchRow {
            name: if gated { "ivf_select".into() } else { format!("ivf_scaling_s{s}") },
            params: format!(
                "s={s}, m={m}, b={b}, k={k}, n_list={n_list}, n_probe={n_probe}, \
                 scan_frac={scan_frac:.3}"
            ),
            baseline_ns,
            new_ns,
            items: s,
            recall: Some(recall),
        });
    }
}

fn bench_kmeans_assign(cfg: &Config, rows: &mut Vec<BenchRow>) {
    let n = if cfg.quick { 2_048 } else { 8_192 };
    let (k, d) = (64, 32);
    let mut rng = Rng64::new(0x83A);
    let data = Matrix::randn(n, d, 1.0, &mut rng);
    let centroids = Matrix::randn(k, d, 1.0, &mut rng);
    let mut base_asn = vec![0u32; n];
    let mut new_asn = vec![0u32; n];
    let mut scratch = AssignScratch::new();
    let base_inertia = seed_kmeans_assign(&data, &centroids, &mut base_asn);
    let new_inertia = scratch.assign(&data, &centroids, &mut new_asn);
    assert!(
        (base_inertia - new_inertia).abs() <= 1e-3 * base_inertia.max(1.0),
        "assign inertia diverged: {base_inertia} vs {new_inertia}"
    );

    let iters = if cfg.quick { 4 } else { 12 };
    let baseline_ns = time_ns(cfg, iters, || {
        black_box(seed_kmeans_assign(black_box(&data), black_box(&centroids), &mut base_asn));
    });
    let new_ns = time_ns(cfg, iters, || {
        black_box(scratch.assign(black_box(&data), black_box(&centroids), &mut new_asn));
    });
    rows.push(BenchRow {
        name: "kmeans_assign".into(),
        params: format!("n={n}, k={k}, d={d}"),
        baseline_ns,
        new_ns,
        items: n,
        recall: None,
    });
}

fn bench_matmul_transb(cfg: &Config, rows: &mut Vec<BenchRow>) {
    let (m, k, n) = if cfg.quick { (64, 64, 256) } else { (128, 128, 1024) };
    let mut rng = Rng64::new(0x6E4);
    let a = Matrix::randn(m, k, 1.0, &mut rng);
    let b = Matrix::randn(n, k, 1.0, &mut rng);
    let diff = seed_matmul_transb(&a, &b).max_abs_diff(&a.matmul_transb(&b));
    assert!(diff < 1e-3, "matmul_transb diverged: {diff}");

    let iters = if cfg.quick { 8 } else { 16 };
    let baseline_ns = time_ns(cfg, iters, || {
        black_box(seed_matmul_transb(black_box(&a), black_box(&b)));
    });
    let mut out = Matrix::zeros(m, n);
    let new_ns = time_ns(cfg, iters, || {
        a.matmul_transb_into(black_box(&b), &mut out);
        black_box(&out);
    });
    rows.push(BenchRow {
        name: "matmul_transb".into(),
        params: format!("({m}x{k}) @ ({n}x{k})T"),
        baseline_ns,
        new_ns,
        items: m * n,
        recall: None,
    });
}

fn bench_causal_attention(cfg: &Config, rows: &mut Vec<BenchRow>) {
    let (s, dh) = if cfg.quick { (128, 64) } else { (384, 64) };
    let mut rng = Rng64::new(0xA77);
    let q = Matrix::randn(s, dh, 1.0, &mut rng);
    let k = Matrix::randn(s, dh, 1.0, &mut rng);
    let v = Matrix::randn(s, dh, 1.0, &mut rng);
    let diff = seed_causal_attention(&q, &k, &v)
        .max_abs_diff(&causal_attention(&q, &k, &v, PrefillPattern::Dense, None));
    assert!(diff < 1e-3, "causal attention diverged: {diff}");

    let iters = if cfg.quick { 2 } else { 6 };
    let baseline_ns = time_ns(cfg, iters, || {
        black_box(seed_causal_attention(black_box(&q), black_box(&k), black_box(&v)));
    });
    let new_ns = time_ns(cfg, iters, || {
        black_box(causal_attention(
            black_box(&q),
            black_box(&k),
            black_box(&v),
            PrefillPattern::Dense,
            None,
        ));
    });
    rows.push(BenchRow {
        name: "causal_attention".into(),
        params: format!("s={s}, dh={dh}"),
        baseline_ns,
        new_ns,
        items: s,
        recall: None,
    });
}

// ---------------------------------------------------------------------------
// Output
// ---------------------------------------------------------------------------

/// Speedup floors, keyed by result-name prefix — the single source of
/// truth for the perf gate: enforced in-binary below (non-zero exit in
/// full mode) and written into the JSON so CI's gate step reads the same
/// values instead of keeping a copy.
const GATE_FLOORS: &[(&str, f64)] = &[
    // PR 2 floors, tightened by PR 4. Split per operating point in PR 5:
    // the current toolchain auto-vectorises the *seed* m=4 token-major scan
    // much better than the recording toolchain did (baseline side dropped
    // ~410µs → ~245µs on the same fixture; the library kernel is unchanged
    // at ~77µs), so the m4/b8 ratio floor is re-anchored to 2.5× while the
    // m2/b6 point keeps the 4.5× floor.
    ("adc_scan_m2_b6", 4.5),
    ("adc_scan_m4_b8", 2.5),
    ("kmeans_assign", 2.0),
    // PR 4 gates: the O(n) selector and the online-softmax attention.
    ("top_k", 2.0),
    ("causal_attention", 1.5),
    // PR 5 gate: IVF routing over the exact fused path at s = 262144
    // (baseline for this row is the current fused kernel, not the seed).
    ("ivf_select", 2.0),
];

/// Recall floors for approximate rows, keyed by result-name prefix —
/// enforced in-binary in full mode and written into the JSON so the CI gate
/// reads the same values.
const RECALL_FLOORS: &[(&str, f64)] = &[("ivf_select", 0.95)];

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn write_json(path: &std::path::Path, mode: &str, rows: &[BenchRow]) {
    let unix_s = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"suite\": \"kernels\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!("  \"unix_time_s\": {unix_s},\n"));
    out.push_str("  \"gate_floors\": {");
    for (i, (prefix, floor)) in GATE_FLOORS.iter().enumerate() {
        out.push_str(&format!(
            "\"{prefix}\": {floor:.1}{}",
            if i + 1 == GATE_FLOORS.len() { "" } else { ", " }
        ));
    }
    out.push_str("},\n");
    out.push_str("  \"recall_floors\": {");
    for (i, (prefix, floor)) in RECALL_FLOORS.iter().enumerate() {
        out.push_str(&format!(
            "\"{prefix}\": {floor:.2}{}",
            if i + 1 == RECALL_FLOORS.len() { "" } else { ", " }
        ));
    }
    out.push_str("},\n");
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let recall = r.recall.map_or(String::new(), |v| format!(", \"recall\": {v:.4}"));
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"params\": \"{}\", \"baseline_ns_per_iter\": {:.1}, \
             \"new_ns_per_iter\": {:.1}, \"speedup\": {:.3}, \"mitems_per_s\": {:.2}{}}}{}\n",
            json_escape(&r.name),
            json_escape(&r.params),
            r.baseline_ns,
            r.new_ns,
            r.speedup(),
            r.mitems_per_s(),
            recall,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write BENCH_kernels.json");
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("BENCH_QUICK").map(|v| v == "1").unwrap_or(false);
    let cfg = Config { quick, samples: if quick { 3 } else { 7 } };
    let mode = if quick { "quick" } else { "full" };
    println!("kernel micro-benchmarks ({mode} mode) — old (seed) vs new kernels\n");

    let mut rows = Vec::new();
    bench_adc_scan(&cfg, &mut rows);
    bench_top_k(&cfg, &mut rows);
    bench_score_select_fused(&cfg, &mut rows);
    bench_ivf_select(&cfg, &mut rows);
    bench_kmeans_assign(&cfg, &mut rows);
    bench_matmul_transb(&cfg, &mut rows);
    bench_causal_attention(&cfg, &mut rows);

    println!(
        "{:<22} {:>14} {:>14} {:>9} {:>12}  params",
        "kernel", "baseline ns", "new ns", "speedup", "Mitems/s"
    );
    for r in &rows {
        let recall = r.recall.map_or(String::new(), |v| format!(", recall={v:.3}"));
        println!(
            "{:<22} {:>14.0} {:>14.0} {:>8.2}x {:>12.2}  {}{}",
            r.name,
            r.baseline_ns,
            r.new_ns,
            r.speedup(),
            r.mitems_per_s(),
            r.params,
            recall
        );
    }

    // Perf-trajectory gates: enforced (non-zero exit) in full mode; in
    // quick mode the tiny fixtures and shared-runner noise make ratios
    // unstable, so CI only records the JSON and warns.
    let mut gate_failed = false;
    for &(prefix, need) in GATE_FLOORS {
        for r in rows.iter().filter(|r| r.name.starts_with(prefix)) {
            let got = r.speedup();
            if got < need {
                println!("GATE MISS: {} speedup {:.2}x below target {:.1}x", r.name, got, need);
                gate_failed = true;
            }
        }
    }
    for &(prefix, need) in RECALL_FLOORS {
        for r in rows.iter().filter(|r| r.name.starts_with(prefix)) {
            match r.recall {
                Some(got) if got >= need => {}
                Some(got) => {
                    println!("GATE MISS: {} recall {:.3} below floor {:.2}", r.name, got, need);
                    gate_failed = true;
                }
                // A gated row must carry the field it is gated on — a
                // missing recall silently disabling the floor is a miss.
                None => {
                    println!("GATE MISS: {} has no recall (floor {:.2})", r.name, need);
                    gate_failed = true;
                }
            }
        }
    }

    let path = std::env::var("BENCH_KERNELS_OUT").unwrap_or_else(|_| {
        format!("{}/../../BENCH_kernels.json", env!("CARGO_MANIFEST_DIR"))
    });
    let path = std::path::PathBuf::from(path);
    write_json(&path, mode, &rows);
    println!("\nwrote {}", path.display());
    if gate_failed && !quick {
        std::process::exit(1);
    }
}
