//! Criterion micro-benchmarks for the hot kernels: K-Means, ADC scoring,
//! top-k selection, block-cache operations, and attention.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pqc_cache::{top_blocks, BlockCache, EvictionPolicy};
use pqc_llm::{attend_selected, causal_attention, PrefillPattern};
use pqc_pq::{kmeans, AdcTable, KMeansConfig, PqCodebook, PqConfig};
use pqc_tensor::{top_k_indices, Matrix, Rng64};
use std::hint::black_box;

fn bench_kmeans(c: &mut Criterion) {
    let mut rng = Rng64::new(1);
    let data = Matrix::randn(2048, 16, 1.0, &mut rng);
    c.bench_function("kmeans_2048x16_k64_it10", |bch| {
        bch.iter(|| {
            let cfg = KMeansConfig { k: 64, max_iters: 10, tol: 0.0, seed: 42 };
            black_box(kmeans(black_box(&data), &cfg))
        })
    });
}

fn bench_adc(c: &mut Criterion) {
    let mut rng = Rng64::new(2);
    let keys = Matrix::randn(4096, 32, 1.0, &mut rng);
    let (book, codes) =
        PqCodebook::train(&keys, PqConfig { m: 2, b: 6, max_iters: 10, seed: 3 });
    let q: Vec<f32> = (0..32).map(|_| rng.normal_f32(0.0, 1.0)).collect();
    c.bench_function("adc_score_4096_tokens_m2_b6", |bch| {
        bch.iter(|| {
            let t = AdcTable::build(black_box(&book), black_box(&q));
            black_box(t.score_all(&codes))
        })
    });
}

fn bench_topk(c: &mut Criterion) {
    let mut rng = Rng64::new(4);
    let scores: Vec<f32> = (0..131_072).map(|_| rng.normal_f32(0.0, 1.0)).collect();
    c.bench_function("topk_128k_scores_k1024", |bch| {
        bch.iter(|| black_box(top_k_indices(black_box(&scores), 1024)))
    });
}

fn bench_cache(c: &mut Criterion) {
    let mut rng = Rng64::new(5);
    let batches: Vec<Vec<usize>> =
        (0..64).map(|_| (0..256).map(|_| rng.below(131_072)).collect()).collect();
    c.bench_function("block_cache_lookup_update_lfu", |bch| {
        bch.iter_batched(
            || BlockCache::new(4096, 128, EvictionPolicy::Lfu),
            |mut cache| {
                for b in &batches {
                    let _ = cache.lookup(b);
                    cache.update(&top_blocks(b, 128, 32));
                }
                black_box(cache.stats())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_attention(c: &mut Criterion) {
    let mut rng = Rng64::new(6);
    let q = Matrix::randn(512, 32, 1.0, &mut rng);
    let k = Matrix::randn(512, 32, 1.0, &mut rng);
    let v = Matrix::randn(512, 32, 1.0, &mut rng);
    c.bench_function("causal_attention_512x32", |bch| {
        bch.iter(|| black_box(causal_attention(&q, &k, &v, PrefillPattern::Dense, None)))
    });
    let query: Vec<f32> = (0..32).map(|_| rng.normal_f32(0.0, 1.0)).collect();
    c.bench_function("attend_selected_512_keys", |bch| {
        bch.iter(|| black_box(attend_selected(&query, &k, &v)))
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_kmeans, bench_adc, bench_topk, bench_cache, bench_attention
}
criterion_main!(kernels);
