//! Phase time decomposition (Fig. 12 of the paper).
//!
//! Aggregates a [`crate::sim::SimEngine`] op log into the named components
//! the paper profiles: GPU compute, K-Means, KVCache offload, PQ-structure
//! communication, top-k fetch — plus the end-to-end makespan, which is
//! *smaller* than the sum of parts whenever overlap succeeds.

use crate::sim::SimEngine;

/// Canonical op labels used across the engine so that decompositions are
/// comparable between experiments.
pub mod labels {
    /// GPU forward compute (prefill or decode).
    pub const COMPUTE: &str = "compute";
    /// Device→host KVCache offload.
    pub const OFFLOAD: &str = "offload";
    /// CPU K-Means clustering.
    pub const KMEANS: &str = "kmeans";
    /// Host→device PQ codes/centroids prefetch.
    pub const PQ_COMM: &str = "pq_comm";
    /// ADC scoring + top-k selection on GPU.
    pub const PQ_SEARCH: &str = "pq_search";
    /// Host→device fetch of selected top-k key-value rows.
    pub const TOPK_FETCH: &str = "topk_fetch";
}

/// A named time breakdown of one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Decomposition {
    /// GPU forward compute seconds.
    pub compute: f64,
    /// KVCache offload seconds (D2H).
    pub offload: f64,
    /// K-Means clustering seconds (CPU).
    pub kmeans: f64,
    /// PQ codes/centroids communication seconds (H2D).
    pub pq_comm: f64,
    /// ADC + top-k seconds (GPU).
    pub pq_search: f64,
    /// Top-k KV fetch seconds (H2D).
    pub topk_fetch: f64,
    /// Simulated end-to-end seconds (with overlap).
    pub end_to_end: f64,
}

impl Decomposition {
    /// Extract the decomposition from an engine's op log.
    pub fn from_engine(engine: &SimEngine) -> Self {
        Self {
            compute: engine.label_time(labels::COMPUTE),
            offload: engine.label_time(labels::OFFLOAD),
            kmeans: engine.label_time(labels::KMEANS),
            pq_comm: engine.label_time(labels::PQ_COMM),
            pq_search: engine.label_time(labels::PQ_SEARCH),
            topk_fetch: engine.label_time(labels::TOPK_FETCH),
            end_to_end: engine.makespan(),
        }
    }

    /// Sum of all components, i.e. the fully-sequential schedule.
    pub fn component_sum(&self) -> f64 {
        self.compute + self.offload + self.kmeans + self.pq_comm + self.pq_search + self.topk_fetch
    }

    /// Fraction of component time hidden by overlap, in `[0, 1)`.
    pub fn overlap_savings(&self) -> f64 {
        let total = self.component_sum();
        if total <= 0.0 {
            return 0.0;
        }
        (1.0 - self.end_to_end / total).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{Resource, SimEngine};

    #[test]
    fn decomposition_collects_labels() {
        let mut e = SimEngine::new();
        let c = e.schedule(Resource::Gpu, labels::COMPUTE, 10.0, &[]);
        e.schedule(Resource::D2H, labels::OFFLOAD, 4.0, &[c]);
        e.schedule(Resource::Cpu, labels::KMEANS, 6.0, &[c]);
        let d = Decomposition::from_engine(&e);
        assert_eq!(d.compute, 10.0);
        assert_eq!(d.offload, 4.0);
        assert_eq!(d.kmeans, 6.0);
        assert_eq!(d.end_to_end, 16.0);
        assert_eq!(d.component_sum(), 20.0);
    }

    #[test]
    fn overlap_savings_bounds() {
        let mut e = SimEngine::new();
        e.schedule(Resource::Gpu, labels::COMPUTE, 10.0, &[]);
        e.schedule(Resource::Cpu, labels::KMEANS, 10.0, &[]);
        let d = Decomposition::from_engine(&e);
        // Perfect overlap: 20s of work in 10s wall.
        assert!((d.overlap_savings() - 0.5).abs() < 1e-12);

        let empty = Decomposition::default();
        assert_eq!(empty.overlap_savings(), 0.0);
    }

    #[test]
    fn end_to_end_le_component_sum() {
        let mut e = SimEngine::new();
        let mut prev = e.schedule(Resource::Gpu, labels::COMPUTE, 3.0, &[]);
        for _ in 0..4 {
            let c = e.schedule(Resource::Gpu, labels::COMPUTE, 3.0, &[prev]);
            e.schedule(Resource::D2H, labels::OFFLOAD, 1.0, &[c]);
            e.schedule(Resource::Cpu, labels::KMEANS, 2.0, &[c]);
            prev = c;
        }
        let d = Decomposition::from_engine(&e);
        assert!(d.end_to_end <= d.component_sum() + 1e-12);
        assert!(d.end_to_end >= d.compute);
    }
}
