//! Analytical hardware cost model.
//!
//! The paper's latency results come from an RTX 4090 + 2×Xeon 6330 + PCIe 1.0
//! x16 testbed. We replace the silicon with an analytical model: device
//! throughputs are parameters, and operation durations are derived from
//! first-principles FLOP/byte counts (the same counts as the paper's §3.2
//! complexity analysis). Latency *shapes* — what scales linearly vs
//! quadratically with `s`, what overlaps with what — are then faithful even
//! though absolute numbers are synthetic.

use serde::{Deserialize, Serialize};

/// Shape of a transformer model, for memory/FLOP accounting.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct ModelShape {
    /// Transformer layer count.
    pub n_layers: usize,
    /// Hidden dimension `d`.
    pub d_model: usize,
    /// Query head count `h`.
    pub n_heads: usize,
    /// Key/value head count `h_kv` (GQA).
    pub n_kv_heads: usize,
    /// Per-head dimension `d_h`.
    pub head_dim: usize,
    /// FFN inner dimension.
    pub ffn_dim: usize,
}

impl ModelShape {
    /// Llama-2-7B-like shape (used by Fig. 1's "7B" series).
    pub fn llama_7b() -> Self {
        Self { n_layers: 32, d_model: 4096, n_heads: 32, n_kv_heads: 32, head_dim: 128, ffn_dim: 11008 }
    }

    /// Llama-2-13B-like shape.
    pub fn llama_13b() -> Self {
        Self { n_layers: 40, d_model: 5120, n_heads: 40, n_kv_heads: 40, head_dim: 128, ffn_dim: 13824 }
    }

    /// Llama-3.1-8B-like shape (GQA, h_kv = 8) — the paper's main model.
    pub fn llama3_8b() -> Self {
        Self { n_layers: 32, d_model: 4096, n_heads: 32, n_kv_heads: 8, head_dim: 128, ffn_dim: 14336 }
    }

    /// Llama-3.1-70B-like shape (Table 6).
    pub fn llama3_70b() -> Self {
        Self { n_layers: 80, d_model: 8192, n_heads: 64, n_kv_heads: 8, head_dim: 128, ffn_dim: 28672 }
    }

    /// Mistral-7B-like shape (GQA, h_kv = 8).
    pub fn mistral_7b() -> Self {
        Self { n_layers: 32, d_model: 4096, n_heads: 32, n_kv_heads: 8, head_dim: 128, ffn_dim: 14336 }
    }

    /// KVCache bytes for `batch` sequences of length `seq_len` at
    /// `bytes_per_elem` precision: `2 (K and V) · L · s · h_kv · d_h · n`.
    pub fn kvcache_bytes(&self, batch: usize, seq_len: usize, bytes_per_elem: usize) -> u64 {
        2u64 * self.n_layers as u64
            * seq_len as u64
            * self.n_kv_heads as u64
            * self.head_dim as u64
            * batch as u64
            * bytes_per_elem as u64
    }

    /// Per-layer K+V bytes for one sequence (FP16 accounting).
    pub fn layer_kv_bytes(&self, seq_len: usize) -> u64 {
        2u64 * seq_len as u64 * self.n_kv_heads as u64 * self.head_dim as u64 * 2
    }

    /// Forward FLOPs of one layer during prefill over `s` tokens:
    /// projections + attention (O(s²)) + FFN.
    pub fn prefill_layer_flops(&self, s: u64) -> u64 {
        let d = self.d_model as u64;
        let dh = self.head_dim as u64;
        let h = self.n_heads as u64;
        let hkv = self.n_kv_heads as u64;
        let ff = self.ffn_dim as u64;
        let proj = 2 * s * d * (h * dh + 2 * hkv * dh + d); // Wq, Wk, Wv, Wo
        let attn = 2 * 2 * h * s * s * dh; // QK^T and AV, causal ~ /2 but keep full for headroom
        let ffn = 2 * 2 * s * d * ff;
        proj + attn + ffn
    }

    /// Forward FLOPs of one layer during decode with `k` attended tokens.
    pub fn decode_layer_flops(&self, k: u64) -> u64 {
        let d = self.d_model as u64;
        let dh = self.head_dim as u64;
        let h = self.n_heads as u64;
        let hkv = self.n_kv_heads as u64;
        let ff = self.ffn_dim as u64;
        let proj = 2 * d * (h * dh + 2 * hkv * dh + d);
        let attn = 2 * 2 * h * k * dh;
        let ffn = 2 * 2 * d * ff;
        proj + attn + ffn
    }
}

/// Interconnect + device throughput parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CostModel {
    /// Host↔device bandwidth in bytes/second.
    pub pcie_bw: f64,
    /// Per-transfer fixed latency in seconds.
    pub pcie_latency: f64,
    /// Sustained GPU throughput in FLOP/s (already derated for MFU).
    pub gpu_flops: f64,
    /// Fixed kernel-launch style overhead per layer per phase, seconds.
    pub gpu_layer_overhead: f64,
    /// CPU K-Means throughput in FLOP/s *per clustering worker*.
    pub cpu_worker_flops: f64,
    /// Number of parallel clustering workers (paper: m·h_kv processes × 4
    /// threads on 2×Xeon 6330).
    pub cpu_workers: usize,
    /// Fixed per-K-Means-job setup cost, seconds.
    pub kmeans_setup: f64,
}

impl CostModel {
    /// Paper testbed: RTX 4090 (82 TFLOPs FP16, ~45% MFU), PCIe 1.0 x16
    /// (4 GB/s), 2×Xeon 6330.
    pub fn paper_testbed() -> Self {
        Self {
            pcie_bw: 4.0e9,
            pcie_latency: 15e-6,
            gpu_flops: 82e12 * 0.45,
            gpu_layer_overhead: 40e-6,
            cpu_worker_flops: 12e9,
            cpu_workers: 32,
            kmeans_setup: 300e-6,
        }
    }

    /// PCIe Gen 5 x16 (~64 GB/s) variant, used by Fig. 1's transfer-latency
    /// series.
    pub fn pcie_gen5() -> Self {
        Self { pcie_bw: 64.0e9, ..Self::paper_testbed() }
    }

    /// Transfer time for `bytes` over the interconnect.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.pcie_latency + bytes as f64 / self.pcie_bw
    }

    /// One-layer prefill compute time for sequence length `s`.
    pub fn prefill_layer_time(&self, shape: &ModelShape, s: usize) -> f64 {
        self.gpu_layer_overhead + shape.prefill_layer_flops(s as u64) as f64 / self.gpu_flops
    }

    /// Full-model prefill compute time.
    pub fn prefill_time(&self, shape: &ModelShape, s: usize) -> f64 {
        self.prefill_layer_time(shape, s) * shape.n_layers as f64
    }

    /// One-layer decode compute time attending to `k` tokens.
    pub fn decode_layer_time(&self, shape: &ModelShape, k: usize) -> f64 {
        self.gpu_layer_overhead + shape.decode_layer_flops(k as u64) as f64 / self.gpu_flops
    }

    /// K-Means clustering time for one layer's PQ construction:
    /// `h_kv · m` independent jobs of `O(s · d_m · 2^b · T)` FLOPs each,
    /// spread over `cpu_workers` workers.
    pub fn kmeans_layer_time(
        &self,
        shape: &ModelShape,
        s: usize,
        m: usize,
        b: u32,
        iters: usize,
    ) -> f64 {
        let dm = (shape.head_dim / m.max(1)).max(1) as f64;
        let kc = (1u64 << b) as f64;
        // Distance computations dominate: s · k_c · d_m mult-adds per iter.
        let per_job = 2.0 * s as f64 * kc * dm * iters.max(1) as f64;
        let jobs = (shape.n_kv_heads * m) as f64;
        let waves = (jobs / self.cpu_workers as f64).ceil();
        self.kmeans_setup + waves * per_job / self.cpu_worker_flops
    }

    /// Quadratic-fit coefficients `(α₂, β₂, γ₂)` of the prefill layer time —
    /// closed form, since the model is already polynomial in `s`.
    pub fn prefill_coefficients(&self, shape: &ModelShape) -> (f64, f64, f64) {
        let d = shape.d_model as f64;
        let dh = shape.head_dim as f64;
        let h = shape.n_heads as f64;
        let hkv = shape.n_kv_heads as f64;
        let ff = shape.ffn_dim as f64;
        let beta = (2.0 * d * (h * dh + 2.0 * hkv * dh + d) + 4.0 * d * ff) / self.gpu_flops;
        let gamma = 4.0 * h * dh / self.gpu_flops;
        (self.gpu_layer_overhead, beta, gamma)
    }

    /// Linear-fit coefficients `(α₁, β₁)` of per-layer K-Means time as a
    /// function of `s·T`.
    pub fn kmeans_coefficients(&self, shape: &ModelShape, m: usize, b: u32) -> (f64, f64) {
        let dm = (shape.head_dim / m.max(1)).max(1) as f64;
        let kc = (1u64 << b) as f64;
        let jobs = (shape.n_kv_heads * m) as f64;
        let waves = (jobs / self.cpu_workers as f64).ceil();
        let beta = waves * 2.0 * kc * dm / self.cpu_worker_flops;
        (self.kmeans_setup, beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_magnitudes_match_paper() {
        // Paper intro: a 7B-class model at 128K tokens, batch 128, produces
        // on the order of a terabyte of KVCache — far beyond the 640 GB of
        // an 8×A100 node. GQA (h_kv=8) shape gives ~2.2 TB; the operative
        // claim ("exceeds single-node GPU memory") must hold with margin.
        let shape = ModelShape::llama3_8b();
        let bytes = shape.kvcache_bytes(128, 128 * 1024, 2);
        let tb = bytes as f64 / 1e12;
        assert!((1.0..4.0).contains(&tb), "got {tb} TB");
        assert!(bytes > 640 * (1u64 << 30), "must exceed 8xA100 memory");
        // Per-sample at 128K: tens of GB — matches Fig. 1's y-axis range.
        let per_sample = shape.kvcache_bytes(1, 128 * 1024, 2) as f64 / 1e9;
        assert!((10.0..40.0).contains(&per_sample), "{per_sample} GB");
    }

    #[test]
    fn gqa_shrinks_kvcache() {
        let mha = ModelShape::llama_7b();
        let gqa = ModelShape::llama3_8b();
        let a = mha.kvcache_bytes(1, 4096, 2);
        let b = gqa.kvcache_bytes(1, 4096, 2);
        assert_eq!(a / b, 4); // 32 kv heads vs 8
    }

    #[test]
    fn transfer_time_monotone_and_latency_bound() {
        let cm = CostModel::paper_testbed();
        assert_eq!(cm.transfer_time(0), 0.0);
        let t1 = cm.transfer_time(1);
        let t2 = cm.transfer_time(1 << 30);
        assert!(t1 >= cm.pcie_latency);
        assert!(t2 > t1);
        // 1 GiB over 4 GB/s ≈ 0.27 s.
        assert!((0.2..0.4).contains(&t2), "t2 {t2}");
    }

    #[test]
    fn gen5_faster_than_gen1() {
        let g1 = CostModel::paper_testbed();
        let g5 = CostModel::pcie_gen5();
        assert!(g5.transfer_time(1 << 30) < g1.transfer_time(1 << 30) / 10.0);
    }

    #[test]
    fn prefill_time_superlinear_decode_linear() {
        let cm = CostModel::paper_testbed();
        let shape = ModelShape::llama3_8b();
        let p1 = cm.prefill_layer_time(&shape, 8_000);
        let p2 = cm.prefill_layer_time(&shape, 64_000);
        // 8x tokens must cost more than 8x time (attention quadratic term).
        assert!(p2 > 8.0 * p1, "p1={p1} p2={p2}");

        let d1 = cm.decode_layer_time(&shape, 1_000);
        let d2 = cm.decode_layer_time(&shape, 8_000);
        assert!(d2 < 8.0 * d1, "decode should be sub-linear-dominated");
        assert!(d2 > d1);
    }

    #[test]
    fn prefill_coefficients_reproduce_model() {
        let cm = CostModel::paper_testbed();
        let shape = ModelShape::llama3_8b();
        let (a, b, g) = cm.prefill_coefficients(&shape);
        for &s in &[1024usize, 16 * 1024, 128 * 1024] {
            let direct = cm.prefill_layer_time(&shape, s);
            let poly = a + b * s as f64 + g * (s as f64) * (s as f64);
            assert!(
                (direct - poly).abs() < 1e-9 + direct * 1e-6,
                "s={s}: {direct} vs {poly}"
            );
        }
    }

    #[test]
    fn kmeans_coefficients_reproduce_model() {
        let cm = CostModel::paper_testbed();
        let shape = ModelShape::llama3_8b();
        let (a, b) = cm.kmeans_coefficients(&shape, 2, 6);
        for &(s, t) in &[(4096usize, 5usize), (65536, 20)] {
            let direct = cm.kmeans_layer_time(&shape, s, 2, 6, t);
            let lin = a + b * (s * t) as f64;
            assert!(
                (direct - lin).abs() < 1e-9 + direct * 1e-6,
                "s={s} t={t}: {direct} vs {lin}"
            );
        }
    }

    #[test]
    fn fig8_crossover_exists() {
        // Paper Fig. 8: at short sequences clustering exceeds one-layer GPU
        // compute; at long sequences compute dominates. Our model must show
        // the same crossover somewhere in a plausible range.
        let cm = CostModel::paper_testbed();
        let shape = ModelShape::llama3_8b();
        let iters = 20;
        let short = 2_000;
        let long = 128_000;
        assert!(
            cm.kmeans_layer_time(&shape, short, 2, 6, iters)
                > cm.prefill_layer_time(&shape, short),
            "clustering should dominate at short s"
        );
        assert!(
            cm.kmeans_layer_time(&shape, long, 2, 6, iters)
                < cm.prefill_layer_time(&shape, long),
            "compute should dominate at long s"
        );
    }
}
