//! # pqc-memhier
//!
//! Simulated GPU/CPU memory hierarchy: an analytical hardware cost model
//! (PCIe bandwidth, GPU FLOP rate, CPU clustering throughput), a
//! discrete-event overlap simulator with streams and dependencies, a
//! **paged** host-tier KV store (refcounted fixed-size pages with
//! copy-on-write and a token-hash prefix registry for cross-session
//! sharing) with exact transfer accounting, and the phase
//! time-decomposition reports the paper presents in Fig. 12.

#![warn(missing_docs)]

pub mod costmodel;
pub mod decomp;
pub mod kvstore;
pub mod pages;
pub mod sim;

pub use costmodel::{CostModel, ModelShape};
pub use decomp::{labels, Decomposition};
pub use kvstore::{
    token_chain_hash, HostKvStore, KvTier, NamespaceId, PrefixCacheStats, PrefixHit,
    TransferStats, WIRE_BYTES_PER_ELEM,
};
pub use pages::{MemError, PageAllocator, SharingStats, DEFAULT_PAGE_TOKENS};
pub use sim::{Event, OpRecord, Resource, SimEngine};
