//! # pqc-memhier
//!
//! Simulated GPU/CPU memory hierarchy: an analytical hardware cost model
//! (PCIe bandwidth, GPU FLOP rate, CPU clustering throughput), a
//! discrete-event overlap simulator with streams and dependencies, a
//! host-tier KV store with exact transfer accounting, and the phase
//! time-decomposition reports the paper presents in Fig. 12.

#![warn(missing_docs)]

pub mod costmodel;
pub mod decomp;
pub mod kvstore;
pub mod sim;

pub use costmodel::{CostModel, ModelShape};
pub use decomp::{labels, Decomposition};
pub use kvstore::{HostKvStore, KvTier, NamespaceId, TransferStats, WIRE_BYTES_PER_ELEM};
pub use sim::{Event, OpRecord, Resource, SimEngine};
