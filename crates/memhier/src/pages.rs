//! Fixed-size KV pages with refcounting and copy-on-write.
//!
//! The vLLM-PagedAttention storage shape for the host tier: K/V rows live in
//! fixed-size **pages** owned by a tier-global [`PageAllocator`]. A
//! namespace's (layer, head) slot is a *page table* — an ordered chain of
//! page ids — so logical token offset `t` maps to page `t / page_tokens`,
//! page-local row `t % page_tokens`.
//!
//! Pages are **refcounted**: N namespaces sharing a prompt prefix point
//! their page tables at the same pages, so host residency grows with unique
//! tokens, not sessions. Mutation of a shared page (appending into a
//! partially-filled tail that another namespace also references) triggers
//! **copy-on-write**: the writer gets a private copy of the tail page and
//! the shared original stays frozen. Appends are therefore page-local —
//! amortized O(head_dim) per token — which structurally removes the old
//! whole-slot-`vstack` quadratic append.
//!
//! The allocator can draw page accounting from a [`pqc_cache::CacheBudget`]
//! (the same budget type the GPU block cache uses). The host tier must
//! never refuse data, so an exhausted budget does not fail the allocation;
//! it increments an over-budget counter the serving layer can watch.

use parking_lot::Mutex;
use pqc_cache::CacheBudget;
use pqc_tensor::Matrix;
use std::sync::Arc;

use crate::kvstore::WIRE_BYTES_PER_ELEM;

/// Default page size in tokens (rows per page).
pub const DEFAULT_PAGE_TOKENS: usize = 32;

/// Cumulative sharing statistics, metered alongside [`crate::TransferStats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SharingStats {
    /// Prompt tokens adopted from a shared prefix instead of re-prefilled,
    /// re-offloaded, and re-encoded.
    pub prefix_hit_tokens: u64,
    /// Copy-on-write page copies triggered by appends to shared tail pages.
    pub cow_copies: u64,
}

impl std::ops::AddAssign for SharingStats {
    fn add_assign(&mut self, rhs: Self) {
        self.prefix_hit_tokens += rhs.prefix_hit_tokens;
        self.cow_copies += rhs.cow_copies;
    }
}

impl std::ops::Add for SharingStats {
    type Output = SharingStats;
    fn add(mut self, rhs: Self) -> Self {
        self += rhs;
        self
    }
}

impl std::iter::Sum for SharingStats {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::default(), |acc, s| acc + s)
    }
}

/// One fixed-size page of K and V rows.
#[derive(Debug, Default)]
struct Page {
    k: Vec<f32>,
    v: Vec<f32>,
    rows: usize,
    rc: u32,
    /// Whether this page successfully claimed a budget slot.
    budgeted: bool,
}

#[derive(Debug)]
struct Pool {
    page_tokens: usize,
    head_dim: usize,
    pages: Vec<Page>,
    free: Vec<u32>,
    in_use: usize,
    peak_in_use: usize,
    cow_copies: u64,
    over_budget: u64,
    budget: Option<CacheBudget>,
}

impl Pool {
    fn page(&self, id: u32) -> &Page {
        let p = &self.pages[id as usize];
        debug_assert!(p.rc > 0, "access to freed page {id}");
        p
    }

    fn alloc(&mut self) -> u32 {
        let budgeted = match &self.budget {
            Some(b) => {
                let ok = b.try_acquire();
                if !ok {
                    self.over_budget += 1;
                }
                ok
            }
            None => false,
        };
        let cap = self.page_tokens * self.head_dim;
        let id = match self.free.pop() {
            Some(id) => id,
            None => {
                self.pages.push(Page::default());
                (self.pages.len() - 1) as u32
            }
        };
        let p = &mut self.pages[id as usize];
        debug_assert!(p.rc == 0, "allocating a live page");
        p.k.clear();
        p.v.clear();
        p.k.reserve(cap);
        p.v.reserve(cap);
        p.rows = 0;
        p.rc = 1;
        p.budgeted = budgeted;
        self.in_use += 1;
        self.peak_in_use = self.peak_in_use.max(self.in_use);
        id
    }

    fn retain(&mut self, id: u32) {
        let p = &mut self.pages[id as usize];
        debug_assert!(p.rc > 0, "retain of freed page {id}");
        p.rc += 1;
    }

    fn release(&mut self, id: u32) {
        let p = &mut self.pages[id as usize];
        assert!(p.rc > 0, "release of freed page {id}");
        p.rc -= 1;
        if p.rc == 0 {
            let budgeted = p.budgeted;
            p.k = Vec::new();
            p.v = Vec::new();
            p.rows = 0;
            p.budgeted = false;
            self.free.push(id);
            self.in_use -= 1;
            if budgeted {
                if let Some(b) = &self.budget {
                    b.release(1);
                }
            }
        }
    }

    fn push_row(&mut self, id: u32, key: &[f32], value: &[f32]) -> usize {
        let page_tokens = self.page_tokens;
        let p = &mut self.pages[id as usize];
        debug_assert!(p.rc == 1, "in-place append to a shared page");
        debug_assert!(p.rows < page_tokens, "append to a full page");
        p.k.extend_from_slice(key);
        p.v.extend_from_slice(value);
        p.rows += 1;
        p.rows - 1
    }
}

/// Tier-global allocator of refcounted KV pages (free list + budget hook).
///
/// Cloning the allocator clones a *handle*: all clones share one pool, so a
/// [`crate::KvTier`] and every namespace it vends allocate from the same
/// page space and page ids are meaningful tier-wide.
#[derive(Debug, Clone)]
pub struct PageAllocator {
    pool: Arc<Mutex<Pool>>,
}

impl PageAllocator {
    /// A pool of `page_tokens`-row pages for rows of width `head_dim`.
    pub fn new(page_tokens: usize, head_dim: usize) -> Self {
        Self::with_budget(page_tokens, head_dim, None)
    }

    /// Like [`PageAllocator::new`], optionally drawing page accounting from
    /// a shared [`CacheBudget`] (one budget slot per allocated page).
    pub fn with_budget(page_tokens: usize, head_dim: usize, budget: Option<CacheBudget>) -> Self {
        assert!(page_tokens > 0, "page_tokens must be positive");
        assert!(head_dim > 0, "head_dim must be positive");
        Self {
            pool: Arc::new(Mutex::new(Pool {
                page_tokens,
                head_dim,
                pages: Vec::new(),
                free: Vec::new(),
                in_use: 0,
                peak_in_use: 0,
                cow_copies: 0,
                over_budget: 0,
                budget,
            })),
        }
    }

    /// Rows per page.
    pub fn page_tokens(&self) -> usize {
        self.pool.lock().page_tokens
    }

    /// Row width (head dimension) this pool stores.
    pub fn head_dim(&self) -> usize {
        self.pool.lock().head_dim
    }

    /// Pages currently allocated (refcount > 0).
    pub fn pages_in_use(&self) -> usize {
        self.pool.lock().in_use
    }

    /// High-water mark of [`PageAllocator::pages_in_use`].
    pub fn peak_pages_in_use(&self) -> usize {
        self.pool.lock().peak_in_use
    }

    /// Length of the free list (pages allocated before and since released).
    pub fn free_pages(&self) -> usize {
        self.pool.lock().free.len()
    }

    /// Copy-on-write page copies performed since construction.
    pub fn cow_copies(&self) -> u64 {
        self.pool.lock().cow_copies
    }

    /// Allocations that found the budget exhausted (allocation proceeded —
    /// the host tier never drops data — but the budget was over-committed).
    pub fn over_budget_allocs(&self) -> u64 {
        self.pool.lock().over_budget
    }

    /// Wire-accounted capacity of one page: K+V, `page_tokens` rows, FP16.
    pub fn page_bytes(&self) -> u64 {
        let pool = self.pool.lock();
        (2 * pool.page_tokens * pool.head_dim * WIRE_BYTES_PER_ELEM) as u64
    }

    /// Unique resident bytes across all live pages (each page counted once
    /// no matter how many namespaces reference it; FP16 accounting of rows
    /// actually written).
    pub fn resident_bytes(&self) -> u64 {
        let pool = self.pool.lock();
        pool.pages
            .iter()
            .filter(|p| p.rc > 0)
            .map(|p| (2 * p.rows * pool.head_dim * WIRE_BYTES_PER_ELEM) as u64)
            .sum()
    }

    /// Peak unique residency in capacity bytes: high-water pages × page size.
    pub fn peak_resident_bytes(&self) -> u64 {
        self.peak_pages_in_use() as u64 * self.page_bytes()
    }

    /// Whether two handles share one pool (page ids interchangeable).
    pub fn same_pool(&self, other: &PageAllocator) -> bool {
        Arc::ptr_eq(&self.pool, &other.pool)
    }

    /// Bump the refcount of every page in `chain`.
    pub(crate) fn retain_chain(&self, chain: &[u32]) {
        let mut pool = self.pool.lock();
        for &id in chain {
            pool.retain(id);
        }
    }

    /// Drop one reference to every page in `chain`.
    pub(crate) fn release_chain(&self, chain: &[u32]) {
        let mut pool = self.pool.lock();
        for &id in chain {
            pool.release(id);
        }
    }

    /// Write a full K/V matrix pair into freshly-allocated pages and return
    /// the page chain.
    pub(crate) fn write_rows(&self, keys: &Matrix, values: &Matrix) -> Vec<u32> {
        let mut pool = self.pool.lock();
        debug_assert_eq!(keys.cols(), pool.head_dim);
        let pt = pool.page_tokens;
        let mut chain = Vec::with_capacity(keys.rows().div_ceil(pt));
        for r in 0..keys.rows() {
            if r % pt == 0 {
                chain.push(pool.alloc());
            }
            let id = *chain.last().expect("chain non-empty");
            pool.push_row(id, keys.row(r), values.row(r));
        }
        chain
    }

    /// Append one row to a page chain, allocating a new tail page or
    /// copying a shared one as needed. Returns `true` when the append
    /// triggered a copy-on-write of the tail page.
    pub(crate) fn append_row(&self, chain: &mut Vec<u32>, key: &[f32], value: &[f32]) -> bool {
        let mut pool = self.pool.lock();
        debug_assert_eq!(key.len(), pool.head_dim);
        let mut cow = false;
        match chain.last().copied() {
            None => {
                let id = pool.alloc();
                pool.push_row(id, key, value);
                chain.push(id);
            }
            Some(tail) => {
                let (rows, rc) = {
                    let p = pool.page(tail);
                    (p.rows, p.rc)
                };
                if rows == pool.page_tokens {
                    // Full tail stays shared (or private) untouched; grow the
                    // chain with a fresh page.
                    let id = pool.alloc();
                    pool.push_row(id, key, value);
                    chain.push(id);
                } else if rc > 1 {
                    // Shared, partially-filled tail: copy-on-write. The
                    // other referents keep the frozen original.
                    let id = pool.alloc();
                    let (k, v, rows) = {
                        let p = pool.page(tail);
                        (p.k.clone(), p.v.clone(), p.rows)
                    };
                    {
                        let np = &mut pool.pages[id as usize];
                        np.k = k;
                        np.v = v;
                        np.rows = rows;
                    }
                    pool.release(tail);
                    pool.cow_copies += 1;
                    pool.push_row(id, key, value);
                    *chain.last_mut().expect("tail exists") = id;
                    cow = true;
                } else {
                    pool.push_row(tail, key, value);
                }
            }
        }
        cow
    }

    /// Gather `ids` (logical offsets into a chain of `rows` rows) into
    /// dense K/V matrices.
    pub(crate) fn gather(&self, chain: &[u32], rows: usize, ids: &[usize]) -> (Matrix, Matrix) {
        let pool = self.pool.lock();
        let dh = pool.head_dim;
        let pt = pool.page_tokens;
        let mut k = Matrix::zeros(ids.len(), dh);
        let mut v = Matrix::zeros(ids.len(), dh);
        for (out, &t) in ids.iter().enumerate() {
            assert!(t < rows, "token id {t} out of range (rows {rows})");
            let p = pool.page(chain[t / pt]);
            let lo = (t % pt) * dh;
            k.row_mut(out).copy_from_slice(&p.k[lo..lo + dh]);
            v.row_mut(out).copy_from_slice(&p.v[lo..lo + dh]);
        }
        (k, v)
    }

    /// Materialize a whole chain as dense K/V matrices (host-side read).
    pub(crate) fn materialize(&self, chain: &[u32], rows: usize) -> (Matrix, Matrix) {
        let pool = self.pool.lock();
        let dh = pool.head_dim;
        let pt = pool.page_tokens;
        let mut k = Matrix::zeros(rows, dh);
        let mut v = Matrix::zeros(rows, dh);
        for t in 0..rows {
            let p = pool.page(chain[t / pt]);
            let lo = (t % pt) * dh;
            k.row_mut(t).copy_from_slice(&p.k[lo..lo + dh]);
            v.row_mut(t).copy_from_slice(&p.v[lo..lo + dh]);
        }
        (k, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_release_recycles_pages() {
        let alloc = PageAllocator::new(4, 2);
        let chain = alloc.write_rows(&Matrix::zeros(10, 2), &Matrix::zeros(10, 2));
        assert_eq!(chain.len(), 3); // ceil(10/4)
        assert_eq!(alloc.pages_in_use(), 3);
        alloc.release_chain(&chain);
        assert_eq!(alloc.pages_in_use(), 0);
        assert_eq!(alloc.free_pages(), 3);
        // Reuse from the free list, not fresh slots.
        let chain2 = alloc.write_rows(&Matrix::zeros(4, 2), &Matrix::zeros(4, 2));
        assert_eq!(alloc.pages_in_use(), 1);
        assert_eq!(alloc.free_pages(), 2);
        assert_eq!(alloc.peak_pages_in_use(), 3);
        alloc.release_chain(&chain2);
    }

    #[test]
    fn append_cow_preserves_shared_reader() {
        let alloc = PageAllocator::new(4, 1);
        let mut a = Vec::new();
        for i in 0..3 {
            alloc.append_row(&mut a, &[i as f32], &[10.0 + i as f32]);
        }
        // Fork: b shares a's pages.
        let b = a.clone();
        alloc.retain_chain(&b);
        // a appends into the shared, partially-filled tail → CoW.
        assert!(alloc.append_row(&mut a, &[3.0], &[13.0]));
        assert_eq!(alloc.cow_copies(), 1);
        assert_ne!(a[0], b[0], "writer must have a private tail page");
        let (ka, _) = alloc.gather(&a, 4, &[0, 1, 2, 3]);
        let (kb, _) = alloc.gather(&b, 3, &[0, 1, 2]);
        assert_eq!(ka.row(3), &[3.0]);
        for i in 0..3 {
            assert_eq!(ka.row(i), &[i as f32]);
            assert_eq!(kb.row(i), &[i as f32], "reader corrupted by writer CoW");
        }
        alloc.release_chain(&a);
        alloc.release_chain(&b);
        assert_eq!(alloc.pages_in_use(), 0);
    }

    #[test]
    fn full_shared_tail_appends_without_copy() {
        let alloc = PageAllocator::new(2, 1);
        let mut a = Vec::new();
        alloc.append_row(&mut a, &[0.0], &[0.0]);
        alloc.append_row(&mut a, &[1.0], &[1.0]); // page now full
        let b = a.clone();
        alloc.retain_chain(&b);
        assert!(!alloc.append_row(&mut a, &[2.0], &[2.0]), "full page needs no CoW");
        assert_eq!(alloc.cow_copies(), 0);
        assert_eq!(a.len(), 2);
        assert_eq!(a[0], b[0], "full page stays shared");
        alloc.release_chain(&a);
        alloc.release_chain(&b);
    }

    #[test]
    fn budget_counts_pages_and_releases_on_free() {
        let budget = CacheBudget::new(2);
        let alloc = PageAllocator::with_budget(2, 1, Some(budget.clone()));
        let chain = alloc.write_rows(&Matrix::zeros(4, 1), &Matrix::zeros(4, 1));
        assert_eq!(budget.used_blocks(), 2);
        assert_eq!(alloc.over_budget_allocs(), 0);
        // Third page exceeds the budget: allocation still succeeds (host
        // tier never drops data) but the overflow is counted.
        let extra = alloc.write_rows(&Matrix::zeros(1, 1), &Matrix::zeros(1, 1));
        assert_eq!(alloc.pages_in_use(), 3);
        assert_eq!(budget.used_blocks(), 2);
        assert_eq!(alloc.over_budget_allocs(), 1);
        alloc.release_chain(&chain);
        alloc.release_chain(&extra);
        assert_eq!(budget.used_blocks(), 0, "budget slots returned on free");
    }

    #[test]
    fn sharing_stats_sum_and_add() {
        let a = SharingStats { prefix_hit_tokens: 3, cow_copies: 1 };
        let b = SharingStats { prefix_hit_tokens: 10, cow_copies: 5 };
        let s: SharingStats = [a, b].into_iter().sum();
        assert_eq!(s, a + b);
        assert_eq!(s.prefix_hit_tokens, 13);
        assert_eq!(s.cow_copies, 6);
    }
}
