//! Fixed-size KV pages with refcounting and copy-on-write.
//!
//! The vLLM-PagedAttention storage shape for the host tier: K/V rows live in
//! fixed-size **pages** owned by a tier-global [`PageAllocator`]. A
//! namespace's (layer, head) slot is a *page table* — an ordered chain of
//! page ids — so logical token offset `t` maps to page `t / page_tokens`,
//! page-local row `t % page_tokens`.
//!
//! Pages are **refcounted**: N namespaces sharing a prompt prefix point
//! their page tables at the same pages, so host residency grows with unique
//! tokens, not sessions. Mutation of a shared page (appending into a
//! partially-filled tail that another namespace also references) triggers
//! **copy-on-write**: the writer gets a private copy of the tail page and
//! the shared original stays frozen. Appends are therefore page-local —
//! amortized O(head_dim) per token — which structurally removes the old
//! whole-slot-`vstack` quadratic append.
//!
//! The allocator can draw page accounting from a [`pqc_cache::CacheBudget`]
//! (the same budget type the GPU block cache uses). The host tier must
//! never refuse data, so an exhausted budget does not fail the allocation;
//! it increments an over-budget counter the serving layer can watch.

use parking_lot::Mutex;
use pqc_cache::CacheBudget;
use pqc_tensor::Matrix;
use std::sync::Arc;

use crate::kvstore::WIRE_BYTES_PER_ELEM;

/// Default page size in tokens (rows per page).
pub const DEFAULT_PAGE_TOKENS: usize = 32;

/// A recoverable memory-tier failure.
///
/// The host tier's fallible entry points ([`PageAllocator::try_alloc`],
/// [`crate::HostKvStore::try_append_token`], [`crate::HostKvStore::try_fetch`])
/// return these instead of panicking, so the serving layer can fail one
/// session — not the process — when the tier runs out of pages or is asked
/// for data that was never stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// The page pool hit its configured `max_pages` cap with nothing on the
    /// free list. Freeing any page (session retirement, prefix release)
    /// makes the pool allocatable again.
    PageExhausted {
        /// The configured pool capacity in pages.
        max_pages: usize,
    },
    /// A fetch targeted a (layer, head) slot that was never offloaded.
    EmptySlot {
        /// Layer index of the empty slot.
        layer: usize,
        /// KV-head index of the empty slot.
        head: usize,
    },
    /// A page's stored checksum no longer matches its K/V contents: the
    /// page was corrupted after it was written and must not be served.
    PageCorrupt {
        /// The tier-wide id of the corrupt page.
        page: u32,
    },
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::PageExhausted { max_pages } => {
                write!(f, "page pool exhausted (max_pages {max_pages})")
            }
            MemError::EmptySlot { layer, head } => {
                write!(f, "fetch from empty slot (layer {layer}, head {head})")
            }
            MemError::PageCorrupt { page } => {
                write!(f, "kv page {page} failed its checksum (corrupt data)")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// Cumulative sharing statistics, metered alongside [`crate::TransferStats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SharingStats {
    /// Prompt tokens adopted from a shared prefix instead of re-prefilled,
    /// re-offloaded, and re-encoded.
    pub prefix_hit_tokens: u64,
    /// Copy-on-write page copies triggered by appends to shared tail pages.
    pub cow_copies: u64,
}

impl std::ops::AddAssign for SharingStats {
    fn add_assign(&mut self, rhs: Self) {
        self.prefix_hit_tokens += rhs.prefix_hit_tokens;
        self.cow_copies += rhs.cow_copies;
    }
}

impl std::ops::Add for SharingStats {
    type Output = SharingStats;
    fn add(mut self, rhs: Self) -> Self {
        self += rhs;
        self
    }
}

impl std::iter::Sum for SharingStats {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::default(), |acc, s| acc + s)
    }
}

/// FNV-1a offset basis: every page checksum starts here.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fold a row of f32s into a running FNV-1a hash over their bit patterns.
/// Element-wise and sequential, so folding row by row equals folding the
/// page's flat buffer — verification can recompute in one pass.
fn fnv_fold(mut h: u64, row: &[f32]) -> u64 {
    for &x in row {
        h ^= x.to_bits() as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// One fixed-size page of K and V rows.
#[derive(Debug, Default)]
struct Page {
    k: Vec<f32>,
    v: Vec<f32>,
    rows: usize,
    rc: u32,
    /// Pin count: a pinned page must stay resident — releasing its last
    /// reference while pinned is a refcounting bug and panics.
    pinned: u32,
    /// Whether this page successfully claimed a budget slot.
    budgeted: bool,
    /// Incrementally-maintained FNV-1a checksum of the K buffer.
    ck: u64,
    /// Incrementally-maintained FNV-1a checksum of the V buffer.
    cv: u64,
}

#[derive(Debug)]
struct Pool {
    page_tokens: usize,
    head_dim: usize,
    pages: Vec<Page>,
    free: Vec<u32>,
    in_use: usize,
    peak_in_use: usize,
    cow_copies: u64,
    over_budget: u64,
    budget: Option<CacheBudget>,
    /// Hard cap on concurrently-live pages; `None` grows unboundedly.
    max_pages: Option<usize>,
}

impl Pool {
    fn page(&self, id: u32) -> &Page {
        let p = &self.pages[id as usize];
        debug_assert!(p.rc > 0, "access to freed page {id}");
        p
    }

    fn try_alloc(&mut self) -> Result<u32, MemError> {
        // Capacity gate first, before the budget draw: a failed allocation
        // must not leak a budget slot.
        if let Some(max) = self.max_pages {
            if self.in_use >= max {
                return Err(MemError::PageExhausted { max_pages: max });
            }
        }
        let budgeted = match &self.budget {
            Some(b) => {
                let ok = b.try_acquire();
                if !ok {
                    self.over_budget += 1;
                }
                ok
            }
            None => false,
        };
        let cap = self.page_tokens * self.head_dim;
        let id = match self.free.pop() {
            Some(id) => id,
            None => {
                self.pages.push(Page::default());
                (self.pages.len() - 1) as u32
            }
        };
        let p = &mut self.pages[id as usize];
        debug_assert!(p.rc == 0, "allocating a live page");
        p.k.clear();
        p.v.clear();
        p.k.reserve(cap);
        p.v.reserve(cap);
        p.rows = 0;
        p.rc = 1;
        debug_assert!(p.pinned == 0, "recycled page {id} still pinned");
        p.pinned = 0;
        p.budgeted = budgeted;
        p.ck = FNV_OFFSET;
        p.cv = FNV_OFFSET;
        self.in_use += 1;
        self.peak_in_use = self.peak_in_use.max(self.in_use);
        Ok(id)
    }

    fn pin(&mut self, id: u32) {
        let p = &mut self.pages[id as usize];
        assert!(p.rc > 0, "pin of freed page {id}");
        p.pinned += 1;
    }

    fn unpin(&mut self, id: u32) {
        let p = &mut self.pages[id as usize];
        assert!(p.pinned > 0, "unpin of unpinned page {id}");
        p.pinned -= 1;
    }

    fn retain(&mut self, id: u32) {
        let p = &mut self.pages[id as usize];
        debug_assert!(p.rc > 0, "retain of freed page {id}");
        p.rc += 1;
    }

    fn release(&mut self, id: u32) {
        let p = &mut self.pages[id as usize];
        assert!(p.rc > 0, "release of freed page {id}");
        p.rc -= 1;
        if p.rc == 0 {
            assert!(p.pinned == 0, "release of pinned page {id} to refcount zero");
            let budgeted = p.budgeted;
            p.k = Vec::new();
            p.v = Vec::new();
            p.rows = 0;
            p.budgeted = false;
            self.free.push(id);
            self.in_use -= 1;
            if budgeted {
                if let Some(b) = &self.budget {
                    b.release(1);
                }
            }
        }
    }

    fn push_row(&mut self, id: u32, key: &[f32], value: &[f32]) -> usize {
        let page_tokens = self.page_tokens;
        let p = &mut self.pages[id as usize];
        debug_assert!(p.rc == 1, "in-place append to a shared page");
        debug_assert!(p.rows < page_tokens, "append to a full page");
        p.k.extend_from_slice(key);
        p.v.extend_from_slice(value);
        p.ck = fnv_fold(p.ck, key);
        p.cv = fnv_fold(p.cv, value);
        p.rows += 1;
        p.rows - 1
    }

    /// Recompute the page's checksums from its contents and compare against
    /// the incrementally-maintained ones.
    fn verify(&self, id: u32) -> Result<(), MemError> {
        let p = self.page(id);
        if fnv_fold(FNV_OFFSET, &p.k) != p.ck || fnv_fold(FNV_OFFSET, &p.v) != p.cv {
            return Err(MemError::PageCorrupt { page: id });
        }
        Ok(())
    }
}

/// Tier-global allocator of refcounted KV pages (free list + budget hook).
///
/// Cloning the allocator clones a *handle*: all clones share one pool, so a
/// [`crate::KvTier`] and every namespace it vends allocate from the same
/// page space and page ids are meaningful tier-wide.
#[derive(Debug, Clone)]
pub struct PageAllocator {
    pool: Arc<Mutex<Pool>>,
}

impl PageAllocator {
    /// A pool of `page_tokens`-row pages for rows of width `head_dim`.
    pub fn new(page_tokens: usize, head_dim: usize) -> Self {
        Self::with_budget(page_tokens, head_dim, None)
    }

    /// Like [`PageAllocator::new`], optionally drawing page accounting from
    /// a shared [`CacheBudget`] (one budget slot per allocated page).
    pub fn with_budget(page_tokens: usize, head_dim: usize, budget: Option<CacheBudget>) -> Self {
        Self::with_limit(page_tokens, head_dim, budget, None)
    }

    /// Like [`PageAllocator::with_budget`], additionally capping the pool at
    /// `max_pages` concurrently-live pages. Once the cap is reached,
    /// [`PageAllocator::try_alloc`] (and every fallible path built on it)
    /// returns [`MemError::PageExhausted`] until a page is freed.
    pub fn with_limit(
        page_tokens: usize,
        head_dim: usize,
        budget: Option<CacheBudget>,
        max_pages: Option<usize>,
    ) -> Self {
        assert!(page_tokens > 0, "page_tokens must be positive");
        assert!(head_dim > 0, "head_dim must be positive");
        assert!(max_pages != Some(0), "max_pages cap must be positive");
        Self {
            pool: Arc::new(Mutex::new(Pool {
                page_tokens,
                head_dim,
                pages: Vec::new(),
                free: Vec::new(),
                in_use: 0,
                peak_in_use: 0,
                cow_copies: 0,
                over_budget: 0,
                budget,
                max_pages,
            })),
        }
    }

    /// The live-page cap, if one was configured.
    pub fn max_pages(&self) -> Option<usize> {
        self.pool.lock().max_pages
    }

    /// Allocate one empty page (refcount 1), failing — not panicking — when
    /// the pool is at its configured cap. Pair with
    /// [`PageAllocator::release_page`].
    pub fn try_alloc(&self) -> Result<u32, MemError> {
        self.pool.lock().try_alloc()
    }

    /// Bump the refcount of a live page.
    pub fn retain_page(&self, id: u32) {
        self.pool.lock().retain(id);
    }

    /// Drop one reference to a live page, recycling it at refcount zero.
    pub fn release_page(&self, id: u32) {
        self.pool.lock().release(id);
    }

    /// Rows per page.
    pub fn page_tokens(&self) -> usize {
        self.pool.lock().page_tokens
    }

    /// Row width (head dimension) this pool stores.
    pub fn head_dim(&self) -> usize {
        self.pool.lock().head_dim
    }

    /// Pages currently allocated (refcount > 0).
    pub fn pages_in_use(&self) -> usize {
        self.pool.lock().in_use
    }

    /// High-water mark of [`PageAllocator::pages_in_use`].
    pub fn peak_pages_in_use(&self) -> usize {
        self.pool.lock().peak_in_use
    }

    /// Length of the free list (pages allocated before and since released).
    pub fn free_pages(&self) -> usize {
        self.pool.lock().free.len()
    }

    /// Copy-on-write page copies performed since construction.
    pub fn cow_copies(&self) -> u64 {
        self.pool.lock().cow_copies
    }

    /// Allocations that found the budget exhausted (allocation proceeded —
    /// the host tier never drops data — but the budget was over-committed).
    pub fn over_budget_allocs(&self) -> u64 {
        self.pool.lock().over_budget
    }

    /// Wire-accounted capacity of one page: K+V, `page_tokens` rows, FP16.
    pub fn page_bytes(&self) -> u64 {
        let pool = self.pool.lock();
        (2 * pool.page_tokens * pool.head_dim * WIRE_BYTES_PER_ELEM) as u64
    }

    /// Unique resident bytes across all live pages (each page counted once
    /// no matter how many namespaces reference it; FP16 accounting of rows
    /// actually written).
    pub fn resident_bytes(&self) -> u64 {
        let pool = self.pool.lock();
        pool.pages
            .iter()
            .filter(|p| p.rc > 0)
            .map(|p| (2 * p.rows * pool.head_dim * WIRE_BYTES_PER_ELEM) as u64)
            .sum()
    }

    /// Peak unique residency in capacity bytes: high-water pages × page size.
    pub fn peak_resident_bytes(&self) -> u64 {
        self.peak_pages_in_use() as u64 * self.page_bytes()
    }

    /// Whether two handles share one pool (page ids interchangeable).
    pub fn same_pool(&self, other: &PageAllocator) -> bool {
        Arc::ptr_eq(&self.pool, &other.pool)
    }

    /// Pin every page in `chain`: a pinned page must stay resident, so
    /// dropping its last reference panics instead of silently recycling KV
    /// data a suspended session still owns. Pins nest (a page shared by two
    /// suspended namespaces carries two pins) and do **not** count as
    /// references — pair every pin with [`PageAllocator::unpin_chain`].
    pub fn pin_chain(&self, chain: &[u32]) {
        let mut pool = self.pool.lock();
        for &id in chain {
            pool.pin(id);
        }
    }

    /// Remove one pin from every page in `chain`.
    pub fn unpin_chain(&self, chain: &[u32]) {
        let mut pool = self.pool.lock();
        for &id in chain {
            pool.unpin(id);
        }
    }

    /// Number of live pages with at least one pin (each page counted once,
    /// however many pins it carries) — the swap-audit metric: after every
    /// suspended session resumes or retires this must return to zero.
    pub fn pinned_pages(&self) -> usize {
        let pool = self.pool.lock();
        pool.pages.iter().filter(|p| p.rc > 0 && p.pinned > 0).count()
    }

    /// Bump the refcount of every page in `chain`.
    pub(crate) fn retain_chain(&self, chain: &[u32]) {
        let mut pool = self.pool.lock();
        for &id in chain {
            pool.retain(id);
        }
    }

    /// Drop one reference to every page in `chain`.
    pub(crate) fn release_chain(&self, chain: &[u32]) {
        let mut pool = self.pool.lock();
        for &id in chain {
            pool.release(id);
        }
    }

    /// Write a full K/V matrix pair into freshly-allocated pages and return
    /// the page chain. On pool exhaustion mid-write, every page already
    /// allocated for this chain is released before the error returns — a
    /// failed bulk write leaves the pool exactly as it found it.
    pub(crate) fn try_write_rows(
        &self,
        keys: &Matrix,
        values: &Matrix,
    ) -> Result<Vec<u32>, MemError> {
        let mut pool = self.pool.lock();
        debug_assert_eq!(keys.cols(), pool.head_dim);
        let pt = pool.page_tokens;
        let mut chain = Vec::with_capacity(keys.rows().div_ceil(pt));
        for r in 0..keys.rows() {
            if r % pt == 0 {
                match pool.try_alloc() {
                    Ok(id) => chain.push(id),
                    Err(e) => {
                        for &id in &chain {
                            pool.release(id);
                        }
                        return Err(e);
                    }
                }
            }
            let id = *chain.last().expect("chain non-empty");
            pool.push_row(id, keys.row(r), values.row(r));
        }
        Ok(chain)
    }

    /// Append one row to a page chain, allocating a new tail page or
    /// copying a shared one as needed. Returns `Ok(true)` when the append
    /// triggered a copy-on-write of the tail page. On pool exhaustion the
    /// chain is left untouched (the allocation is attempted before any
    /// chain or refcount mutation), so a failed append is retryable after
    /// pages free up.
    pub(crate) fn try_append_row(
        &self,
        chain: &mut Vec<u32>,
        key: &[f32],
        value: &[f32],
    ) -> Result<bool, MemError> {
        let mut pool = self.pool.lock();
        debug_assert_eq!(key.len(), pool.head_dim);
        let mut cow = false;
        match chain.last().copied() {
            None => {
                let id = pool.try_alloc()?;
                pool.push_row(id, key, value);
                chain.push(id);
            }
            Some(tail) => {
                let (rows, rc) = {
                    let p = pool.page(tail);
                    (p.rows, p.rc)
                };
                if rows == pool.page_tokens {
                    // Full tail stays shared (or private) untouched; grow the
                    // chain with a fresh page.
                    let id = pool.try_alloc()?;
                    pool.push_row(id, key, value);
                    chain.push(id);
                } else if rc > 1 {
                    // Shared, partially-filled tail: copy-on-write. The
                    // other referents keep the frozen original.
                    let id = pool.try_alloc()?;
                    let (k, v, rows, ck, cv) = {
                        let p = pool.page(tail);
                        (p.k.clone(), p.v.clone(), p.rows, p.ck, p.cv)
                    };
                    {
                        let np = &mut pool.pages[id as usize];
                        np.k = k;
                        np.v = v;
                        np.rows = rows;
                        np.ck = ck;
                        np.cv = cv;
                    }
                    pool.release(tail);
                    pool.cow_copies += 1;
                    pool.push_row(id, key, value);
                    *chain.last_mut().expect("tail exists") = id;
                    cow = true;
                } else {
                    pool.push_row(tail, key, value);
                }
            }
        }
        Ok(cow)
    }

    /// Verify every page in `chain` against its stored checksum. The first
    /// mismatch returns [`MemError::PageCorrupt`] with the offending page
    /// id; corrupt data is never gathered by the fallible read paths.
    pub fn verify_chain(&self, chain: &[u32]) -> Result<(), MemError> {
        let pool = self.pool.lock();
        for &id in chain {
            pool.verify(id)?;
        }
        Ok(())
    }

    /// Deterministic corruption primitive for fault injection: flip one bit
    /// of K data in the chain's tail page, leaving the stored checksum
    /// stale so the next verified read detects it. A tail shared with other
    /// referents (a checkpoint, a prefix sharer) is copy-on-write copied
    /// first — only *this* chain observes the corruption, exactly like a
    /// stray write into one namespace's resident data. Returns `false`
    /// when there is nothing to corrupt (empty chain/page, or the CoW copy
    /// could not be allocated under a page cap).
    pub fn corrupt_chain_tail(&self, chain: &mut [u32], bit: u64) -> bool {
        let mut pool = self.pool.lock();
        let Some(&tail) = chain.last() else { return false };
        let (rc, len) = {
            let p = pool.page(tail);
            (p.rc, p.k.len())
        };
        if len == 0 {
            return false;
        }
        let id = if rc > 1 {
            let Ok(id) = pool.try_alloc() else { return false };
            let (k, v, rows, ck, cv) = {
                let p = pool.page(tail);
                (p.k.clone(), p.v.clone(), p.rows, p.ck, p.cv)
            };
            {
                let np = &mut pool.pages[id as usize];
                np.k = k;
                np.v = v;
                np.rows = rows;
                np.ck = ck;
                np.cv = cv;
            }
            pool.release(tail);
            pool.cow_copies += 1;
            *chain.last_mut().expect("tail exists") = id;
            id
        } else {
            tail
        };
        let p = &mut pool.pages[id as usize];
        let i = (bit as usize / 32) % p.k.len();
        let b = (bit % 32) as u32;
        p.k[i] = f32::from_bits(p.k[i].to_bits() ^ (1u32 << b));
        true
    }

    /// Gather `ids` (logical offsets into a chain of `rows` rows) into
    /// dense K/V matrices.
    pub(crate) fn gather(&self, chain: &[u32], rows: usize, ids: &[usize]) -> (Matrix, Matrix) {
        let pool = self.pool.lock();
        let dh = pool.head_dim;
        let pt = pool.page_tokens;
        let mut k = Matrix::zeros(ids.len(), dh);
        let mut v = Matrix::zeros(ids.len(), dh);
        for (out, &t) in ids.iter().enumerate() {
            assert!(t < rows, "token id {t} out of range (rows {rows})");
            let p = pool.page(chain[t / pt]);
            let lo = (t % pt) * dh;
            k.row_mut(out).copy_from_slice(&p.k[lo..lo + dh]);
            v.row_mut(out).copy_from_slice(&p.v[lo..lo + dh]);
        }
        (k, v)
    }

    /// Materialize a whole chain as dense K/V matrices (host-side read).
    pub(crate) fn materialize(&self, chain: &[u32], rows: usize) -> (Matrix, Matrix) {
        let pool = self.pool.lock();
        let dh = pool.head_dim;
        let pt = pool.page_tokens;
        let mut k = Matrix::zeros(rows, dh);
        let mut v = Matrix::zeros(rows, dh);
        for t in 0..rows {
            let p = pool.page(chain[t / pt]);
            let lo = (t % pt) * dh;
            k.row_mut(t).copy_from_slice(&p.k[lo..lo + dh]);
            v.row_mut(t).copy_from_slice(&p.v[lo..lo + dh]);
        }
        (k, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_rows(alloc: &PageAllocator, k: &Matrix, v: &Matrix) -> Vec<u32> {
        alloc.try_write_rows(k, v).expect("write_rows in uncapped test pool")
    }

    fn append_row(alloc: &PageAllocator, chain: &mut Vec<u32>, k: &[f32], v: &[f32]) -> bool {
        alloc.try_append_row(chain, k, v).expect("append_row in uncapped test pool")
    }

    #[test]
    fn alloc_release_recycles_pages() {
        let alloc = PageAllocator::new(4, 2);
        let chain = write_rows(&alloc, &Matrix::zeros(10, 2), &Matrix::zeros(10, 2));
        assert_eq!(chain.len(), 3); // ceil(10/4)
        assert_eq!(alloc.pages_in_use(), 3);
        alloc.release_chain(&chain);
        assert_eq!(alloc.pages_in_use(), 0);
        assert_eq!(alloc.free_pages(), 3);
        // Reuse from the free list, not fresh slots.
        let chain2 = write_rows(&alloc, &Matrix::zeros(4, 2), &Matrix::zeros(4, 2));
        assert_eq!(alloc.pages_in_use(), 1);
        assert_eq!(alloc.free_pages(), 2);
        assert_eq!(alloc.peak_pages_in_use(), 3);
        alloc.release_chain(&chain2);
    }

    #[test]
    fn append_cow_preserves_shared_reader() {
        let alloc = PageAllocator::new(4, 1);
        let mut a = Vec::new();
        for i in 0..3 {
            append_row(&alloc, &mut a, &[i as f32], &[10.0 + i as f32]);
        }
        // Fork: b shares a's pages.
        let b = a.clone();
        alloc.retain_chain(&b);
        // a appends into the shared, partially-filled tail → CoW.
        assert!(append_row(&alloc, &mut a, &[3.0], &[13.0]));
        assert_eq!(alloc.cow_copies(), 1);
        assert_ne!(a[0], b[0], "writer must have a private tail page");
        let (ka, _) = alloc.gather(&a, 4, &[0, 1, 2, 3]);
        let (kb, _) = alloc.gather(&b, 3, &[0, 1, 2]);
        assert_eq!(ka.row(3), &[3.0]);
        for i in 0..3 {
            assert_eq!(ka.row(i), &[i as f32]);
            assert_eq!(kb.row(i), &[i as f32], "reader corrupted by writer CoW");
        }
        alloc.release_chain(&a);
        alloc.release_chain(&b);
        assert_eq!(alloc.pages_in_use(), 0);
    }

    #[test]
    fn full_shared_tail_appends_without_copy() {
        let alloc = PageAllocator::new(2, 1);
        let mut a = Vec::new();
        append_row(&alloc, &mut a, &[0.0], &[0.0]);
        append_row(&alloc, &mut a, &[1.0], &[1.0]); // page now full
        let b = a.clone();
        alloc.retain_chain(&b);
        assert!(!append_row(&alloc, &mut a, &[2.0], &[2.0]), "full page needs no CoW");
        assert_eq!(alloc.cow_copies(), 0);
        assert_eq!(a.len(), 2);
        assert_eq!(a[0], b[0], "full page stays shared");
        alloc.release_chain(&a);
        alloc.release_chain(&b);
    }

    #[test]
    fn budget_counts_pages_and_releases_on_free() {
        let budget = CacheBudget::new(2);
        let alloc = PageAllocator::with_budget(2, 1, Some(budget.clone()));
        let chain = write_rows(&alloc, &Matrix::zeros(4, 1), &Matrix::zeros(4, 1));
        assert_eq!(budget.used_blocks(), 2);
        assert_eq!(alloc.over_budget_allocs(), 0);
        // Third page exceeds the budget: allocation still succeeds (host
        // tier never drops data) but the overflow is counted.
        let extra = write_rows(&alloc, &Matrix::zeros(1, 1), &Matrix::zeros(1, 1));
        assert_eq!(alloc.pages_in_use(), 3);
        assert_eq!(budget.used_blocks(), 2);
        assert_eq!(alloc.over_budget_allocs(), 1);
        alloc.release_chain(&chain);
        alloc.release_chain(&extra);
        assert_eq!(budget.used_blocks(), 0, "budget slots returned on free");
    }

    #[test]
    fn try_alloc_errors_at_cap_and_recovers_after_free() {
        let alloc = PageAllocator::with_limit(4, 2, None, Some(2));
        assert_eq!(alloc.max_pages(), Some(2));
        let a = alloc.try_alloc().expect("first page fits");
        let b = alloc.try_alloc().expect("second page fits");
        assert_eq!(
            alloc.try_alloc(),
            Err(MemError::PageExhausted { max_pages: 2 }),
            "cap reached: allocation must fail, not panic"
        );
        alloc.release_page(a);
        let c = alloc.try_alloc().expect("freed page recycles");
        assert_eq!(c, a, "recycled id comes off the free list");
        alloc.release_page(b);
        alloc.release_page(c);
        assert_eq!(alloc.pages_in_use(), 0);
    }

    #[test]
    fn failed_bulk_write_rolls_back_partial_chain() {
        let budget = CacheBudget::new(8);
        let alloc = PageAllocator::with_limit(2, 1, Some(budget.clone()), Some(2));
        // 6 rows need 3 pages but the cap is 2: the write must fail and
        // release the 2 pages (and budget slots) it had already claimed.
        let err = alloc
            .try_write_rows(&Matrix::zeros(6, 1), &Matrix::zeros(6, 1))
            .expect_err("over-cap bulk write must fail");
        assert_eq!(err, MemError::PageExhausted { max_pages: 2 });
        assert_eq!(alloc.pages_in_use(), 0, "partial chain rolled back");
        assert_eq!(budget.used_blocks(), 0, "budget slots returned on rollback");
        // The pool is still usable afterwards.
        let chain = alloc
            .try_write_rows(&Matrix::zeros(4, 1), &Matrix::zeros(4, 1))
            .expect("within-cap write succeeds after rollback");
        alloc.release_chain(&chain);
    }

    #[test]
    fn failed_append_leaves_chain_untouched() {
        let alloc = PageAllocator::with_limit(2, 1, None, Some(1));
        let mut chain = Vec::new();
        alloc.try_append_row(&mut chain, &[0.0], &[0.0]).expect("fits");
        alloc.try_append_row(&mut chain, &[1.0], &[1.0]).expect("fits");
        let before = chain.clone();
        // Tail full, next append needs a second page: over cap.
        let err = alloc.try_append_row(&mut chain, &[2.0], &[2.0]).expect_err("at cap");
        assert_eq!(err, MemError::PageExhausted { max_pages: 1 });
        assert_eq!(chain, before, "failed append must not mutate the chain");
        // Retry succeeds once space frees up.
        alloc.release_chain(&before);
        let mut fresh = Vec::new();
        alloc.try_append_row(&mut fresh, &[2.0], &[2.0]).expect("retry after free");
        alloc.release_chain(&fresh);
    }

    #[test]
    fn capped_cow_fails_cleanly_on_shared_tail() {
        let alloc = PageAllocator::with_limit(4, 1, None, Some(1));
        let mut a = Vec::new();
        alloc.try_append_row(&mut a, &[0.0], &[0.0]).expect("fits");
        let b = a.clone();
        alloc.retain_chain(&b);
        // CoW of the shared partial tail needs a second live page: over cap.
        let err = alloc.try_append_row(&mut a, &[1.0], &[1.0]).expect_err("at cap");
        assert_eq!(err, MemError::PageExhausted { max_pages: 1 });
        assert_eq!(a, b, "reader and writer still share the frozen tail");
        assert_eq!(alloc.cow_copies(), 0);
        let (kb, _) = alloc.gather(&b, 1, &[0]);
        assert_eq!(kb.row(0), &[0.0], "shared data intact after failed CoW");
        alloc.release_chain(&a);
        alloc.release_chain(&b);
        assert_eq!(alloc.pages_in_use(), 0);
    }

    #[test]
    fn pin_counts_and_unpin_returns_to_zero() {
        let alloc = PageAllocator::new(4, 2);
        let chain = write_rows(&alloc, &Matrix::zeros(10, 2), &Matrix::zeros(10, 2));
        assert_eq!(alloc.pinned_pages(), 0);
        alloc.pin_chain(&chain);
        assert_eq!(alloc.pinned_pages(), 3);
        // Pins nest: a second pin of the same chain keeps the same page count.
        alloc.pin_chain(&chain);
        assert_eq!(alloc.pinned_pages(), 3);
        alloc.unpin_chain(&chain);
        assert_eq!(alloc.pinned_pages(), 3, "one pin layer remains");
        alloc.unpin_chain(&chain);
        assert_eq!(alloc.pinned_pages(), 0);
        alloc.release_chain(&chain);
        assert_eq!(alloc.pages_in_use(), 0);
    }

    #[test]
    fn pinned_shared_page_survives_one_owner_releasing() {
        // Two namespaces share a chain; one suspends (pins), the other
        // retires (releases). The pinned page must stay live and readable.
        let alloc = PageAllocator::new(2, 1);
        let a = write_rows(&alloc, &Matrix::zeros(2, 1), &Matrix::zeros(2, 1));
        let b = a.clone();
        alloc.retain_chain(&b);
        alloc.pin_chain(&a);
        alloc.release_chain(&b);
        assert_eq!(alloc.pages_in_use(), 1);
        assert_eq!(alloc.pinned_pages(), 1);
        alloc.unpin_chain(&a);
        alloc.release_chain(&a);
        assert_eq!(alloc.pages_in_use(), 0);
    }

    #[test]
    #[should_panic(expected = "release of pinned page")]
    fn releasing_last_reference_of_pinned_page_panics() {
        let alloc = PageAllocator::new(2, 1);
        let chain = write_rows(&alloc, &Matrix::zeros(1, 1), &Matrix::zeros(1, 1));
        alloc.pin_chain(&chain);
        alloc.release_chain(&chain);
    }

    #[test]
    #[should_panic(expected = "unpin of unpinned page")]
    fn unpinning_unpinned_page_panics() {
        let alloc = PageAllocator::new(2, 1);
        let chain = write_rows(&alloc, &Matrix::zeros(1, 1), &Matrix::zeros(1, 1));
        alloc.unpin_chain(&chain);
    }

    #[test]
    fn mem_error_display_mentions_empty_slot() {
        let e = MemError::EmptySlot { layer: 1, head: 2 };
        assert!(e.to_string().contains("empty slot"));
        let p = MemError::PageExhausted { max_pages: 7 };
        assert!(p.to_string().contains("exhausted"));
    }

    #[test]
    fn verify_chain_passes_intact_and_detects_bit_flip() {
        let alloc = PageAllocator::new(4, 2);
        let mut chain = write_rows(&alloc, &Matrix::zeros(6, 2), &Matrix::zeros(6, 2));
        alloc.verify_chain(&chain).expect("intact chain verifies");
        assert!(alloc.corrupt_chain_tail(&mut chain, 17));
        let err = alloc.verify_chain(&chain).expect_err("flip must be detected");
        assert!(matches!(err, MemError::PageCorrupt { .. }));
        assert!(err.to_string().contains("checksum"));
        alloc.release_chain(&chain);
    }

    #[test]
    fn corrupting_twice_with_same_bit_restores_the_page() {
        // XOR is an involution: the same flip applied twice must verify again
        // — the checksum really is content-derived, not a tamper flag.
        let alloc = PageAllocator::new(4, 1);
        let mut chain = write_rows(&alloc, &Matrix::zeros(3, 1), &Matrix::zeros(3, 1));
        assert!(alloc.corrupt_chain_tail(&mut chain, 5));
        alloc.verify_chain(&chain).expect_err("corrupt");
        assert!(alloc.corrupt_chain_tail(&mut chain, 5));
        alloc.verify_chain(&chain).expect("flip undone");
        alloc.release_chain(&chain);
    }

    #[test]
    fn corrupting_shared_tail_cows_so_sharer_stays_intact() {
        let alloc = PageAllocator::new(4, 1);
        let mut a = Vec::new();
        for i in 0..3 {
            append_row(&alloc, &mut a, &[i as f32], &[10.0 + i as f32]);
        }
        let b = a.clone();
        alloc.retain_chain(&b);
        assert!(alloc.corrupt_chain_tail(&mut a, 0));
        assert_ne!(a[0], b[0], "corruption must land on a private copy");
        assert_eq!(alloc.cow_copies(), 1);
        alloc.verify_chain(&a).expect_err("writer sees the corruption");
        alloc.verify_chain(&b).expect("sharer keeps the intact original");
        let (kb, _) = alloc.gather(&b, 3, &[0, 1, 2]);
        for i in 0..3 {
            assert_eq!(kb.row(i), &[i as f32]);
        }
        alloc.release_chain(&a);
        alloc.release_chain(&b);
        assert_eq!(alloc.pages_in_use(), 0);
    }

    #[test]
    fn corrupt_empty_chain_reports_nothing_to_corrupt() {
        let alloc = PageAllocator::new(4, 1);
        let mut chain = Vec::new();
        assert!(!alloc.corrupt_chain_tail(&mut chain, 3));
        alloc.verify_chain(&chain).expect("empty chain trivially verifies");
    }

    #[test]
    fn cow_append_carries_checksums_forward() {
        // After a normal CoW append, both the frozen original and the
        // writer's copy must still verify.
        let alloc = PageAllocator::new(4, 1);
        let mut a = Vec::new();
        append_row(&alloc, &mut a, &[1.0], &[2.0]);
        let b = a.clone();
        alloc.retain_chain(&b);
        assert!(append_row(&alloc, &mut a, &[3.0], &[4.0]));
        alloc.verify_chain(&a).expect("writer copy verifies");
        alloc.verify_chain(&b).expect("frozen original verifies");
        alloc.release_chain(&a);
        alloc.release_chain(&b);
    }

    #[test]
    fn sharing_stats_sum_and_add() {
        let a = SharingStats { prefix_hit_tokens: 3, cow_copies: 1 };
        let b = SharingStats { prefix_hit_tokens: 10, cow_copies: 5 };
        let s: SharingStats = [a, b].into_iter().sum();
        assert_eq!(s, a + b);
        assert_eq!(s.prefix_hit_tokens, 13);
        assert_eq!(s.cow_copies, 6);
    }
}
