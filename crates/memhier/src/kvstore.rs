//! Host-tier KVCache storage with transfer accounting.
//!
//! The paper keeps the full KVCache in CPU memory (Step ❶) and fetches rows
//! on demand (Step ❺). [`HostKvStore`] holds per-layer/per-head K and V rows
//! and meters every byte that crosses the simulated PCIe link, so efficiency
//! experiments can compare methods by *data moved*, the fair-comparison axis
//! of §4.1.3.
//!
//! Storage is **paged** (see [`crate::pages`]): each (layer, head) slot is a
//! page table into the tier-global [`PageAllocator`], appends are page-local
//! and amortized O(head_dim), and pages are refcounted so namespaces can
//! share them copy-on-write.
//!
//! For multi-session serving, a [`KvTier`] vends per-session **namespaces**:
//! each namespace is a [`HostKvStore`] with its own token-offset space (two
//! sessions interleaving appends never perturb each other's middle indices)
//! whose transfers are additionally metered into one shared aggregate, so
//! engine-level accounting equals the sum of per-session stats by
//! construction. The tier also keeps a **prefix registry** keyed on
//! token-content hash chains: a session that registers its prompt lets later
//! sessions with the same prompt adopt its pages (and an opaque payload —
//! the serving layer stores the prefill output and trained policy state
//! there) via [`KvTier::new_namespace_with_prefix`].

use crate::pages::{MemError, PageAllocator, SharingStats, DEFAULT_PAGE_TOKENS};
use parking_lot::Mutex;
use pqc_cache::CacheBudget;
use pqc_tensor::Matrix;
use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Bytes-per-element used for wire accounting (FP16, as the paper serves).
pub const WIRE_BYTES_PER_ELEM: usize = 2;

/// Cumulative transfer statistics, shared between store handles.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct TransferStats {
    /// Bytes moved device→host (offload).
    pub d2h_bytes: u64,
    /// Bytes moved host→device (fetch).
    pub h2d_bytes: u64,
    /// Number of offload operations.
    pub d2h_ops: u64,
    /// Number of fetch operations.
    pub h2d_ops: u64,
}

impl std::ops::AddAssign for TransferStats {
    fn add_assign(&mut self, rhs: Self) {
        self.d2h_bytes += rhs.d2h_bytes;
        self.h2d_bytes += rhs.h2d_bytes;
        self.d2h_ops += rhs.d2h_ops;
        self.h2d_ops += rhs.h2d_ops;
    }
}

impl std::ops::Add for TransferStats {
    type Output = TransferStats;
    fn add(mut self, rhs: Self) -> Self {
        self += rhs;
        self
    }
}

impl std::iter::Sum for TransferStats {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::default(), |acc, s| acc + s)
    }
}

/// Identifier of one namespace within a [`KvTier`]. Offsets (middle-token
/// indices) are scoped to a namespace, never global across the tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NamespaceId(pub u64);

/// Fold `tokens` into a chained content hash (FNV-1a with an avalanche
/// step). The fold is positional and incremental, so the hash of every
/// prefix of a token stream is computable in one left-to-right pass — the
/// property the tier's prefix registry keys on.
pub fn token_chain_hash(tokens: &[u32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &t in tokens {
        h = (h ^ t as u64).wrapping_mul(0x0000_0100_0000_01b3);
        h ^= h >> 29;
    }
    h
}

/// Snapshot of the tier prefix-cache counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PrefixCacheStats {
    /// Prefix lookups performed.
    pub lookups: u64,
    /// Lookups that matched the *entire* queried token stream.
    pub full_hits: u64,
    /// Lookups that matched only a proper prefix of the query.
    pub partial_hits: u64,
    /// Prefixes currently registered.
    pub entries: usize,
}

impl PrefixCacheStats {
    /// Fraction of lookups that were full hits (0 when no lookups ran).
    pub fn full_hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.full_hits as f64 / self.lookups as f64
        }
    }
}

/// Key and value page table for one (layer, kv-head) pair.
#[derive(Debug, Clone, Default)]
struct HeadKv {
    pages: Vec<u32>,
    rows: usize,
}

/// One registered prefix: the exact tokens (hash-collision guard), a frozen
/// snapshot of the registrant's page tables, and an opaque payload the
/// registering layer attaches (e.g. prefill output + trained policy state).
struct PrefixEntry {
    tokens: Vec<u32>,
    slots: Vec<Option<HeadKv>>,
    payload: Arc<dyn Any + Send + Sync>,
}

#[derive(Default)]
struct PrefixRegistry {
    map: HashMap<(u64, usize), PrefixEntry>,
}

impl std::fmt::Debug for PrefixRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrefixRegistry").field("entries", &self.map.len()).finish()
    }
}

/// A successful prefix lookup. Holds page references for the matched
/// snapshot (released on drop), the matched length, and the registrant's
/// payload; feed it to [`KvTier::new_namespace_with_prefix`] to mint a
/// namespace that starts with the shared pages resident.
pub struct PrefixHit {
    len: usize,
    payload: Arc<dyn Any + Send + Sync>,
    slots: Vec<Option<HeadKv>>,
    alloc: PageAllocator,
}

impl PrefixHit {
    /// Number of prompt tokens this hit covers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for a zero-length hit (never produced by the registry).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The payload attached at registration time.
    pub fn payload(&self) -> &Arc<dyn Any + Send + Sync> {
        &self.payload
    }
}

impl Drop for PrefixHit {
    fn drop(&mut self) {
        for slot in self.slots.iter().flatten() {
            self.alloc.release_chain(&slot.pages);
        }
    }
}

impl std::fmt::Debug for PrefixHit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrefixHit").field("len", &self.len).finish()
    }
}

/// A shared host-memory tier serving many concurrent sessions.
///
/// `new_namespace` hands out a [`HostKvStore`] bound to a fresh
/// [`NamespaceId`]; every namespace meters its traffic both into its own
/// [`TransferStats`] and into the tier-wide aggregate, which
/// [`KvTier::aggregate_stats`] snapshots. All namespaces draw pages from
/// one [`PageAllocator`], so [`KvTier::resident_bytes`] counts each shared
/// page once.
///
/// ```
/// use pqc_memhier::KvTier;
///
/// let tier = KvTier::new(2, 2, 8);
/// let mut a = tier.new_namespace();
/// let mut b = tier.new_namespace();
/// a.append_token(0, 0, &[0.0; 8], &[0.0; 8]);
/// b.append_token(0, 0, &[1.0; 8], &[1.0; 8]);
/// // Offsets are per-namespace: both sessions' first middle token is 0.
/// assert_eq!(a.len(0, 0), 1);
/// assert_eq!(b.len(0, 0), 1);
/// assert_eq!(tier.aggregate_stats(), a.stats() + b.stats());
/// ```
#[derive(Debug, Clone)]
pub struct KvTier {
    n_layers: usize,
    n_kv_heads: usize,
    head_dim: usize,
    alloc: PageAllocator,
    aggregate: Arc<Mutex<TransferStats>>,
    sharing_aggregate: Arc<Mutex<SharingStats>>,
    next_ns: Arc<AtomicU64>,
    registry: Arc<Mutex<PrefixRegistry>>,
    lookups: Arc<AtomicU64>,
    full_hits: Arc<AtomicU64>,
    partial_hits: Arc<AtomicU64>,
}

impl KvTier {
    /// A tier for the given model geometry, with no namespaces yet and the
    /// default page size.
    pub fn new(n_layers: usize, n_kv_heads: usize, head_dim: usize) -> Self {
        Self::with_pages(n_layers, n_kv_heads, head_dim, DEFAULT_PAGE_TOKENS, None)
    }

    /// A tier with an explicit page size (in tokens) and an optional shared
    /// page budget.
    pub fn with_pages(
        n_layers: usize,
        n_kv_heads: usize,
        head_dim: usize,
        page_tokens: usize,
        budget: Option<CacheBudget>,
    ) -> Self {
        Self::with_page_limit(n_layers, n_kv_heads, head_dim, page_tokens, budget, None)
    }

    /// Like [`KvTier::with_pages`], additionally capping the tier's pool at
    /// `max_pages` live pages. At the cap, the fallible store paths
    /// ([`HostKvStore::try_offload`], [`HostKvStore::try_append_token`])
    /// return [`MemError::PageExhausted`] instead of growing, letting the
    /// serving layer shed the session rather than the process.
    pub fn with_page_limit(
        n_layers: usize,
        n_kv_heads: usize,
        head_dim: usize,
        page_tokens: usize,
        budget: Option<CacheBudget>,
        max_pages: Option<usize>,
    ) -> Self {
        Self {
            n_layers,
            n_kv_heads,
            head_dim,
            alloc: PageAllocator::with_limit(page_tokens, head_dim, budget, max_pages),
            aggregate: Arc::new(Mutex::new(TransferStats::default())),
            sharing_aggregate: Arc::new(Mutex::new(SharingStats::default())),
            next_ns: Arc::new(AtomicU64::new(0)),
            registry: Arc::new(Mutex::new(PrefixRegistry::default())),
            lookups: Arc::new(AtomicU64::new(0)),
            full_hits: Arc::new(AtomicU64::new(0)),
            partial_hits: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Page size of the tier's pool, in tokens.
    pub fn page_tokens(&self) -> usize {
        self.alloc.page_tokens()
    }

    /// The tier-global page allocator (shared by every namespace).
    pub fn allocator(&self) -> &PageAllocator {
        &self.alloc
    }

    /// Create a fresh, empty namespace (e.g. one per admitted session).
    /// Namespace ids are unique across clones of this tier handle.
    pub fn new_namespace(&self) -> HostKvStore {
        let ns = NamespaceId(self.next_ns.fetch_add(1, Ordering::Relaxed));
        let mut store =
            HostKvStore::with_allocator(self.n_layers, self.n_kv_heads, self.head_dim, self.alloc.clone());
        store.namespace = ns;
        store.aggregate = Some(Arc::clone(&self.aggregate));
        store.sharing_aggregate = Some(Arc::clone(&self.sharing_aggregate));
        store
    }

    /// Fork `store` into a fresh namespace that shares its pages
    /// copy-on-write (refcounts bumped, zeroed stats) but — unlike
    /// [`HostKvStore::clone`] — stays **attached to the tier aggregate**.
    /// This is the checkpoint path: a snapshot namespace is a first-class
    /// tier citizen whose later traffic (none, in the happy path) must obey
    /// the engine-wide `aggregate == Σ namespace stats` invariant.
    pub fn fork_namespace(&self, store: &HostKvStore) -> HostKvStore {
        assert!(
            self.alloc.same_pool(&store.alloc),
            "fork_namespace: store does not belong to this tier"
        );
        let mut fork = self.new_namespace();
        for slot in store.slots.iter().flatten() {
            self.alloc.retain_chain(&slot.pages);
        }
        fork.slots = store.slots.clone();
        fork
    }

    /// Register `tokens` as a shareable prefix backed by `store`'s current
    /// page tables (snapshotted and refcount-retained; the registrant keeps
    /// appending privately via copy-on-write). Returns `false` when the
    /// prefix is already registered — first registrant wins — or `tokens`
    /// is empty.
    ///
    /// `payload` is an opaque value later hits can downcast; the serving
    /// layer stores the deterministic prefill output and the policy's
    /// trained PQ/IVF state so shared-prefix sessions skip re-encoding.
    pub fn register_prefix(
        &self,
        tokens: &[u32],
        store: &HostKvStore,
        payload: Arc<dyn Any + Send + Sync>,
    ) -> bool {
        assert!(
            self.alloc.same_pool(&store.alloc),
            "register_prefix: store does not belong to this tier"
        );
        if tokens.is_empty() {
            return false;
        }
        let key = (token_chain_hash(tokens), tokens.len());
        let mut reg = self.registry.lock();
        if reg.map.contains_key(&key) {
            return false;
        }
        let slots = store.slots.clone();
        for slot in slots.iter().flatten() {
            self.alloc.retain_chain(&slot.pages);
        }
        reg.map.insert(key, PrefixEntry { tokens: tokens.to_vec(), slots, payload });
        true
    }

    /// Look up the longest registered prefix of `tokens` (token content is
    /// verified, not just hashes). The returned [`PrefixHit`] pins the
    /// matched pages until dropped.
    pub fn lookup_prefix(&self, tokens: &[u32]) -> Option<PrefixHit> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let reg = self.registry.lock();
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut best: Option<&PrefixEntry> = None;
        for (i, &t) in tokens.iter().enumerate() {
            h = (h ^ t as u64).wrapping_mul(0x0000_0100_0000_01b3);
            h ^= h >> 29;
            if let Some(entry) = reg.map.get(&(h, i + 1)) {
                if entry.tokens == tokens[..i + 1] {
                    best = Some(entry);
                }
            }
        }
        let entry = best?;
        if entry.tokens.len() == tokens.len() {
            self.full_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.partial_hits.fetch_add(1, Ordering::Relaxed);
        }
        let slots = entry.slots.clone();
        for slot in slots.iter().flatten() {
            self.alloc.retain_chain(&slot.pages);
        }
        Some(PrefixHit {
            len: entry.tokens.len(),
            payload: Arc::clone(&entry.payload),
            slots,
            alloc: self.alloc.clone(),
        })
    }

    /// Mint a namespace whose slots start as the hit's shared pages: the
    /// session begins with the prefix's K/V resident (no offload traffic —
    /// the data never left the host) and pays copy-on-write only on its
    /// first append to a partially-filled shared tail. Meters
    /// `prefix_hit_tokens` by the hit length.
    pub fn new_namespace_with_prefix(&self, hit: &PrefixHit) -> HostKvStore {
        assert!(
            self.alloc.same_pool(&hit.alloc),
            "new_namespace_with_prefix: hit does not belong to this tier"
        );
        let mut store = self.new_namespace();
        for slot in hit.slots.iter().flatten() {
            self.alloc.retain_chain(&slot.pages);
        }
        store.slots = hit.slots.clone();
        store.meter_sharing(|s| s.prefix_hit_tokens += hit.len as u64);
        store
    }

    /// Remove a registered prefix and release its page references. Returns
    /// `false` when no such prefix is registered.
    pub fn release_prefix(&self, tokens: &[u32]) -> bool {
        let key = (token_chain_hash(tokens), tokens.len());
        let mut reg = self.registry.lock();
        match reg.map.remove(&key) {
            Some(entry) => {
                for slot in entry.slots.iter().flatten() {
                    self.alloc.release_chain(&slot.pages);
                }
                true
            }
            None => false,
        }
    }

    /// Snapshot of the prefix-cache counters.
    pub fn prefix_stats(&self) -> PrefixCacheStats {
        PrefixCacheStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            full_hits: self.full_hits.load(Ordering::Relaxed),
            partial_hits: self.partial_hits.load(Ordering::Relaxed),
            entries: self.registry.lock().map.len(),
        }
    }

    /// Namespaces created so far.
    pub fn namespaces_created(&self) -> u64 {
        self.next_ns.load(Ordering::Relaxed)
    }

    /// Snapshot of the tier-wide aggregate transfer statistics (the sum of
    /// every namespace's stats, including namespaces already dropped).
    pub fn aggregate_stats(&self) -> TransferStats {
        *self.aggregate.lock()
    }

    /// Snapshot of the tier-wide sharing statistics (sum over namespaces).
    pub fn aggregate_sharing(&self) -> SharingStats {
        *self.sharing_aggregate.lock()
    }

    /// Zero the aggregate counters (per-namespace stats are unaffected).
    pub fn reset_aggregate_stats(&self) {
        *self.aggregate.lock() = TransferStats::default();
        *self.sharing_aggregate.lock() = SharingStats::default();
    }

    /// Unique host-resident bytes across the tier: every page counted once,
    /// however many namespaces or registered prefixes reference it.
    pub fn resident_bytes(&self) -> u64 {
        self.alloc.resident_bytes()
    }
}

/// CPU-resident KVCache for a whole model: `n_layers × n_kv_heads` slots,
/// each a page table into a shared [`PageAllocator`].
///
/// Standalone stores (from [`HostKvStore::new`]) own a private single-store
/// pool and are namespace 0 with no aggregate; stores vended by
/// [`KvTier::new_namespace`] carry a unique [`NamespaceId`], draw pages from
/// the tier pool, and mirror their metering into the tier aggregate. Token
/// offsets returned by [`HostKvStore::append_token`] are always
/// namespace-local.
///
/// Cloning forks the namespace copy-on-write: the clone shares pages with
/// the source (refcounts bumped) but gets **fresh, zeroed stats** and is
/// detached from any tier aggregate — a clone is a private fork for
/// experimentation, and its traffic must not perturb the source's metering
/// or the engine-wide invariant `aggregate == Σ namespace stats`.
#[derive(Debug)]
pub struct HostKvStore {
    n_layers: usize,
    n_kv_heads: usize,
    head_dim: usize,
    namespace: NamespaceId,
    alloc: PageAllocator,
    slots: Vec<Option<HeadKv>>,
    stats: Arc<Mutex<TransferStats>>,
    sharing: Arc<Mutex<SharingStats>>,
    aggregate: Option<Arc<Mutex<TransferStats>>>,
    sharing_aggregate: Option<Arc<Mutex<SharingStats>>>,
}

impl Clone for HostKvStore {
    fn clone(&self) -> Self {
        for slot in self.slots.iter().flatten() {
            self.alloc.retain_chain(&slot.pages);
        }
        Self {
            n_layers: self.n_layers,
            n_kv_heads: self.n_kv_heads,
            head_dim: self.head_dim,
            namespace: self.namespace,
            alloc: self.alloc.clone(),
            slots: self.slots.clone(),
            stats: Arc::new(Mutex::new(TransferStats::default())),
            sharing: Arc::new(Mutex::new(SharingStats::default())),
            aggregate: None,
            sharing_aggregate: None,
        }
    }
}

impl Drop for HostKvStore {
    fn drop(&mut self) {
        for slot in self.slots.iter().flatten() {
            self.alloc.release_chain(&slot.pages);
        }
    }
}

impl HostKvStore {
    /// An empty standalone store for the given model geometry (private page
    /// pool, default page size).
    pub fn new(n_layers: usize, n_kv_heads: usize, head_dim: usize) -> Self {
        Self::with_allocator(
            n_layers,
            n_kv_heads,
            head_dim,
            PageAllocator::new(DEFAULT_PAGE_TOKENS, head_dim),
        )
    }

    /// An empty store drawing pages from `alloc` (the [`KvTier`] namespace
    /// path; also usable directly for custom page sizes).
    pub fn with_allocator(
        n_layers: usize,
        n_kv_heads: usize,
        head_dim: usize,
        alloc: PageAllocator,
    ) -> Self {
        assert_eq!(alloc.head_dim(), head_dim, "allocator head_dim mismatch");
        Self {
            n_layers,
            n_kv_heads,
            head_dim,
            namespace: NamespaceId(0),
            alloc,
            slots: vec![None; n_layers * n_kv_heads],
            stats: Arc::new(Mutex::new(TransferStats::default())),
            sharing: Arc::new(Mutex::new(SharingStats::default())),
            aggregate: None,
            sharing_aggregate: None,
        }
    }

    /// The namespace this store is bound to (0 for standalone stores).
    pub fn namespace(&self) -> NamespaceId {
        self.namespace
    }

    /// Page size (tokens per page) of the backing pool.
    pub fn page_tokens(&self) -> usize {
        self.alloc.page_tokens()
    }

    fn slot_index(&self, layer: usize, head: usize) -> usize {
        assert!(layer < self.n_layers, "layer {layer} out of range");
        assert!(head < self.n_kv_heads, "head {head} out of range");
        layer * self.n_kv_heads + head
    }

    /// Meter a transfer into the namespace stats and, when tier-bound, the
    /// shared aggregate.
    fn meter(&self, f: impl Fn(&mut TransferStats)) {
        f(&mut self.stats.lock());
        if let Some(agg) = &self.aggregate {
            f(&mut agg.lock());
        }
    }

    /// Meter a sharing event (prefix hit, CoW copy) the same two-level way.
    fn meter_sharing(&self, f: impl Fn(&mut SharingStats)) {
        f(&mut self.sharing.lock());
        if let Some(agg) = &self.sharing_aggregate {
            f(&mut agg.lock());
        }
    }

    /// Offload the full prefill K/V of one (layer, head): Step ❶.
    /// Overwrites any prior content for the slot. Panics on pool
    /// exhaustion — use [`HostKvStore::try_offload`] on capped tiers.
    pub fn offload(&mut self, layer: usize, head: usize, keys: Matrix, values: Matrix) {
        self.try_offload(layer, head, keys, values).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`HostKvStore::offload`]: on pool exhaustion the slot's
    /// prior content is left intact, nothing is metered, and the error
    /// reports the pool cap. The new chain is written *before* the old one
    /// is released, so a failed overwrite never loses data (at the cost of
    /// transiently holding both chains).
    pub fn try_offload(
        &mut self,
        layer: usize,
        head: usize,
        keys: Matrix,
        values: Matrix,
    ) -> Result<(), MemError> {
        assert_eq!(keys.shape(), values.shape(), "K/V shape mismatch");
        assert_eq!(keys.cols(), self.head_dim, "head_dim mismatch");
        let idx = self.slot_index(layer, head);
        let rows = keys.rows();
        let pages = self.alloc.try_write_rows(&keys, &values)?;
        if let Some(old) = self.slots[idx].take() {
            self.alloc.release_chain(&old.pages);
        }
        self.slots[idx] = Some(HeadKv { pages, rows });
        let bytes = (2 * keys.rows() * keys.cols() * WIRE_BYTES_PER_ELEM) as u64;
        self.meter(|st| {
            st.d2h_bytes += bytes;
            st.d2h_ops += 1;
        });
        Ok(())
    }

    /// Append a single evicted token's K/V row (Algorithm 2, line 5) and
    /// return its **namespace-local** offset — the middle index callers must
    /// use for later fetches. Sessions must not derive this offset from any
    /// tier-global count: with several sessions interleaving appends, only
    /// the per-namespace offset is stable.
    ///
    /// Appends are page-local: the row lands in the slot's tail page
    /// (copy-on-write if that page is shared, a fresh page if it is full),
    /// so appending `s` tokens costs O(s·head_dim) total. Panics on pool
    /// exhaustion — use [`HostKvStore::try_append_token`] on capped tiers.
    pub fn append_token(&mut self, layer: usize, head: usize, key: &[f32], value: &[f32]) -> usize {
        self.try_append_token(layer, head, key, value).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`HostKvStore::append_token`]: on pool exhaustion the slot
    /// is left exactly as it was (no offset consumed, nothing metered) and
    /// the append is retryable once pages free up.
    pub fn try_append_token(
        &mut self,
        layer: usize,
        head: usize,
        key: &[f32],
        value: &[f32],
    ) -> Result<usize, MemError> {
        assert_eq!(key.len(), self.head_dim);
        assert_eq!(value.len(), self.head_dim);
        let idx = self.slot_index(layer, head);
        let slot = self.slots[idx].get_or_insert_with(HeadKv::default);
        let offset = slot.rows;
        let cow = self.alloc.try_append_row(&mut slot.pages, key, value)?;
        slot.rows += 1;
        let bytes = (2 * self.head_dim * WIRE_BYTES_PER_ELEM) as u64;
        self.meter(|st| {
            st.d2h_bytes += bytes;
            st.d2h_ops += 1;
        });
        if cow {
            self.meter_sharing(|s| s.cow_copies += 1);
        }
        Ok(offset)
    }

    /// Fetch the K/V rows of the given token indices: Step ❺. Meters H2D
    /// traffic for exactly the rows moved; a zero-row fetch moves nothing
    /// and meters nothing (no phantom `h2d_ops`). Panics when the slot was
    /// never offloaded — use [`HostKvStore::try_fetch`] to get a typed
    /// error instead.
    pub fn fetch(&self, layer: usize, head: usize, token_ids: &[usize]) -> (Matrix, Matrix) {
        self.try_fetch(layer, head, token_ids).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`HostKvStore::fetch`]: returns [`MemError::EmptySlot`]
    /// when the (layer, head) slot holds no data.
    pub fn try_fetch(
        &self,
        layer: usize,
        head: usize,
        token_ids: &[usize],
    ) -> Result<(Matrix, Matrix), MemError> {
        if token_ids.is_empty() {
            return Ok((Matrix::zeros(0, self.head_dim), Matrix::zeros(0, self.head_dim)));
        }
        let idx = self.slot_index(layer, head);
        let slot = self.slots[idx].as_ref().ok_or(MemError::EmptySlot { layer, head })?;
        self.alloc.verify_chain(&slot.pages)?;
        let (keys, values) = self.alloc.gather(&slot.pages, slot.rows, token_ids);
        let bytes = (2 * token_ids.len() * self.head_dim * WIRE_BYTES_PER_ELEM) as u64;
        self.meter(|st| {
            st.h2d_bytes += bytes;
            st.h2d_ops += 1;
        });
        Ok((keys, values))
    }

    /// Gather rows *without* metering transfer — host-side access for data
    /// that never crosses the link (e.g. assembling already-fetched rows).
    pub fn gather_host(&self, layer: usize, head: usize, token_ids: &[usize]) -> (Matrix, Matrix) {
        let idx = self.slot_index(layer, head);
        let slot = self.slots[idx].as_ref().expect("empty slot");
        self.alloc.gather(&slot.pages, slot.rows, token_ids)
    }

    /// Materialize a slot's keys without metering — used by host-side PQ
    /// construction, which happens on CPU where the data already lives.
    pub fn keys_matrix(&self, layer: usize, head: usize) -> Matrix {
        let idx = self.slot_index(layer, head);
        let slot = self.slots[idx].as_ref().expect("empty slot");
        self.alloc.materialize(&slot.pages, slot.rows).0
    }

    /// Materialize a slot's values host-side without metering.
    pub fn values_matrix(&self, layer: usize, head: usize) -> Matrix {
        let idx = self.slot_index(layer, head);
        let slot = self.slots[idx].as_ref().expect("empty slot");
        self.alloc.materialize(&slot.pages, slot.rows).1
    }

    /// Stored token count for a slot (0 if never offloaded).
    pub fn len(&self, layer: usize, head: usize) -> usize {
        self.slots[self.slot_index(layer, head)].as_ref().map_or(0, |s| s.rows)
    }

    /// True when no slot holds data.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|s| s.is_none())
    }

    /// Logical resident bytes across all slots (FP16 accounting of this
    /// namespace's rows; shared pages are counted here per-namespace — use
    /// [`KvTier::resident_bytes`] for unique physical residency).
    pub fn resident_bytes(&self) -> u64 {
        self.slots
            .iter()
            .flatten()
            .map(|s| (2 * s.rows * self.head_dim * WIRE_BYTES_PER_ELEM) as u64)
            .sum()
    }

    /// Snapshot of cumulative transfer statistics.
    pub fn stats(&self) -> TransferStats {
        *self.stats.lock()
    }

    /// Snapshot of cumulative sharing statistics (prefix hits, CoW copies).
    pub fn sharing_stats(&self) -> SharingStats {
        *self.sharing.lock()
    }

    /// Zero the transfer counters (e.g. to meter decode separately from
    /// prefill).
    pub fn reset_stats(&self) {
        *self.stats.lock() = TransferStats::default();
    }

    /// Verify every page this namespace references against its stored
    /// checksum (resume/restore path: corrupt KV must be detected *before*
    /// a recovered session decodes from it, not when the bad row happens to
    /// be fetched).
    pub fn verify(&self) -> Result<(), MemError> {
        for slot in self.slots.iter().flatten() {
            self.alloc.verify_chain(&slot.pages)?;
        }
        Ok(())
    }

    /// Deterministic fault injection: flip one bit of K data in the given
    /// slot's tail page (see [`PageAllocator::corrupt_chain_tail`] — a
    /// shared tail is copy-on-write copied first so only this namespace
    /// observes the corruption). Returns `false` when the slot holds no
    /// data to corrupt.
    pub fn corrupt_slot(&mut self, layer: usize, head: usize, bit: u64) -> bool {
        let idx = self.slot_index(layer, head);
        match self.slots[idx].as_mut() {
            Some(slot) => self.alloc.corrupt_chain_tail(&mut slot.pages, bit),
            None => false,
        }
    }

    /// Pin every page this namespace references (suspend path: a preempted
    /// session's KV must stay resident while it is parked). Pair with
    /// [`HostKvStore::unpin_pages`] before the store is dropped or its
    /// chains are released — a pinned page whose refcount drains to zero
    /// panics.
    pub fn pin_pages(&self) {
        for slot in self.slots.iter().flatten() {
            self.alloc.pin_chain(&slot.pages);
        }
    }

    /// Remove one pin layer from every page this namespace references
    /// (resume/retire path).
    pub fn unpin_pages(&self) {
        for slot in self.slots.iter().flatten() {
            self.alloc.unpin_chain(&slot.pages);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqc_tensor::Rng64;

    fn store_with_data(s: usize, dh: usize) -> (HostKvStore, Matrix, Matrix) {
        let mut rng = Rng64::new(1);
        let k = Matrix::randn(s, dh, 1.0, &mut rng);
        let v = Matrix::randn(s, dh, 1.0, &mut rng);
        let mut store = HostKvStore::new(2, 2, dh);
        store.offload(0, 0, k.clone(), v.clone());
        (store, k, v)
    }

    #[test]
    fn offload_then_fetch_roundtrip() {
        let (store, k, v) = store_with_data(50, 8);
        let ids = [3usize, 10, 49];
        let (fk, fv) = store.fetch(0, 0, &ids);
        for (row, &id) in ids.iter().enumerate() {
            assert_eq!(fk.row(row), k.row(id));
            assert_eq!(fv.row(row), v.row(id));
        }
    }

    #[test]
    fn transfer_accounting_exact() {
        let (store, _, _) = store_with_data(100, 16);
        // offload: 2 (K+V) * 100 * 16 * 2 bytes
        assert_eq!(store.stats().d2h_bytes, 2 * 100 * 16 * 2);
        assert_eq!(store.stats().d2h_ops, 1);
        let _ = store.fetch(0, 0, &[1, 2, 3]);
        assert_eq!(store.stats().h2d_bytes, 2 * 3 * 16 * 2);
        assert_eq!(store.stats().h2d_ops, 1);
    }

    #[test]
    fn empty_fetch_moves_and_meters_nothing() {
        // Regression: a zero-row fetch used to meter `h2d_ops += 1` with 0
        // bytes, skewing ops-based efficiency comparisons.
        let (store, _, _) = store_with_data(10, 4);
        let before = store.stats();
        let (k, v) = store.fetch(0, 0, &[]);
        assert_eq!(k.rows(), 0);
        assert_eq!(v.rows(), 0);
        assert_eq!(k.cols(), 4);
        assert_eq!(store.stats(), before, "empty fetch must not meter");
        // Even on a slot that was never offloaded.
        let empty = HostKvStore::new(1, 1, 4);
        let _ = empty.fetch(0, 0, &[]);
        assert_eq!(empty.stats(), TransferStats::default());
    }

    #[test]
    fn append_token_extends() {
        let (mut store, _, _) = store_with_data(10, 4);
        let key = [1.0f32, 2.0, 3.0, 4.0];
        let val = [9.0f32, 8.0, 7.0, 6.0];
        let off = store.append_token(0, 0, &key, &val);
        assert_eq!(off, 10);
        assert_eq!(store.len(0, 0), 11);
        let (fk, fv) = store.fetch(0, 0, &[10]);
        assert_eq!(fk.row(0), &key);
        assert_eq!(fv.row(0), &val);
    }

    #[test]
    fn append_into_empty_slot_allowed() {
        let mut store = HostKvStore::new(1, 1, 4);
        assert_eq!(store.append_token(0, 0, &[1.0; 4], &[2.0; 4]), 0);
        assert_eq!(store.len(0, 0), 1);
    }

    #[test]
    fn appends_round_trip_across_page_boundaries() {
        // Rows written through offload + many appends must all read back
        // exactly, including across page boundaries.
        let alloc = PageAllocator::new(4, 2);
        let mut store = HostKvStore::with_allocator(1, 1, 2, alloc);
        let mut rng = Rng64::new(7);
        store.offload(0, 0, Matrix::randn(5, 2, 1.0, &mut rng), Matrix::randn(5, 2, 1.0, &mut rng));
        let mut expect_k: Vec<[f32; 2]> = Vec::new();
        for i in 0..23 {
            let k = [i as f32, -(i as f32)];
            let v = [100.0 + i as f32, 0.5];
            assert_eq!(store.append_token(0, 0, &k, &v), 5 + i);
            expect_k.push(k);
        }
        assert_eq!(store.len(0, 0), 28);
        let ids: Vec<usize> = (5..28).collect();
        let (fk, _) = store.fetch(0, 0, &ids);
        for (row, k) in expect_k.iter().enumerate() {
            assert_eq!(fk.row(row), k, "append row {row} corrupted");
        }
    }

    #[test]
    fn large_append_stream_is_amortized_linear() {
        // Regression for the O(s²) whole-slot-vstack append: 30k appends
        // move ~2 MB under paged growth vs ~60 GB under the old scheme.
        // The loose wall-clock bound fails catastrophically on any
        // quadratic regression while staying far from flaky on slow CI.
        let s = 30_000usize;
        let dh = 8;
        let mut store = HostKvStore::new(1, 1, dh);
        let start = std::time::Instant::now();
        for i in 0..s {
            let k = [i as f32; 8];
            assert_eq!(store.append_token(0, 0, &k, &k), i);
        }
        let elapsed = start.elapsed();
        assert_eq!(store.len(0, 0), s);
        let (fk, _) = store.fetch(0, 0, &[0, s / 2, s - 1]);
        assert_eq!(fk.row(0), &[0.0; 8]);
        assert_eq!(fk.row(1), &[(s / 2) as f32; 8]);
        assert_eq!(fk.row(2), &[(s - 1) as f32; 8]);
        assert!(
            elapsed < std::time::Duration::from_secs(5),
            "appending {s} tokens took {elapsed:?} — quadratic append is back"
        );
    }

    #[test]
    fn clone_gets_fresh_stats_and_cow_isolation() {
        // Regression: `derive(Clone)` used to share the stats/aggregate
        // Arcs, so a clone's traffic double-metered into the source (and
        // the tier aggregate). Clones must start with zeroed stats,
        // detached from the tier, and must not perturb the source's data.
        let tier = KvTier::new(1, 1, 4);
        let mut a = tier.new_namespace();
        a.offload(0, 0, Matrix::zeros(3, 4), Matrix::zeros(3, 4));
        let a_stats = a.stats();
        let agg = tier.aggregate_stats();

        let mut c = a.clone();
        assert_eq!(c.stats(), TransferStats::default(), "clone must start unmetered");
        c.append_token(0, 0, &[9.0; 4], &[9.0; 4]);
        let _ = c.fetch(0, 0, &[0, 3]);
        assert_eq!(a.stats(), a_stats, "clone traffic leaked into source stats");
        assert_eq!(tier.aggregate_stats(), agg, "clone traffic leaked into tier aggregate");
        assert!(c.stats().d2h_ops == 1 && c.stats().h2d_ops == 1);

        // Data is CoW-isolated both ways.
        assert_eq!(a.len(0, 0), 3);
        assert_eq!(c.len(0, 0), 4);
        a.append_token(0, 0, &[-1.0; 4], &[-1.0; 4]);
        let (ka, _) = a.fetch(0, 0, &[3]);
        let (kc, _) = c.fetch(0, 0, &[3]);
        assert_eq!(ka.row(0), &[-1.0; 4]);
        assert_eq!(kc.row(0), &[9.0; 4]);
    }

    #[test]
    fn interleaved_namespace_appends_keep_offsets_local() {
        // Regression for the serving refactor: token offsets must be
        // per-namespace, not globally monotone across the tier. Interleave
        // appends from two "sessions" and check each namespace's offsets run
        // 0, 1, 2, ... independently and round-trip to its own rows.
        let tier = KvTier::new(1, 1, 4);
        let mut a = tier.new_namespace();
        let mut b = tier.new_namespace();
        assert_ne!(a.namespace(), b.namespace());
        for i in 0..6 {
            let ka = [i as f32; 4];
            let kb = [-(i as f32) - 1.0; 4];
            // a then b within the same "tick" — the interleaving that broke
            // a global-offset scheme (b's first append would have seen 1).
            assert_eq!(a.append_token(0, 0, &ka, &ka), i);
            assert_eq!(b.append_token(0, 0, &kb, &kb), i);
        }
        assert_eq!(a.len(0, 0), 6);
        assert_eq!(b.len(0, 0), 6);
        let (ka, _) = a.fetch(0, 0, &[3]);
        let (kb, _) = b.fetch(0, 0, &[3]);
        assert_eq!(ka.row(0), &[3.0; 4]);
        assert_eq!(kb.row(0), &[-4.0; 4]);
    }

    #[test]
    fn tier_aggregate_is_sum_of_namespace_stats() {
        let tier = KvTier::new(2, 1, 4);
        let mut rng = Rng64::new(3);
        let mut stores: Vec<HostKvStore> = (0..3).map(|_| tier.new_namespace()).collect();
        for (i, st) in stores.iter_mut().enumerate() {
            let rows = 4 + i;
            st.offload(0, 0, Matrix::randn(rows, 4, 1.0, &mut rng), Matrix::randn(rows, 4, 1.0, &mut rng));
            st.append_token(1, 0, &[0.0; 4], &[0.0; 4]);
            let _ = st.fetch(0, 0, &[0, 1]);
        }
        let sum: TransferStats = stores.iter().map(|s| s.stats()).sum();
        assert_eq!(tier.aggregate_stats(), sum);
        assert!(sum.d2h_bytes > 0 && sum.h2d_bytes > 0);
        assert_eq!(tier.namespaces_created(), 3);
    }

    #[test]
    fn aggregate_survives_namespace_drop() {
        let tier = KvTier::new(1, 1, 4);
        let mut a = tier.new_namespace();
        a.append_token(0, 0, &[1.0; 4], &[1.0; 4]);
        let before = tier.aggregate_stats();
        drop(a);
        assert_eq!(tier.aggregate_stats(), before);
        // Per-namespace reset leaves the aggregate alone; aggregate reset
        // leaves namespaces alone.
        let b = tier.new_namespace();
        tier.reset_aggregate_stats();
        assert_eq!(tier.aggregate_stats(), TransferStats::default());
        assert_eq!(b.stats(), TransferStats::default());
    }

    #[test]
    fn namespace_drop_releases_pages() {
        let tier = KvTier::new(2, 2, 4);
        let mut a = tier.new_namespace();
        a.offload(0, 0, Matrix::zeros(40, 4), Matrix::zeros(40, 4));
        a.offload(1, 1, Matrix::zeros(7, 4), Matrix::zeros(7, 4));
        assert!(tier.allocator().pages_in_use() > 0);
        drop(a);
        assert_eq!(tier.allocator().pages_in_use(), 0, "drop must free all pages");
    }

    #[test]
    fn transfer_stats_sum_and_add() {
        let a = TransferStats { d2h_bytes: 1, h2d_bytes: 2, d2h_ops: 3, h2d_ops: 4 };
        let b = TransferStats { d2h_bytes: 10, h2d_bytes: 20, d2h_ops: 30, h2d_ops: 40 };
        let s: TransferStats = [a, b].into_iter().sum();
        assert_eq!(s, a + b);
        assert_eq!(s.d2h_bytes, 11);
        assert_eq!(s.h2d_ops, 44);
    }

    #[test]
    fn host_reads_do_not_meter() {
        let (store, k, v) = store_with_data(20, 8);
        let before = store.stats();
        assert_eq!(store.keys_matrix(0, 0).row(5), k.row(5));
        assert_eq!(store.values_matrix(0, 0).row(7), v.row(7));
        let (gk, _) = store.gather_host(0, 0, &[2, 19]);
        assert_eq!(gk.row(1), k.row(19));
        assert_eq!(store.stats(), before);
    }

    #[test]
    fn resident_bytes_counts_all_slots() {
        let mut store = HostKvStore::new(2, 1, 4);
        let mut rng = Rng64::new(2);
        store.offload(0, 0, Matrix::randn(10, 4, 1.0, &mut rng), Matrix::randn(10, 4, 1.0, &mut rng));
        store.offload(1, 0, Matrix::randn(5, 4, 1.0, &mut rng), Matrix::randn(5, 4, 1.0, &mut rng));
        assert_eq!(store.resident_bytes(), (2 * 10 * 4 * 2 + 2 * 5 * 4 * 2) as u64);
    }

    #[test]
    fn reset_stats_zeroes() {
        let (store, _, _) = store_with_data(10, 4);
        store.reset_stats();
        assert_eq!(store.stats(), TransferStats::default());
    }

    #[test]
    fn store_pin_pages_blocks_recycling_until_unpinned() {
        let tier = KvTier::with_pages(1, 1, 4, 8, None);
        let mut store = tier.new_namespace();
        let mut rng = Rng64::new(7);
        let k = Matrix::randn(20, 4, 1.0, &mut rng);
        let v = Matrix::randn(20, 4, 1.0, &mut rng);
        store.offload(0, 0, k.clone(), v.clone());
        store.pin_pages();
        assert_eq!(tier.allocator().pinned_pages(), 3, "ceil(20/8) pages pinned");
        store.unpin_pages();
        assert_eq!(tier.allocator().pinned_pages(), 0);
        // Data survives the pin/unpin round trip bit-for-bit.
        assert_eq!(store.keys_matrix(0, 0), k);
        assert_eq!(store.values_matrix(0, 0), v);
        drop(store);
        assert_eq!(tier.allocator().pages_in_use(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_layer_panics() {
        let store = HostKvStore::new(1, 1, 4);
        let _ = store.len(5, 0);
    }

    #[test]
    #[should_panic(expected = "empty slot")]
    fn fetch_empty_panics() {
        let store = HostKvStore::new(1, 1, 4);
        let _ = store.fetch(0, 0, &[0]);
    }

    #[test]
    fn capped_tier_append_fails_then_recovers() {
        // 1 page of 2 tokens: the third append needs a second page.
        let tier = KvTier::with_page_limit(1, 1, 4, 2, None, Some(1));
        let mut a = tier.new_namespace();
        assert_eq!(a.try_append_token(0, 0, &[0.0; 4], &[0.0; 4]), Ok(0));
        assert_eq!(a.try_append_token(0, 0, &[1.0; 4], &[1.0; 4]), Ok(1));
        let before = a.stats();
        let err = a.try_append_token(0, 0, &[2.0; 4], &[2.0; 4]).expect_err("at cap");
        assert_eq!(err, MemError::PageExhausted { max_pages: 1 });
        assert_eq!(a.len(0, 0), 2, "failed append consumes no offset");
        assert_eq!(a.stats(), before, "failed append meters nothing");
        // Stored data still reads back fine.
        let (k, _) = a.fetch(0, 0, &[0, 1]);
        assert_eq!(k.row(1), &[1.0; 4]);
        // Retiring the namespace frees its pages; a new session fits again.
        drop(a);
        let mut b = tier.new_namespace();
        assert_eq!(b.try_append_token(0, 0, &[9.0; 4], &[9.0; 4]), Ok(0));
    }

    #[test]
    fn capped_tier_offload_fails_without_metering() {
        let tier = KvTier::with_page_limit(1, 1, 4, 2, None, Some(2));
        let mut ns = tier.new_namespace();
        // 6 rows need 3 pages; cap is 2.
        let err = ns
            .try_offload(0, 0, Matrix::zeros(6, 4), Matrix::zeros(6, 4))
            .expect_err("over-cap offload");
        assert_eq!(err, MemError::PageExhausted { max_pages: 2 });
        assert_eq!(ns.stats(), TransferStats::default(), "failed offload meters nothing");
        assert_eq!(tier.aggregate_stats(), TransferStats::default());
        assert_eq!(tier.allocator().pages_in_use(), 0, "failed offload rolled back");
        // A within-cap offload still works.
        ns.try_offload(0, 0, Matrix::zeros(4, 4), Matrix::zeros(4, 4)).expect("fits");
        assert_eq!(ns.len(0, 0), 4);
    }

    #[test]
    fn failed_overwrite_keeps_old_slot_contents() {
        let tier = KvTier::with_page_limit(1, 1, 4, 2, None, Some(3));
        let mut ns = tier.new_namespace();
        let mut rng = Rng64::new(5);
        let k = Matrix::randn(3, 4, 1.0, &mut rng);
        ns.try_offload(0, 0, k.clone(), Matrix::zeros(3, 4)).expect("fits in 2 pages");
        // Overwrite needing 3 fresh pages fails (2 already held + 3 > cap)…
        let err = ns
            .try_offload(0, 0, Matrix::zeros(6, 4), Matrix::zeros(6, 4))
            .expect_err("overwrite over cap");
        assert_eq!(err, MemError::PageExhausted { max_pages: 3 });
        // …and the original rows survive untouched.
        assert_eq!(ns.len(0, 0), 3);
        let (fk, _) = ns.fetch(0, 0, &[0, 2]);
        assert_eq!(fk.row(0), k.row(0));
        assert_eq!(fk.row(1), k.row(2));
    }

    #[test]
    fn try_fetch_empty_slot_returns_typed_error() {
        let store = HostKvStore::new(2, 2, 4);
        let err = store.try_fetch(1, 1, &[0]).expect_err("never offloaded");
        assert_eq!(err, MemError::EmptySlot { layer: 1, head: 1 });
        assert!(err.to_string().contains("empty slot"));
        // Zero-row fetch stays Ok even on an empty slot.
        let (k, v) = store.try_fetch(1, 1, &[]).expect("empty id list");
        assert_eq!((k.rows(), v.rows()), (0, 0));
    }

    #[test]
    fn corrupt_slot_is_detected_by_try_fetch_and_verify() {
        let (mut store, _, _) = store_with_data(10, 4);
        store.verify().expect("intact store verifies");
        assert!(store.corrupt_slot(0, 0, 3));
        let err = store.try_fetch(0, 0, &[0]).expect_err("corrupt page must not serve");
        assert!(matches!(err, MemError::PageCorrupt { .. }));
        assert!(store.verify().is_err());
        // Untouched slots still serve: corruption is detected per-chain.
        assert!(!store.corrupt_slot(1, 1, 0), "empty slot has nothing to corrupt");
        // A failed fetch meters nothing — corrupt bytes never cross the link.
        let before = store.stats();
        let _ = store.try_fetch(0, 0, &[1]);
        assert_eq!(store.stats(), before);
    }

    #[test]
    fn fork_namespace_shares_pages_and_stays_in_aggregate() {
        let tier = KvTier::with_pages(1, 1, 4, 4, None);
        let mut a = tier.new_namespace();
        let mut rng = Rng64::new(13);
        let k = Matrix::randn(6, 4, 1.0, &mut rng);
        let v = Matrix::randn(6, 4, 1.0, &mut rng);
        a.offload(0, 0, k.clone(), v.clone());
        let pages_before = tier.allocator().pages_in_use();

        let f = tier.fork_namespace(&a);
        assert_ne!(f.namespace(), a.namespace());
        assert_eq!(f.stats(), TransferStats::default(), "fork starts unmetered");
        assert_eq!(tier.allocator().pages_in_use(), pages_before, "fork must not allocate");
        assert_eq!(f.len(0, 0), 6);

        // Fork traffic *does* land in the tier aggregate (unlike clone()).
        let agg = tier.aggregate_stats();
        let _ = f.fetch(0, 0, &[0]);
        assert_eq!(tier.aggregate_stats(), agg + f.stats());

        // CoW isolation: the source keeps appending without disturbing the
        // fork's frozen rows.
        a.append_token(0, 0, &[9.0; 4], &[9.0; 4]);
        assert_eq!(f.len(0, 0), 6, "fork is a point-in-time snapshot");
        let (fk, _) = f.gather_host(0, 0, &[5]);
        assert_eq!(fk.row(0), k.row(5));

        drop(a);
        drop(f);
        assert_eq!(tier.allocator().pages_in_use(), 0);
    }

    #[test]
    fn corrupting_source_spares_the_fork() {
        // The failure model behind checkpoint rollback: live data rots, the
        // checkpoint fork must still verify and serve the original bytes.
        let tier = KvTier::with_pages(1, 1, 2, 4, None);
        let mut live = tier.new_namespace();
        let mut rng = Rng64::new(17);
        let k = Matrix::randn(5, 2, 1.0, &mut rng);
        live.offload(0, 0, k.clone(), Matrix::randn(5, 2, 1.0, &mut rng));
        let ckpt = tier.fork_namespace(&live);
        assert!(live.corrupt_slot(0, 0, 7));
        assert!(live.verify().is_err(), "live namespace sees the corruption");
        ckpt.verify().expect("checkpoint keeps the intact original");
        let (ck, _) = ckpt.gather_host(0, 0, &[4]);
        assert_eq!(ck.row(0), k.row(4));
    }

    #[test]
    fn chain_hash_is_prefix_consistent_and_content_sensitive() {
        let toks = [5u32, 9, 9, 2, 7];
        assert_eq!(token_chain_hash(&toks[..3]), token_chain_hash(&[5, 9, 9]));
        assert_ne!(token_chain_hash(&toks[..3]), token_chain_hash(&toks[..4]));
        assert_ne!(token_chain_hash(&[1, 2]), token_chain_hash(&[2, 1]), "order must matter");
    }

    #[test]
    fn prefix_register_lookup_adopt() {
        let tier = KvTier::with_pages(1, 1, 4, 4, None);
        let mut owner = tier.new_namespace();
        let mut rng = Rng64::new(11);
        let k = Matrix::randn(10, 4, 1.0, &mut rng);
        let v = Matrix::randn(10, 4, 1.0, &mut rng);
        owner.offload(0, 0, k.clone(), v.clone());
        let prompt: Vec<u32> = (0..12).collect();
        assert!(tier.register_prefix(&prompt, &owner, Arc::new(42usize)));
        assert!(!tier.register_prefix(&prompt, &owner, Arc::new(0usize)), "first wins");

        // Full-stream hit.
        let hit = tier.lookup_prefix(&prompt).expect("registered prefix must hit");
        assert_eq!(hit.len(), 12);
        assert!(!hit.is_empty());
        assert_eq!(*hit.payload().downcast_ref::<usize>().expect("payload type"), 42);

        // Adopted namespace sees the owner's rows without any offload.
        let adopted = tier.new_namespace_with_prefix(&hit);
        assert_eq!(adopted.len(0, 0), 10);
        assert_eq!(adopted.stats(), TransferStats::default(), "adoption is not a transfer");
        assert_eq!(adopted.sharing_stats().prefix_hit_tokens, 12);
        let (ak, av) = adopted.gather_host(0, 0, &(0..10).collect::<Vec<_>>());
        for r in 0..10 {
            assert_eq!(ak.row(r), k.row(r));
            assert_eq!(av.row(r), v.row(r));
        }

        // Longest-prefix lookup on an extended stream is a partial hit.
        let longer: Vec<u32> = (0..20).collect();
        let partial = tier.lookup_prefix(&longer).expect("prefix of query registered");
        assert_eq!(partial.len(), 12);
        // Unrelated stream misses.
        assert!(tier.lookup_prefix(&[99, 98]).is_none());
        let st = tier.prefix_stats();
        assert_eq!((st.lookups, st.full_hits, st.partial_hits, st.entries), (3, 1, 1, 1));
        assert!((st.full_hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn prefix_sharing_is_cow_isolated_and_unique_resident() {
        let tier = KvTier::with_pages(1, 1, 2, 4, None);
        let mut owner = tier.new_namespace();
        owner.offload(0, 0, Matrix::zeros(10, 2), Matrix::zeros(10, 2));
        let pages_before = tier.allocator().pages_in_use();
        let prompt: Vec<u32> = (100..110).collect();
        assert!(tier.register_prefix(&prompt, &owner, Arc::new(())));

        // N adopters share the owner's pages: residency does not grow.
        let hit = tier.lookup_prefix(&prompt).expect("hit");
        let mut adopters: Vec<HostKvStore> =
            (0..8).map(|_| tier.new_namespace_with_prefix(&hit)).collect();
        drop(hit);
        assert_eq!(tier.allocator().pages_in_use(), pages_before, "adoption must not allocate");

        // Owner's own appends after registration CoW its shared tail.
        owner.append_token(0, 0, &[7.0; 2], &[7.0; 2]);
        assert_eq!(owner.sharing_stats().cow_copies, 1);
        // Each adopter's first append CoWs too; none corrupt the others.
        for (i, ad) in adopters.iter_mut().enumerate() {
            ad.append_token(0, 0, &[i as f32; 2], &[i as f32; 2]);
        }
        for (i, ad) in adopters.iter().enumerate() {
            let (k, _) = ad.gather_host(0, 0, &[9, 10]);
            assert_eq!(k.row(0), &[0.0; 2], "shared row corrupted");
            assert_eq!(k.row(1), &[i as f32; 2], "private row corrupted");
        }
        assert_eq!(tier.aggregate_sharing().cow_copies, 9);

        // Releasing everything returns the pool to empty.
        drop(owner);
        adopters.clear();
        assert!(tier.release_prefix(&prompt));
        assert!(!tier.release_prefix(&prompt), "double release");
        assert_eq!(tier.allocator().pages_in_use(), 0);
    }
}
