//! Host-tier KVCache storage with transfer accounting.
//!
//! The paper keeps the full KVCache in CPU memory (Step ❶) and fetches rows
//! on demand (Step ❺). [`HostKvStore`] holds per-layer/per-head K and V
//! matrices and meters every byte that crosses the simulated PCIe link, so
//! efficiency experiments can compare methods by *data moved*, the
//! fair-comparison axis of §4.1.3.
//!
//! For multi-session serving, a [`KvTier`] vends per-session **namespaces**:
//! each namespace is a [`HostKvStore`] with its own token-offset space (two
//! sessions interleaving appends never perturb each other's middle indices)
//! whose transfers are additionally metered into one shared aggregate, so
//! engine-level accounting equals the sum of per-session stats by
//! construction.

use parking_lot::Mutex;
use pqc_tensor::Matrix;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Bytes-per-element used for wire accounting (FP16, as the paper serves).
pub const WIRE_BYTES_PER_ELEM: usize = 2;

/// Cumulative transfer statistics, shared between store handles.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct TransferStats {
    /// Bytes moved device→host (offload).
    pub d2h_bytes: u64,
    /// Bytes moved host→device (fetch).
    pub h2d_bytes: u64,
    /// Number of offload operations.
    pub d2h_ops: u64,
    /// Number of fetch operations.
    pub h2d_ops: u64,
}

impl std::ops::AddAssign for TransferStats {
    fn add_assign(&mut self, rhs: Self) {
        self.d2h_bytes += rhs.d2h_bytes;
        self.h2d_bytes += rhs.h2d_bytes;
        self.d2h_ops += rhs.d2h_ops;
        self.h2d_ops += rhs.h2d_ops;
    }
}

impl std::ops::Add for TransferStats {
    type Output = TransferStats;
    fn add(mut self, rhs: Self) -> Self {
        self += rhs;
        self
    }
}

impl std::iter::Sum for TransferStats {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::default(), |acc, s| acc + s)
    }
}

/// Identifier of one namespace within a [`KvTier`]. Offsets (middle-token
/// indices) are scoped to a namespace, never global across the tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NamespaceId(pub u64);

/// A shared host-memory tier serving many concurrent sessions.
///
/// `new_namespace` hands out a [`HostKvStore`] bound to a fresh
/// [`NamespaceId`]; every namespace meters its traffic both into its own
/// [`TransferStats`] and into the tier-wide aggregate, which
/// [`KvTier::aggregate_stats`] snapshots.
///
/// ```
/// use pqc_memhier::KvTier;
///
/// let tier = KvTier::new(2, 2, 8);
/// let mut a = tier.new_namespace();
/// let mut b = tier.new_namespace();
/// a.append_token(0, 0, &[0.0; 8], &[0.0; 8]);
/// b.append_token(0, 0, &[1.0; 8], &[1.0; 8]);
/// // Offsets are per-namespace: both sessions' first middle token is 0.
/// assert_eq!(a.len(0, 0), 1);
/// assert_eq!(b.len(0, 0), 1);
/// assert_eq!(tier.aggregate_stats(), a.stats() + b.stats());
/// ```
#[derive(Debug, Clone)]
pub struct KvTier {
    n_layers: usize,
    n_kv_heads: usize,
    head_dim: usize,
    aggregate: Arc<Mutex<TransferStats>>,
    next_ns: Arc<AtomicU64>,
}

impl KvTier {
    /// A tier for the given model geometry, with no namespaces yet.
    pub fn new(n_layers: usize, n_kv_heads: usize, head_dim: usize) -> Self {
        Self {
            n_layers,
            n_kv_heads,
            head_dim,
            aggregate: Arc::new(Mutex::new(TransferStats::default())),
            next_ns: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Create a fresh, empty namespace (e.g. one per admitted session).
    /// Namespace ids are unique across clones of this tier handle.
    pub fn new_namespace(&self) -> HostKvStore {
        let ns = NamespaceId(self.next_ns.fetch_add(1, Ordering::Relaxed));
        let mut store = HostKvStore::new(self.n_layers, self.n_kv_heads, self.head_dim);
        store.namespace = ns;
        store.aggregate = Some(Arc::clone(&self.aggregate));
        store
    }

    /// Namespaces created so far.
    pub fn namespaces_created(&self) -> u64 {
        self.next_ns.load(Ordering::Relaxed)
    }

    /// Snapshot of the tier-wide aggregate transfer statistics (the sum of
    /// every namespace's stats, including namespaces already dropped).
    pub fn aggregate_stats(&self) -> TransferStats {
        *self.aggregate.lock()
    }

    /// Zero the aggregate counters (per-namespace stats are unaffected).
    pub fn reset_aggregate_stats(&self) {
        *self.aggregate.lock() = TransferStats::default();
    }
}

/// Key and value rows for one (layer, kv-head) pair.
#[derive(Debug, Clone)]
struct HeadKv {
    keys: Matrix,
    values: Matrix,
}

/// CPU-resident KVCache for a whole model: `n_layers × n_kv_heads` slots.
///
/// Standalone stores (from [`HostKvStore::new`]) are their own namespace 0
/// with no aggregate; stores vended by [`KvTier::new_namespace`] carry a
/// unique [`NamespaceId`] and mirror their metering into the tier aggregate.
/// Token offsets returned by [`HostKvStore::append_token`] are always
/// namespace-local.
#[derive(Debug, Clone)]
pub struct HostKvStore {
    n_layers: usize,
    n_kv_heads: usize,
    head_dim: usize,
    namespace: NamespaceId,
    slots: Vec<Option<HeadKv>>,
    stats: Arc<Mutex<TransferStats>>,
    aggregate: Option<Arc<Mutex<TransferStats>>>,
}

impl HostKvStore {
    /// An empty store for the given model geometry.
    pub fn new(n_layers: usize, n_kv_heads: usize, head_dim: usize) -> Self {
        Self {
            n_layers,
            n_kv_heads,
            head_dim,
            namespace: NamespaceId(0),
            slots: vec![None; n_layers * n_kv_heads],
            stats: Arc::new(Mutex::new(TransferStats::default())),
            aggregate: None,
        }
    }

    /// The namespace this store is bound to (0 for standalone stores).
    pub fn namespace(&self) -> NamespaceId {
        self.namespace
    }

    fn slot_index(&self, layer: usize, head: usize) -> usize {
        assert!(layer < self.n_layers, "layer {layer} out of range");
        assert!(head < self.n_kv_heads, "head {head} out of range");
        layer * self.n_kv_heads + head
    }

    /// Meter a transfer into the namespace stats and, when tier-bound, the
    /// shared aggregate.
    fn meter(&self, f: impl Fn(&mut TransferStats)) {
        f(&mut self.stats.lock());
        if let Some(agg) = &self.aggregate {
            f(&mut agg.lock());
        }
    }

    /// Offload the full prefill K/V of one (layer, head): Step ❶.
    /// Overwrites any prior content for the slot.
    pub fn offload(&mut self, layer: usize, head: usize, keys: Matrix, values: Matrix) {
        assert_eq!(keys.shape(), values.shape(), "K/V shape mismatch");
        assert_eq!(keys.cols(), self.head_dim, "head_dim mismatch");
        let bytes = (2 * keys.rows() * keys.cols() * WIRE_BYTES_PER_ELEM) as u64;
        self.meter(|st| {
            st.d2h_bytes += bytes;
            st.d2h_ops += 1;
        });
        let idx = self.slot_index(layer, head);
        self.slots[idx] = Some(HeadKv { keys, values });
    }

    /// Append a single evicted token's K/V row (Algorithm 2, line 5) and
    /// return its **namespace-local** offset — the middle index callers must
    /// use for later fetches. Sessions must not derive this offset from any
    /// tier-global count: with several sessions interleaving appends, only
    /// the per-namespace offset is stable.
    pub fn append_token(&mut self, layer: usize, head: usize, key: &[f32], value: &[f32]) -> usize {
        assert_eq!(key.len(), self.head_dim);
        assert_eq!(value.len(), self.head_dim);
        let idx = self.slot_index(layer, head);
        let slot = self.slots[idx].get_or_insert_with(|| HeadKv {
            keys: Matrix::zeros(0, self.head_dim),
            values: Matrix::zeros(0, self.head_dim),
        });
        let offset = slot.keys.rows();
        let k1 = Matrix::from_vec(1, self.head_dim, key.to_vec());
        let v1 = Matrix::from_vec(1, self.head_dim, value.to_vec());
        slot.keys = slot.keys.vstack(&k1);
        slot.values = slot.values.vstack(&v1);
        let bytes = (2 * self.head_dim * WIRE_BYTES_PER_ELEM) as u64;
        self.meter(|st| {
            st.d2h_bytes += bytes;
            st.d2h_ops += 1;
        });
        offset
    }

    /// Fetch the K/V rows of the given token indices: Step ❺. Meters H2D
    /// traffic for exactly the rows moved.
    pub fn fetch(&self, layer: usize, head: usize, token_ids: &[usize]) -> (Matrix, Matrix) {
        let idx = self.slot_index(layer, head);
        let slot = self.slots[idx].as_ref().expect("fetch from empty slot");
        let keys = slot.keys.gather_rows(token_ids);
        let values = slot.values.gather_rows(token_ids);
        let bytes = (2 * token_ids.len() * self.head_dim * WIRE_BYTES_PER_ELEM) as u64;
        self.meter(|st| {
            st.h2d_bytes += bytes;
            st.h2d_ops += 1;
        });
        (keys, values)
    }

    /// Read keys *without* metering transfer — used by host-side PQ
    /// construction, which happens on CPU where the data already lives.
    pub fn keys_host(&self, layer: usize, head: usize) -> &Matrix {
        let idx = self.slot_index(layer, head);
        &self.slots[idx].as_ref().expect("empty slot").keys
    }

    /// Read values host-side without metering (CPU-local access).
    pub fn values_host(&self, layer: usize, head: usize) -> &Matrix {
        let idx = self.slot_index(layer, head);
        &self.slots[idx].as_ref().expect("empty slot").values
    }

    /// Stored token count for a slot (0 if never offloaded).
    pub fn len(&self, layer: usize, head: usize) -> usize {
        self.slots[self.slot_index(layer, head)]
            .as_ref()
            .map_or(0, |s| s.keys.rows())
    }

    /// True when no slot holds data.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|s| s.is_none())
    }

    /// Resident bytes across all slots (FP16 accounting).
    pub fn resident_bytes(&self) -> u64 {
        self.slots
            .iter()
            .flatten()
            .map(|s| (2 * s.keys.rows() * s.keys.cols() * WIRE_BYTES_PER_ELEM) as u64)
            .sum()
    }

    /// Snapshot of cumulative transfer statistics.
    pub fn stats(&self) -> TransferStats {
        *self.stats.lock()
    }

    /// Zero the transfer counters (e.g. to meter decode separately from
    /// prefill).
    pub fn reset_stats(&self) {
        *self.stats.lock() = TransferStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqc_tensor::Rng64;

    fn store_with_data(s: usize, dh: usize) -> (HostKvStore, Matrix, Matrix) {
        let mut rng = Rng64::new(1);
        let k = Matrix::randn(s, dh, 1.0, &mut rng);
        let v = Matrix::randn(s, dh, 1.0, &mut rng);
        let mut store = HostKvStore::new(2, 2, dh);
        store.offload(0, 0, k.clone(), v.clone());
        (store, k, v)
    }

    #[test]
    fn offload_then_fetch_roundtrip() {
        let (store, k, v) = store_with_data(50, 8);
        let ids = [3usize, 10, 49];
        let (fk, fv) = store.fetch(0, 0, &ids);
        for (row, &id) in ids.iter().enumerate() {
            assert_eq!(fk.row(row), k.row(id));
            assert_eq!(fv.row(row), v.row(id));
        }
    }

    #[test]
    fn transfer_accounting_exact() {
        let (store, _, _) = store_with_data(100, 16);
        // offload: 2 (K+V) * 100 * 16 * 2 bytes
        assert_eq!(store.stats().d2h_bytes, 2 * 100 * 16 * 2);
        assert_eq!(store.stats().d2h_ops, 1);
        let _ = store.fetch(0, 0, &[1, 2, 3]);
        assert_eq!(store.stats().h2d_bytes, 2 * 3 * 16 * 2);
        assert_eq!(store.stats().h2d_ops, 1);
    }

    #[test]
    fn append_token_extends() {
        let (mut store, _, _) = store_with_data(10, 4);
        let key = [1.0f32, 2.0, 3.0, 4.0];
        let val = [9.0f32, 8.0, 7.0, 6.0];
        let off = store.append_token(0, 0, &key, &val);
        assert_eq!(off, 10);
        assert_eq!(store.len(0, 0), 11);
        let (fk, fv) = store.fetch(0, 0, &[10]);
        assert_eq!(fk.row(0), &key);
        assert_eq!(fv.row(0), &val);
    }

    #[test]
    fn append_into_empty_slot_allowed() {
        let mut store = HostKvStore::new(1, 1, 4);
        assert_eq!(store.append_token(0, 0, &[1.0; 4], &[2.0; 4]), 0);
        assert_eq!(store.len(0, 0), 1);
    }

    #[test]
    fn interleaved_namespace_appends_keep_offsets_local() {
        // Regression for the serving refactor: token offsets must be
        // per-namespace, not globally monotone across the tier. Interleave
        // appends from two "sessions" and check each namespace's offsets run
        // 0, 1, 2, ... independently and round-trip to its own rows.
        let tier = KvTier::new(1, 1, 4);
        let mut a = tier.new_namespace();
        let mut b = tier.new_namespace();
        assert_ne!(a.namespace(), b.namespace());
        for i in 0..6 {
            let ka = [i as f32; 4];
            let kb = [-(i as f32) - 1.0; 4];
            // a then b within the same "tick" — the interleaving that broke
            // a global-offset scheme (b's first append would have seen 1).
            assert_eq!(a.append_token(0, 0, &ka, &ka), i);
            assert_eq!(b.append_token(0, 0, &kb, &kb), i);
        }
        assert_eq!(a.len(0, 0), 6);
        assert_eq!(b.len(0, 0), 6);
        let (ka, _) = a.fetch(0, 0, &[3]);
        let (kb, _) = b.fetch(0, 0, &[3]);
        assert_eq!(ka.row(0), &[3.0; 4]);
        assert_eq!(kb.row(0), &[-4.0; 4]);
    }

    #[test]
    fn tier_aggregate_is_sum_of_namespace_stats() {
        let tier = KvTier::new(2, 1, 4);
        let mut rng = Rng64::new(3);
        let mut stores: Vec<HostKvStore> = (0..3).map(|_| tier.new_namespace()).collect();
        for (i, st) in stores.iter_mut().enumerate() {
            let rows = 4 + i;
            st.offload(0, 0, Matrix::randn(rows, 4, 1.0, &mut rng), Matrix::randn(rows, 4, 1.0, &mut rng));
            st.append_token(1, 0, &[0.0; 4], &[0.0; 4]);
            let _ = st.fetch(0, 0, &[0, 1]);
        }
        let sum: TransferStats = stores.iter().map(|s| s.stats()).sum();
        assert_eq!(tier.aggregate_stats(), sum);
        assert!(sum.d2h_bytes > 0 && sum.h2d_bytes > 0);
        assert_eq!(tier.namespaces_created(), 3);
    }

    #[test]
    fn aggregate_survives_namespace_drop() {
        let tier = KvTier::new(1, 1, 4);
        let mut a = tier.new_namespace();
        a.append_token(0, 0, &[1.0; 4], &[1.0; 4]);
        let before = tier.aggregate_stats();
        drop(a);
        assert_eq!(tier.aggregate_stats(), before);
        // Per-namespace reset leaves the aggregate alone; aggregate reset
        // leaves namespaces alone.
        let b = tier.new_namespace();
        tier.reset_aggregate_stats();
        assert_eq!(tier.aggregate_stats(), TransferStats::default());
        assert_eq!(b.stats(), TransferStats::default());
    }

    #[test]
    fn transfer_stats_sum_and_add() {
        let a = TransferStats { d2h_bytes: 1, h2d_bytes: 2, d2h_ops: 3, h2d_ops: 4 };
        let b = TransferStats { d2h_bytes: 10, h2d_bytes: 20, d2h_ops: 30, h2d_ops: 40 };
        let s: TransferStats = [a, b].into_iter().sum();
        assert_eq!(s, a + b);
        assert_eq!(s.d2h_bytes, 11);
        assert_eq!(s.h2d_ops, 44);
    }

    #[test]
    fn host_reads_do_not_meter() {
        let (store, _, _) = store_with_data(20, 8);
        let before = store.stats();
        let _ = store.keys_host(0, 0);
        let _ = store.values_host(0, 0);
        assert_eq!(store.stats(), before);
    }

    #[test]
    fn resident_bytes_counts_all_slots() {
        let mut store = HostKvStore::new(2, 1, 4);
        let mut rng = Rng64::new(2);
        store.offload(0, 0, Matrix::randn(10, 4, 1.0, &mut rng), Matrix::randn(10, 4, 1.0, &mut rng));
        store.offload(1, 0, Matrix::randn(5, 4, 1.0, &mut rng), Matrix::randn(5, 4, 1.0, &mut rng));
        assert_eq!(store.resident_bytes(), (2 * 10 * 4 * 2 + 2 * 5 * 4 * 2) as u64);
    }

    #[test]
    fn reset_stats_zeroes() {
        let (store, _, _) = store_with_data(10, 4);
        store.reset_stats();
        assert_eq!(store.stats(), TransferStats::default());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_layer_panics() {
        let store = HostKvStore::new(1, 1, 4);
        let _ = store.len(5, 0);
    }

    #[test]
    #[should_panic(expected = "empty slot")]
    fn fetch_empty_panics() {
        let store = HostKvStore::new(1, 1, 4);
        let _ = store.fetch(0, 0, &[0]);
    }
}
