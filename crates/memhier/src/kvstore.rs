//! Host-tier KVCache storage with transfer accounting.
//!
//! The paper keeps the full KVCache in CPU memory (Step ❶) and fetches rows
//! on demand (Step ❺). [`HostKvStore`] holds per-layer/per-head K and V
//! matrices and meters every byte that crosses the simulated PCIe link, so
//! efficiency experiments can compare methods by *data moved*, the
//! fair-comparison axis of §4.1.3.

use parking_lot::Mutex;
use pqc_tensor::Matrix;
use std::sync::Arc;

/// Bytes-per-element used for wire accounting (FP16, as the paper serves).
pub const WIRE_BYTES_PER_ELEM: usize = 2;

/// Cumulative transfer statistics, shared between store handles.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct TransferStats {
    /// Bytes moved device→host (offload).
    pub d2h_bytes: u64,
    /// Bytes moved host→device (fetch).
    pub h2d_bytes: u64,
    /// Number of offload operations.
    pub d2h_ops: u64,
    /// Number of fetch operations.
    pub h2d_ops: u64,
}

/// Key and value rows for one (layer, kv-head) pair.
#[derive(Debug, Clone)]
struct HeadKv {
    keys: Matrix,
    values: Matrix,
}

/// CPU-resident KVCache for a whole model: `n_layers × n_kv_heads` slots.
#[derive(Debug, Clone)]
pub struct HostKvStore {
    n_layers: usize,
    n_kv_heads: usize,
    head_dim: usize,
    slots: Vec<Option<HeadKv>>,
    stats: Arc<Mutex<TransferStats>>,
}

impl HostKvStore {
    /// An empty store for the given model geometry.
    pub fn new(n_layers: usize, n_kv_heads: usize, head_dim: usize) -> Self {
        Self {
            n_layers,
            n_kv_heads,
            head_dim,
            slots: vec![None; n_layers * n_kv_heads],
            stats: Arc::new(Mutex::new(TransferStats::default())),
        }
    }

    fn slot_index(&self, layer: usize, head: usize) -> usize {
        assert!(layer < self.n_layers, "layer {layer} out of range");
        assert!(head < self.n_kv_heads, "head {head} out of range");
        layer * self.n_kv_heads + head
    }

    /// Offload the full prefill K/V of one (layer, head): Step ❶.
    /// Overwrites any prior content for the slot.
    pub fn offload(&mut self, layer: usize, head: usize, keys: Matrix, values: Matrix) {
        assert_eq!(keys.shape(), values.shape(), "K/V shape mismatch");
        assert_eq!(keys.cols(), self.head_dim, "head_dim mismatch");
        let bytes = (2 * keys.rows() * keys.cols() * WIRE_BYTES_PER_ELEM) as u64;
        {
            let mut st = self.stats.lock();
            st.d2h_bytes += bytes;
            st.d2h_ops += 1;
        }
        let idx = self.slot_index(layer, head);
        self.slots[idx] = Some(HeadKv { keys, values });
    }

    /// Append a single evicted token's K/V row (Algorithm 2, line 5).
    pub fn append_token(&mut self, layer: usize, head: usize, key: &[f32], value: &[f32]) {
        assert_eq!(key.len(), self.head_dim);
        assert_eq!(value.len(), self.head_dim);
        let idx = self.slot_index(layer, head);
        let slot = self.slots[idx].get_or_insert_with(|| HeadKv {
            keys: Matrix::zeros(0, self.head_dim),
            values: Matrix::zeros(0, self.head_dim),
        });
        let k1 = Matrix::from_vec(1, self.head_dim, key.to_vec());
        let v1 = Matrix::from_vec(1, self.head_dim, value.to_vec());
        slot.keys = slot.keys.vstack(&k1);
        slot.values = slot.values.vstack(&v1);
        let mut st = self.stats.lock();
        st.d2h_bytes += (2 * self.head_dim * WIRE_BYTES_PER_ELEM) as u64;
        st.d2h_ops += 1;
    }

    /// Fetch the K/V rows of the given token indices: Step ❺. Meters H2D
    /// traffic for exactly the rows moved.
    pub fn fetch(&self, layer: usize, head: usize, token_ids: &[usize]) -> (Matrix, Matrix) {
        let idx = self.slot_index(layer, head);
        let slot = self.slots[idx].as_ref().expect("fetch from empty slot");
        let keys = slot.keys.gather_rows(token_ids);
        let values = slot.values.gather_rows(token_ids);
        let mut st = self.stats.lock();
        st.h2d_bytes += (2 * token_ids.len() * self.head_dim * WIRE_BYTES_PER_ELEM) as u64;
        st.h2d_ops += 1;
        (keys, values)
    }

    /// Read keys *without* metering transfer — used by host-side PQ
    /// construction, which happens on CPU where the data already lives.
    pub fn keys_host(&self, layer: usize, head: usize) -> &Matrix {
        let idx = self.slot_index(layer, head);
        &self.slots[idx].as_ref().expect("empty slot").keys
    }

    /// Read values host-side without metering (CPU-local access).
    pub fn values_host(&self, layer: usize, head: usize) -> &Matrix {
        let idx = self.slot_index(layer, head);
        &self.slots[idx].as_ref().expect("empty slot").values
    }

    /// Stored token count for a slot (0 if never offloaded).
    pub fn len(&self, layer: usize, head: usize) -> usize {
        self.slots[self.slot_index(layer, head)]
            .as_ref()
            .map_or(0, |s| s.keys.rows())
    }

    /// True when no slot holds data.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|s| s.is_none())
    }

    /// Resident bytes across all slots (FP16 accounting).
    pub fn resident_bytes(&self) -> u64 {
        self.slots
            .iter()
            .flatten()
            .map(|s| (2 * s.keys.rows() * s.keys.cols() * WIRE_BYTES_PER_ELEM) as u64)
            .sum()
    }

    /// Snapshot of cumulative transfer statistics.
    pub fn stats(&self) -> TransferStats {
        *self.stats.lock()
    }

    /// Zero the transfer counters (e.g. to meter decode separately from
    /// prefill).
    pub fn reset_stats(&self) {
        *self.stats.lock() = TransferStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqc_tensor::Rng64;

    fn store_with_data(s: usize, dh: usize) -> (HostKvStore, Matrix, Matrix) {
        let mut rng = Rng64::new(1);
        let k = Matrix::randn(s, dh, 1.0, &mut rng);
        let v = Matrix::randn(s, dh, 1.0, &mut rng);
        let mut store = HostKvStore::new(2, 2, dh);
        store.offload(0, 0, k.clone(), v.clone());
        (store, k, v)
    }

    #[test]
    fn offload_then_fetch_roundtrip() {
        let (store, k, v) = store_with_data(50, 8);
        let ids = [3usize, 10, 49];
        let (fk, fv) = store.fetch(0, 0, &ids);
        for (row, &id) in ids.iter().enumerate() {
            assert_eq!(fk.row(row), k.row(id));
            assert_eq!(fv.row(row), v.row(id));
        }
    }

    #[test]
    fn transfer_accounting_exact() {
        let (store, _, _) = store_with_data(100, 16);
        // offload: 2 (K+V) * 100 * 16 * 2 bytes
        assert_eq!(store.stats().d2h_bytes, 2 * 100 * 16 * 2);
        assert_eq!(store.stats().d2h_ops, 1);
        let _ = store.fetch(0, 0, &[1, 2, 3]);
        assert_eq!(store.stats().h2d_bytes, 2 * 3 * 16 * 2);
        assert_eq!(store.stats().h2d_ops, 1);
    }

    #[test]
    fn append_token_extends() {
        let (mut store, _, _) = store_with_data(10, 4);
        let key = [1.0f32, 2.0, 3.0, 4.0];
        let val = [9.0f32, 8.0, 7.0, 6.0];
        store.append_token(0, 0, &key, &val);
        assert_eq!(store.len(0, 0), 11);
        let (fk, fv) = store.fetch(0, 0, &[10]);
        assert_eq!(fk.row(0), &key);
        assert_eq!(fv.row(0), &val);
    }

    #[test]
    fn append_into_empty_slot_allowed() {
        let mut store = HostKvStore::new(1, 1, 4);
        store.append_token(0, 0, &[1.0; 4], &[2.0; 4]);
        assert_eq!(store.len(0, 0), 1);
    }

    #[test]
    fn host_reads_do_not_meter() {
        let (store, _, _) = store_with_data(20, 8);
        let before = store.stats();
        let _ = store.keys_host(0, 0);
        let _ = store.values_host(0, 0);
        assert_eq!(store.stats(), before);
    }

    #[test]
    fn resident_bytes_counts_all_slots() {
        let mut store = HostKvStore::new(2, 1, 4);
        let mut rng = Rng64::new(2);
        store.offload(0, 0, Matrix::randn(10, 4, 1.0, &mut rng), Matrix::randn(10, 4, 1.0, &mut rng));
        store.offload(1, 0, Matrix::randn(5, 4, 1.0, &mut rng), Matrix::randn(5, 4, 1.0, &mut rng));
        assert_eq!(store.resident_bytes(), (2 * 10 * 4 * 2 + 2 * 5 * 4 * 2) as u64);
    }

    #[test]
    fn reset_stats_zeroes() {
        let (store, _, _) = store_with_data(10, 4);
        store.reset_stats();
        assert_eq!(store.stats(), TransferStats::default());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_layer_panics() {
        let store = HostKvStore::new(1, 1, 4);
        let _ = store.len(5, 0);
    }

    #[test]
    #[should_panic(expected = "empty slot")]
    fn fetch_empty_panics() {
        let store = HostKvStore::new(1, 1, 4);
        let _ = store.fetch(0, 0, &[0]);
    }
}
