//! Discrete-event overlap simulator: streams, events, and a shared clock.
//!
//! Overlap is the whole game in PQCache's system design (Fig. 7): offload
//! rides the D2H link while the GPU computes the next layer, K-Means rides
//! the CPU, code prefetch rides H2D one layer ahead. We model each resource
//! as a *stream* — an in-order queue with a `free_at` cursor — and each
//! operation as an event with dependencies. An op starts at
//! `max(stream.free_at, deps…)` and finishes `duration` later. End-to-end
//! time is the max event end; serialized time is the sum of durations, which
//! gives the "PQCache vs sequential scheduling" comparison directly.

/// Identifies a simulated hardware resource (GPU, PCIe direction, CPU pool).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// GPU compute stream.
    Gpu,
    /// Device→host copy engine.
    D2H,
    /// Host→device copy engine.
    H2D,
    /// CPU clustering worker pool.
    Cpu,
}

const N_RESOURCES: usize = 4;

impl Resource {
    fn index(self) -> usize {
        match self {
            Resource::Gpu => 0,
            Resource::D2H => 1,
            Resource::H2D => 2,
            Resource::Cpu => 3,
        }
    }

    /// All resources, in index order.
    pub fn all() -> [Resource; N_RESOURCES] {
        [Resource::Gpu, Resource::D2H, Resource::H2D, Resource::Cpu]
    }
}

/// Handle to a scheduled operation; carries its completion time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// When the op started.
    pub start: f64,
    /// When the op completes.
    pub end: f64,
}

impl Event {
    /// An event that completed at time zero (useful as a null dependency).
    pub fn ready() -> Self {
        Self { start: 0.0, end: 0.0 }
    }
}

/// Records one scheduled op for later decomposition.
#[derive(Debug, Clone)]
pub struct OpRecord {
    /// Resource the op ran on.
    pub resource: Resource,
    /// Label used to group ops in decomposition reports.
    pub label: &'static str,
    /// Scheduled interval.
    pub event: Event,
}

/// The overlap simulator.
///
/// ```
/// use pqc_memhier::{Resource, SimEngine};
///
/// let mut e = SimEngine::new();
/// let compute = e.schedule(Resource::Gpu, "compute", 10.0, &[]);
/// e.schedule(Resource::D2H, "offload", 3.0, &[compute]); // dependent copy
/// e.schedule(Resource::Cpu, "kmeans", 8.0, &[]);          // overlaps fully
/// assert_eq!(e.makespan(), 13.0);          // 10 + trailing offload
/// assert_eq!(e.serialized_time(), 21.0);   // what a naive schedule costs
/// ```
#[derive(Debug, Clone)]
pub struct SimEngine {
    free_at: [f64; N_RESOURCES],
    ops: Vec<OpRecord>,
}

impl Default for SimEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl SimEngine {
    /// A fresh engine with all streams idle at t=0.
    pub fn new() -> Self {
        Self { free_at: [0.0; N_RESOURCES], ops: Vec::new() }
    }

    /// Schedule an op of `duration` seconds on `resource`, not starting
    /// before any of `deps` completes. Returns its completion event.
    pub fn schedule(
        &mut self,
        resource: Resource,
        label: &'static str,
        duration: f64,
        deps: &[Event],
    ) -> Event {
        assert!(duration >= 0.0 && duration.is_finite(), "bad duration {duration}");
        let dep_ready = deps.iter().fold(0.0f64, |acc, e| acc.max(e.end));
        let start = self.free_at[resource.index()].max(dep_ready);
        let end = start + duration;
        self.free_at[resource.index()] = end;
        let event = Event { start, end };
        self.ops.push(OpRecord { resource, label, event });
        event
    }

    /// Current completion horizon of one stream.
    pub fn stream_free_at(&self, resource: Resource) -> f64 {
        self.free_at[resource.index()]
    }

    /// Simulated end-to-end time: the latest completion across all streams.
    pub fn makespan(&self) -> f64 {
        self.free_at.iter().copied().fold(0.0, f64::max)
    }

    /// Sum of all op durations — the hypothetical fully-sequential schedule.
    pub fn serialized_time(&self) -> f64 {
        self.ops.iter().map(|o| o.event.end - o.event.start).sum()
    }

    /// Total busy time per resource.
    pub fn busy_time(&self, resource: Resource) -> f64 {
        self.ops
            .iter()
            .filter(|o| o.resource == resource)
            .map(|o| o.event.end - o.event.start)
            .sum()
    }

    /// Total busy time per label (e.g. all "kmeans" ops).
    pub fn label_time(&self, label: &str) -> f64 {
        self.ops
            .iter()
            .filter(|o| o.label == label)
            .map(|o| o.event.end - o.event.start)
            .sum()
    }

    /// All recorded ops, in scheduling order.
    pub fn ops(&self) -> &[OpRecord] {
        &self.ops
    }

    /// Reset to t=0, clearing history.
    pub fn reset(&mut self) {
        self.free_at = [0.0; N_RESOURCES];
        self.ops.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_streams_overlap() {
        let mut e = SimEngine::new();
        e.schedule(Resource::Gpu, "compute", 10.0, &[]);
        e.schedule(Resource::D2H, "offload", 7.0, &[]);
        assert_eq!(e.makespan(), 10.0);
        assert_eq!(e.serialized_time(), 17.0);
    }

    #[test]
    fn same_stream_serializes() {
        let mut e = SimEngine::new();
        e.schedule(Resource::Gpu, "a", 5.0, &[]);
        let ev = e.schedule(Resource::Gpu, "b", 5.0, &[]);
        assert_eq!(ev.start, 5.0);
        assert_eq!(e.makespan(), 10.0);
    }

    #[test]
    fn dependencies_delay_start() {
        let mut e = SimEngine::new();
        let a = e.schedule(Resource::Gpu, "compute", 8.0, &[]);
        let b = e.schedule(Resource::D2H, "offload", 2.0, &[a]);
        assert_eq!(b.start, 8.0);
        assert_eq!(b.end, 10.0);
    }

    #[test]
    fn makespan_never_below_longest_component() {
        // DESIGN.md invariant: overlap can't beat the longest single stream.
        let mut e = SimEngine::new();
        for i in 0..5 {
            e.schedule(Resource::Gpu, "c", 3.0 + i as f64, &[]);
            e.schedule(Resource::Cpu, "k", 2.0, &[]);
        }
        assert!(e.makespan() >= e.busy_time(Resource::Gpu));
        assert!(e.makespan() >= e.busy_time(Resource::Cpu));
        assert!(e.makespan() <= e.serialized_time());
    }

    #[test]
    fn pipelined_prefill_pattern() {
        // GPU layer i computes; its offload depends on it but rides D2H.
        // With offload shorter than compute, makespan ≈ GPU time + last
        // offload tail (classic pipeline).
        let mut e = SimEngine::new();
        let mut last = Event::ready();
        for _ in 0..10 {
            let c = e.schedule(Resource::Gpu, "compute", 4.0, &[]);
            last = e.schedule(Resource::D2H, "offload", 1.0, &[c]);
        }
        assert_eq!(e.busy_time(Resource::Gpu), 40.0);
        assert_eq!(last.end, 41.0);
        assert_eq!(e.makespan(), 41.0);
    }

    #[test]
    fn label_accounting() {
        let mut e = SimEngine::new();
        e.schedule(Resource::Cpu, "kmeans", 3.0, &[]);
        e.schedule(Resource::Cpu, "kmeans", 2.0, &[]);
        e.schedule(Resource::Gpu, "compute", 1.0, &[]);
        assert_eq!(e.label_time("kmeans"), 5.0);
        assert_eq!(e.label_time("compute"), 1.0);
        assert_eq!(e.label_time("nothing"), 0.0);
    }

    #[test]
    fn events_monotone_per_stream() {
        let mut e = SimEngine::new();
        let mut prev_end = 0.0;
        for i in 0..20 {
            let ev = e.schedule(Resource::H2D, "x", (i % 3) as f64, &[]);
            assert!(ev.start >= prev_end);
            prev_end = ev.end;
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut e = SimEngine::new();
        e.schedule(Resource::Gpu, "c", 5.0, &[]);
        e.reset();
        assert_eq!(e.makespan(), 0.0);
        assert!(e.ops().is_empty());
    }

    #[test]
    #[should_panic(expected = "bad duration")]
    fn negative_duration_panics() {
        let mut e = SimEngine::new();
        e.schedule(Resource::Gpu, "c", -1.0, &[]);
    }
}
