//! # pqc-cache
//!
//! Block-level GPU cache for hot key-value pairs (paper §3.4).
//!
//! The only decode-phase communication PQCache cannot overlap is the fetch
//! of the top-k tokens' key-value pairs, because it depends on the PQ search
//! result. The paper exploits the persistence of pivotal tokens with a GPU
//! cache at *block* granularity: tokens are grouped into fixed blocks of 128,
//! each retrieval first checks residency, and afterwards the cache is updated
//! with the `k_cache` blocks containing the most top-k tokens, under an LRU
//! or LFU eviction policy.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// A capacity budget shared by several shard-local [`BlockCache`]s.
///
/// The serving layer gives every session its own cache (so block ids from
/// different sessions never collide) but all caches draw resident-block
/// slots from one engine-wide budget: total GPU memory spent on cached KV
/// blocks is bounded globally, while lookups and evictions stay lock-free
/// on each shard (one atomic per insertion/eviction).
///
/// Invariants (property-tested in `tests/proptests.rs`):
/// - `used_blocks() == Σ cache.len()` over all attached caches, and
/// - `used_blocks() <= max_blocks()` at every point in any interleaving.
#[derive(Debug, Clone)]
pub struct CacheBudget {
    max_blocks: usize,
    used: Arc<AtomicUsize>,
    underflow: Arc<AtomicBool>,
}

impl CacheBudget {
    /// A budget of `max_blocks` resident blocks across all attached caches.
    pub fn new(max_blocks: usize) -> Self {
        Self {
            max_blocks,
            used: Arc::new(AtomicUsize::new(0)),
            underflow: Arc::new(AtomicBool::new(false)),
        }
    }

    /// A budget expressed in tokens, like [`BlockCache::new`]'s capacity.
    pub fn for_tokens(capacity_tokens: usize, block_size: usize) -> Self {
        assert!(block_size > 0, "block_size must be positive");
        Self::new(capacity_tokens / block_size)
    }

    /// Global capacity in blocks.
    pub fn max_blocks(&self) -> usize {
        self.max_blocks
    }

    /// Blocks currently resident across all attached caches.
    pub fn used_blocks(&self) -> usize {
        self.used.load(Ordering::SeqCst)
    }

    /// Try to claim one resident slot. Public so other tiers can draw on
    /// the same accounting: the host KV tier's page allocator counts pages
    /// against a `CacheBudget` the same way [`BlockCache`] counts blocks.
    pub fn try_acquire(&self) -> bool {
        self.used
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |u| {
                (u < self.max_blocks).then_some(u + 1)
            })
            .is_ok()
    }

    /// Return `n` resident slots claimed with [`CacheBudget::try_acquire`].
    ///
    /// Releasing more than was acquired is a caller bug, but a *recoverable*
    /// one: instead of wrapping the counter (which would silently disable
    /// the budget for the rest of the run), the count saturates at zero and
    /// the mismatch is latched in [`CacheBudget::underflow_detected`] so the
    /// serving layer can surface it in its report.
    pub fn release(&self, n: usize) {
        let prev = self
            .used
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |u| Some(u.saturating_sub(n)))
            .expect("fetch_update with Some never fails");
        if prev < n {
            self.underflow.store(true, Ordering::SeqCst);
        }
    }

    /// Whether a release ever exceeded the acquired count (accounting bug
    /// detected and absorbed; the counter saturated instead of wrapping).
    pub fn underflow_detected(&self) -> bool {
        self.underflow.load(Ordering::SeqCst)
    }

    /// Blocks still available under the budget.
    pub fn free_blocks(&self) -> usize {
        self.max_blocks.saturating_sub(self.used_blocks())
    }
}

/// Cache eviction policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Evict the least-recently-used block.
    Lru,
    /// Evict the least-frequently-used block (ties broken by recency).
    Lfu,
}

/// Cumulative cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Tokens looked up.
    pub token_lookups: u64,
    /// Tokens found resident.
    pub token_hits: u64,
    /// Tokens missed.
    pub token_misses: u64,
    /// Blocks inserted.
    pub insertions: u64,
    /// Blocks evicted.
    pub evictions: u64,
    /// Cache-management operations (map probes/updates) — the overhead that
    /// makes token-level caching expensive (Fig. 11c).
    pub management_ops: u64,
}

impl std::ops::AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: Self) {
        self.token_lookups += rhs.token_lookups;
        self.token_hits += rhs.token_hits;
        self.token_misses += rhs.token_misses;
        self.insertions += rhs.insertions;
        self.evictions += rhs.evictions;
        self.management_ops += rhs.management_ops;
    }
}

impl std::ops::Add for CacheStats {
    type Output = CacheStats;
    fn add(mut self, rhs: Self) -> Self {
        self += rhs;
        self
    }
}

impl CacheStats {
    /// Token-level hit rate in `[0, 1]`; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        if self.token_lookups == 0 {
            0.0
        } else {
            self.token_hits as f64 / self.token_lookups as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct BlockEntry {
    freq: u64,
    last_used: u64,
}

/// Result of a lookup: which requested tokens were resident.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheLookup {
    /// Requested token ids found in resident blocks.
    pub hits: Vec<usize>,
    /// Requested token ids that must be fetched from the host.
    pub misses: Vec<usize>,
}

/// A block-granular cache over token ids.
///
/// Holds *residency metadata only* — the actual KV bytes live with the
/// caller. This mirrors the paper's design where the cache bookkeeping runs
/// on the CPU side of the launch path and the data movement is asynchronous.
///
/// ```
/// use pqc_cache::{top_blocks, BlockCache, EvictionPolicy};
///
/// let mut cache = BlockCache::new(4096, 128, EvictionPolicy::Lfu);
/// let selected = vec![5usize, 130, 131, 700];
/// let r = cache.lookup(&selected);
/// assert_eq!(r.misses.len(), 4); // cold cache
/// cache.update(&top_blocks(&selected, 128, 32));
/// let r2 = cache.lookup(&selected);
/// assert!(r2.misses.is_empty()); // all blocks resident now
/// ```
#[derive(Debug)]
pub struct BlockCache {
    block_size: usize,
    capacity_blocks: usize,
    policy: EvictionPolicy,
    resident: HashMap<usize, BlockEntry>,
    clock: u64,
    stats: CacheStats,
    /// Shared global budget, when this cache is one shard of a fleet.
    budget: Option<CacheBudget>,
}

impl Clone for BlockCache {
    /// Clones contents and statistics but **detaches the budget**: a clone's
    /// resident blocks were never acquired from the shared counter, so
    /// keeping the handle would double-release on drop.
    fn clone(&self) -> Self {
        Self {
            block_size: self.block_size,
            capacity_blocks: self.capacity_blocks,
            policy: self.policy,
            resident: self.resident.clone(),
            clock: self.clock,
            stats: self.stats,
            budget: None,
        }
    }
}

impl Drop for BlockCache {
    /// A budgeted cache returns its resident-block slots when it goes away
    /// (session completion frees GPU cache memory for newly admitted ones).
    fn drop(&mut self) {
        if let Some(b) = &self.budget {
            b.release(self.resident.len());
        }
    }
}

impl BlockCache {
    /// A cache holding at most `capacity_tokens` tokens in blocks of
    /// `block_size` (paper defaults: 4096-8192 tokens, 128-token blocks).
    ///
    /// `capacity_tokens = 0` creates a disabled cache (everything misses).
    pub fn new(capacity_tokens: usize, block_size: usize, policy: EvictionPolicy) -> Self {
        assert!(block_size > 0, "block_size must be positive");
        Self {
            block_size,
            capacity_blocks: capacity_tokens / block_size,
            policy,
            resident: HashMap::new(),
            clock: 0,
            stats: CacheStats::default(),
            budget: None,
        }
    }

    /// Like [`BlockCache::new`], but drawing resident-block slots from a
    /// shared [`CacheBudget`]. When the global budget is exhausted the cache
    /// evicts one of its own blocks to make room; if it has none to give,
    /// the insertion is skipped (a shard cannot evict another shard's
    /// blocks — residency checks would race the data movement).
    pub fn with_budget(
        capacity_tokens: usize,
        block_size: usize,
        policy: EvictionPolicy,
        budget: CacheBudget,
    ) -> Self {
        let mut cache = Self::new(capacity_tokens, block_size, policy);
        cache.budget = Some(budget);
        cache
    }

    /// The shared budget, when attached via [`BlockCache::with_budget`].
    pub fn budget(&self) -> Option<&CacheBudget> {
        self.budget.as_ref()
    }

    /// Token-level variant (block size 1) used by the Fig. 11c ablation.
    pub fn token_level(capacity_tokens: usize, policy: EvictionPolicy) -> Self {
        Self::new(capacity_tokens, 1, policy)
    }

    /// Block id that owns a token.
    #[inline]
    pub fn block_of(&self, token: usize) -> usize {
        token / self.block_size
    }

    /// Configured block size in tokens.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Capacity in blocks.
    pub fn capacity_blocks(&self) -> usize {
        self.capacity_blocks
    }

    /// Currently resident block count.
    pub fn len(&self) -> usize {
        self.resident.len()
    }

    /// True when no block is resident.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }

    /// Whether a block is resident (does not touch stats or recency).
    pub fn contains_block(&self, block: usize) -> bool {
        self.resident.contains_key(&block)
    }

    /// Check residency of the requested tokens, update hit statistics, and
    /// touch the blocks that served hits.
    pub fn lookup(&mut self, token_ids: &[usize]) -> CacheLookup {
        self.clock += 1;
        let mut hits = Vec::new();
        let mut misses = Vec::new();
        for &t in token_ids {
            let b = t / self.block_size;
            self.stats.token_lookups += 1;
            self.stats.management_ops += 1;
            match self.resident.get_mut(&b) {
                Some(entry) => {
                    entry.freq += 1;
                    entry.last_used = self.clock;
                    self.stats.token_hits += 1;
                    hits.push(t);
                }
                None => {
                    self.stats.token_misses += 1;
                    misses.push(t);
                }
            }
        }
        CacheLookup { hits, misses }
    }

    /// Insert the given blocks (the `top-k_cache` blocks of this step),
    /// evicting per policy when over capacity. Already-resident blocks are
    /// refreshed instead of reinserted.
    pub fn update(&mut self, blocks: &[usize]) {
        if self.capacity_blocks == 0 {
            return;
        }
        self.clock += 1;
        for &b in blocks {
            self.stats.management_ops += 1;
            if let Some(e) = self.resident.get_mut(&b) {
                e.last_used = self.clock;
                continue;
            }
            let at_capacity = self.resident.len() >= self.capacity_blocks;
            if let Some(budget) = self.budget.clone() {
                if at_capacity {
                    // Trade one of our own blocks for the new one, keeping
                    // the budget slot: no release/re-acquire window another
                    // shard could steal.
                    self.evict_victim();
                } else if !budget.try_acquire() {
                    // Global pressure: trade locally too. With nothing to
                    // evict, other shards own the whole budget — skip
                    // rather than evict remotely (residency checks would
                    // race the data movement).
                    if self.resident.is_empty() {
                        continue;
                    }
                    self.evict_victim();
                }
            } else if at_capacity {
                self.evict_victim();
            }
            self.resident.insert(b, BlockEntry { freq: 1, last_used: self.clock });
            self.stats.insertions += 1;
        }
    }

    /// Evict one block per policy, *retaining* any budget slot it held (the
    /// caller either re-fills the slot immediately or has no budget).
    fn evict_victim(&mut self) {
        let victim = match self.policy {
            EvictionPolicy::Lru => self
                .resident
                .iter()
                .min_by_key(|(id, e)| (e.last_used, **id))
                .map(|(id, _)| *id),
            EvictionPolicy::Lfu => self
                .resident
                .iter()
                .min_by_key(|(id, e)| (e.freq, e.last_used, **id))
                .map(|(id, _)| *id),
        };
        if let Some(v) = victim {
            self.resident.remove(&v);
            self.stats.evictions += 1;
            self.stats.management_ops += 1;
        }
    }

    /// Cumulative statistics snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Zero the statistics, keeping residency.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

/// The `k_cache` blocks containing the most of the given token ids, ordered
/// by descending containment count (ties toward the lower block id). This is
/// the paper's cache-update rule: "we update the cache using the top-k_cache
/// blocks, which contain the most top-k tokens".
pub fn top_blocks(token_ids: &[usize], block_size: usize, k_cache: usize) -> Vec<usize> {
    assert!(block_size > 0);
    let mut counts: HashMap<usize, usize> = HashMap::new();
    for &t in token_ids {
        *counts.entry(t / block_size).or_insert(0) += 1;
    }
    let mut pairs: Vec<(usize, usize)> = counts.into_iter().collect();
    pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    pairs.into_iter().take(k_cache).map(|(b, _)| b).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cache_all_miss() {
        let mut c = BlockCache::new(1024, 128, EvictionPolicy::Lru);
        let r = c.lookup(&[0, 5, 300]);
        assert!(r.hits.is_empty());
        assert_eq!(r.misses, vec![0, 5, 300]);
        assert_eq!(c.stats().hit_rate(), 0.0);
    }

    #[test]
    fn resident_block_serves_all_its_tokens() {
        let mut c = BlockCache::new(1024, 128, EvictionPolicy::Lru);
        c.update(&[2]); // block 2 = tokens 256..384
        let r = c.lookup(&[256, 300, 383, 384]);
        assert_eq!(r.hits, vec![256, 300, 383]);
        assert_eq!(r.misses, vec![384]);
    }

    #[test]
    fn hit_rate_accounting() {
        let mut c = BlockCache::new(256, 128, EvictionPolicy::Lfu);
        c.update(&[0]);
        let _ = c.lookup(&[1, 2, 200]); // 2 hits, 1 miss
        let s = c.stats();
        assert_eq!(s.token_lookups, 3);
        assert_eq!(s.token_hits, 2);
        assert_eq!(s.token_misses, 1);
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_enforced() {
        let mut c = BlockCache::new(4 * 128, 128, EvictionPolicy::Lru);
        c.update(&[0, 1, 2, 3, 4, 5]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = BlockCache::new(2 * 128, 128, EvictionPolicy::Lru);
        c.update(&[0]);
        c.update(&[1]);
        let _ = c.lookup(&[0]); // touch block 0
        c.update(&[2]); // must evict block 1
        assert!(c.contains_block(0));
        assert!(!c.contains_block(1));
        assert!(c.contains_block(2));
    }

    #[test]
    fn lfu_evicts_least_frequent() {
        let mut c = BlockCache::new(2 * 128, 128, EvictionPolicy::Lfu);
        c.update(&[0, 1]);
        for _ in 0..5 {
            let _ = c.lookup(&[10]); // block 0 gains frequency
        }
        let _ = c.lookup(&[130]); // block 1 used once
        c.update(&[2]); // evict block 1 (freq 2) not block 0 (freq 6)
        assert!(c.contains_block(0));
        assert!(!c.contains_block(1));
    }

    #[test]
    fn lfu_never_evicts_strictly_more_frequent_than_retained() {
        // DESIGN.md invariant, checked over a random workload.
        let mut c = BlockCache::new(8 * 16, 16, EvictionPolicy::Lfu);
        let mut rng = 12345u64;
        let mut next = || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (rng >> 33) as usize
        };
        for _ in 0..500 {
            let toks: Vec<usize> = (0..8).map(|_| next() % 2048).collect();
            let _ = c.lookup(&toks);
            let blocks = top_blocks(&toks, 16, 4);
            // Snapshot frequencies before update to validate eviction choice.
            let before: HashMap<usize, u64> =
                c.resident.iter().map(|(k, v)| (*k, v.freq)).collect();
            c.update(&blocks);
            for (b, f) in &before {
                if !c.contains_block(*b) {
                    // b was evicted: no retained old block may have had a
                    // strictly smaller frequency at eviction time.
                    for (ob, of) in &before {
                        if c.contains_block(*ob) {
                            assert!(
                                of >= f || blocks.contains(ob),
                                "evicted freq {f} but kept {of}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn zero_capacity_cache_is_inert() {
        let mut c = BlockCache::new(0, 128, EvictionPolicy::Lru);
        c.update(&[0, 1, 2]);
        assert!(c.is_empty());
        let r = c.lookup(&[3]);
        assert_eq!(r.misses, vec![3]);
    }

    #[test]
    fn token_level_cache_works() {
        let mut c = BlockCache::token_level(4, EvictionPolicy::Lru);
        assert_eq!(c.block_size(), 1);
        c.update(&[7, 8, 9, 10]);
        let r = c.lookup(&[7, 11]);
        assert_eq!(r.hits, vec![7]);
        assert_eq!(r.misses, vec![11]);
    }

    #[test]
    fn token_level_more_management_ops_than_block_level() {
        let tokens: Vec<usize> = (0..512).collect();
        let mut block = BlockCache::new(512, 128, EvictionPolicy::Lru);
        let mut tok = BlockCache::token_level(512, EvictionPolicy::Lru);
        block.update(&top_blocks(&tokens, 128, 4));
        tok.update(&tokens);
        assert!(tok.stats().management_ops > block.stats().management_ops * 10);
    }

    #[test]
    fn top_blocks_orders_by_containment() {
        // Tokens: 3 in block 1, 2 in block 0, 1 in block 5.
        let toks = [128, 130, 200, 0, 1, 640];
        assert_eq!(top_blocks(&toks, 128, 2), vec![1, 0]);
        assert_eq!(top_blocks(&toks, 128, 10), vec![1, 0, 5]);
    }

    #[test]
    fn top_blocks_tie_breaks_low_id() {
        let toks = [0, 128];
        assert_eq!(top_blocks(&toks, 128, 2), vec![0, 1]);
    }

    #[test]
    fn hits_plus_misses_equals_lookups() {
        let mut c = BlockCache::new(256, 64, EvictionPolicy::Lfu);
        c.update(&[0, 3]);
        for batch in [[1usize, 65, 200], [192, 193, 500]] {
            let r = c.lookup(&batch);
            assert_eq!(r.hits.len() + r.misses.len(), batch.len());
        }
        let s = c.stats();
        assert_eq!(s.token_hits + s.token_misses, s.token_lookups);
    }

    #[test]
    fn shared_budget_bounds_total_residency() {
        // Two shard caches, each locally able to hold 4 blocks, sharing a
        // global budget of 4: together they can never exceed 4.
        let budget = CacheBudget::new(4);
        let mut a = BlockCache::with_budget(4 * 128, 128, EvictionPolicy::Lru, budget.clone());
        let mut b = BlockCache::with_budget(4 * 128, 128, EvictionPolicy::Lru, budget.clone());
        a.update(&[0, 1, 2]);
        b.update(&[0, 1, 2]);
        assert_eq!(budget.used_blocks(), a.len() + b.len());
        assert!(budget.used_blocks() <= 4);
        // `b` got at least one block in by trading its own slots.
        assert!(!b.is_empty());
    }

    #[test]
    fn budget_released_on_drop() {
        let budget = CacheBudget::new(8);
        {
            let mut c = BlockCache::with_budget(8 * 64, 64, EvictionPolicy::Lfu, budget.clone());
            c.update(&[1, 2, 3]);
            assert_eq!(budget.used_blocks(), 3);
        }
        assert_eq!(budget.used_blocks(), 0);
    }

    #[test]
    fn budget_starved_cache_skips_instead_of_stealing() {
        let budget = CacheBudget::new(2);
        let mut a = BlockCache::with_budget(4 * 32, 32, EvictionPolicy::Lru, budget.clone());
        let mut b = BlockCache::with_budget(4 * 32, 32, EvictionPolicy::Lru, budget.clone());
        a.update(&[0, 1]); // budget exhausted by a
        b.update(&[5]); // b holds nothing: cannot evict a's blocks, skips
        assert_eq!(b.len(), 0);
        assert_eq!(a.len(), 2);
        assert_eq!(budget.used_blocks(), 2);
        let r = b.lookup(&[5 * 32]);
        assert!(r.hits.is_empty());
    }

    #[test]
    fn budgetless_behaviour_unchanged_and_clone_detaches() {
        let budget = CacheBudget::new(4);
        let mut c = BlockCache::with_budget(4 * 128, 128, EvictionPolicy::Lru, budget.clone());
        c.update(&[0, 1]);
        let clone = c.clone();
        assert!(clone.budget().is_none());
        assert_eq!(clone.len(), 2);
        drop(clone); // must not release the original's slots
        assert_eq!(budget.used_blocks(), 2);
        drop(c);
        assert_eq!(budget.used_blocks(), 0);
    }

    #[test]
    fn release_underflow_saturates_and_latches() {
        // Regression: over-releasing used to wrap the atomic in release
        // builds (debug_assert only), silently granting the budget
        // usize::MAX free slots. It must saturate at zero and latch a flag.
        let b = CacheBudget::new(4);
        assert!(b.try_acquire());
        assert!(!b.underflow_detected());
        b.release(3); // one held, three released
        assert!(b.underflow_detected(), "underflow must be latched");
        assert_eq!(b.used_blocks(), 0, "counter must saturate, not wrap");
        assert_eq!(b.free_blocks(), 4);
        // The budget keeps functioning after the bug is absorbed.
        assert!(b.try_acquire());
        assert_eq!(b.used_blocks(), 1);
        b.release(1);
        assert_eq!(b.used_blocks(), 0);
        assert!(b.underflow_detected(), "flag stays latched");
    }

    #[test]
    fn balanced_release_never_flags() {
        let b = CacheBudget::new(2);
        assert!(b.try_acquire());
        assert!(b.try_acquire());
        assert!(!b.try_acquire());
        assert_eq!(b.free_blocks(), 0);
        b.release(2);
        assert!(!b.underflow_detected());
        assert_eq!(b.free_blocks(), 2);
    }

    #[test]
    fn for_tokens_matches_block_capacity() {
        let b = CacheBudget::for_tokens(512, 128);
        assert_eq!(b.max_blocks(), 4);
        assert_eq!(b.used_blocks(), 0);
    }

    #[test]
    fn update_refreshes_existing_without_insertion() {
        let mut c = BlockCache::new(2 * 128, 128, EvictionPolicy::Lru);
        c.update(&[0]);
        c.update(&[0]);
        assert_eq!(c.stats().insertions, 1);
        assert_eq!(c.len(), 1);
    }
}
