//! The serving layer's error taxonomy.
//!
//! Production schedulers treat per-request failure, preemption, and
//! overload as normal states, not aborts. [`ServeError`] names every
//! recoverable failure class the engine can produce; a failed session
//! becomes a [`Completion`](crate::Completion) carrying a [`FailureCause`]
//! while the engine keeps serving everyone else. Only a config rejection
//! fails the whole run — and it does so as a typed `Err` from
//! [`ServeEngine::run`](crate::ServeEngine::run), never a panic.

use pqc_core::ConfigError;
use pqc_memhier::MemError;

/// Everything that can go wrong while serving, classified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The engine or session configuration was rejected up front.
    Config(ConfigError),
    /// Admission shed the request: the queue or budget stayed exhausted
    /// through every permitted retry.
    Admission {
        /// Admission attempts consumed (initial attempt + retries).
        attempts: u32,
    },
    /// The shared cache budget was exhausted and the session was shed
    /// rather than letting it starve the fleet.
    BudgetExhausted,
    /// The host-tier page pool hit its cap mid-session.
    PageExhausted {
        /// The pool cap that was hit.
        max_pages: usize,
    },
    /// The request's deadline elapsed before decoding finished.
    DeadlineExceeded {
        /// The configured deadline, in scheduler ticks.
        deadline_ticks: u64,
        /// Ticks actually elapsed when the session was reaped.
        elapsed_ticks: u64,
    },
    /// The session's step panicked; the panic payload is preserved.
    SessionPoisoned {
        /// Stringified panic payload.
        message: String,
    },
    /// The worker thread serving this request died and the request had no
    /// checkpoint to fail over from. Requests with a checkpoint are
    /// re-admitted to a healthy shard instead and never see this error.
    ShardLost {
        /// The shard whose worker died.
        shard: usize,
    },
    /// A KV page failed its checksum: the stored bytes were corrupted after
    /// being written. Corrupt data is never served — the fetch that
    /// detected it fails the step — and a session with a checkpoint rolls
    /// back to it instead of surfacing this error.
    KvCorruption {
        /// The corrupt page's id.
        page: u32,
    },
}

impl ServeError {
    /// Short stable label for metering/serialisation (one per variant).
    pub fn class(&self) -> &'static str {
        match self {
            ServeError::Config(_) => "config",
            ServeError::Admission { .. } => "admission",
            ServeError::BudgetExhausted => "budget_exhausted",
            ServeError::PageExhausted { .. } => "page_exhausted",
            ServeError::DeadlineExceeded { .. } => "deadline_exceeded",
            ServeError::SessionPoisoned { .. } => "session_poisoned",
            ServeError::ShardLost { .. } => "shard_lost",
            ServeError::KvCorruption { .. } => "kv_corruption",
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config(e) => write!(f, "{e}"),
            ServeError::Admission { attempts } => {
                write!(f, "request shed at admission after {attempts} attempt(s)")
            }
            ServeError::BudgetExhausted => write!(f, "cache budget exhausted"),
            ServeError::PageExhausted { max_pages } => {
                write!(f, "host page pool exhausted (max_pages {max_pages})")
            }
            ServeError::DeadlineExceeded { deadline_ticks, elapsed_ticks } => {
                write!(f, "deadline of {deadline_ticks} ticks exceeded ({elapsed_ticks} elapsed)")
            }
            ServeError::SessionPoisoned { message } => {
                write!(f, "session poisoned by panic: {message}")
            }
            ServeError::ShardLost { shard } => {
                write!(f, "shard {shard} died with no checkpoint to fail over from")
            }
            ServeError::KvCorruption { page } => {
                write!(f, "kv page {page} failed its checksum and no checkpoint could roll it back")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ConfigError> for ServeError {
    fn from(e: ConfigError) -> Self {
        ServeError::Config(e)
    }
}

impl From<MemError> for ServeError {
    fn from(e: MemError) -> Self {
        match e {
            MemError::PageExhausted { max_pages } => ServeError::PageExhausted { max_pages },
            MemError::PageCorrupt { page } => ServeError::KvCorruption { page },
            // An empty-slot fetch inside a session step is a logic fault —
            // classify it as poison, preserving the message.
            other => ServeError::SessionPoisoned { message: other.to_string() },
        }
    }
}

/// Why (and how) a session failed: attached to the failed
/// [`Completion`](crate::Completion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureCause {
    /// The classified error.
    pub error: ServeError,
    /// True when the failure was injected by the fault plan (chaos tests
    /// assert the injected cause round-trips to the report).
    pub injected: bool,
    /// Decode steps the session completed before failing (0 when it never
    /// stepped — admission sheds, prefill exhaustion).
    pub step: u64,
}

/// Bounded-retry policy for admission shedding, with deterministic seeded
/// backoff (tick-based, so retries replay identically across runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Re-admission attempts after the first rejection (0 = shed at once).
    pub max_retries: u32,
    /// Base backoff in scheduler ticks; the r-th retry waits
    /// `backoff_ticks << r` ticks plus a seeded jitter in `[0, backoff)`.
    pub backoff_ticks: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_retries: 2, backoff_ticks: 2 }
    }
}

impl RetryPolicy {
    /// No retries: first rejection sheds the request.
    pub fn none() -> Self {
        Self { max_retries: 0, backoff_ticks: 0 }
    }

    /// Ticks to wait before retry number `attempt` (1-based), jittered
    /// deterministically from `seed` (exponential backoff, full jitter).
    pub fn backoff(&self, seed: u64, attempt: u32) -> u64 {
        let base = self.backoff_ticks << attempt.min(16);
        if base == 0 {
            return 0;
        }
        let mut rng =
            pqc_tensor::Rng64::new(seed ^ (attempt as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        base + rng.below(base as usize) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_class_cover_all_variants() {
        let cases: Vec<(ServeError, &str, &str)> = vec![
            (
                ServeError::Config(ConfigError { field: "shards", message: "must be > 0".into() }),
                "config",
                "shards",
            ),
            (ServeError::Admission { attempts: 3 }, "admission", "3 attempt"),
            (ServeError::BudgetExhausted, "budget_exhausted", "budget"),
            (ServeError::PageExhausted { max_pages: 8 }, "page_exhausted", "max_pages 8"),
            (
                ServeError::DeadlineExceeded { deadline_ticks: 5, elapsed_ticks: 9 },
                "deadline_exceeded",
                "5 ticks",
            ),
            (
                ServeError::SessionPoisoned { message: "boom".into() },
                "session_poisoned",
                "boom",
            ),
            (ServeError::ShardLost { shard: 2 }, "shard_lost", "shard 2"),
            (ServeError::KvCorruption { page: 17 }, "kv_corruption", "page 17"),
        ];
        for (e, class, needle) in cases {
            assert_eq!(e.class(), class);
            assert!(e.to_string().contains(needle), "{e} missing {needle}");
        }
    }

    #[test]
    fn mem_error_conversion() {
        assert_eq!(
            ServeError::from(MemError::PageExhausted { max_pages: 4 }),
            ServeError::PageExhausted { max_pages: 4 }
        );
        assert_eq!(
            ServeError::from(MemError::PageCorrupt { page: 9 }),
            ServeError::KvCorruption { page: 9 }
        );
        match ServeError::from(MemError::EmptySlot { layer: 0, head: 1 }) {
            ServeError::SessionPoisoned { message } => assert!(message.contains("empty slot")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy { max_retries: 3, backoff_ticks: 2 };
        for attempt in 1..=3 {
            let a = p.backoff(42, attempt);
            let b = p.backoff(42, attempt);
            assert_eq!(a, b, "same seed must give the same backoff");
            let base = 2u64 << attempt;
            assert!(a >= base && a < 2 * base, "attempt {attempt}: {a} outside [{base}, {})", 2 * base);
        }
        assert_ne!(p.backoff(1, 1), p.backoff(2, 1), "seeds decorrelate sessions");
        assert_eq!(RetryPolicy::none().backoff(7, 1), 0);
    }
}
